#include "graph/dot_export.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "graph/schedule_graph.hpp"

namespace rs::graph {

namespace {

std::string vertex_name(int layer, int index) {
  std::string name = "v";
  name += std::to_string(layer);
  name += '_';
  name += std::to_string(index);
  return name;
}

}  // namespace

std::string to_dot(const LayeredGraph& graph, const DotOptions& options) {
  if (graph.num_layers() > options.max_layers) {
    throw std::invalid_argument("to_dot: too many layers to render");
  }
  for (int layer = 0; layer < graph.num_layers(); ++layer) {
    if (graph.layer_size(layer) > options.max_layer_size) {
      throw std::invalid_argument("to_dot: layer too large to render");
    }
  }

  std::ostringstream out;
  out << "digraph schedule_graph {\n"
      << "  rankdir=LR;\n"
      << "  node [shape=circle, fontsize=10];\n";

  auto on_path = [&](int layer, int index) {
    return options.highlight_path &&
           layer < static_cast<int>(options.path.size()) &&
           options.path[static_cast<std::size_t>(layer)] == index;
  };

  for (int layer = 0; layer < graph.num_layers(); ++layer) {
    out << "  { rank=same;";
    for (int index = 0; index < graph.layer_size(layer); ++index) {
      out << " " << vertex_name(layer, index);
      out << " [label=\"" << layer << "," << index << "\"";
      if (on_path(layer, index)) out << ", style=filled, fillcolor=gold";
      out << "];";
    }
    out << " }\n";
  }

  graph.visit_edges([&](int layer, int from, int to, double weight) {
    if (std::isinf(weight)) return;
    out << "  " << vertex_name(layer, from) << " -> "
        << vertex_name(layer + 1, to) << " [label=\"";
    std::ostringstream w;
    w.precision(options.weight_precision);
    w << std::fixed << weight;
    out << w.str() << "\", fontsize=8";
    if (on_path(layer, from) && on_path(layer + 1, to)) {
      out << ", color=gold3, penwidth=2";
    }
    out << "];\n";
  });
  out << "}\n";
  return out.str();
}

std::string schedule_graph_dot(const rs::core::Problem& p,
                               bool highlight_optimal) {
  const LayeredGraph graph = build_schedule_graph(p);
  DotOptions options;
  options.max_layers = 12;
  options.max_layer_size = 12;
  if (highlight_optimal) {
    const LayeredGraph::PathResult path = graph.shortest_path(0, 0);
    if (path.reachable()) {
      options.highlight_path = true;
      options.path = path.vertex_per_layer;
    }
  }
  return to_dot(graph, options);
}

}  // namespace rs::graph
