// Generic layered directed acyclic graphs.
//
// The offline algorithm of Section 2 models the data-center optimization
// problem as a grid-structured graph (Figure 1): one layer per time slot,
// one vertex per server count, and edges between consecutive layers weighted
// with switching plus operating cost.  This module provides the generic
// layered-DAG substrate: storage, validation, and single-source shortest
// paths by per-layer relaxation (optimal for DAGs, O(#edges)).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/math_util.hpp"

namespace rs::graph {

/// Vertex address: (layer, index within layer).
struct VertexId {
  int layer = 0;
  int index = 0;
  friend bool operator==(const VertexId&, const VertexId&) = default;
};

/// A layered DAG with explicit edge lists.  Edges only connect layer k to
/// layer k+1.
class LayeredGraph {
 public:
  /// `layer_sizes[k]` is the number of vertices in layer k; all sizes >= 1.
  explicit LayeredGraph(std::vector<int> layer_sizes);

  int num_layers() const noexcept { return static_cast<int>(layer_sizes_.size()); }
  int layer_size(int layer) const;
  std::int64_t num_vertices() const noexcept { return total_vertices_; }
  std::int64_t num_edges() const noexcept { return static_cast<std::int64_t>(edges_.size()); }

  /// Adds a directed edge from (layer, from) to (layer+1, to).
  void add_edge(int layer, int from, int to, double weight);

  /// Shortest path from (0, source) to (last, target); returns the per-layer
  /// vertex indices of an optimal path and its length, or an infinite
  /// distance and empty path if the target is unreachable.
  struct PathResult {
    std::vector<int> vertex_per_layer;  // size = num_layers() when reachable
    double distance = rs::util::kInf;
    bool reachable() const noexcept { return std::isfinite(distance); }
  };
  PathResult shortest_path(int source, int target) const;

  /// Distance labels of all vertices in the last layer from (0, source).
  std::vector<double> last_layer_distances(int source) const;

  /// Visits every edge as (layer, from, to, weight); iteration order is the
  /// insertion order per layer.
  void visit_edges(
      const std::function<void(int, int, int, double)>& visitor) const;

 private:
  struct Edge {
    int from;
    int to;
    double weight;
  };

  void check_layer(int layer) const;

  std::vector<int> layer_sizes_;
  std::vector<std::vector<Edge>> edges_per_layer_;  // edges leaving layer k
  std::vector<Edge> edges_;                         // flat view for counting
  std::int64_t total_vertices_ = 0;
};

/// Dense builder: adds all edges between two consecutive layers with weights
/// from a callable (from, to) -> double; skips +inf weights.
void add_dense_layer(LayeredGraph& graph, int layer,
                     const std::function<double(int, int)>& weight);

}  // namespace rs::graph
