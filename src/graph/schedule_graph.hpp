// The Figure-1 construction: builds the layered graph G = (V, E) of the
// discrete data-center optimization problem and converts between paths and
// schedules.
//
// Layers: layer 0 holds the single initial vertex v_{0,0}; layers 1..T hold
// vertices v_{t,j} for j in {0,..,m}; layer T+1 holds the final vertex
// v_{T+1,0}.  Edge v_{t-1,j} -> v_{t,j'} has weight β(j'−j)⁺ + f_t(j'), and
// edges into the final vertex have weight 0, so path length equals schedule
// cost (paper eq. 1).
#pragma once

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "graph/layered_graph.hpp"

namespace rs::graph {

/// Materializes the Figure-1 graph for `p`.  Memory/edge count is
/// Θ(T·m²) — intended for the pedagogical baseline and cross-validation,
/// not for large instances.
LayeredGraph build_schedule_graph(const rs::core::Problem& p);

/// Extracts the schedule encoded by a source-to-sink path in the Figure-1
/// graph (drops the artificial first and last layers).
rs::core::Schedule path_to_schedule(const LayeredGraph::PathResult& path);

/// Length of the path corresponding to schedule `x` in the Figure-1 graph;
/// by construction equals total_cost(p, x).  Used in tests to pin the
/// path <-> schedule equivalence.
double schedule_path_length(const rs::core::Problem& p,
                            const rs::core::Schedule& x);

}  // namespace rs::graph
