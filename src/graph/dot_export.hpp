// Graphviz DOT rendering of the Figure-1 graph, for documentation and
// debugging of small instances.  Vertices are laid out in time-ordered
// columns (rank = layer), edge labels carry the weights.
#pragma once

#include <string>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "graph/layered_graph.hpp"

namespace rs::graph {

struct DotOptions {
  int max_layers = 12;      // refuse to render bigger graphs
  int max_layer_size = 12;
  int weight_precision = 2;
  bool highlight_path = false;
  std::vector<int> path;    // per-layer vertex indices (as in PathResult)
};

/// Renders the graph to DOT.  Throws std::invalid_argument if it exceeds
/// the option limits (rendering large graphs is never useful).
std::string to_dot(const LayeredGraph& graph, const DotOptions& options = {});

/// Convenience: builds the Figure-1 graph of `p`, optionally highlighting
/// the optimal schedule's path.
std::string schedule_graph_dot(const rs::core::Problem& p,
                               bool highlight_optimal = true);

}  // namespace rs::graph
