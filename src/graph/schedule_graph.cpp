#include "graph/schedule_graph.hpp"

#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::graph {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::pos;

LayeredGraph build_schedule_graph(const Problem& p) {
  const int T = p.horizon();
  const int m = p.max_servers();
  std::vector<int> layer_sizes;
  layer_sizes.reserve(static_cast<std::size_t>(T) + 2);
  layer_sizes.push_back(1);                      // v_{0,0}
  for (int t = 1; t <= T; ++t) layer_sizes.push_back(m + 1);
  layer_sizes.push_back(1);                      // v_{T+1,0}

  LayeredGraph graph(std::move(layer_sizes));
  if (T == 0) {
    graph.add_edge(0, 0, 0, 0.0);
    return graph;
  }

  // Layer 0 -> 1: weight f_1(j') + β·j' (power-up from x_0 = 0).
  for (int j = 0; j <= m; ++j) {
    const double w = p.cost_at(1, j) + p.beta() * static_cast<double>(j);
    if (std::isfinite(w)) graph.add_edge(0, 0, j, w);
  }
  // Layers t-1 -> t for t = 2..T: weight β(j'−j)⁺ + f_t(j').
  for (int t = 2; t <= T; ++t) {
    for (int j = 0; j <= m; ++j) {
      for (int jp = 0; jp <= m; ++jp) {
        const double w =
            p.beta() * static_cast<double>(pos(jp - j)) + p.cost_at(t, jp);
        if (std::isfinite(w)) graph.add_edge(t - 1, j, jp, w);
      }
    }
  }
  // Layer T -> T+1: weight 0 (powering down is free at the horizon end).
  for (int j = 0; j <= m; ++j) graph.add_edge(T, j, 0, 0.0);
  return graph;
}

Schedule path_to_schedule(const LayeredGraph::PathResult& path) {
  if (!path.reachable()) {
    throw std::invalid_argument("path_to_schedule: unreachable path");
  }
  if (path.vertex_per_layer.size() < 2) {
    throw std::invalid_argument("path_to_schedule: too few layers");
  }
  return Schedule(path.vertex_per_layer.begin() + 1,
                  path.vertex_per_layer.end() - 1);
}

double schedule_path_length(const Problem& p, const Schedule& x) {
  if (static_cast<int>(x.size()) != p.horizon()) {
    throw std::invalid_argument("schedule_path_length: length mismatch");
  }
  rs::util::KahanSum sum;
  int previous = 0;
  for (int t = 1; t <= p.horizon(); ++t) {
    const int current = x[static_cast<std::size_t>(t - 1)];
    sum.add(p.beta() * static_cast<double>(pos(current - previous)));
    sum.add(p.cost_at(t, current));
    previous = current;
  }
  return sum.value();  // final edge into v_{T+1,0} weighs 0
}

}  // namespace rs::graph
