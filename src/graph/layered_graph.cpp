#include "graph/layered_graph.hpp"

#include <cmath>
#include <stdexcept>

namespace rs::graph {

using rs::util::kInf;

LayeredGraph::LayeredGraph(std::vector<int> layer_sizes)
    : layer_sizes_(std::move(layer_sizes)) {
  if (layer_sizes_.empty()) {
    throw std::invalid_argument("LayeredGraph: no layers");
  }
  for (int size : layer_sizes_) {
    if (size < 1) throw std::invalid_argument("LayeredGraph: empty layer");
    total_vertices_ += size;
  }
  edges_per_layer_.resize(layer_sizes_.size() > 0 ? layer_sizes_.size() - 1 : 0);
}

int LayeredGraph::layer_size(int layer) const {
  check_layer(layer);
  return layer_sizes_[static_cast<std::size_t>(layer)];
}

void LayeredGraph::check_layer(int layer) const {
  if (layer < 0 || layer >= num_layers()) {
    throw std::out_of_range("LayeredGraph: layer out of range");
  }
}

void LayeredGraph::add_edge(int layer, int from, int to, double weight) {
  check_layer(layer);
  if (layer + 1 >= num_layers()) {
    throw std::out_of_range("LayeredGraph: edge from last layer");
  }
  if (from < 0 || from >= layer_size(layer) || to < 0 ||
      to >= layer_size(layer + 1)) {
    throw std::out_of_range("LayeredGraph: endpoint out of range");
  }
  if (std::isnan(weight)) {
    throw std::invalid_argument("LayeredGraph: NaN edge weight");
  }
  const Edge edge{from, to, weight};
  edges_per_layer_[static_cast<std::size_t>(layer)].push_back(edge);
  edges_.push_back(edge);
}

LayeredGraph::PathResult LayeredGraph::shortest_path(int source,
                                                     int target) const {
  if (source < 0 || source >= layer_size(0)) {
    throw std::out_of_range("shortest_path: bad source");
  }
  const int last = num_layers() - 1;
  if (target < 0 || target >= layer_size(last)) {
    throw std::out_of_range("shortest_path: bad target");
  }

  // Distance labels and parent pointers per layer.
  std::vector<std::vector<double>> distance(static_cast<std::size_t>(num_layers()));
  std::vector<std::vector<int>> parent(static_cast<std::size_t>(num_layers()));
  for (int layer = 0; layer < num_layers(); ++layer) {
    distance[static_cast<std::size_t>(layer)]
        .assign(static_cast<std::size_t>(layer_size(layer)), kInf);
    parent[static_cast<std::size_t>(layer)]
        .assign(static_cast<std::size_t>(layer_size(layer)), -1);
  }
  distance[0][static_cast<std::size_t>(source)] = 0.0;

  for (int layer = 0; layer + 1 < num_layers(); ++layer) {
    for (const Edge& edge : edges_per_layer_[static_cast<std::size_t>(layer)]) {
      const double from_distance =
          distance[static_cast<std::size_t>(layer)][static_cast<std::size_t>(edge.from)];
      if (std::isinf(from_distance) || std::isinf(edge.weight)) continue;
      double& to_distance =
          distance[static_cast<std::size_t>(layer + 1)][static_cast<std::size_t>(edge.to)];
      const double candidate = from_distance + edge.weight;
      if (candidate < to_distance) {
        to_distance = candidate;
        parent[static_cast<std::size_t>(layer + 1)][static_cast<std::size_t>(edge.to)] =
            edge.from;
      }
    }
  }

  PathResult result;
  result.distance = distance[static_cast<std::size_t>(last)][static_cast<std::size_t>(target)];
  if (!result.reachable()) return result;

  result.vertex_per_layer.assign(static_cast<std::size_t>(num_layers()), -1);
  int vertex = target;
  for (int layer = last; layer >= 0; --layer) {
    result.vertex_per_layer[static_cast<std::size_t>(layer)] = vertex;
    if (layer > 0) {
      vertex = parent[static_cast<std::size_t>(layer)][static_cast<std::size_t>(vertex)];
      if (vertex < 0) {
        throw std::logic_error("shortest_path: broken parent chain");
      }
    }
  }
  return result;
}

std::vector<double> LayeredGraph::last_layer_distances(int source) const {
  if (source < 0 || source >= layer_size(0)) {
    throw std::out_of_range("last_layer_distances: bad source");
  }
  std::vector<double> current(static_cast<std::size_t>(layer_size(0)), kInf);
  current[static_cast<std::size_t>(source)] = 0.0;
  for (int layer = 0; layer + 1 < num_layers(); ++layer) {
    std::vector<double> next(static_cast<std::size_t>(layer_size(layer + 1)), kInf);
    for (const Edge& edge : edges_per_layer_[static_cast<std::size_t>(layer)]) {
      const double from_distance = current[static_cast<std::size_t>(edge.from)];
      if (std::isinf(from_distance) || std::isinf(edge.weight)) continue;
      double& to_distance = next[static_cast<std::size_t>(edge.to)];
      to_distance = std::min(to_distance, from_distance + edge.weight);
    }
    current = std::move(next);
  }
  return current;
}

void LayeredGraph::visit_edges(
    const std::function<void(int, int, int, double)>& visitor) const {
  for (int layer = 0; layer + 1 < num_layers(); ++layer) {
    for (const Edge& edge : edges_per_layer_[static_cast<std::size_t>(layer)]) {
      visitor(layer, edge.from, edge.to, edge.weight);
    }
  }
}

void add_dense_layer(LayeredGraph& graph, int layer,
                     const std::function<double(int, int)>& weight) {
  const int from_size = graph.layer_size(layer);
  const int to_size = graph.layer_size(layer + 1);
  for (int from = 0; from < from_size; ++from) {
    for (int to = 0; to < to_size; ++to) {
      const double w = weight(from, to);
      if (!std::isinf(w)) graph.add_edge(layer, from, to, w);
    }
  }
}

}  // namespace rs::graph
