#include "analysis/sweep.hpp"

#include <sstream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace rs::analysis {

SweepRunner::SweepRunner(std::vector<SweepPoint> points,
                         std::function<SweepRow(std::size_t)> evaluate)
    : points_(std::move(points)), evaluate_(std::move(evaluate)) {
  if (!evaluate_) throw std::invalid_argument("SweepRunner: null evaluator");
  if (points_.empty()) throw std::invalid_argument("SweepRunner: no points");
}

void SweepRunner::run(bool parallel) {
  if (finished_) return;
  rows_.assign(points_.size(), SweepRow{});
  if (parallel) {
    // Dynamic scheduling: sweep axes routinely scale T or m, so per-point
    // costs differ by orders of magnitude and static chunks would serialize
    // behind the most expensive stretch of the grid.
    rs::util::global_pool().parallel_for_dynamic(
        0, points_.size(), [this](std::size_t i) { rows_[i] = evaluate_(i); });
  } else {
    for (std::size_t i = 0; i < points_.size(); ++i) rows_[i] = evaluate_(i);
  }
  finished_ = true;
}

void SweepRunner::require_finished() const {
  if (!finished_) throw std::logic_error("SweepRunner: run() first");
}

const std::vector<SweepRow>& SweepRunner::rows() const {
  require_finished();
  return rows_;
}

namespace {

std::vector<std::string> header_of(const SweepPoint& point,
                                   const SweepRow& row) {
  std::vector<std::string> header;
  header.reserve(point.size() + row.size());
  for (const auto& [name, value] : point) header.push_back(name);
  for (const auto& [name, value] : row) header.push_back(name);
  return header;
}

}  // namespace

rs::util::TextTable SweepRunner::to_table(int precision) const {
  require_finished();
  rs::util::TextTable table(header_of(points_.front(), rows_.front()));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    std::vector<std::string> cells;
    for (const auto& [name, value] : points_[i]) cells.push_back(value);
    for (const auto& [name, value] : rows_[i]) {
      cells.push_back(rs::util::TextTable::num(value, precision));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

rs::util::CsvTable SweepRunner::to_csv(int precision) const {
  require_finished();
  rs::util::CsvTable csv;
  csv.header = header_of(points_.front(), rows_.front());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    rs::util::CsvRow row;
    for (const auto& [name, value] : points_[i]) row.push_back(value);
    for (const auto& [name, value] : rows_[i]) {
      std::ostringstream os;
      os.precision(precision);
      os << value;
      row.push_back(os.str());
    }
    csv.rows.push_back(std::move(row));
  }
  return csv;
}

std::vector<SweepPoint> grid(
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes) {
  if (axes.empty()) throw std::invalid_argument("grid: no axes");
  std::size_t total = 1;
  for (const auto& [name, values] : axes) {
    if (values.empty()) throw std::invalid_argument("grid: empty axis");
    total *= values.size();
  }
  std::vector<SweepPoint> points;
  points.reserve(total);
  std::vector<std::size_t> index(axes.size(), 0);
  for (;;) {
    SweepPoint point;
    point.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      point.emplace_back(axes[a].first, axes[a].second[index[a]]);
    }
    points.push_back(std::move(point));
    std::size_t position = axes.size();
    while (position-- > 0) {
      if (++index[position] < axes[position].second.size()) break;
      index[position] = 0;
      if (position == 0) return points;
    }
  }
}

}  // namespace rs::analysis
