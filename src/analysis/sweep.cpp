#include "analysis/sweep.hpp"

#include <sstream>
#include <stdexcept>

namespace rs::analysis {

SweepRunner::SweepRunner(std::vector<SweepPoint> points,
                         std::function<SweepRow(std::size_t)> evaluate)
    : points_(std::move(points)), evaluate_(std::move(evaluate)) {
  if (!evaluate_) throw std::invalid_argument("SweepRunner: null evaluator");
  if (points_.empty()) throw std::invalid_argument("SweepRunner: no points");
}

void SweepRunner::run(bool parallel) {
  // The engine's dynamic scheduling matters here: sweep axes routinely
  // scale T or m, so per-point costs differ by orders of magnitude and
  // static chunks would serialize behind the most expensive stretch.
  const rs::engine::SolverEngine engine(
      {.threads = parallel ? std::size_t{0} : std::size_t{1}});
  run(engine);
}

void SweepRunner::run(const rs::engine::SolverEngine& engine) {
  if (finished_) return;
  rows_.assign(points_.size(), SweepRow{});
  engine.for_each(
      points_.size(), [this](std::size_t i) { rows_[i] = evaluate_(i); },
      &stats_);
  finished_ = true;
}

void SweepRunner::require_finished() const {
  if (!finished_) throw std::logic_error("SweepRunner: run() first");
}

const std::vector<SweepRow>& SweepRunner::rows() const {
  require_finished();
  return rows_;
}

const rs::engine::BatchStats& SweepRunner::stats() const {
  require_finished();
  return stats_;
}

namespace {

std::vector<std::string> header_of(const SweepPoint& point,
                                   const SweepRow& row) {
  std::vector<std::string> header;
  header.reserve(point.size() + row.size());
  for (const auto& [name, value] : point) header.push_back(name);
  for (const auto& [name, value] : row) header.push_back(name);
  return header;
}

}  // namespace

rs::util::TextTable SweepRunner::to_table(int precision) const {
  require_finished();
  rs::util::TextTable table(header_of(points_.front(), rows_.front()));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    std::vector<std::string> cells;
    for (const auto& [name, value] : points_[i]) cells.push_back(value);
    for (const auto& [name, value] : rows_[i]) {
      cells.push_back(rs::util::TextTable::num(value, precision));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

rs::util::CsvTable SweepRunner::to_csv(int precision) const {
  require_finished();
  rs::util::CsvTable csv;
  csv.header = header_of(points_.front(), rows_.front());
  csv.rows.reserve(points_.size());
  // One reusable formatting stream for the whole grid instead of one
  // ostringstream construction per cell.
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    rs::util::CsvRow row;
    row.reserve(points_[i].size() + rows_[i].size());
    for (const auto& [name, value] : points_[i]) row.push_back(value);
    for (const auto& [name, value] : rows_[i]) {
      os.str(std::string());
      os.clear();
      os << value;
      row.push_back(os.str());
    }
    csv.rows.push_back(std::move(row));
  }
  return csv;
}

std::vector<SweepPoint> grid(
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes) {
  if (axes.empty()) throw std::invalid_argument("grid: no axes");
  std::size_t total = 1;
  for (const auto& [name, values] : axes) {
    if (values.empty()) throw std::invalid_argument("grid: empty axis");
    total *= values.size();
  }
  std::vector<SweepPoint> points;
  points.reserve(total);
  std::vector<std::size_t> index(axes.size(), 0);
  for (;;) {
    SweepPoint point;
    point.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      point.emplace_back(axes[a].first, axes[a].second[index[a]]);
    }
    points.push_back(std::move(point));
    std::size_t position = axes.size();
    while (position-- > 0) {
      if (++index[position] < axes[position].second.size()) break;
      index[position] = 0;
      if (position == 0) return points;
    }
  }
}

}  // namespace rs::analysis
