#include "analysis/monte_carlo.hpp"

#include <stdexcept>
#include <vector>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/randomized_rounding.hpp"
#include "util/thread_pool.hpp"

namespace rs::analysis {

MonteCarloReport monte_carlo(
    const rs::core::Problem& p, int trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& run_trial) {
  if (trials < 1) throw std::invalid_argument("monte_carlo: trials < 1");
  if (!run_trial) throw std::invalid_argument("monte_carlo: null trial");

  MonteCarloReport report;
  report.optimal_cost = rs::offline::DpSolver().solve_cost(p);

  std::vector<double> costs(static_cast<std::size_t>(trials));
  rs::util::global_pool().parallel_for(
      0, static_cast<std::size_t>(trials), [&](std::size_t trial) {
        costs[trial] = run_trial(base_seed + trial);
      });

  report.cost = rs::util::summarize(costs);
  if (report.optimal_cost > 0.0) {
    std::vector<double> ratios(costs.size());
    for (std::size_t i = 0; i < costs.size(); ++i) {
      ratios[i] = costs[i] / report.optimal_cost;
    }
    report.ratio = rs::util::summarize(ratios);
  }
  return report;
}

MonteCarloReport monte_carlo_randomized_rounding(const rs::core::Problem& p,
                                                 int trials,
                                                 std::uint64_t base_seed) {
  return monte_carlo(p, trials, base_seed, [&p](std::uint64_t seed) {
    rs::online::RandomizedRounding algorithm(seed);
    const rs::core::Schedule x = rs::online::run_online(algorithm, p);
    return rs::core::total_cost(p, x);
  });
}

}  // namespace rs::analysis
