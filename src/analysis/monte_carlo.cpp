#include "analysis/monte_carlo.hpp"

#include <stdexcept>
#include <vector>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/randomized_rounding.hpp"

namespace rs::analysis {

using rs::core::DenseProblem;

MonteCarloReport monte_carlo(
    const rs::core::Problem& p, int trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& run_trial) {
  if (trials < 1) throw std::invalid_argument("monte_carlo: trials < 1");
  if (!run_trial) throw std::invalid_argument("monte_carlo: null trial");
  // Rows only: OPT and the trial scorings never query minimizer caches.
  const DenseProblem dense(p, DenseProblem::Mode::kEager,
                           DenseProblem::MinimizerCache::kOnDemand);
  return monte_carlo(dense, trials, base_seed, run_trial);
}

MonteCarloReport monte_carlo(
    const DenseProblem& dense, int trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& run_trial,
    const rs::engine::SolverEngine* engine) {
  if (trials < 1) throw std::invalid_argument("monte_carlo: trials < 1");
  if (!run_trial) throw std::invalid_argument("monte_carlo: null trial");
  if (dense.mode() != DenseProblem::Mode::kEager) {
    // Lazy tables materialize rows on first touch and are not thread-safe;
    // trials run concurrently.
    throw std::invalid_argument("monte_carlo: dense table must be eager");
  }

  MonteCarloReport report;
  report.optimal_cost = rs::offline::DpSolver().solve_cost(dense);

  std::vector<double> costs(static_cast<std::size_t>(trials));
  const rs::engine::SolverEngine default_engine;
  const rs::engine::SolverEngine& batch_engine =
      engine != nullptr ? *engine : default_engine;
  batch_engine.for_each(
      static_cast<std::size_t>(trials),
      [&costs, &run_trial, base_seed](std::size_t trial) {
        costs[trial] = run_trial(base_seed + trial);
      },
      &report.batch);

  report.cost = rs::util::summarize(costs);
  if (report.optimal_cost > 0.0) {
    std::vector<double> ratios(costs.size());
    for (std::size_t i = 0; i < costs.size(); ++i) {
      ratios[i] = costs[i] / report.optimal_cost;
    }
    report.ratio = rs::util::summarize(ratios);
  }
  return report;
}

MonteCarloReport monte_carlo_randomized_rounding(const rs::core::Problem& p,
                                                 int trials,
                                                 std::uint64_t base_seed) {
  // One rows-only dense table for the whole run: OPT reads it, and every
  // trial scores its schedule against it through the dense total_cost overload
  // (bit-identical to the per-point path, without T virtual calls and
  // bounds checks per trial).  The online replay itself still reveals the
  // cost functions one slot at a time through the Problem, as the online
  // contract requires.
  const DenseProblem dense(p, DenseProblem::Mode::kEager,
                           DenseProblem::MinimizerCache::kOnDemand);
  return monte_carlo(dense, trials, base_seed,
                     [&p, &dense](std::uint64_t seed) {
                       rs::online::RandomizedRounding algorithm(seed);
                       const rs::core::Schedule x =
                           rs::online::run_online(algorithm, p);
                       return rs::core::total_cost(dense, x);
                     });
}

}  // namespace rs::analysis
