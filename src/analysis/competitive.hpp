// Competitive-ratio measurement harness: replays an online algorithm
// against an instance and compares with the exact offline optimum.
//
// The plain overloads stream with O(m) scratch (right for one-shot
// measurements); ensemble consumers — sweeps, adversary search — build one
// immutable DenseProblem per instance and use the dense overloads so
// repeated measurements on one instance share its rows.
#pragma once

#include <string>

#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "online/online_algorithm.hpp"

namespace rs::analysis {

struct RatioReport {
  std::string algorithm;
  double algorithm_cost = 0.0;
  double optimal_cost = 0.0;
  double ratio = 0.0;
  double operating_cost = 0.0;   // algorithm's operating component
  double switching_cost = 0.0;   // algorithm's switching component
};

/// Measures the cost ratio of an integral online algorithm on `p`
/// (optionally with a prediction window).  OPT is the O(T·m) DP.
RatioReport measure_ratio(rs::online::OnlineAlgorithm& algorithm,
                          const rs::core::Problem& p, int window = 0);

/// Same with a caller-shared dense table (must match `p`): the algorithm's
/// schedule is scored and OPT solved from `dense`, so N measurements on one
/// instance materialize its rows once.
RatioReport measure_ratio(rs::online::OnlineAlgorithm& algorithm,
                          const rs::core::Problem& p,
                          const rs::core::DenseProblem& dense, int window = 0);

/// Same for a fractional algorithm; OPT is still the integral optimum,
/// which by Lemma 4 equals the continuous optimum of P̄.
RatioReport measure_ratio(rs::online::FractionalOnlineAlgorithm& algorithm,
                          const rs::core::Problem& p, int window = 0);

/// Fractional variant with a shared dense table (used for OPT; fractional
/// operating costs interpolate through the Problem).
RatioReport measure_ratio(rs::online::FractionalOnlineAlgorithm& algorithm,
                          const rs::core::Problem& p,
                          const rs::core::DenseProblem& dense, int window = 0);

}  // namespace rs::analysis
