#include "analysis/savings.hpp"

#include <memory>
#include <stdexcept>

#include "core/schedule.hpp"
#include "dcsim/datacenter.hpp"
#include "offline/dp_solver.hpp"
#include "online/baselines.hpp"
#include "online/lcp.hpp"

namespace rs::analysis {

SavingsRow evaluate_savings(const rs::dcsim::DataCenterModel& model,
                            const rs::workload::Trace& trace,
                            const std::string& trace_name,
                            double beta_scale) {
  if (!(beta_scale > 0.0)) {
    throw std::invalid_argument("evaluate_savings: beta_scale must be > 0");
  }
  rs::dcsim::DataCenterModel scaled = model;
  scaled.power.transition_joules *= beta_scale;

  const rs::core::Problem p =
      rs::dcsim::restricted_datacenter_problem(scaled, trace);

  SavingsRow row;
  row.trace_name = trace_name;
  row.beta_scale = beta_scale;
  row.peak_to_mean = rs::workload::compute_stats(trace).peak_to_mean;

  row.static_cost = rs::online::best_static_level(p).cost;

  rs::online::Lcp lcp;
  const rs::core::Schedule lcp_schedule = rs::online::run_online(lcp, p);
  row.lcp_cost = rs::core::total_cost(p, lcp_schedule);

  const rs::offline::OfflineResult optimal = rs::offline::DpSolver().solve(p);
  row.optimal_cost = optimal.cost;
  row.lcp_ratio = row.optimal_cost > 0.0 ? row.lcp_cost / row.optimal_cost : 0.0;
  if (row.static_cost > 0.0) {
    row.lcp_savings_percent = 100.0 * (1.0 - row.lcp_cost / row.static_cost);
    row.optimal_savings_percent =
        100.0 * (1.0 - row.optimal_cost / row.static_cost);
  }
  if (optimal.feasible()) {
    row.energy_savings_percent =
        rs::dcsim::energy_savings_percent(scaled, trace, optimal.schedule);
  }
  return row;
}

}  // namespace rs::analysis
