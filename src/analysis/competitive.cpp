#include "analysis/competitive.hpp"

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"

namespace rs::analysis {

using rs::core::DenseProblem;

namespace {

double safe_ratio(double algorithm_cost, double optimal_cost) {
  if (!(optimal_cost > 0.0)) return 0.0;
  return algorithm_cost / optimal_cost;
}

}  // namespace

// The plain-Problem overloads keep the O(m)-memory streaming accounting:
// they serve one-shot measurements, where materializing a T×(m+1) table to
// read it once would trade transient memory for nothing.  Ensemble callers
// (sweeps, adversary search) build one dense table and use the shared
// overloads below.

RatioReport measure_ratio(rs::online::OnlineAlgorithm& algorithm,
                          const rs::core::Problem& p, int window) {
  RatioReport report;
  report.algorithm = algorithm.name();
  const rs::core::Schedule x = rs::online::run_online(algorithm, p, window);
  report.operating_cost = rs::core::operating_cost(p, x);
  report.switching_cost = rs::core::switching_cost_up(p, x);
  report.algorithm_cost = report.operating_cost + report.switching_cost;
  report.optimal_cost = rs::offline::DpSolver().solve_cost(p);
  report.ratio = safe_ratio(report.algorithm_cost, report.optimal_cost);
  return report;
}

RatioReport measure_ratio(rs::online::OnlineAlgorithm& algorithm,
                          const rs::core::Problem& p,
                          const DenseProblem& dense, int window) {
  RatioReport report;
  report.algorithm = algorithm.name();
  const rs::core::Schedule x = rs::online::run_online(algorithm, p, window);
  report.operating_cost = rs::core::operating_cost(dense, x);
  report.switching_cost = rs::core::switching_cost_up(dense, x);
  report.algorithm_cost = report.operating_cost + report.switching_cost;
  report.optimal_cost = rs::offline::DpSolver().solve_cost(dense);
  report.ratio = safe_ratio(report.algorithm_cost, report.optimal_cost);
  return report;
}

RatioReport measure_ratio(rs::online::FractionalOnlineAlgorithm& algorithm,
                          const rs::core::Problem& p, int window) {
  RatioReport report;
  report.algorithm = algorithm.name();
  const rs::core::FractionalSchedule x =
      rs::online::run_online(algorithm, p, window);
  report.operating_cost = rs::core::operating_cost(p, x);
  report.switching_cost = rs::core::switching_cost_up(p, x);
  report.algorithm_cost = report.operating_cost + report.switching_cost;
  report.optimal_cost = rs::offline::DpSolver().solve_cost(p);
  report.ratio = safe_ratio(report.algorithm_cost, report.optimal_cost);
  return report;
}

RatioReport measure_ratio(rs::online::FractionalOnlineAlgorithm& algorithm,
                          const rs::core::Problem& p,
                          const DenseProblem& dense, int window) {
  RatioReport report;
  report.algorithm = algorithm.name();
  const rs::core::FractionalSchedule x =
      rs::online::run_online(algorithm, p, window);
  // Fractional states interpolate between integer values (paper eq. 3), so
  // the operating sum goes through the Problem; OPT shares the table.
  report.operating_cost = rs::core::operating_cost(p, x);
  report.switching_cost = rs::core::switching_cost_up(p, x);
  report.algorithm_cost = report.operating_cost + report.switching_cost;
  report.optimal_cost = rs::offline::DpSolver().solve_cost(dense);
  report.ratio = safe_ratio(report.algorithm_cost, report.optimal_cost);
  return report;
}

}  // namespace rs::analysis
