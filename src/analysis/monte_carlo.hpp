// Parallel Monte-Carlo evaluation of randomized online algorithms.
//
// Trials run through the batch engine (SolverEngine::for_each) with
// independent, deterministic seeds (base_seed + trial index), so results
// are reproducible regardless of scheduling.  The instance is materialized
// into one shared DenseProblem up front: OPT and every trial's cost
// accounting read the same immutable table instead of re-walking the
// virtual per-point path per trial.
#pragma once

#include <cstdint>
#include <functional>

#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "engine/solver_engine.hpp"
#include "util/math_util.hpp"

namespace rs::analysis {

struct MonteCarloReport {
  rs::util::SampleStats cost;
  rs::util::SampleStats ratio;   // per-trial cost / OPT
  double optimal_cost = 0.0;
  rs::engine::BatchStats batch;  // throughput of the trial batch
};

/// Runs `trials` independent replays of a seed-constructed randomized
/// algorithm on `p` and summarizes total cost and ratio.  `run_trial` must
/// build and run one trial: given a seed, return the trial's total cost.
/// Builds one DenseProblem for OPT; trial closures that score schedules
/// should prefer the overload below and the dense total_cost overloads.
MonteCarloReport monte_carlo(
    const rs::core::Problem& p, int trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& run_trial);

/// Same over a pre-materialized instance shared with the caller's own
/// accounting (must be eager: trials run concurrently).  `engine` defaults
/// to a global-pool engine when null.
MonteCarloReport monte_carlo(
    const rs::core::DenseProblem& dense, int trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& run_trial,
    const rs::engine::SolverEngine* engine = nullptr);

/// Convenience: Monte Carlo of the Theorem-3 randomized rounding algorithm.
/// One dense table serves OPT and all trial scorings.
MonteCarloReport monte_carlo_randomized_rounding(const rs::core::Problem& p,
                                                 int trials,
                                                 std::uint64_t base_seed);

}  // namespace rs::analysis
