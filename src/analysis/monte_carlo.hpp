// Parallel Monte-Carlo evaluation of randomized online algorithms.
//
// Trials run on the global thread pool with independent, deterministic
// seeds (base_seed + trial index), so results are reproducible regardless
// of scheduling.
#pragma once

#include <cstdint>
#include <functional>

#include "core/problem.hpp"
#include "util/math_util.hpp"

namespace rs::analysis {

struct MonteCarloReport {
  rs::util::SampleStats cost;
  rs::util::SampleStats ratio;   // per-trial cost / OPT
  double optimal_cost = 0.0;
};

/// Runs `trials` independent replays of a seed-constructed randomized
/// algorithm on `p` and summarizes total cost and ratio.  `make_run` must
/// build and run one trial: given a seed, return the trial's total cost.
MonteCarloReport monte_carlo(
    const rs::core::Problem& p, int trials, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& run_trial);

/// Convenience: Monte Carlo of the Theorem-3 randomized rounding algorithm.
MonteCarloReport monte_carlo_randomized_rounding(const rs::core::Problem& p,
                                                 int trials,
                                                 std::uint64_t base_seed);

}  // namespace rs::analysis
