// The E10 trace study: cost of right-sizing policies versus static
// provisioning on a workload trace, in the style of Lin et al.'s
// experimental section (which the paper's introduction builds on).
#pragma once

#include <string>

#include "dcsim/cost_model.hpp"
#include "workload/trace.hpp"

namespace rs::analysis {

struct SavingsRow {
  std::string trace_name;
  double beta_scale = 1.0;       // multiplier on the model's β
  double peak_to_mean = 0.0;
  double static_cost = 0.0;      // best single provisioning level
  double lcp_cost = 0.0;         // online LCP
  double optimal_cost = 0.0;     // offline optimum
  double lcp_ratio = 0.0;        // lcp / optimal
  double lcp_savings_percent = 0.0;      // vs. static, objective units
  double optimal_savings_percent = 0.0;  // vs. static
  double energy_savings_percent = 0.0;   // physical energy, OPT vs all-on
};

/// Evaluates static / LCP / OPT on the restricted-model instance built from
/// `trace` with the switching cost scaled by `beta_scale`.
SavingsRow evaluate_savings(const rs::dcsim::DataCenterModel& model,
                            const rs::workload::Trace& trace,
                            const std::string& trace_name,
                            double beta_scale = 1.0);

}  // namespace rs::analysis
