// Generic parameter-sweep driver with parallel execution and CSV export.
//
// Experiments across this repository share one shape: a grid of named
// parameter points, one (expensive, independent) evaluation per point, and
// a row of named metrics per evaluation.  SweepRunner runs the grid on the
// global thread pool deterministically (results are ordered by point index,
// not completion order) and renders the result as an aligned table or CSV
// artifact.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "engine/solver_engine.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace rs::analysis {

/// One grid point: ordered (name, value) pairs — order defines the column
/// order of the parameter block.
using SweepPoint = std::vector<std::pair<std::string, std::string>>;

/// One result row: ordered (metric, value) pairs.
using SweepRow = std::vector<std::pair<std::string, double>>;

class SweepRunner {
 public:
  /// `evaluate` maps a grid point index to its metric row; it must be
  /// thread-safe across distinct indices.
  SweepRunner(std::vector<SweepPoint> points,
              std::function<SweepRow(std::size_t)> evaluate);

  /// Runs all points (in parallel on the global pool) and stores the rows.
  /// Idempotent.
  void run(bool parallel = true);

  /// Runs all points through a caller-configured batch engine (thread
  /// count, dedicated pool); grid throughput lands in stats().
  void run(const rs::engine::SolverEngine& engine);

  bool finished() const noexcept { return finished_; }
  std::size_t size() const noexcept { return points_.size(); }
  const std::vector<SweepRow>& rows() const;

  /// Batch stats of the completed run: points/sec, wall time, thread
  /// count, workspace-growth delta.
  const rs::engine::BatchStats& stats() const;

  /// Column-aligned text table of parameters + metrics.
  rs::util::TextTable to_table(int precision = 4) const;

  /// CSV artifact with one column per parameter and metric.
  rs::util::CsvTable to_csv(int precision = 6) const;

 private:
  void require_finished() const;

  std::vector<SweepPoint> points_;
  std::function<SweepRow(std::size_t)> evaluate_;
  std::vector<SweepRow> rows_;
  rs::engine::BatchStats stats_;
  bool finished_ = false;
};

/// Cartesian product helper: expands named axes into grid points, last axis
/// fastest (row-major).
std::vector<SweepPoint> grid(
    const std::vector<std::pair<std::string, std::vector<std::string>>>& axes);

}  // namespace rs::analysis
