// Solvers for the heterogeneous problem.
#pragma once

#include "core/problem.hpp"
#include "dcsim/cost_model.hpp"
#include "hetero/hetero_problem.hpp"
#include "workload/trace.hpp"

namespace rs::hetero {

struct HeteroResult {
  HeteroSchedule schedule;
  double cost = rs::util::kInf;
  bool feasible() const noexcept { return std::isfinite(cost); }
};

/// Exact optimum by dynamic programming over the product state space:
/// O(T · S²) with S = Π(m_i + 1).  Intended for small type counts and
/// capacities — the regime where heterogeneity trade-offs are studied.
HeteroResult solve_hetero_dp(const HeteroProblem& p);

/// Exact optimum for *separable* instances (every slot cost a
/// SeparableHeteroCost): the problem decomposes into d independent
/// homogeneous problems solved with the core O(T·m_i) DP.  Throws if any
/// slot is not separable.
HeteroResult solve_separable(const HeteroProblem& p);

// ---------------------------------------------------------------------------
// Instance builder: two server classes serving a shared workload
// ---------------------------------------------------------------------------

/// A heterogeneous data center with per-type restricted-model cost curves;
/// the slot cost of a joint state is the *optimal split* of the arriving
/// workload across the active servers of each type:
///
///   f_t(x⃗) = min_{λ_1 + λ_2 = λ_t} Σ_i cost_i(x_i, λ_i)
///
/// computed by ternary search over the (convex in the split) inner problem.
struct TwoTypeModel {
  rs::dcsim::DataCenterModel type_a;  // e.g. fast, power-hungry
  rs::dcsim::DataCenterModel type_b;  // e.g. slow, efficient
};

HeteroProblem two_type_problem(const TwoTypeModel& model,
                               const rs::workload::Trace& trace);

}  // namespace rs::hetero
