#include "hetero/hetero_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "offline/dp_solver.hpp"
#include "util/math_util.hpp"

namespace rs::hetero {

using rs::util::kInf;

HeteroResult solve_hetero_dp(const HeteroProblem& p) {
  const HeteroConfig& config = p.config();
  const std::vector<HeteroState> states = enumerate_states(config);
  const std::size_t S = states.size();
  const int T = p.horizon();
  const int d = config.types();

  HeteroResult result;
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }

  // Switching cost between two joint states (power-up only, per type).
  auto switch_cost = [&](const HeteroState& from, const HeteroState& to) {
    double cost = 0.0;
    for (int i = 0; i < d; ++i) {
      // rs-lint: minmax-ok (int server-count delta, not a label fold)
      cost += config.beta[static_cast<std::size_t>(i)] *
              static_cast<double>(std::max(
                  0, to[static_cast<std::size_t>(i)] -
                         from[static_cast<std::size_t>(i)]));
    }
    return cost;
  };

  std::vector<double> labels(S, kInf);
  labels[0] = 0.0;  // states[0] is the all-zero state (lexicographic)
  std::vector<std::vector<std::int32_t>> parents(
      static_cast<std::size_t>(T), std::vector<std::int32_t>(S, -1));
  std::vector<double> next(S);

  for (int t = 1; t <= T; ++t) {
    for (std::size_t j = 0; j < S; ++j) {
      const double f = p.f(t).at(states[j]);
      if (std::isinf(f)) {
        next[j] = kInf;
        continue;
      }
      double best = kInf;
      std::int32_t best_parent = -1;
      for (std::size_t i = 0; i < S; ++i) {
        if (std::isinf(labels[i])) continue;
        const double candidate = labels[i] + switch_cost(states[i], states[j]);
        if (candidate < best) {
          best = candidate;
          best_parent = static_cast<std::int32_t>(i);
        }
      }
      next[j] = std::isinf(best) ? kInf : best + f;
      parents[static_cast<std::size_t>(t - 1)][j] = best_parent;
    }
    labels.swap(next);
  }

  std::size_t best_final = 0;
  for (std::size_t j = 1; j < S; ++j) {
    if (labels[j] < labels[best_final]) best_final = j;
  }
  result.cost = labels[best_final];
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), HeteroState{});
  std::int32_t index = static_cast<std::int32_t>(best_final);
  for (int t = T; t >= 1; --t) {
    result.schedule[static_cast<std::size_t>(t - 1)] =
        states[static_cast<std::size_t>(index)];
    index = parents[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(index)];
  }
  return result;
}

HeteroResult solve_separable(const HeteroProblem& p) {
  const HeteroConfig& config = p.config();
  const int d = config.types();
  const int T = p.horizon();

  // Split into d homogeneous problems.
  std::vector<std::vector<rs::core::CostPtr>> per_type(
      static_cast<std::size_t>(d));
  for (int t = 1; t <= T; ++t) {
    const auto* separable = dynamic_cast<const SeparableHeteroCost*>(&p.f(t));
    if (separable == nullptr ||
        static_cast<int>(separable->parts().size()) != d) {
      throw std::invalid_argument("solve_separable: non-separable slot cost");
    }
    for (int i = 0; i < d; ++i) {
      per_type[static_cast<std::size_t>(i)].push_back(
          separable->parts()[static_cast<std::size_t>(i)]);
    }
  }

  HeteroResult result;
  result.schedule.assign(static_cast<std::size_t>(T),
                         HeteroState(static_cast<std::size_t>(d), 0));
  result.cost = 0.0;
  const rs::offline::DpSolver dp;
  for (int i = 0; i < d; ++i) {
    const rs::core::Problem sub(config.capacity[static_cast<std::size_t>(i)],
                                config.beta[static_cast<std::size_t>(i)],
                                std::move(per_type[static_cast<std::size_t>(i)]));
    const rs::offline::OfflineResult sub_result = dp.solve(sub);
    if (!sub_result.feasible()) {
      result.cost = kInf;
      result.schedule.clear();
      return result;
    }
    result.cost += sub_result.cost;
    for (int t = 0; t < T; ++t) {
      result.schedule[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
          sub_result.schedule[static_cast<std::size_t>(t)];
    }
  }
  return result;
}

HeteroProblem two_type_problem(const TwoTypeModel& model,
                               const rs::workload::Trace& trace) {
  model.type_a.validate();
  model.type_b.validate();
  const rs::core::RestrictedModel cost_a =
      rs::dcsim::restricted_model(model.type_a);
  const rs::core::RestrictedModel cost_b =
      rs::dcsim::restricted_model(model.type_b);

  HeteroConfig config;
  config.capacity = {model.type_a.servers, model.type_b.servers};
  config.beta = {model.type_a.beta(), model.type_b.beta()};

  // Per-type slot cost at x servers carrying workload λ: x·f_i(λ/x).
  auto type_cost = [](const rs::core::RestrictedModel& m_i, int x,
                      double lambda) -> double {
    if (lambda < 0.0) return kInf;
    // rs-lint: float-eq-ok (exact zero-workload sentinel)
    if (lambda == 0.0) return x == 0 ? 0.0 : x * m_i.per_server_cost(0.0);
    if (x == 0) return kInf;
    return x * m_i.per_server_cost(lambda / x);
  };

  std::vector<HeteroCostPtr> fs;
  fs.reserve(trace.lambda.size());
  for (double lambda : trace.lambda) {
    fs.push_back(std::make_shared<FunctionHeteroCost>(
        [cost_a, cost_b, type_cost, lambda](const HeteroState& x) -> double {
          if (x.size() != 2) {
            throw std::invalid_argument("two_type cost: need 2 types");
          }
          // Inner problem: split λ between the types; convex in the split,
          // solved by ternary search.
          auto split_cost = [&](double lambda_a) {
            const double a = type_cost(cost_a, x[0], lambda_a);
            if (std::isinf(a)) return kInf;
            const double b = type_cost(cost_b, x[1], lambda - lambda_a);
            if (std::isinf(b)) return kInf;
            return a + b;
          };
          double lo = 0.0;
          double hi = lambda;
          for (int iter = 0; iter < 80; ++iter) {
            const double l1 = lo + (hi - lo) / 3.0;
            const double l2 = hi - (hi - lo) / 3.0;
            const double c1 = split_cost(l1);
            const double c2 = split_cost(l2);
            if (c1 <= c2) {
              hi = l2;
            } else {
              lo = l1;
            }
          }
          const double mid = 0.5 * (lo + hi);
          double best = std::min({split_cost(mid), split_cost(0.0),
                                  split_cost(lambda)});
          return best;
        },
        "two_type_split"));
  }
  return HeteroProblem(std::move(config), std::move(fs));
}

}  // namespace rs::hetero
