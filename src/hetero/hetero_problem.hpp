// Heterogeneous data centers: d server types (the paper's concluding
// future-work direction, studied by the same authors in the follow-up
// "Algorithms for Right-Sizing Heterogeneous Data Centers").
//
// State: a vector x⃗_t = (x_1,..,x_d) with 0 <= x_i <= m_i; objective
//
//   Σ_t f_t(x⃗_t) + Σ_t Σ_i β_i (x_{i,t} − x_{i,t−1})⁺ ,  x⃗_0 = x⃗_{T+1} = 0.
//
// Costs f_t are arbitrary non-negative functions of the joint state (the
// canonical instance is the optimal workload split across types, which is
// jointly convex when the per-type costs are convex).  This module provides
// the exact product-state DP (practical for small d·m — the regime where
// heterogeneity questions are interesting), a separable-cost decomposition
// that reduces to d independent homogeneous problems, and instance
// builders.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace rs::hetero {

/// Joint state: active servers per type.
using HeteroState = std::vector<int>;

/// Joint operating-cost function of one slot.
class HeteroCost {
 public:
  virtual ~HeteroCost() = default;
  /// Cost of the joint state; +inf marks infeasible states.
  virtual double at(const HeteroState& x) const = 0;
  virtual std::string name() const { return "hetero_cost"; }
};

using HeteroCostPtr = std::shared_ptr<const HeteroCost>;

/// Separable joint cost: Σ_i g_i(x_i).
class SeparableHeteroCost final : public HeteroCost {
 public:
  explicit SeparableHeteroCost(std::vector<rs::core::CostPtr> parts);
  double at(const HeteroState& x) const override;
  std::string name() const override { return "separable"; }
  const std::vector<rs::core::CostPtr>& parts() const { return parts_; }

 private:
  std::vector<rs::core::CostPtr> parts_;
};

/// Joint cost from a callable.
class FunctionHeteroCost final : public HeteroCost {
 public:
  explicit FunctionHeteroCost(std::function<double(const HeteroState&)> fn,
                              std::string label = "function");
  double at(const HeteroState& x) const override;
  std::string name() const override { return label_; }

 private:
  std::function<double(const HeteroState&)> fn_;
  std::string label_;
};

struct HeteroConfig {
  std::vector<int> capacity;   // m_i per type
  std::vector<double> beta;    // β_i per type

  int types() const noexcept { return static_cast<int>(capacity.size()); }
  void validate() const;
  /// Number of joint states Π (m_i + 1).
  std::int64_t state_count() const;
};

class HeteroProblem {
 public:
  HeteroProblem(HeteroConfig config, std::vector<HeteroCostPtr> functions);

  int horizon() const noexcept { return static_cast<int>(functions_.size()); }
  const HeteroConfig& config() const noexcept { return config_; }
  const HeteroCost& f(int t) const;

 private:
  HeteroConfig config_;
  std::vector<HeteroCostPtr> functions_;
};

/// Joint schedule; index t-1 holds x⃗_t.
using HeteroSchedule = std::vector<HeteroState>;

/// Objective value (operating + per-type power-up switching).
double hetero_total_cost(const HeteroProblem& p, const HeteroSchedule& x);

/// Enumerates all joint states of a configuration in lexicographic order.
std::vector<HeteroState> enumerate_states(const HeteroConfig& config);

}  // namespace rs::hetero
