#include "hetero/hetero_problem.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::hetero {

SeparableHeteroCost::SeparableHeteroCost(std::vector<rs::core::CostPtr> parts)
    : parts_(std::move(parts)) {
  if (parts_.empty()) {
    throw std::invalid_argument("SeparableHeteroCost: no parts");
  }
  for (const rs::core::CostPtr& part : parts_) {
    if (!part) throw std::invalid_argument("SeparableHeteroCost: null part");
  }
}

double SeparableHeteroCost::at(const HeteroState& x) const {
  if (x.size() != parts_.size()) {
    throw std::invalid_argument("SeparableHeteroCost: arity mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    const double v = parts_[i]->at(x[i]);
    if (std::isinf(v)) return v;
    sum += v;
  }
  return sum;
}

FunctionHeteroCost::FunctionHeteroCost(
    std::function<double(const HeteroState&)> fn, std::string label)
    : fn_(std::move(fn)), label_(std::move(label)) {
  if (!fn_) throw std::invalid_argument("FunctionHeteroCost: null callable");
}

double FunctionHeteroCost::at(const HeteroState& x) const { return fn_(x); }

void HeteroConfig::validate() const {
  if (capacity.empty() || capacity.size() != beta.size()) {
    throw std::invalid_argument("HeteroConfig: capacity/beta arity mismatch");
  }
  for (int m : capacity) {
    if (m < 0) throw std::invalid_argument("HeteroConfig: negative capacity");
  }
  for (double b : beta) {
    if (!(b > 0.0)) throw std::invalid_argument("HeteroConfig: beta <= 0");
  }
}

std::int64_t HeteroConfig::state_count() const {
  std::int64_t count = 1;
  for (int m : capacity) {
    count *= static_cast<std::int64_t>(m) + 1;
    if (count > (1ll << 40)) {
      throw std::overflow_error("HeteroConfig: state space too large");
    }
  }
  return count;
}

HeteroProblem::HeteroProblem(HeteroConfig config,
                             std::vector<HeteroCostPtr> functions)
    : config_(std::move(config)), functions_(std::move(functions)) {
  config_.validate();
  for (const HeteroCostPtr& f : functions_) {
    if (!f) throw std::invalid_argument("HeteroProblem: null cost");
  }
}

const HeteroCost& HeteroProblem::f(int t) const {
  if (t < 1 || t > horizon()) {
    throw std::out_of_range("HeteroProblem::f: t out of [1, T]");
  }
  return *functions_[static_cast<std::size_t>(t - 1)];
}

double hetero_total_cost(const HeteroProblem& p, const HeteroSchedule& x) {
  if (static_cast<int>(x.size()) != p.horizon()) {
    throw std::invalid_argument("hetero_total_cost: length mismatch");
  }
  const int d = p.config().types();
  rs::util::KahanSum sum;
  HeteroState previous(static_cast<std::size_t>(d), 0);
  for (int t = 1; t <= p.horizon(); ++t) {
    const HeteroState& current = x[static_cast<std::size_t>(t - 1)];
    if (static_cast<int>(current.size()) != d) {
      throw std::invalid_argument("hetero_total_cost: state arity mismatch");
    }
    for (int i = 0; i < d; ++i) {
      const int xi = current[static_cast<std::size_t>(i)];
      if (xi < 0 || xi > p.config().capacity[static_cast<std::size_t>(i)]) {
        throw std::invalid_argument("hetero_total_cost: state out of range");
      }
      sum.add(p.config().beta[static_cast<std::size_t>(i)] *
              static_cast<double>(
                  std::max(0, xi - previous[static_cast<std::size_t>(i)])));
    }
    sum.add(p.f(t).at(current));
    previous = current;
  }
  return sum.value();
}

std::vector<HeteroState> enumerate_states(const HeteroConfig& config) {
  config.validate();
  std::vector<HeteroState> states;
  states.reserve(static_cast<std::size_t>(config.state_count()));
  HeteroState current(config.capacity.size(), 0);
  for (;;) {
    states.push_back(current);
    int position = static_cast<int>(current.size()) - 1;
    while (position >= 0) {
      if (current[static_cast<std::size_t>(position)] <
          config.capacity[static_cast<std::size_t>(position)]) {
        ++current[static_cast<std::size_t>(position)];
        break;
      }
      current[static_cast<std::size_t>(position)] = 0;
      --position;
    }
    if (position < 0) break;
  }
  return states;
}

}  // namespace rs::hetero
