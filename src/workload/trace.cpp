#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/math_util.hpp"

namespace rs::workload {

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  if (trace.lambda.empty()) return stats;
  rs::util::KahanSum sum;
  stats.peak = -rs::util::kInf;
  stats.valley = rs::util::kInf;
  for (double value : trace.lambda) {
    sum.add(value);
    stats.peak = std::max(stats.peak, value);
    stats.valley = std::min(stats.valley, value);
  }
  stats.mean = sum.value() / static_cast<double>(trace.lambda.size());
  rs::util::KahanSum squares;
  for (double value : trace.lambda) {
    const double d = value - stats.mean;
    squares.add(d * d);
  }
  stats.stddev =
      std::sqrt(squares.value() / static_cast<double>(trace.lambda.size()));
  stats.peak_to_mean = stats.mean > 0.0 ? stats.peak / stats.mean : 0.0;
  return stats;
}

double autocorrelation(const Trace& trace, int lag) {
  if (lag < 0) throw std::invalid_argument("autocorrelation: lag < 0");
  const int n = trace.horizon();
  if (n <= lag + 1) return 0.0;
  const TraceStats stats = compute_stats(trace);
  // rs-lint: float-eq-ok (exact constant-trace sentinel; guards div by 0)
  if (stats.stddev == 0.0) return 0.0;
  rs::util::KahanSum cov;
  for (int t = 0; t + lag < n; ++t) {
    cov.add((trace.lambda[static_cast<std::size_t>(t)] - stats.mean) *
            (trace.lambda[static_cast<std::size_t>(t + lag)] - stats.mean));
  }
  return cov.value() /
         (static_cast<double>(n - lag) * stats.stddev * stats.stddev);
}

Trace rescale_peak(const Trace& trace, double new_peak) {
  // !(x >= 0) instead of (x < 0): NaN fails every ordered comparison, so a
  // plain negativity test would silently accept it and poison the trace.
  if (!(new_peak >= 0.0)) {
    throw std::invalid_argument("rescale_peak: new peak must be >= 0");
  }
  const TraceStats stats = compute_stats(trace);
  Trace out = trace;
  if (stats.peak <= 0.0) return out;
  const double factor = new_peak / stats.peak;
  for (double& value : out.lambda) value *= factor;
  return out;
}

void write_trace_csv(const Trace& trace, const std::string& path) {
  for (double value : trace.lambda) {
    if (!std::isfinite(value) || value < 0.0) {
      throw std::invalid_argument(
          "write_trace_csv: workload values must be finite and >= 0");
    }
  }
  rs::util::CsvTable table;
  table.header = {"lambda"};
  table.rows.reserve(trace.lambda.size());
  // %.17g (max_digits10 for double) so read_trace_csv recovers every value
  // bit-exactly; std::to_string's fixed 6 decimals silently truncated.
  char buffer[40];
  for (double value : trace.lambda) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    table.rows.push_back({buffer});
  }
  rs::util::csv_write_file(path, table);
}

Trace read_trace_csv(const std::string& path) {
  const rs::util::CsvTable table = rs::util::csv_read_file(path, true);
  Trace trace;
  trace.lambda.reserve(table.rows.size());
  for (const rs::util::CsvRow& row : table.rows) {
    if (row.empty()) continue;
    double value = 0.0;
    try {
      std::size_t consumed = 0;
      value = std::stod(row[0], &consumed);
      if (consumed != row[0].size()) {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::exception&) {
      throw std::runtime_error("read_trace_csv: malformed workload value '" +
                               row[0] + "'");
    }
    // NaN passes `value < 0.0` (every ordered comparison is false) and +inf
    // passes it too; both are outside the λ_t >= 0 finite contract.
    if (!std::isfinite(value) || value < 0.0) {
      throw std::runtime_error(
          "read_trace_csv: workload values must be finite and >= 0, got '" +
          row[0] + "'");
    }
    trace.lambda.push_back(value);
  }
  return trace;
}

}  // namespace rs::workload
