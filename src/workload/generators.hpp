// Synthetic arrival-trace generators.
//
// hotmail_like() and msr_like() are the documented stand-ins for the two
// proprietary real-world traces of Lin et al.'s experimental study (see
// DESIGN.md §3): they reproduce the published shape statistics — a strong
// diurnal cycle with peak-to-mean ≈ 2 and pronounced overnight valleys for
// the Hotmail-like trace; a noisier, burstier profile with peak-to-mean ≈ 4
// for the MSR-cluster-like trace.  The remaining generators cover standard
// workload shapes for tests and sweeps.
#pragma once

#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace rs::workload {

struct DiurnalParams {
  int horizon = 288;        // slots (e.g. 5-minute slots for a day = 288)
  int period = 144;         // slots per day cycle
  double base = 0.3;        // valley level as a fraction of peak
  double peak = 1.0;        // peak arrival rate
  double noise = 0.02;      // multiplicative Gaussian noise stddev
};
Trace diurnal(rs::util::Rng& rng, const DiurnalParams& params);

struct Mmpp2Params {
  int horizon = 1000;
  double rate_low = 0.2;
  double rate_high = 1.0;
  double p_low_to_high = 0.05;
  double p_high_to_low = 0.2;
  double jitter = 0.05;     // within-state multiplicative jitter
};
Trace mmpp2(rs::util::Rng& rng, const Mmpp2Params& params);

struct SpikeParams {
  int horizon = 500;
  double baseline = 0.2;
  double spike_height = 1.0;
  double spike_probability = 0.02;
  int spike_duration = 3;
};
Trace spikes(rs::util::Rng& rng, const SpikeParams& params);

struct RandomWalkParams {
  int horizon = 500;
  double start = 0.5;
  double step = 0.05;
  double floor = 0.0;
  double ceiling = 1.0;
};
Trace bounded_random_walk(rs::util::Rng& rng, const RandomWalkParams& params);

/// Hotmail-like stand-in: smooth diurnal, peak-to-mean ≈ 2, deep overnight
/// valleys, mild noise.  `days` day cycles at `slots_per_day` resolution;
/// peak rate `peak`.
Trace hotmail_like(rs::util::Rng& rng, int days = 7, int slots_per_day = 144,
                   double peak = 1.0);

/// MSR-cluster-like stand-in: weaker diurnal component plus heavy bursts,
/// peak-to-mean ≈ 4.
Trace msr_like(rs::util::Rng& rng, int days = 7, int slots_per_day = 144,
               double peak = 1.0);

}  // namespace rs::workload
