// Random convex problem instances for property tests and sweeps.
//
// Families cover the shapes the paper's algorithms are exercised on:
// arbitrary convex tables (adversarially unstructured), quadratic "tracking"
// costs with drifting centers (diurnal-like), affine-abs (the lower-bound ϕ
// family), costs with infeasible prefixes (restricted-model-like hard
// constraints), and piecewise-flat costs with large flat minimizer regions
// (stress for tie-breaking).
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"
#include "util/rng.hpp"

namespace rs::workload {

enum class InstanceFamily {
  kConvexTable,      // random non-decreasing slopes
  kQuadratic,        // a(x-c)^2 with drifting center
  kAffineAbs,        // ε|x-c| functions
  kConstrained,      // convex table with +inf prefix (hard lower bounds)
  kFlatRegions,      // convex with wide flat minima (tie-break stress)
  kCapacityCapped,   // convex table with +inf suffix (hard capacity caps)
};

/// All families, for parameterized sweeps.
const std::vector<InstanceFamily>& all_instance_families();
std::string family_name(InstanceFamily family);

/// Draws a T-slot instance with m servers and the given beta.  Costs are
/// convex, non-negative, finite except for kConstrained prefixes, and O(m)
/// in magnitude.
rs::core::Problem random_instance(rs::util::Rng& rng, InstanceFamily family,
                                  int T, int m, double beta);

/// Convex cost table on {0,..,m} with random non-decreasing slopes; minimum
/// value shifted to land in [0, 2].
std::vector<double> random_convex_table(rs::util::Rng& rng, int m);

}  // namespace rs::workload
