#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::workload {

using rs::util::Rng;

namespace {

constexpr double kPi = 3.14159265358979323846;

double clamp_non_negative(double value) { return value < 0.0 ? 0.0 : value; }

void check_horizon(int horizon, const char* where) {
  if (horizon < 0) {
    throw std::invalid_argument(std::string(where) + ": negative horizon");
  }
}

}  // namespace

Trace diurnal(Rng& rng, const DiurnalParams& params) {
  check_horizon(params.horizon, "diurnal");
  if (params.period < 1) throw std::invalid_argument("diurnal: period < 1");
  if (params.base < 0.0 || params.base > 1.0) {
    throw std::invalid_argument("diurnal: base must be in [0, 1]");
  }
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  for (int t = 0; t < params.horizon; ++t) {
    const double phase = 2.0 * kPi * static_cast<double>(t) / params.period;
    // Sinusoid raised to sit between base·peak and peak.
    const double wave = 0.5 * (1.0 - std::cos(phase));  // 0 at valley, 1 peak
    double value = params.peak * (params.base + (1.0 - params.base) * wave);
    value *= 1.0 + rng.normal(0.0, params.noise);
    trace.lambda.push_back(clamp_non_negative(value));
  }
  return trace;
}

Trace mmpp2(Rng& rng, const Mmpp2Params& params) {
  check_horizon(params.horizon, "mmpp2");
  if (params.p_low_to_high < 0.0 || params.p_low_to_high > 1.0 ||
      params.p_high_to_low < 0.0 || params.p_high_to_low > 1.0) {
    throw std::invalid_argument("mmpp2: transition probabilities in [0,1]");
  }
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  bool high = false;
  for (int t = 0; t < params.horizon; ++t) {
    if (high) {
      if (rng.bernoulli(params.p_high_to_low)) high = false;
    } else {
      if (rng.bernoulli(params.p_low_to_high)) high = true;
    }
    const double rate = high ? params.rate_high : params.rate_low;
    const double value = rate * (1.0 + rng.normal(0.0, params.jitter));
    trace.lambda.push_back(clamp_non_negative(value));
  }
  return trace;
}

Trace spikes(Rng& rng, const SpikeParams& params) {
  check_horizon(params.horizon, "spikes");
  if (params.spike_duration < 1) {
    throw std::invalid_argument("spikes: duration < 1");
  }
  Trace trace;
  trace.lambda.assign(static_cast<std::size_t>(params.horizon),
                      params.baseline);
  for (int t = 0; t < params.horizon; ++t) {
    if (rng.bernoulli(params.spike_probability)) {
      for (int u = t; u < std::min(params.horizon, t + params.spike_duration);
           ++u) {
        trace.lambda[static_cast<std::size_t>(u)] = params.spike_height;
      }
    }
  }
  return trace;
}

Trace bounded_random_walk(Rng& rng, const RandomWalkParams& params) {
  check_horizon(params.horizon, "bounded_random_walk");
  if (params.floor > params.ceiling) {
    throw std::invalid_argument("bounded_random_walk: floor > ceiling");
  }
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  double value = rs::util::project(params.start, params.floor, params.ceiling);
  for (int t = 0; t < params.horizon; ++t) {
    value += rng.uniform(-params.step, params.step);
    value = rs::util::project(value, params.floor, params.ceiling);
    trace.lambda.push_back(value);
  }
  return trace;
}

Trace hotmail_like(Rng& rng, int days, int slots_per_day, double peak) {
  if (days < 1 || slots_per_day < 2) {
    throw std::invalid_argument("hotmail_like: need days >= 1, slots >= 2");
  }
  // Smooth diurnal with a deep overnight valley (base ≈ 0.25·peak gives
  // peak-to-mean ≈ 2 for a raised cosine), small daily amplitude variation
  // and mild noise — matching the "strong diurnal, peak-to-mean about 2"
  // description of the Hotmail trace in Lin et al.
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(days) *
                       static_cast<std::size_t>(slots_per_day));
  for (int day = 0; day < days; ++day) {
    const double day_scale = 1.0 + rng.normal(0.0, 0.05);
    for (int slot = 0; slot < slots_per_day; ++slot) {
      const double phase = 2.0 * kPi * slot / slots_per_day;
      const double wave = 0.5 * (1.0 - std::cos(phase));
      // Sharpen the valley: squaring the wave deepens the overnight dip.
      const double shaped = 0.15 + 0.85 * wave * wave;
      double value = peak * day_scale * shaped;
      value *= 1.0 + rng.normal(0.0, 0.03);
      trace.lambda.push_back(clamp_non_negative(value));
    }
  }
  return trace;
}

Trace msr_like(Rng& rng, int days, int slots_per_day, double peak) {
  if (days < 1 || slots_per_day < 2) {
    throw std::invalid_argument("msr_like: need days >= 1, slots >= 2");
  }
  // Weak diurnal baseline plus bursty MMPP-style excursions: most slots sit
  // near 0.2·peak, occasional sustained bursts reach the peak, yielding
  // peak-to-mean around 4 as reported for the MSR trace.
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(days) *
                       static_cast<std::size_t>(slots_per_day));
  bool burst = false;
  for (int day = 0; day < days; ++day) {
    for (int slot = 0; slot < slots_per_day; ++slot) {
      const double phase = 2.0 * kPi * slot / slots_per_day;
      const double baseline = 0.14 + 0.08 * (0.5 * (1.0 - std::cos(phase)));
      if (burst) {
        if (rng.bernoulli(0.12)) burst = false;
      } else {
        if (rng.bernoulli(0.02)) burst = true;
      }
      double value = peak * baseline;
      if (burst) value += peak * rng.uniform(0.45, 0.85);
      value *= 1.0 + rng.normal(0.0, 0.10);
      trace.lambda.push_back(clamp_non_negative(std::min(value, peak)));
    }
  }
  return trace;
}

}  // namespace rs::workload
