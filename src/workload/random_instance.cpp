#include "workload/random_instance.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::workload {

using rs::core::AffineAbsCost;
using rs::core::CostPtr;
using rs::core::Problem;
using rs::core::QuadraticCost;
using rs::core::TableCost;
using rs::util::kInf;
using rs::util::Rng;

const std::vector<InstanceFamily>& all_instance_families() {
  static const std::vector<InstanceFamily> families = {
      InstanceFamily::kConvexTable,  InstanceFamily::kQuadratic,
      InstanceFamily::kAffineAbs,    InstanceFamily::kConstrained,
      InstanceFamily::kFlatRegions,  InstanceFamily::kCapacityCapped};
  return families;
}

std::string family_name(InstanceFamily family) {
  switch (family) {
    case InstanceFamily::kConvexTable: return "convex_table";
    case InstanceFamily::kQuadratic: return "quadratic";
    case InstanceFamily::kAffineAbs: return "affine_abs";
    case InstanceFamily::kConstrained: return "constrained";
    case InstanceFamily::kFlatRegions: return "flat_regions";
    case InstanceFamily::kCapacityCapped: return "capacity_capped";
  }
  throw std::invalid_argument("family_name: unknown family");
}

std::vector<double> random_convex_table(Rng& rng, int m) {
  std::vector<double> values(static_cast<std::size_t>(m) + 1);
  values[0] = rng.uniform(0.0, 4.0);
  double slope = rng.uniform(-2.0, 0.5);
  for (int x = 1; x <= m; ++x) {
    slope += rng.uniform(0.0, 1.0);  // slopes non-decreasing => convex
    values[static_cast<std::size_t>(x)] =
        values[static_cast<std::size_t>(x - 1)] + slope;
  }
  const double low = *std::min_element(values.begin(), values.end());
  const double shift = low < 0.0 ? -low : 0.0;
  for (double& v : values) v += shift;
  return values;
}

namespace {

CostPtr draw_cost(Rng& rng, InstanceFamily family, int m, int t, int T) {
  switch (family) {
    case InstanceFamily::kConvexTable:
      return std::make_shared<TableCost>(random_convex_table(rng, m));
    case InstanceFamily::kQuadratic: {
      // Center drifts sinusoidally over the horizon plus noise: tracks the
      // diurnal shape right-sizing exploits.
      const double phase = 2.0 * 3.14159265358979323846 *
                           static_cast<double>(t) / std::max(1, T);
      const double center = (0.5 + 0.4 * std::sin(phase)) * m +
                            rng.normal(0.0, 0.05 * m + 0.1);
      return std::make_shared<QuadraticCost>(rng.uniform(0.05, 0.5),
                                             center);
    }
    case InstanceFamily::kAffineAbs:
      return std::make_shared<AffineAbsCost>(
          rng.uniform(0.01, 1.0),
          static_cast<double>(rng.uniform_int(0, m)));
    case InstanceFamily::kConstrained: {
      std::vector<double> values = random_convex_table(rng, m);
      const int prefix = static_cast<int>(rng.uniform_int(0, m / 2));
      for (int x = 0; x < prefix; ++x) {
        values[static_cast<std::size_t>(x)] = kInf;
      }
      return std::make_shared<TableCost>(std::move(values));
    }
    case InstanceFamily::kCapacityCapped: {
      std::vector<double> values = random_convex_table(rng, m);
      // Cap in the upper half so state 0 stays feasible and caps bite.
      const int cap = static_cast<int>(rng.uniform_int(std::max(1, m / 2), m));
      for (int x = cap + 1; x <= m; ++x) {
        values[static_cast<std::size_t>(x)] = kInf;
      }
      return std::make_shared<TableCost>(std::move(values));
    }
    case InstanceFamily::kFlatRegions: {
      // V-shape with a wide flat bottom.
      const int lo = static_cast<int>(rng.uniform_int(0, m));
      const int hi = static_cast<int>(rng.uniform_int(lo, m));
      const double left = rng.uniform(0.1, 2.0);
      const double right = rng.uniform(0.1, 2.0);
      const double base = rng.uniform(0.0, 1.0);
      std::vector<double> values(static_cast<std::size_t>(m) + 1);
      for (int x = 0; x <= m; ++x) {
        double v = base;
        if (x < lo) v += left * (lo - x);
        if (x > hi) v += right * (x - hi);
        values[static_cast<std::size_t>(x)] = v;
      }
      return std::make_shared<TableCost>(std::move(values));
    }
  }
  throw std::invalid_argument("draw_cost: unknown family");
}

}  // namespace

Problem random_instance(Rng& rng, InstanceFamily family, int T, int m,
                        double beta) {
  if (T < 0) throw std::invalid_argument("random_instance: T < 0");
  if (m < 0) throw std::invalid_argument("random_instance: m < 0");
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 1; t <= T; ++t) {
    fs.push_back(draw_cost(rng, family, m, t, T));
  }
  return Problem(m, beta, std::move(fs));
}

}  // namespace rs::workload
