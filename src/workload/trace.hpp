// Arrival traces λ_1..λ_T and their summary statistics.
//
// Traces feed the restricted model (eq. 2) directly and, through the dcsim
// cost builders, the general model.  Statistics cover the shape properties
// the right-sizing literature cares about: peak-to-mean ratio (how much a
// static provisioning over-provisions) and lag autocorrelation (how
// predictable the trace is for prediction windows).
#pragma once

#include <string>
#include <vector>

namespace rs::workload {

struct Trace {
  std::vector<double> lambda;  // λ_t >= 0, one entry per slot

  int horizon() const noexcept { return static_cast<int>(lambda.size()); }
};

struct TraceStats {
  double mean = 0.0;
  double peak = 0.0;
  double valley = 0.0;
  double peak_to_mean = 0.0;
  double stddev = 0.0;
};

TraceStats compute_stats(const Trace& trace);

/// Pearson autocorrelation at the given lag (0 for degenerate traces).
double autocorrelation(const Trace& trace, int lag);

/// Rescales the trace so its peak equals `new_peak` (no-op on empty/zero
/// traces).
Trace rescale_peak(const Trace& trace, double new_peak);

/// CSV I/O: single column "lambda", one row per slot.
void write_trace_csv(const Trace& trace, const std::string& path);
Trace read_trace_csv(const std::string& path);

}  // namespace rs::workload
