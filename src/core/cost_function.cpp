#include "core/cost_function.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/workspace.hpp"

namespace rs::core {

using util::kInf;

double CostFunction::at_real(double x) const {
  if (x < 0.0) throw std::invalid_argument("CostFunction::at_real: x < 0");
  const double floor_x = std::floor(x);
  const int lo = static_cast<int>(floor_x);
  const double theta = x - floor_x;
  // rs-lint: float-eq-ok (x - floor(x) is exactly 0 iff x is integral)
  if (theta == 0.0) return at(lo);
  const double f_lo = at(lo);
  const double f_hi = at(lo + 1);
  if (std::isinf(f_lo) || std::isinf(f_hi)) return kInf;
  return (1.0 - theta) * f_lo + theta * f_hi;
}

void CostFunction::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  for (int x = 0; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] = at(x);
  }
}

std::optional<ConvexPwl> CostFunction::as_convex_pwl_impl(int m,
                                                     int max_breakpoints) const {
  (void)m;
  (void)max_breakpoints;
  return std::nullopt;  // no compact exact form known for this family
}

std::optional<ConvexPwl> convex_pwl_from_kinks(const CostFunction& f, int m,
                                               std::vector<long long> kinks,
                                               int max_breakpoints) {
  kinks.push_back(0);
  kinks.push_back(m);
  for (long long& k : kinks) k = std::clamp(k, 0LL, static_cast<long long>(m));
  std::sort(kinks.begin(), kinks.end());
  kinks.erase(std::unique(kinks.begin(), kinks.end()), kinks.end());

  std::vector<double> values(kinks.size());
  int first = -1;
  int last = -1;
  for (std::size_t i = 0; i < kinks.size(); ++i) {
    const double v = f.at(static_cast<int>(kinks[i]));
    if (std::isnan(v)) return std::nullopt;
    values[i] = v;
    if (std::isfinite(v)) {
      if (first < 0) first = static_cast<int>(i);
      last = static_cast<int>(i);
    }
  }
  if (first < 0) {
    // Every sampled kink is infinite.  A finite island strictly inside a
    // gap would make the all-infinite form silently wrong, and no probe
    // budget can rule that out — so decline and let the caller fall back
    // to the dense backend (which handles all-infinite rows natively).
    // Families with genuinely all-infinite slots (TableCost) detect that
    // from their own storage instead of through this helper.
    return std::nullopt;
  }
  for (int i = first; i <= last; ++i) {
    if (!std::isfinite(values[static_cast<std::size_t>(i)])) {
      return std::nullopt;  // infinite interior: not a convex domain
    }
  }
  const int lo = static_cast<int>(kinks[static_cast<std::size_t>(first)]);
  const int hi = static_cast<int>(kinks[static_cast<std::size_t>(last)]);
  // The kink list must contain the exact domain boundaries.
  if (lo > 0 && std::isfinite(f.at(lo - 1))) return std::nullopt;
  if (hi < m && std::isfinite(f.at(hi + 1))) return std::nullopt;

  ConvexPwlBuilder builder;
  builder.start(lo, values[static_cast<std::size_t>(first)]);
  for (int i = first + 1; i <= last; ++i) {
    const long long p = kinks[static_cast<std::size_t>(i - 1)];
    const long long q = kinks[static_cast<std::size_t>(i)];
    const double rise = values[static_cast<std::size_t>(i)] -
                        values[static_cast<std::size_t>(i - 1)];
    const double slope = rise / static_cast<double>(q - p);
    if (q - p > 1) {
      const long long mid = p + (q - p) / 2;
      const double expected = values[static_cast<std::size_t>(i - 1)] +
                              slope * static_cast<double>(mid - p);
      if (!util::approx_equal(f.at(static_cast<int>(mid)), expected, 1e-9,
                              1e-9)) {
        return std::nullopt;  // not linear between these kinks
      }
    }
    builder.run(slope, static_cast<int>(q));
  }
  return builder.finish(max_breakpoints);
}

// ---------------------------------------------------------------------------

TableCost::TableCost(std::vector<double> values, std::string label)
    : values_(std::move(values)), label_(std::move(label)) {
  if (values_.empty()) {
    throw std::invalid_argument("TableCost: empty value table");
  }
}

double TableCost::at(int x) const {
  if (x < 0) throw std::invalid_argument("TableCost::at: x < 0");
  const int n = static_cast<int>(values_.size());
  if (x < n) return values_[static_cast<std::size_t>(x)];
  // Extend linearly with the last slope (0 for single-entry tables) so that
  // convex tables stay convex beyond their explicit domain.
  const double last = values_[static_cast<std::size_t>(n - 1)];
  const double slope =
      n >= 2 ? last - values_[static_cast<std::size_t>(n - 2)] : 0.0;
  if (std::isinf(last)) return last;
  return last + slope * static_cast<double>(x - (n - 1));
}

void TableCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  const int n = static_cast<int>(values_.size());
  const int copied = std::min(n, m + 1);
  std::copy_n(values_.begin(), copied, out.begin());
  if (m + 1 <= n) return;
  // Same linear extension (and exact expression) as at(); the infinite-last
  // case is hoisted so the extension loop is a pure FMA chain.
  const double last = values_[static_cast<std::size_t>(n - 1)];
  if (std::isinf(last)) {
    std::fill(out.begin() + n, out.begin() + (m + 1), last);
    return;
  }
  const double slope =
      n >= 2 ? last - values_[static_cast<std::size_t>(n - 2)] : 0.0;
  for (int x = n; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] =
        last + slope * static_cast<double>(x - (n - 1));
  }
}

bool TableCost::is_convex() const {
  return as_convex_pwl(static_cast<int>(values_.size()) - 1,
                       kUnboundedBreakpoints)
      .has_value();
}

std::optional<ConvexPwl> TableCost::as_convex_pwl_impl(int m,
                                                  int max_breakpoints) const {
  const int n = static_cast<int>(values_.size());
  const int top = std::min(n - 1, m);
  // Contiguous finite range of the stored prefix; NaN and interior
  // infinities reject.
  int lo = -1;
  int hi = -1;
  for (int x = 0; x <= top; ++x) {
    const double v = values_[static_cast<std::size_t>(x)];
    if (std::isnan(v)) return std::nullopt;
    if (std::isfinite(v)) {
      if (lo >= 0 && hi < x - 1) return std::nullopt;  // finite, inf, finite
      if (lo < 0) lo = x;
      hi = x;
    }
  }
  if (lo < 0) return ConvexPwl::infinite();

  ConvexPwlBuilder builder;
  builder.start(lo, values_[static_cast<std::size_t>(lo)]);
  for (int x = lo; x < hi; ++x) {
    builder.run(values_[static_cast<std::size_t>(x + 1)] -
                    values_[static_cast<std::size_t>(x)],
                x + 1);
  }
  if (m > top && hi == n - 1) {
    // Linear extension beyond the table, same expression as at(): constant
    // for single-entry tables, else the last stored slope.
    const double slope =
        n >= 2 ? values_[static_cast<std::size_t>(n - 1)] -
                     values_[static_cast<std::size_t>(n - 2)]
               : 0.0;
    builder.run(slope, m);
  }
  return builder.finish(max_breakpoints);
}

// ---------------------------------------------------------------------------

AffineAbsCost::AffineAbsCost(double slope, double center, double offset)
    : slope_(slope), center_(center), offset_(offset) {
  if (slope < 0.0) throw std::invalid_argument("AffineAbsCost: slope < 0");
}

double AffineAbsCost::at(int x) const {
  return slope_ * std::fabs(static_cast<double>(x) - center_) + offset_;
}

double AffineAbsCost::at_real(double x) const {
  return slope_ * std::fabs(x - center_) + offset_;
}

void AffineAbsCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  for (int x = 0; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] =
        slope_ * std::fabs(static_cast<double>(x) - center_) + offset_;
  }
}

std::optional<ConvexPwl> AffineAbsCost::as_convex_pwl_impl(
    int m, int max_breakpoints) const {
  // Linear except around the center: the integer restriction kinks at
  // floor(center) and ceil(center).  The clamp keeps the double->int cast
  // defined for centers far outside [0, m] (the function is then linear on
  // the whole domain anyway).
  const double center = std::clamp(center_, -2.0, static_cast<double>(m) + 2.0);
  const long long knee = static_cast<long long>(std::floor(center));
  return convex_pwl_from_kinks(*this, m, {knee - 1, knee, knee + 1, knee + 2},
                        max_breakpoints);
}

// ---------------------------------------------------------------------------

QuadraticCost::QuadraticCost(double curvature, double center, double offset)
    : curvature_(curvature), center_(center), offset_(offset) {
  if (curvature < 0.0) {
    throw std::invalid_argument("QuadraticCost: curvature < 0");
  }
}

double QuadraticCost::at(int x) const {
  return at_real(static_cast<double>(x));
}

double QuadraticCost::at_real(double x) const {
  const double d = x - center_;
  return curvature_ * d * d + offset_;
}

void QuadraticCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  for (int x = 0; x <= m; ++x) {
    const double d = static_cast<double>(x) - center_;
    out[static_cast<std::size_t>(x)] = curvature_ * d * d + offset_;
  }
}

std::optional<ConvexPwl> QuadraticCost::as_convex_pwl_impl(
    int m, int max_breakpoints) const {
  // rs-lint: float-eq-ok (exact degenerate-quadratic sentinel, never
  // computed)
  if (curvature_ == 0.0) {
    ConvexPwlBuilder builder;
    builder.start(0, offset_);
    if (m > 0) builder.run(0.0, m);
    return builder.finish(max_breakpoints);
  }
  // Every integer is a kink; bail before sampling when the budget cannot
  // fit them (this is what routes large-m quadratics to the dense backend).
  if (m > max_breakpoints) return std::nullopt;
  ConvexPwlBuilder builder;
  builder.start(0, at(0));
  for (int x = 0; x < m; ++x) builder.run(at(x + 1) - at(x), x + 1);
  return builder.finish(max_breakpoints);
}

// ---------------------------------------------------------------------------

FunctionCost::FunctionCost(std::function<double(int)> fn, std::string label)
    : fn_(std::move(fn)), label_(std::move(label)) {
  if (!fn_) throw std::invalid_argument("FunctionCost: null callable");
}

double FunctionCost::at(int x) const { return fn_(x); }

void FunctionCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  // One std::function dereference instead of one virtual + one std::function
  // call per point.
  const std::function<double(int)>& fn = fn_;
  for (int x = 0; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] = fn(x);
  }
}

// ---------------------------------------------------------------------------

RestrictedSlotCost::RestrictedSlotCost(
    std::shared_ptr<const std::function<double(double)>> f, double lambda)
    : f_(std::move(f)), lambda_(lambda) {
  if (!f_ || !*f_) {
    throw std::invalid_argument("RestrictedSlotCost: null load-cost function");
  }
  if (!(lambda >= 0.0)) {  // rejects NaN along with negatives
    throw std::invalid_argument("RestrictedSlotCost: negative workload");
  }
}

double RestrictedSlotCost::at(int x) const {
  return at_real(static_cast<double>(x));
}

double RestrictedSlotCost::at_real(double x) const {
  if (x < 0.0) throw std::invalid_argument("RestrictedSlotCost: x < 0");
  if (x < lambda_) return kInf;  // constraint x_t >= λ_t (paper eq. 2)
  // rs-lint: float-eq-ok (exact empty-center sentinel)
  if (x == 0.0) return 0.0;      // λ must be 0 here; an empty center is free
  return x * (*f_)(lambda_ / x);
}

void RestrictedSlotCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  // Mirrors at_real() on integers with the shared_ptr resolved once.  The
  // infeasible prefix {x < λ} and the x = 0 special case are resolved up
  // front (λ is fixed), so the feasible-range loop carries no branches.
  const std::function<double(double)>& fn = *f_;
  // Compare in double before casting: lambda_ is only validated
  // non-negative and may exceed INT_MAX, where a bare int cast is UB.
  const int first_feasible = lambda_ > static_cast<double>(m)
                                 ? m + 1
                                 : static_cast<int>(std::ceil(lambda_));
  std::fill(out.begin(), out.begin() + first_feasible, kInf);
  int x = first_feasible;
  if (x == 0) {
    out[0] = 0.0;  // λ must be 0 here; an empty center is free
    x = 1;
  }
  for (; x <= m; ++x) {
    const double xr = static_cast<double>(x);
    out[static_cast<std::size_t>(x)] = xr * fn(lambda_ / xr);
  }
}

// ---------------------------------------------------------------------------

LinearLoadSlotCost::LinearLoadSlotCost(double base, double rate,
                                       double lambda)
    : base_(base), rate_(rate), lambda_(lambda) {
  if (!(base >= 0.0)) {  // rejects NaN along with negatives
    throw std::invalid_argument("LinearLoadSlotCost: negative base tariff");
  }
  if (!(rate >= 0.0)) {
    throw std::invalid_argument("LinearLoadSlotCost: negative load rate");
  }
  if (!(lambda >= 0.0)) {
    throw std::invalid_argument("LinearLoadSlotCost: negative workload");
  }
}

double LinearLoadSlotCost::at(int x) const {
  return at_real(static_cast<double>(x));
}

double LinearLoadSlotCost::at_real(double x) const {
  if (x < 0.0) throw std::invalid_argument("LinearLoadSlotCost: x < 0");
  if (x < lambda_) return kInf;  // constraint x_t >= λ_t (paper eq. 2)
  // rs-lint: float-eq-ok (exact empty-center sentinel)
  if (x == 0.0) return 0.0;      // λ must be 0 here; an empty center is free
  return base_ * x + rate_ * lambda_;
}

void LinearLoadSlotCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  // Mirrors at() on integers with the same expression per state; the
  // infeasible prefix and the x = 0 special case are resolved up front.
  // Careful double-space comparison before the cast (λ may exceed INT_MAX).
  const int first_feasible = lambda_ > static_cast<double>(m)
                                 ? m + 1
                                 : static_cast<int>(std::ceil(lambda_));
  std::fill(out.begin(), out.begin() + first_feasible, kInf);
  int x = first_feasible;
  if (x == 0) {
    out[0] = 0.0;
    x = 1;
  }
  const double load_term = rate_ * lambda_;
  for (; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] =
        base_ * static_cast<double>(x) + load_term;
  }
}

std::optional<ConvexPwl> LinearLoadSlotCost::as_convex_pwl_impl(
    int m, int max_breakpoints) const {
  (void)max_breakpoints;  // zero breakpoints always fit any budget
  if (lambda_ > static_cast<double>(m)) return ConvexPwl::infinite();
  const int lo = static_cast<int>(std::ceil(lambda_));
  ConvexPwlBuilder builder;
  builder.start(lo, at(lo));
  // Affine on the whole feasible range: at(lo+1) − at(lo) reproduces the
  // base slope exactly (the x = 0 special value is at(0) = 0 = base·0 +
  // rate·0, consistent with the closed form since λ = 0 there).
  if (lo < m) builder.run(at(lo + 1) - at(lo), m);
  return builder.finish(max_breakpoints);
}

// ---------------------------------------------------------------------------

ScaledCost::ScaledCost(CostPtr base, double factor)
    : base_(std::move(base)), factor_(factor) {
  if (!base_) throw std::invalid_argument("ScaledCost: null base");
  if (factor < 0.0) throw std::invalid_argument("ScaledCost: factor < 0");
}

double ScaledCost::at(int x) const { return factor_ * base_->at(x); }

double ScaledCost::at_real(double x) const {
  return factor_ * base_->at_real(x);
}

void ScaledCost::eval_row(int m, std::span<double> out) const {
  base_->eval_row(m, out);
  for (int x = 0; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] = factor_ * out[static_cast<std::size_t>(x)];
  }
}

std::optional<ConvexPwl> ScaledCost::as_convex_pwl_impl(int m,
                                                   int max_breakpoints) const {
  std::optional<ConvexPwl> base = base_->as_convex_pwl(m, max_breakpoints);
  if (!base) return std::nullopt;
  // rs-lint: float-eq-ok (exact zero-scale sentinel, never computed)
  if (factor_ == 0.0) {
    // at() is 0·base(x), which is NaN on infeasible base states; only the
    // everywhere-finite case has a representable (zero) form.
    if (base->is_infinite() || base->lo() > 0 || base->hi() < m) {
      return std::nullopt;
    }
    return ConvexPwl::constant(0, m, 0.0);
  }
  if (base->is_infinite()) return ConvexPwl::infinite();
  std::vector<long long> kinks;
  for (int p : base->kink_positions()) kinks.push_back(p);
  return convex_pwl_from_kinks(*this, m, std::move(kinks), max_breakpoints);
}

std::string ScaledCost::name() const { return "scaled(" + base_->name() + ")"; }

// ---------------------------------------------------------------------------

StrideCost::StrideCost(CostPtr base, int stride)
    : base_(std::move(base)), stride_(stride) {
  if (!base_) throw std::invalid_argument("StrideCost: null base");
  if (stride <= 0) throw std::invalid_argument("StrideCost: stride <= 0");
}

double StrideCost::at(int x) const { return base_->at(x * stride_); }

void StrideCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  if (stride_ == 1) {
    base_->eval_row(m, out);
    return;
  }
  // For small strides (the common Ψ_l refinement steps), materializing the
  // base row keeps the whole decorator chain below on its bulk path and
  // costs only stride·m sequential writes; for large strides the gathered
  // states are sparse in the base domain and a per-point gather wins.  The
  // base row is workspace scratch: repeated row fills (one per DP step /
  // tracker advance) stay allocation-free after warm-up.
  const long long base_m = static_cast<long long>(m) * stride_;
  if (stride_ <= 4 && base_m + 1 <= (1LL << 22)) {
    auto base_row = rs::util::this_thread_workspace().borrow<double>(
        static_cast<std::size_t>(base_m) + 1);
    base_->eval_row(static_cast<int>(base_m), base_row.span());
    for (int x = 0; x <= m; ++x) {
      out[static_cast<std::size_t>(x)] =
          base_row[static_cast<std::size_t>(x) * static_cast<std::size_t>(stride_)];
    }
    return;
  }
  const CostFunction& base = *base_;
  for (int x = 0; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] = base.at(x * stride_);
  }
}

std::optional<ConvexPwl> StrideCost::as_convex_pwl_impl(int m,
                                                   int max_breakpoints) const {
  const long long base_m = static_cast<long long>(m) * stride_;
  if (base_m > (1LL << 30)) return std::nullopt;  // conversion domain guard
  std::optional<ConvexPwl> base =
      base_->as_convex_pwl(static_cast<int>(base_m), max_breakpoints);
  if (!base) return std::nullopt;
  if (base->is_infinite()) return ConvexPwl::infinite();
  // A base kink at p maps to a kink of x -> base(x·stride) somewhere in
  // {floor(p/stride) - 1, .., floor(p/stride) + 2}; sample that
  // neighbourhood (the probes in pwl_from_kinks verify it).
  std::vector<long long> kinks;
  kinks.reserve(4 * base->kink_positions().size());
  for (int p : base->kink_positions()) {
    const long long q = p / stride_;
    for (long long offset = -1; offset <= 2; ++offset) {
      kinks.push_back(q + offset);
    }
  }
  return convex_pwl_from_kinks(*this, m, std::move(kinks), max_breakpoints);
}

std::string StrideCost::name() const {
  return "stride" + std::to_string(stride_) + "(" + base_->name() + ")";
}

// ---------------------------------------------------------------------------

PaddedCost::PaddedCost(CostPtr base, int original_m)
    : base_(std::move(base)), original_m_(original_m) {
  if (!base_) throw std::invalid_argument("PaddedCost: null base");
  if (original_m < 0) throw std::invalid_argument("PaddedCost: m < 0");
  // For convex base, the maximum slope on {0,..,m} is the last one; extend
  // with a strictly larger slope so every state above m is strictly
  // dominated and the extension stays convex.
  double last_slope = 0.0;
  if (original_m >= 1) {
    const double fm = base_->at(original_m);
    const double fm1 = base_->at(original_m - 1);
    if (std::isfinite(fm) && std::isfinite(fm1)) last_slope = fm - fm1;
  }
  extension_slope_ = std::max(last_slope, 0.0) + 1.0;
}

double PaddedCost::at(int x) const {
  if (x <= original_m_) return base_->at(x);
  const double base_value = base_->at(original_m_);
  if (std::isinf(base_value)) return base_value;
  return base_value + extension_slope_ * static_cast<double>(x - original_m_);
}

void PaddedCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  const int inner = std::min(m, original_m_);
  base_->eval_row(inner, out);
  if (m <= original_m_) return;
  // Infinite anchors are hoisted so the extension loop is branch-free.
  const double base_value = base_->at(original_m_);
  if (std::isinf(base_value)) {
    std::fill(out.begin() + (original_m_ + 1), out.begin() + (m + 1),
              base_value);
    return;
  }
  for (int x = original_m_ + 1; x <= m; ++x) {
    out[static_cast<std::size_t>(x)] =
        base_value + extension_slope_ * static_cast<double>(x - original_m_);
  }
}

std::optional<ConvexPwl> PaddedCost::as_convex_pwl_impl(int m,
                                                   int max_breakpoints) const {
  const int inner = std::min(m, original_m_);
  std::optional<ConvexPwl> base = base_->as_convex_pwl(inner, max_breakpoints);
  if (!base) return std::nullopt;
  if (base->is_infinite()) return ConvexPwl::infinite();
  std::vector<long long> kinks;
  for (int p : base->kink_positions()) kinks.push_back(p);
  // The extension starts right after original_m with its own slope.
  kinks.push_back(original_m_);
  kinks.push_back(static_cast<long long>(original_m_) + 1);
  return convex_pwl_from_kinks(*this, m, std::move(kinks), max_breakpoints);
}

std::string PaddedCost::name() const {
  return "padded(" + base_->name() + ")";
}

// ---------------------------------------------------------------------------

CostFunctionReport validate_cost_function(const CostFunction& f, int m) {
  CostFunctionReport report;
  if (m < 0) throw std::invalid_argument("validate_cost_function: m < 0");

  std::vector<double> values(static_cast<std::size_t>(m) + 1);
  for (int x = 0; x <= m; ++x) {
    values[static_cast<std::size_t>(x)] = f.at(x);
  }

  for (int x = 0; x <= m; ++x) {
    const double v = values[static_cast<std::size_t>(x)];
    if (std::isnan(v)) {
      report.convex = false;
      report.non_negative = false;
      continue;
    }
    if (v < 0.0) report.non_negative = false;
    if (std::isfinite(v)) {
      if (report.first_finite < 0) report.first_finite = x;
      report.last_finite = x;
    }
  }
  if (report.first_finite < 0) {
    report.finite_somewhere = false;
    report.contiguous_finite_range = true;
    return report;
  }
  for (int x = report.first_finite; x <= report.last_finite; ++x) {
    if (!std::isfinite(values[static_cast<std::size_t>(x)])) {
      report.contiguous_finite_range = false;
      report.convex = false;
    }
  }
  // Slopes non-decreasing on the finite range.
  double previous_slope = -util::kInf;
  for (int x = report.first_finite + 1; x <= report.last_finite; ++x) {
    const double slope = values[static_cast<std::size_t>(x)] -
                         values[static_cast<std::size_t>(x - 1)];
    if (slope + 1e-9 < previous_slope) {
      report.convex = false;
      break;
    }
    previous_slope = std::max(previous_slope, slope);
  }
  return report;
}

int smallest_minimizer_scan(const CostFunction& f, int m) {
  int best = 0;
  double best_value = f.at(0);
  for (int x = 1; x <= m; ++x) {
    const double v = f.at(x);
    if (v < best_value) {
      best_value = v;
      best = x;
    }
  }
  return best;
}

int largest_minimizer_scan(const CostFunction& f, int m) {
  int best = 0;
  double best_value = f.at(0);
  for (int x = 1; x <= m; ++x) {
    const double v = f.at(x);
    if (v <= best_value) {  // ties move right
      best_value = v;
      best = x;
    }
  }
  return best;
}

int smallest_minimizer_convex(const CostFunction& f, int m) {
  // Find the smallest x with f(x+1) - f(x) >= 0; for convex f the slopes are
  // non-decreasing so this is a monotone predicate.  +inf prefixes (from
  // constraint states) are skipped by treating inf-to-finite slopes as
  // negative and finite-to-inf slopes as positive.
  int lo = 0;
  int hi = m;  // invariant: answer in [lo, hi]
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    const double here = f.at(mid);
    const double next = f.at(mid + 1);
    bool non_decreasing;
    if (std::isinf(here) && std::isinf(next)) {
      // Deep in an infeasible prefix or suffix; decide by probing which side
      // the finite range is on (cheap: one probe at lo).
      non_decreasing = std::isinf(f.at(lo)) ? false : true;
    } else if (std::isinf(here)) {
      non_decreasing = false;  // slope -inf: still descending
    } else if (std::isinf(next)) {
      non_decreasing = true;  // slope +inf: already ascending
    } else {
      non_decreasing = next - here >= 0.0;
    }
    if (non_decreasing) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double interpolate(const CostFunction& f, double x) {
  // Route through the default implementation regardless of overrides, so the
  // result always matches paper eq. (3) exactly.
  const double floor_x = std::floor(x);
  const int lo = static_cast<int>(floor_x);
  const double theta = x - floor_x;
  // rs-lint: float-eq-ok (x - floor(x) is exactly 0 iff x is integral)
  if (theta == 0.0) return f.at(lo);
  const double f_lo = f.at(lo);
  const double f_hi = f.at(lo + 1);
  if (std::isinf(f_lo) || std::isinf(f_hi)) return kInf;
  return (1.0 - theta) * f_lo + theta * f_hi;
}

}  // namespace rs::core
