// Versioned, checksummed binary checkpoints — the crash-safety sibling of
// the CSV serialization module.
//
// The fleet-controller direction (ROADMAP) multiplexes thousands of
// long-lived solver sessions; those sessions must survive a process
// restart.  This header defines the container every snapshot()/restore()
// pair in the library speaks:
//
//   envelope  = magic ─ format version ─ payload kind ─ payload size ─
//               CRC-32 of the payload ─ payload bytes (little-endian,
//               no trailing bytes)
//
// The reader validates the whole envelope before a single payload byte is
// interpreted, so a truncated, bit-flipped, or mislabeled checkpoint is
// rejected with a *typed* error — never undefined behaviour:
//
//   CheckpointFormatError     bad magic / unsupported version / wrong kind /
//                             truncation / trailing bytes / invalid field
//   CheckpointCorruptionError checksum mismatch (payload bit rot)
//   CheckpointMismatchError   a valid checkpoint restored onto the wrong
//                             target (different m, beta, or session shape)
//
// Doubles are serialized as their IEEE-754 bit patterns, so a restore is
// bit-exact: a session restored at slot t continues bitwise-identically to
// the uninterrupted run (the kill-and-resume property suite pins this).
// See DESIGN.md §10.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rs::core {

class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structural rejection: the bytes are not a well-formed checkpoint of the
/// expected kind/version (truncation, bad magic, invalid decoded field).
class CheckpointFormatError : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// The envelope parses but the payload fails its checksum (bit corruption).
class CheckpointCorruptionError : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// A valid checkpoint restored onto an incompatible target (mismatched
/// m / beta / backend between the snapshot and the restoring session).
class CheckpointMismatchError : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// Current container format version; bumped on layout changes.  Readers
/// reject other versions (forward compatibility is explicit, not guessed).
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Payload kind tags: a checkpoint names what it snapshots, so restoring a
/// tracker checkpoint into an Lcp session is a format error, not a
/// misinterpretation.
inline constexpr std::uint32_t kTrackerCheckpointKind = 0x01;
inline constexpr std::uint32_t kLcpCheckpointKind = 0x02;
inline constexpr std::uint32_t kWindowedLcpCheckpointKind = 0x03;
inline constexpr std::uint32_t kTenantCheckpointKind = 0x04;

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Accumulates a payload (little-endian scalars; doubles as IEEE-754 bit
/// patterns) and seals it into an enveloped checkpoint.
class CheckpointWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);  // bit-exact, including infinities
  void bytes(std::span<const std::uint8_t> data);

  /// The enveloped checkpoint: header(kind, size, crc) + payload.  The
  /// writer may keep accumulating afterwards; seal() snapshots the current
  /// payload.
  std::vector<std::uint8_t> seal(std::uint32_t kind) const;

 private:
  std::vector<std::uint8_t> payload_;
};

/// Validates an envelope (magic, version, kind, size, checksum) up front,
/// then decodes payload fields; every read checks the remaining length and
/// finish() rejects unconsumed payload bytes, so no input can read out of
/// bounds or silently drop state.
class CheckpointReader {
 public:
  /// Throws CheckpointFormatError / CheckpointCorruptionError as described
  /// in the header comment.
  CheckpointReader(std::span<const std::uint8_t> data,
                   std::uint32_t expected_kind);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::vector<std::uint8_t> bytes(std::size_t n);

  std::size_t remaining() const noexcept { return payload_.size() - pos_; }

  /// Requires the payload to be fully consumed (trailing payload bytes are
  /// a format error — they mean the producer and consumer disagree).
  void finish() const;

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

/// Peeks the payload kind of an enveloped checkpoint without validating the
/// checksum (for dispatch); throws CheckpointFormatError when even the
/// header is absent.
std::uint32_t checkpoint_kind(std::span<const std::uint8_t> data);

/// Envelope self-check (util/audit.hpp; DESIGN.md §13): re-parses a sealed
/// checkpoint through the validating reader — magic, version, kind, size,
/// CRC-32 — so every snapshot is proven restorable the moment it is
/// produced, not when a recovery first needs it.  Raises
/// rs::util::audit::AuditError("checkpoint-envelope-roundtrip", site)
/// wrapping the reader's typed complaint.  Always compiled; the RS_AUDIT
/// hook in CheckpointWriter::seal engages only under RIGHTSIZER_AUDIT.
void audit_envelope(std::span<const std::uint8_t> bytes, std::uint32_t kind,
                    const char* site);

/// Binary file helpers; throw std::runtime_error on I/O failure (and the
/// reader-side CheckpointErrors surface unchanged from the caller's parse).
///
/// Writes are crash-safe: the bytes land in a sibling temp file, are
/// flushed to stable storage (fsync where the platform has it), and only
/// then replace `path` via an atomic rename — a crash at any point leaves
/// either the previous complete checkpoint or a stray temp file, never a
/// truncated file under the checkpoint's name.  Concurrent writers of the
/// *same* path must serialize externally (CheckpointStore does).
void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> read_checkpoint_file(const std::string& path);

}  // namespace rs::core
