// Convex-PWL evaluation layer: cached exact forms over a Problem.
//
// The ConvexPwl analog of DenseProblem.  The m-independent backends
// (work-function tracker, LCP, the DP fast path, the grid-restricted
// bounded DP, the low-memory divide-and-conquer) all consume the exact
// convex piecewise-linear form of each slot cost.  Without a cache the
// conversions leak work: SolverEngine's capability probe converts every
// slot and discards the forms, each routed job re-converts per advance,
// and a windowed-LCP lookahead slot is converted up to w times as the
// window slides.  PwlProblem converts each slot of an instance exactly
// once (pool-parallel for long horizons, mirroring the eager DenseProblem
// fill) and hands out `const ConvexPwl&` views that are immutable after
// construction, hence safe to share across a batch's worker threads the
// way eager DenseProblems are.
//
// Construction is all-or-nothing: try_convert returns nullopt as soon as
// any slot has no exact convex-PWL form within the per-slot breakpoint
// budget, so a non-null PwlProblem *is* the capability certificate that
// admits_compact_pwl(p) merely reports — the engine probes by building the
// cache and keeps it.
#pragma once

#include <optional>
#include <vector>

#include "core/convex_pwl.hpp"
#include "core/problem.hpp"

namespace rs::core {

class PwlProblem {
 public:
  /// Converts every slot of `p`, or returns nullopt on the first slot with
  /// no exact convex-PWL form within `max_breakpoints` (0 = the m-relative
  /// auto budget `compact_pwl_budget_for(m)`, the same rule the tracker's
  /// kAuto backend applies).  Each slot is converted exactly once; slots
  /// are converted in parallel over the global pool for long horizons.
  static std::optional<PwlProblem> try_convert(const Problem& p,
                                               int max_breakpoints = 0);

  int horizon() const noexcept { return static_cast<int>(forms_.size()); }
  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }

  /// Per-slot breakpoint budget the forms were converted under.
  int budget() const noexcept { return budget_; }

  /// Exact form of f_t (paper's 1-based t); immutable, shareable.
  const ConvexPwl& form(int t) const {
    return forms_[static_cast<std::size_t>(t - 1)];
  }

  /// Number of as_convex_pwl conversions performed at construction — one
  /// per slot, by contract.  BatchStats::pwl_conversions sums these so the
  /// one-conversion-per-slot-per-batch invariant is assertable.
  std::size_t conversions() const noexcept { return forms_.size(); }

 private:
  PwlProblem(int m, double beta, int budget, std::vector<ConvexPwl> forms)
      : m_(m), beta_(beta), budget_(budget), forms_(std::move(forms)) {}

  int m_;
  double beta_;
  int budget_;
  std::vector<ConvexPwl> forms_;
};

}  // namespace rs::core
