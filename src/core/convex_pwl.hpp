// Exact convex piecewise-linear functions over integer server counts.
//
// The m-independent backend of the work-function tracker (Section 3.1) and
// the convex offline fast path.  A convex extended-real function on
// {0,..,m} that is finite exactly on a contiguous range [lo, hi] is stored
// as the value at lo plus its slope sequence s(x) = W(x+1) − W(x), which is
// non-decreasing by convexity.  The sequence is kept as a first slope and a
// sorted map of positive slope *increments* ("breakpoints"), so the three
// operations the work-function recurrences need cost
//
//   * pointwise add of a B-breakpoint function:  O(B log K) map inserts —
//     adding a *linear* function is O(1) because slope increments are
//     invariant under a uniform slope shift;
//   * epigraph min-convolution with the switching kernel β·(x−x′)⁺ (and its
//     mirror): clipping the slope sequence into [0, β] (resp. [−β, 0]).
//     Each clip removes breakpoints from one end of the sequence; a
//     breakpoint is created once and destroyed at most once, so the
//     clipping work is O(1) amortized per breakpoint ever inserted (a
//     relax pass additionally walks the live sequence once, O(K), which
//     the compact-budget backend selection keeps small);
//   * argmin interval + minimum: a walk over the (few) leading slopes.
//
// K — the live breakpoint count — is bounded by the domain width but is in
// practice a small constant for compact cost families (hinges, affine-abs,
// restricted linear tariffs): the clip step continuously retires slopes
// that drift out of [0, β].  Nothing here depends on m except the clamp
// positions, which is what makes million-server instances tractable
// (arXiv:1807.05112 derives the algorithms from these projections;
// arXiv:2108.09489 demonstrates the convex-PWL maintenance strategy).
//
// Numerical contract: operations mirror the dense kernels' extended-real
// arithmetic but accumulate values in a different association order, so
// chat values agree with the dense backend to within a few ULPs (exactly,
// when all inputs are integers); see DESIGN.md §8 for the tolerance
// discussion.  +inf is represented by the domain bounds, never stored as a
// value; NaN is outside the contract (conversions reject it).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "util/math_util.hpp"

namespace rs::core {

class ConvexPwl {
 public:
  /// +inf everywhere (the empty work function of an infeasible prefix).
  ConvexPwl() = default;

  static ConvexPwl infinite() { return ConvexPwl(); }

  /// Finite only at x (value `value`); the τ = 0 work function is
  /// point(0, 0).
  static ConvexPwl point(int x, double value);

  /// Constant `value` on [lo, hi].
  static ConvexPwl constant(int lo, int hi, double value);

  /// True iff the function is +inf everywhere.
  bool is_infinite() const noexcept { return infinite_; }

  /// Finite domain [lo, hi]; require !is_infinite().
  int lo() const noexcept { return lo_; }
  int hi() const noexcept { return hi_; }

  /// Number of stored slope increments (excludes the two domain ends).
  int breakpoints() const noexcept { return static_cast<int>(dslope_.size()); }

  /// Domain ends plus every slope-increment position, ascending; empty for
  /// the infinite function.  Decorator conversions use these as the kink
  /// candidates of the transformed function.
  std::vector<int> kink_positions() const;

  /// W(x) for any integer x: +inf outside [lo, hi], else the accumulated
  /// value.  O(K).
  double value_at(int x) const;

  /// Batch evaluation at ascending positions: out[i] = W(xs[i]) (+inf
  /// outside the domain).  One forward walk over the slope sequence,
  /// O(K + n) total instead of value_at's O(K) per point — the evaluation
  /// path for bounded_dp's sorted candidate columns.  Requires xs sorted
  /// ascending and out.size() >= xs.size().
  void eval_at_sorted(std::span<const int> xs, std::span<double> out) const;

  /// The restriction x -> W(x·stride) as a ConvexPwl over the grid index
  /// (domain [ceil(lo/stride), floor(hi/stride)]; infinite when no grid
  /// point lands in [lo, hi]).  Convexity is preserved by restriction to an
  /// arithmetic progression; grid values are reproduced by exact slope
  /// accumulation (no divisions), so integer-valued forms resample
  /// exactly.  Backs the Φ_k grid-column fast path of solve_bounded.
  /// Requires stride >= 1.
  ConvexPwl resample_stride(int stride) const;

  struct ArgminInterval {
    int lo = 0;      // smallest minimizer (paper's x^L tie-break)
    int hi = 0;      // largest minimizer (paper's x^U tie-break)
    double value = rs::util::kInf;
  };
  /// Minimizer interval and minimum; require !is_infinite().  O(K).
  ArgminInterval argmin() const;

  /// Writes W(0..m) into out (out.size() >= m+1), +inf outside the domain.
  /// Used when a hybrid consumer falls back to the dense backend mid-run.
  void materialize(int m, std::span<double> out) const;

  /// Pointwise add (domains intersect; the sum of convex functions is
  /// convex).  Either operand infinite, or disjoint domains, make the
  /// result infinite — matching inf-absorbing dense label arithmetic.
  void add(const ConvexPwl& g);

  /// The Ĉ^L relax of eq. (11): W ← min( min_{x′≤x} W(x′) + β(x−x′),
  /// min_{x′≥x} W(x′) ), then extend the domain to [lo, hi].  Slopes are
  /// clipped into [0, β]; the left extension is flat at the minimum (free
  /// power-down), the right extension has slope β (power-up charge).
  void relax_charge_up(double beta, int lo, int hi);

  /// The Ĉ^U relax of eq. (12): W ← min( min_{x′≥x} W(x′) + β(x′−x),
  /// min_{x′≤x} W(x′) ), then extend to [lo, hi].  Slopes are clipped into
  /// [−β, 0]; the left extension has slope −β, the right one is flat.
  void relax_charge_down(double beta, int lo, int hi);

  /// True iff `other` has the bitwise-identical *shape*: domain, first
  /// slope, and slope-increment map (two infinite functions compare equal).
  /// The anchor value v_lo is deliberately excluded — every mutating
  /// operation above drives its control flow (clip cuts, extension steps,
  /// breakpoint merges, argmin walks) from the shape alone and only ever
  /// *reads* values to produce new values, so shape evolution under a
  /// repeated operation sequence is autonomous: one observed shape fixpoint
  /// is a permanent fixpoint, with argmin positions pinned exactly.  The
  /// work-function tracker's repeated-slot fast path keys on this.
  bool same_shape(const ConvexPwl& other) const noexcept;

  /// Adds `delta` to the function everywhere (v_lo += delta); no-op on the
  /// infinite function.  Used to fast-forward values across a detected
  /// shape fixpoint (the per-step value increment is shape-determined).
  void shift_value(double delta) noexcept;

  /// same_shape plus a bit-pattern comparison of the anchor value (so 0.0
  /// and −0.0 compare unequal).  Two functions that compare bitwise_equal
  /// are interchangeable as replay states: every operation reads the same
  /// bits and therefore produces the same bits — the reconvergence test of
  /// the work-function rewind buffer (offline/work_function.hpp) keys on
  /// this.
  bool bitwise_equal(const ConvexPwl& other) const noexcept;

  /// Serialization accessors (core/checkpoint.hpp): the anchor value W(lo),
  /// the first slope, and the slope-increment map.  Meaningful only when
  /// !is_infinite(); the checkpoint encodes the infinite function as a flag.
  double value_lo() const noexcept { return v_lo_; }
  double first_slope() const noexcept { return slope0_; }
  const std::map<int, double>& slope_increments() const noexcept {
    return dslope_;
  }

  /// Rebuilds a function from serialized parts, re-validating every
  /// representation invariant (lo <= hi, finite anchor value and slopes,
  /// increment positions strictly inside (lo, hi), increments > 0, a point
  /// domain carries no slopes) so corrupt checkpoint payloads are rejected
  /// with std::invalid_argument instead of constructing a broken function.
  static ConvexPwl from_parts(int lo, int hi, double v_lo, double slope0,
                              std::map<int, double> dslope);

 private:
  friend class ConvexPwlBuilder;
  friend struct ConvexPwlTestAccess;

  ConvexPwl(int lo, int hi, double v_lo)
      : infinite_(false), lo_(lo), hi_(hi), v_lo_(v_lo) {}

  // Slope of the last segment [hi-1, hi]; require a non-point domain. O(K).
  double last_slope() const;
  // Clip slopes > s_max down to s_max (values right of the cut drop onto
  // the s_max tangent; the left anchor is unchanged).
  void clip_back(double s_max);
  // Clip slopes < s_min up to s_min; re-anchors v_lo_ on the tangent
  // W(xc) − s_min·(xc − lo) through the first surviving slope.
  void clip_front(double s_min);
  void extend_left(int new_lo, double slope);
  void extend_right(int new_hi, double slope);
  // Shrink the domain to [new_lo, new_hi] ⊆ [lo_, hi_].
  void restrict_domain(int new_lo, int new_hi);

  bool infinite_ = true;
  int lo_ = 0;
  int hi_ = 0;
  double v_lo_ = 0.0;    // value at lo_
  double slope0_ = 0.0;  // slope of [lo_, lo_+1]; 0 when lo_ == hi_
  // x -> s(x) − s(x−1) for lo_ < x < hi_; entries are > 0.
  std::map<int, double> dslope_;
};

/// Deep representation-invariant audit (util/audit.hpp; DESIGN.md §13):
/// domain ordered (lo <= hi), anchor value and slopes finite, slope
/// increments strictly positive and strictly inside (lo, hi), a point
/// domain carrying no slopes.  Raises rs::util::audit::AuditError naming
/// the violated invariant and `site`.  Always compiled (the auditor's
/// negative tests call it directly); the RS_AUDIT hooks after every
/// mutating operation engage only under RIGHTSIZER_AUDIT.
void audit_convex_pwl(const ConvexPwl& f, const char* site);

/// Test-only corruption hooks for the auditor's negative tests
/// (tests/test_audit.cpp): direct references to the private representation
/// so a test can break exactly one invariant and assert the audit names
/// it.  Never use outside tests — every member bypasses validation.
struct ConvexPwlTestAccess {
  static int& lo(ConvexPwl& f) noexcept { return f.lo_; }
  static int& hi(ConvexPwl& f) noexcept { return f.hi_; }
  static double& v_lo(ConvexPwl& f) noexcept { return f.v_lo_; }
  static double& slope0(ConvexPwl& f) noexcept { return f.slope0_; }
  static std::map<int, double>& dslope(ConvexPwl& f) noexcept {
    return f.dslope_;
  }
};

// ---------------------------------------------------------------------------
// Construction helpers for CostFunction::as_convex_pwl implementations
// ---------------------------------------------------------------------------

/// Assembles a ConvexPwl from left-to-right slope runs; validates convexity
/// (slope increments >= 0 up to a relative merge epsilon — tiny negative
/// increments from independently rounded slopes are merged into the
/// previous run, genuine dips reject the build) and merges duplicate
/// slopes, so e.g. a table whose segments repeat a slope yields one run.
class ConvexPwlBuilder {
 public:
  /// Starts the domain at lo with W(lo) = value (finite, else the build is
  /// rejected — infinite states are expressed via the domain bounds).
  void start(int lo, double value);

  /// Appends a segment of constant `slope` ending at `x_end` (> current
  /// end).  NaN or infinite slopes reject the build.
  void run(double slope, int x_end);

  /// The function built so far, or nullopt if a run violated convexity
  /// beyond the merge epsilon, a NaN was seen, or more than
  /// `max_breakpoints` slope increments survived merging.
  std::optional<ConvexPwl> finish(int max_breakpoints);

 private:
  bool started_ = false;
  bool rejected_ = false;
  int lo_ = 0;
  int end_ = 0;
  double v_lo_ = 0.0;
  std::vector<std::pair<int, double>> runs_;  // (start position, slope)
};

/// Tolerance under which a slope decrease across consecutive runs is
/// treated as rounding noise and merged instead of rejected.  The applied
/// tolerance is *mixed*: eps · max(|prev|, |slope|, 1).  The 1.0 floor is
/// load-bearing — for adjacent slopes straddling zero (e.g. +1e-13
/// followed by −1e-13, the shape hinge conversions produce at exactly-flat
/// plateaus) a purely relative tolerance degenerates to ~0 and would
/// reject genuinely convex inputs; the floor turns it into an absolute
/// 1e-12 near zero while staying relative for large slopes.  Pinned by the
/// NearZeroSlopePairs regression tests.
inline constexpr double kConvexPwlMergeEps = 1e-12;

}  // namespace rs::core
