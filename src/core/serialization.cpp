#include "core/serialization.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/math_util.hpp"

namespace rs::core {

namespace {

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

double parse_value(const std::string& s) {
  if (s == "inf") return rs::util::kInf;
  if (s == "-inf") return -rs::util::kInf;
  return std::stod(s);
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string schedule_to_csv(const Schedule& x) {
  rs::util::CsvTable table;
  table.header = {"t", "x"};
  table.rows.reserve(x.size());
  for (std::size_t t = 0; t < x.size(); ++t) {
    table.rows.push_back({std::to_string(t + 1), std::to_string(x[t])});
  }
  return rs::util::csv_format(table);
}

Schedule schedule_from_csv(const std::string& text) {
  const rs::util::CsvTable table = rs::util::csv_parse(text, true);
  if (table.header.size() != 2 || table.header[0] != "t") {
    throw std::runtime_error("schedule_from_csv: bad header");
  }
  Schedule x;
  x.reserve(table.rows.size());
  for (const rs::util::CsvRow& row : table.rows) {
    if (row.size() != 2) {
      throw std::runtime_error("schedule_from_csv: bad row arity");
    }
    const int t = std::stoi(row[0]);
    if (t != static_cast<int>(x.size()) + 1) {
      throw std::runtime_error("schedule_from_csv: non-contiguous slots");
    }
    x.push_back(std::stoi(row[1]));
  }
  return x;
}

void write_schedule_csv(const Schedule& x, const std::string& path) {
  write_text(path, schedule_to_csv(x));
}

Schedule read_schedule_csv(const std::string& path) {
  return schedule_from_csv(read_text(path));
}

std::string problem_to_csv(const Problem& p) {
  std::ostringstream out;
  out << "# m=" << p.max_servers() << " beta=" << format_value(p.beta())
      << "\n";
  rs::util::CsvTable table;
  table.header = {"t"};
  for (int x = 0; x <= p.max_servers(); ++x) {
    std::string column = "f";
    column += std::to_string(x);
    table.header.push_back(std::move(column));
  }
  table.rows.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    rs::util::CsvRow row = {std::to_string(t)};
    for (int x = 0; x <= p.max_servers(); ++x) {
      row.push_back(format_value(p.cost_at(t, x)));
    }
    table.rows.push_back(std::move(row));
  }
  out << rs::util::csv_format(table);
  return out.str();
}

Problem problem_from_csv(const std::string& text) {
  // Parse the metadata comment line first.
  std::istringstream stream(text);
  std::string line;
  int m = -1;
  double beta = 0.0;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line[0] != '#') break;
    std::istringstream meta(line.substr(1));
    std::string token;
    while (meta >> token) {
      if (token.rfind("m=", 0) == 0) m = std::stoi(token.substr(2));
      if (token.rfind("beta=", 0) == 0) beta = parse_value(token.substr(5));
    }
  }
  if (m < 0 || !(beta > 0.0)) {
    throw std::runtime_error("problem_from_csv: missing '# m=.. beta=..'");
  }

  const rs::util::CsvTable table = rs::util::csv_parse(text, true);
  if (static_cast<int>(table.header.size()) != m + 2) {
    throw std::runtime_error("problem_from_csv: header arity != m+2");
  }
  std::vector<std::vector<double>> values;
  values.reserve(table.rows.size());
  for (const rs::util::CsvRow& row : table.rows) {
    if (static_cast<int>(row.size()) != m + 2) {
      throw std::runtime_error("problem_from_csv: row arity != m+2");
    }
    std::vector<double> slot(static_cast<std::size_t>(m) + 1);
    for (int x = 0; x <= m; ++x) {
      slot[static_cast<std::size_t>(x)] =
          parse_value(row[static_cast<std::size_t>(x) + 1]);
    }
    values.push_back(std::move(slot));
  }
  return make_table_problem(m, beta, values);
}

void write_problem_csv(const Problem& p, const std::string& path) {
  write_text(path, problem_to_csv(p));
}

Problem read_problem_csv(const std::string& path) {
  return problem_from_csv(read_text(path));
}

}  // namespace rs::core
