#include "core/serialization.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/math_util.hpp"

namespace rs::core {

namespace {

constexpr const char* kProblemFormatTag = "rightsizer-problem-v1";
constexpr const char* kScheduleFormatTag = "rightsizer-schedule-v1";

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// Strict numeric parsing: the whole field must be consumed — "3x", "1 2",
// or an empty field is malformed input, not a value.
double parse_value(const std::string& s, const char* where) {
  if (s == "inf") return rs::util::kInf;
  if (s == "-inf") return -rs::util::kInf;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(where) + ": malformed value '" + s +
                             "'");
  }
}

int parse_int(const std::string& s, const char* where) {
  try {
    std::size_t consumed = 0;
    const int v = std::stoi(s, &consumed);
    if (consumed != s.size()) throw std::invalid_argument("trailing chars");
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(std::string(where) + ": malformed integer '" + s +
                             "'");
  }
}

// The `format=` token of the comment preamble, if any.  Pre-versioning
// artifacts carry no tag and are accepted as-is; a present tag must match
// exactly (an unknown tag means a future format this reader cannot decode).
void check_format_tag(const std::string& text, const char* expected,
                      const char* where) {
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line[0] != '#') break;  // the comment preamble is over
    std::istringstream meta(line.substr(1));
    std::string token;
    while (meta >> token) {
      if (token.rfind("format=", 0) == 0) {
        const std::string tag = token.substr(7);
        if (tag != expected) {
          throw std::runtime_error(std::string(where) +
                                   ": unsupported format '" + tag +
                                   "' (expected " + expected + ")");
        }
        return;
      }
    }
  }
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::string read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string schedule_to_csv(const Schedule& x) {
  std::string out = "# format=";
  out += kScheduleFormatTag;
  out += '\n';
  rs::util::CsvTable table;
  table.header = {"t", "x"};
  table.rows.reserve(x.size());
  for (std::size_t t = 0; t < x.size(); ++t) {
    table.rows.push_back({std::to_string(t + 1), std::to_string(x[t])});
  }
  out += rs::util::csv_format(table);
  return out;
}

Schedule schedule_from_csv(const std::string& text) {
  check_format_tag(text, kScheduleFormatTag, "schedule_from_csv");
  const rs::util::CsvTable table = rs::util::csv_parse(text, true);
  if (table.header.size() != 2 || table.header[0] != "t") {
    throw std::runtime_error("schedule_from_csv: bad header");
  }
  Schedule x;
  x.reserve(table.rows.size());
  for (const rs::util::CsvRow& row : table.rows) {
    if (row.size() != 2) {
      throw std::runtime_error("schedule_from_csv: bad row arity");
    }
    const int t = parse_int(row[0], "schedule_from_csv");
    if (t != static_cast<int>(x.size()) + 1) {
      throw std::runtime_error("schedule_from_csv: non-contiguous slots");
    }
    const int state = parse_int(row[1], "schedule_from_csv");
    if (state < 0) {
      throw std::runtime_error(
          "schedule_from_csv: negative server count in row " + row[0]);
    }
    x.push_back(state);
  }
  return x;
}

void write_schedule_csv(const Schedule& x, const std::string& path) {
  write_text(path, schedule_to_csv(x));
}

Schedule read_schedule_csv(const std::string& path) {
  return schedule_from_csv(read_text(path));
}

std::string problem_to_csv(const Problem& p) {
  std::ostringstream out;
  out << "# format=" << kProblemFormatTag << "\n";
  out << "# m=" << p.max_servers() << " beta=" << format_value(p.beta())
      << "\n";
  rs::util::CsvTable table;
  table.header = {"t"};
  for (int x = 0; x <= p.max_servers(); ++x) {
    std::string column = "f";
    column += std::to_string(x);
    table.header.push_back(std::move(column));
  }
  table.rows.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    rs::util::CsvRow row = {std::to_string(t)};
    for (int x = 0; x <= p.max_servers(); ++x) {
      row.push_back(format_value(p.cost_at(t, x)));
    }
    table.rows.push_back(std::move(row));
  }
  out << rs::util::csv_format(table);
  return out.str();
}

Problem problem_from_csv(const std::string& text) {
  check_format_tag(text, kProblemFormatTag, "problem_from_csv");
  // Parse the metadata comment line(s).
  std::istringstream stream(text);
  std::string line;
  int m = -1;
  double beta = 0.0;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line[0] != '#') break;
    std::istringstream meta(line.substr(1));
    std::string token;
    while (meta >> token) {
      if (token.rfind("m=", 0) == 0) {
        m = parse_int(token.substr(2), "problem_from_csv");
      }
      if (token.rfind("beta=", 0) == 0) {
        beta = parse_value(token.substr(5), "problem_from_csv");
      }
    }
  }
  if (m < 0 || !(beta > 0.0) || std::isinf(beta)) {
    throw std::runtime_error("problem_from_csv: missing '# m=.. beta=..'");
  }

  const rs::util::CsvTable table = rs::util::csv_parse(text, true);
  if (static_cast<int>(table.header.size()) != m + 2 ||
      table.header[0] != "t") {
    throw std::runtime_error("problem_from_csv: header arity != m+2");
  }
  std::vector<std::vector<double>> values;
  values.reserve(table.rows.size());
  for (const rs::util::CsvRow& row : table.rows) {
    if (static_cast<int>(row.size()) != m + 2) {
      throw std::runtime_error("problem_from_csv: row arity != m+2");
    }
    const int t = parse_int(row[0], "problem_from_csv");
    if (t != static_cast<int>(values.size()) + 1) {
      throw std::runtime_error("problem_from_csv: non-contiguous slots");
    }
    std::vector<double> slot(static_cast<std::size_t>(m) + 1);
    for (int x = 0; x <= m; ++x) {
      const double v = parse_value(row[static_cast<std::size_t>(x) + 1],
                                   "problem_from_csv");
      // Extended-real cost contract [0, +inf]: NaN fails every ordered
      // comparison (so `v < 0` alone would accept it) and -inf passes a
      // NaN-only check; test both.
      if (std::isnan(v) || v < 0.0) {
        throw std::runtime_error(
            "problem_from_csv: cost values must be in [0, +inf], got '" +
            row[static_cast<std::size_t>(x) + 1] + "'");
      }
      slot[static_cast<std::size_t>(x)] = v;
    }
    values.push_back(std::move(slot));
  }
  return make_table_problem(m, beta, values);
}

void write_problem_csv(const Problem& p, const std::string& path) {
  write_text(path, problem_to_csv(p));
}

Problem read_problem_csv(const std::string& path) {
  return problem_from_csv(read_text(path));
}

}  // namespace rs::core
