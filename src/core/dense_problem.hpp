// Dense evaluation layer: flat row-major cost tables over a Problem.
//
// Every inner loop of the paper's algorithms (the O(T·m) DP of Theorem 1,
// the work-function tracker behind LCP, the analysis sweeps) reads whole
// rows f_t(0..m).  Evaluating them one state at a time through
// Problem::cost_at pays a bounds check plus a virtual call per point —
// frequently through nested decorator chains (ScaledCost→StrideCost→
// PaddedCost) or a std::function.  DenseProblem materializes the T×(m+1)
// value matrix once via CostFunction::eval_row (one virtual call per row)
// and hands out contiguous spans, turning the solvers into pure
// memory-bandwidth loops.
//
// Modes:
//   kEager — all rows are filled at construction (parallelized over
//            util::global_pool for large instances) and the object is
//            immutable afterwards, hence safe to share across threads.
//   kLazy  — rows are filled on first access.  This is the mode for online
//            consumers: row(t) only ever touches f_t, so feeding rows
//            1..τ to an online algorithm never evaluates a future cost
//            function and the no-lookahead contract is preserved.  Lazy
//            instances are NOT thread-safe.
//
// Bounds checks are debug assertions here (the Problem API keeps its
// throwing checks); callers cross the boundary once, not per point.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"

namespace rs::core {

class DenseProblem {
 public:
  enum class Mode { kEager, kLazy };

  /// Minimizer-cache policy for eager tables.  kPrecompute fills the
  /// per-row minimizer caches at construction (the table stays fully
  /// immutable, so minimizer queries are thread-safe).  kOnDemand skips
  /// that work — pure row consumers (the DP kernels, run_lcp_dense, the
  /// batch engine's shared tables) never query minimizers, and at small
  /// m the two extra scans per row are a measurable share of a solve.
  /// On-demand minimizer queries mutate the cache and are NOT thread-safe;
  /// row access stays safe either way on eager tables.
  enum class MinimizerCache { kPrecompute, kOnDemand };

  explicit DenseProblem(const Problem& p, Mode mode = Mode::kEager,
                        MinimizerCache minimizers = MinimizerCache::kPrecompute);

  int horizon() const noexcept { return T_; }
  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }
  Mode mode() const noexcept { return mode_; }

  /// Contiguous values f_t(0..m) (paper's 1-based t).  Materializes the row
  /// first in lazy mode.
  std::span<const double> row(int t) const {
    assert(t >= 1 && t <= T_);
    if (mode_ == Mode::kLazy && !ready_[static_cast<std::size_t>(t - 1)]) {
      materialize_row(t);
    }
    return {values_.data() + static_cast<std::size_t>(t - 1) * stride_,
            stride_};
  }

  /// f_t(x) by direct table lookup (debug-assert bounds).
  double at(int t, int x) const {
    assert(x >= 0 && x <= m_);
    return row(t)[static_cast<std::size_t>(x)];
  }

  /// Cached smallest minimizer of f_t on {0,..,m} (paper's x_t^{min-});
  /// tie-breaks identically to smallest_minimizer_scan.  Eager tables
  /// compute the caches at construction (keeping them immutable and
  /// shareable); lazy ones scan the row on first query, so pure row
  /// consumers (e.g. run_lcp_dense) never pay for them.
  int smallest_minimizer(int t) const {
    touch(t);
    ensure_minimizers(t);
    return min_small_[static_cast<std::size_t>(t - 1)];
  }

  /// Cached largest minimizer of f_t (paper's x_t^{min+}); ties move right.
  int largest_minimizer(int t) const {
    touch(t);
    ensure_minimizers(t);
    return min_large_[static_cast<std::size_t>(t - 1)];
  }

  /// True once row t has been filled (always true in eager mode).
  bool materialized(int t) const {
    assert(t >= 1 && t <= T_);
    return ready_[static_cast<std::size_t>(t - 1)] != 0;
  }

  /// Deep row-invariant audit (util/audit.hpp; DESIGN.md §13): table shape
  /// consistent (T×(m+1) values, per-row flags and caches sized T), no
  /// materialized row containing -inf (extended-real costs live in
  /// [0, +inf]; NaN is legal here — poisoned instances are *detected* on
  /// the dense path, not rejected by it), and every computed minimizer
  /// cache equal to a tie-break-exact re-scan of its row.  Raises
  /// rs::util::audit::AuditError naming the violated invariant.  Always
  /// compiled; the RS_AUDIT hook after eager construction engages only
  /// under RIGHTSIZER_AUDIT.
  void audit_rows(const char* site) const;

 private:
  friend struct DenseProblemTestAccess;
  void touch(int t) const {
    assert(t >= 1 && t <= T_);
    if (mode_ == Mode::kLazy && !ready_[static_cast<std::size_t>(t - 1)]) {
      materialize_row(t);
    }
  }

  void materialize_row(int t) const;
  void ensure_minimizers(int t) const;

  int T_;
  int m_;
  double beta_;
  Mode mode_;
  std::size_t stride_;               // m + 1
  // Retained so lazy fills cannot dangle; released after an eager fill
  // (the table is self-contained from then on).
  std::vector<CostPtr> functions_;
  mutable std::vector<double> values_;        // T x (m+1), row-major
  mutable std::vector<std::uint8_t> ready_;   // per-row materialization flag
  mutable std::vector<std::int32_t> min_small_;
  mutable std::vector<std::int32_t> min_large_;
};

/// Test-only corruption hooks for the auditor's negative tests
/// (tests/test_audit.cpp).  Never use outside tests.
struct DenseProblemTestAccess {
  static std::vector<double>& values(DenseProblem& d) noexcept {
    return d.values_;
  }
  static std::vector<std::int32_t>& min_small(DenseProblem& d) noexcept {
    return d.min_small_;
  }
};

}  // namespace rs::core
