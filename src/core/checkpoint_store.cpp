#include "core/checkpoint_store.hpp"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"

namespace rs::core {

namespace {

// Envelope-level validation: magic, version, kind header, payload size,
// CRC.  Payload *structure* stays the consumer's job (the typed restore()
// errors); the store only promises the container is intact.
bool is_well_formed(std::span<const std::uint8_t> bytes) {
  try {
    CheckpointReader reader(bytes, checkpoint_kind(bytes));
    (void)reader;
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory)
    : directory_(std::move(directory)) {
  if (directory_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw std::runtime_error("CheckpointStore: cannot create directory " +
                             directory_ + ": " + ec.message());
  }
}

void CheckpointStore::put(std::string_view key,
                          std::vector<std::uint8_t> bytes) {
  if (key.empty()) {
    throw std::invalid_argument("CheckpointStore::put: empty key");
  }
  if (!is_well_formed(bytes)) {
    throw CheckpointFormatError(
        "CheckpointStore::put: bytes are not a sealed checkpoint envelope");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!directory_.empty()) {
    write_checkpoint_file(path_of(key), bytes);
  }
  entries_[std::string(key)] = std::move(bytes);
}

std::optional<std::vector<std::uint8_t>> CheckpointStore::latest(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    return it->second;
  }
  if (directory_.empty()) return std::nullopt;
  const std::string path = path_of(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_checkpoint_file(path);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  if (!is_well_formed(bytes)) return std::nullopt;
  entries_[std::string(key)] = bytes;
  return bytes;
}

bool CheckpointStore::contains(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

std::size_t CheckpointStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string CheckpointStore::sanitize_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    out.push_back(safe ? c : '_');
  }
  return out;
}

std::string CheckpointStore::path_of(std::string_view key) const {
  if (directory_.empty()) return std::string();
  return directory_ + "/" + sanitize_key(key) + ".ckpt";
}

}  // namespace rs::core
