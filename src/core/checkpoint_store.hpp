// Latest-good checkpoint store — the fleet controller's recovery source.
//
// A store keeps the most recent sealed checkpoint per key in memory and,
// when constructed over a directory, mirrors every put to
// `<dir>/<sanitized-key>.ckpt` with the crash-safe discipline of
// write_checkpoint_file (temp → fsync → atomic rename), so the newest
// on-disk checkpoint is always a *complete* envelope.  latest() prefers the
// in-process copy and falls back to disk — the process-restart path: a
// fresh store over the same directory serves the previous process's last
// good save.  Both paths validate the envelope (magic, version, size,
// CRC) before returning, so "latest" really means "latest good": bit-rotted
// bytes yield nullopt / a typed error instead of reaching a restore().
//
// All members are thread-safe; puts are cadence-driven (one per
// checkpoint_every slots per tenant), so the single store mutex is never on
// a hot path.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rs::core {

class CheckpointStore {
 public:
  /// In-memory only: checkpoints live for this process's lifetime.
  CheckpointStore() = default;

  /// Memory + on-disk mirror under `directory` (created, parents included,
  /// when missing; throws std::runtime_error when creation fails).  An
  /// empty directory means memory-only, same as the default constructor —
  /// callers can pass an optional config path straight through.
  explicit CheckpointStore(std::string directory);

  /// Records `bytes` as the latest checkpoint of `key`, replacing any
  /// previous one, and mirrors it to disk when the store is persistent.
  /// `bytes` must be a well-formed sealed envelope (any kind) — storing
  /// garbage is a caller bug and throws CheckpointFormatError before
  /// anything is recorded.  Empty keys throw std::invalid_argument.
  void put(std::string_view key, std::vector<std::uint8_t> bytes);

  /// The latest good checkpoint of `key`: the in-memory copy when present,
  /// else (persistent stores) the on-disk file from a previous process —
  /// validated and cached into memory on the way through.  nullopt when no
  /// good checkpoint exists under this key.
  std::optional<std::vector<std::uint8_t>> latest(std::string_view key) const;

  /// True when latest(key) would return a value without touching disk.
  bool contains(std::string_view key) const;

  /// Number of in-memory entries.
  std::size_t size() const;

  bool persistent() const noexcept { return !directory_.empty(); }
  const std::string& directory() const noexcept { return directory_; }

  /// Filesystem-safe form of `key`: [A-Za-z0-9._-] pass through, every
  /// other byte becomes '_'.  Distinct keys may collide after
  /// sanitization; the fleet controller avoids this by requiring unique
  /// sanitized tenant names.
  static std::string sanitize_key(std::string_view key);

  /// On-disk path of `key` ("" for a memory-only store).
  std::string path_of(std::string_view key) const;

 private:
  mutable std::mutex mutex_;
  // Heterogeneous lookup so latest(string_view) never allocates a key on
  // the miss path.
  mutable std::map<std::string, std::vector<std::uint8_t>, std::less<>>
      entries_;
  std::string directory_;
};

}  // namespace rs::core
