#include "core/schedule.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::core {

using util::KahanSum;
using util::pos;

namespace {

int resolve_tau(int horizon, std::size_t length, int tau, const char* where) {
  if (static_cast<int>(length) != horizon) {
    throw std::invalid_argument(std::string(where) +
                                ": schedule length != horizon");
  }
  if (tau < 0) return horizon;
  if (tau > horizon) {
    throw std::out_of_range(std::string(where) + ": tau > T");
  }
  return tau;
}

int resolve_tau(const Problem& p, std::size_t length, int tau,
                const char* where) {
  return resolve_tau(p.horizon(), length, tau, where);
}

// Switching costs depend only on beta; shared by the Problem and
// DenseProblem overloads so the summation order (hence every bit of the
// result) is identical.
double switching_sum(double beta, const Schedule& x, int tau, bool up) {
  KahanSum sum;
  int previous = 0;
  for (int t = 1; t <= tau; ++t) {
    const int current = x[static_cast<std::size_t>(t - 1)];
    sum.add(beta * static_cast<double>(up ? pos(current - previous)
                                          : pos(previous - current)));
    previous = current;
  }
  return sum.value();
}

}  // namespace

bool is_within_bounds(const Problem& p, const Schedule& x) {
  if (static_cast<int>(x.size()) != p.horizon()) return false;
  for (int value : x) {
    if (value < 0 || value > p.max_servers()) return false;
  }
  return true;
}

bool is_feasible(const Problem& p, const Schedule& x) {
  if (!is_within_bounds(p, x)) return false;
  for (int t = 1; t <= p.horizon(); ++t) {
    if (std::isinf(p.cost_at(t, x[static_cast<std::size_t>(t - 1)]))) {
      return false;
    }
  }
  return true;
}

double operating_cost(const Problem& p, const Schedule& x, int tau) {
  tau = resolve_tau(p, x.size(), tau, "operating_cost");
  KahanSum sum;
  for (int t = 1; t <= tau; ++t) {
    sum.add(p.cost_at(t, x[static_cast<std::size_t>(t - 1)]));
  }
  return sum.value();
}

double switching_cost_up(const Problem& p, const Schedule& x, int tau) {
  tau = resolve_tau(p, x.size(), tau, "switching_cost_up");
  return switching_sum(p.beta(), x, tau, /*up=*/true);
}

double switching_cost_down(const Problem& p, const Schedule& x, int tau) {
  tau = resolve_tau(p, x.size(), tau, "switching_cost_down");
  return switching_sum(p.beta(), x, tau, /*up=*/false);
}

double cost_up_to(const Problem& p, const Schedule& x, int tau) {
  return operating_cost(p, x, tau) + switching_cost_up(p, x, tau);
}

double cost_down_up_to(const Problem& p, const Schedule& x, int tau) {
  return operating_cost(p, x, tau) + switching_cost_down(p, x, tau);
}

double total_cost(const Problem& p, const Schedule& x) {
  return cost_up_to(p, x, p.horizon());
}

double total_cost_symmetric(const Problem& p, const Schedule& x) {
  resolve_tau(p, x.size(), -1, "total_cost_symmetric");
  KahanSum sum;
  int previous = 0;
  for (int t = 1; t <= p.horizon(); ++t) {
    const int current = x[static_cast<std::size_t>(t - 1)];
    sum.add(p.cost_at(t, current));
    sum.add(0.5 * p.beta() * std::fabs(static_cast<double>(current - previous)));
    previous = current;
  }
  sum.add(0.5 * p.beta() * std::fabs(static_cast<double>(previous)));  // x_{T+1}=0
  return sum.value();
}

double interval_cost(const Problem& p, const Schedule& x, int a, int b) {
  if (a < 0 || b > p.horizon() || a > b) {
    throw std::out_of_range("interval_cost: bad interval");
  }
  if (static_cast<int>(x.size()) != p.horizon()) {
    throw std::invalid_argument("interval_cost: schedule length != horizon");
  }
  KahanSum sum;
  for (int t = std::max(a, 1); t <= b; ++t) {
    sum.add(p.cost_at(t, x[static_cast<std::size_t>(t - 1)]));
  }
  for (int t = std::max(a, 0) + 1; t <= b; ++t) {
    const int previous = t - 1 >= 1 ? x[static_cast<std::size_t>(t - 2)] : 0;
    const int current = x[static_cast<std::size_t>(t - 1)];
    sum.add(p.beta() * static_cast<double>(pos(current - previous)));
  }
  return sum.value();
}

// --- dense-backed accounting ------------------------------------------------

bool is_feasible(const DenseProblem& d, const Schedule& x) {
  if (static_cast<int>(x.size()) != d.horizon()) return false;
  for (int value : x) {
    if (value < 0 || value > d.max_servers()) return false;
  }
  for (int t = 1; t <= d.horizon(); ++t) {
    if (std::isinf(d.at(t, x[static_cast<std::size_t>(t - 1)]))) return false;
  }
  return true;
}

double operating_cost(const DenseProblem& d, const Schedule& x, int tau) {
  tau = resolve_tau(d.horizon(), x.size(), tau, "operating_cost(dense)");
  KahanSum sum;
  for (int t = 1; t <= tau; ++t) {
    sum.add(d.at(t, x[static_cast<std::size_t>(t - 1)]));
  }
  return sum.value();
}

double switching_cost_up(const DenseProblem& d, const Schedule& x, int tau) {
  tau = resolve_tau(d.horizon(), x.size(), tau, "switching_cost_up(dense)");
  return switching_sum(d.beta(), x, tau, /*up=*/true);
}

double switching_cost_down(const DenseProblem& d, const Schedule& x, int tau) {
  tau = resolve_tau(d.horizon(), x.size(), tau, "switching_cost_down(dense)");
  return switching_sum(d.beta(), x, tau, /*up=*/false);
}

double cost_up_to(const DenseProblem& d, const Schedule& x, int tau) {
  return operating_cost(d, x, tau) + switching_cost_up(d, x, tau);
}

double cost_down_up_to(const DenseProblem& d, const Schedule& x, int tau) {
  return operating_cost(d, x, tau) + switching_cost_down(d, x, tau);
}

double total_cost(const DenseProblem& d, const Schedule& x) {
  return cost_up_to(d, x, d.horizon());
}

// --- fractional -------------------------------------------------------------

double operating_cost(const Problem& p, const FractionalSchedule& x, int tau) {
  tau = resolve_tau(p, x.size(), tau, "operating_cost(frac)");
  KahanSum sum;
  for (int t = 1; t <= tau; ++t) {
    sum.add(p.cost_at_real(t, x[static_cast<std::size_t>(t - 1)]));
  }
  return sum.value();
}

double switching_cost_up(const Problem& p, const FractionalSchedule& x,
                         int tau) {
  tau = resolve_tau(p, x.size(), tau, "switching_cost_up(frac)");
  KahanSum sum;
  double previous = 0.0;
  for (int t = 1; t <= tau; ++t) {
    const double current = x[static_cast<std::size_t>(t - 1)];
    sum.add(p.beta() * pos(current - previous));
    previous = current;
  }
  return sum.value();
}

double total_cost(const Problem& p, const FractionalSchedule& x) {
  return operating_cost(p, x) + switching_cost_up(p, x);
}

double total_cost_symmetric(const Problem& p, const FractionalSchedule& x) {
  resolve_tau(p, x.size(), -1, "total_cost_symmetric(frac)");
  KahanSum sum;
  double previous = 0.0;
  for (int t = 1; t <= p.horizon(); ++t) {
    const double current = x[static_cast<std::size_t>(t - 1)];
    sum.add(p.cost_at_real(t, current));
    sum.add(0.5 * p.beta() * std::fabs(current - previous));
    previous = current;
  }
  sum.add(0.5 * p.beta() * std::fabs(previous));
  return sum.value();
}

Schedule floor_schedule(const FractionalSchedule& x) {
  Schedule out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<int>(std::floor(x[i]));
  }
  return out;
}

Schedule ceil_schedule(const FractionalSchedule& x) {
  Schedule out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = static_cast<int>(std::ceil(x[i]));
  }
  return out;
}

FractionalSchedule to_fractional(const Schedule& x) {
  return FractionalSchedule(x.begin(), x.end());
}

}  // namespace rs::core
