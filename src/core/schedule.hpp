// Schedules and exact cost evaluation.
//
// A schedule X = (x_1,..,x_T) assigns the number of active servers per slot
// with the convention x_0 = x_{T+1} = 0.  This header provides the cost
// decompositions used throughout the paper:
//
//   C(X)      = Σ_t f_t(x_t) + β Σ_t (x_t − x_{t−1})⁺              (eq. 1)
//   C^L_τ(X)  = operating + power-UP switching cost up to τ        (eq. 11)
//   C^U_τ(X)  = operating + power-DOWN switching cost up to τ      (eq. 12)
//   C_sym(X)  = Σ_t f_t(x_t) + (β/2) Σ_{t=1}^{T+1} |x_t − x_{t−1}| (Section 5)
//
// For closed schedules C_sym == C because power-ups equal power-downs.
// Fractional (continuous-setting) schedules evaluate through the continuous
// extension f̄_t of eq. (3).
#pragma once

#include <vector>

#include "core/dense_problem.hpp"
#include "core/problem.hpp"

namespace rs::core {

/// Integral schedule; index t-1 holds x_t.
using Schedule = std::vector<int>;

/// Fractional schedule of the continuous setting; index t-1 holds x̄_t.
using FractionalSchedule = std::vector<double>;

/// True iff 0 <= x_t <= m for all t and the schedule length equals T.
bool is_within_bounds(const Problem& p, const Schedule& x);

/// True iff within bounds and all visited states have finite operating cost
/// (e.g. respects x_t >= λ_t in the restricted model).
bool is_feasible(const Problem& p, const Schedule& x);

// --- integral costs ---------------------------------------------------------

/// R_τ(X): operating cost of the first `tau` slots (default: all T).
double operating_cost(const Problem& p, const Schedule& x, int tau = -1);

/// S^L_τ(X) = β Σ_{t<=τ} (x_t − x_{t−1})⁺, switching paid on power-up.
double switching_cost_up(const Problem& p, const Schedule& x, int tau = -1);

/// S^U_τ(X) = β Σ_{t<=τ} (x_{t−1} − x_t)⁺, switching paid on power-down.
double switching_cost_down(const Problem& p, const Schedule& x, int tau = -1);

/// C^L_τ(X) = R_τ + S^L_τ (eq. 11); for τ = T this is the objective (eq. 1).
double cost_up_to(const Problem& p, const Schedule& x, int tau = -1);

/// C^U_τ(X) = R_τ + S^U_τ (eq. 12).
double cost_down_up_to(const Problem& p, const Schedule& x, int tau = -1);

/// The objective C(X) of eq. (1).
double total_cost(const Problem& p, const Schedule& x);

/// Section-5 symmetric accounting: Σ f + (β/2) Σ_{t=1}^{T+1} |Δx|, charging
/// half of β per unit in each direction and closing the schedule at 0.
double total_cost_symmetric(const Problem& p, const Schedule& x);

/// C_{[a,b]}(X) of Section 2.3: Σ_{t=a}^{b} f_t(x_t) + β Σ_{t=a+1}^{b}
/// (x_t − x_{t−1})⁺ with f_0 := 0 (a may be 0).
double interval_cost(const Problem& p, const Schedule& x, int a, int b);

// --- dense-backed accounting ------------------------------------------------
//
// Overloads over a DenseProblem read f_t(x_t) as direct table lookups — no
// virtual dispatch, no throwing bounds checks.  They sum in the exact order
// of the Problem overloads (Kahan operating sum + Kahan switching sum), so
// the results are bit-identical; callers that repeatedly score schedules
// against one instance (brute force, analysis loops) build the table once.

bool is_feasible(const DenseProblem& d, const Schedule& x);
double operating_cost(const DenseProblem& d, const Schedule& x, int tau = -1);
double switching_cost_up(const DenseProblem& d, const Schedule& x,
                         int tau = -1);
double switching_cost_down(const DenseProblem& d, const Schedule& x,
                           int tau = -1);
double cost_up_to(const DenseProblem& d, const Schedule& x, int tau = -1);
double cost_down_up_to(const DenseProblem& d, const Schedule& x, int tau = -1);
double total_cost(const DenseProblem& d, const Schedule& x);

// --- fractional costs -------------------------------------------------------

double operating_cost(const Problem& p, const FractionalSchedule& x,
                      int tau = -1);
double switching_cost_up(const Problem& p, const FractionalSchedule& x,
                         int tau = -1);
double total_cost(const Problem& p, const FractionalSchedule& x);
double total_cost_symmetric(const Problem& p, const FractionalSchedule& x);

/// Round every entry down / up (Lemma 4 operands).
Schedule floor_schedule(const FractionalSchedule& x);
Schedule ceil_schedule(const FractionalSchedule& x);

/// Exact fractional copy of an integral schedule.
FractionalSchedule to_fractional(const Schedule& x);

}  // namespace rs::core
