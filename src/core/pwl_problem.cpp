#include "core/pwl_problem.hpp"

#include <atomic>

#include "util/thread_pool.hpp"

namespace rs::core {

namespace {

// Conversions are cheap (a handful of at() probes per slot for the compact
// families), so the pool only pays off on long horizons.
constexpr std::size_t kParallelThreshold = 512;

}  // namespace

std::optional<PwlProblem> PwlProblem::try_convert(const Problem& p,
                                                  int max_breakpoints) {
  const int m = p.max_servers();
  const int budget =
      max_breakpoints > 0 ? max_breakpoints : compact_pwl_budget_for(m);
  const std::size_t T = static_cast<std::size_t>(p.horizon());
  std::vector<ConvexPwl> forms(T);

  const auto convert_slot = [&p, m, budget,
                             &forms](std::size_t i) -> bool {
    std::optional<ConvexPwl> form =
        p.f(static_cast<int>(i) + 1).as_convex_pwl(m, budget);
    if (!form) return false;
    forms[i] = std::move(*form);
    return true;
  };

  if (T >= kParallelThreshold) {
    std::atomic<bool> ok{true};
    rs::util::global_pool().parallel_for(0, T, [&](std::size_t i) {
      // No early exit across workers: a failed slot just flips the flag
      // (the wasted sibling conversions are bounded by one chunk).
      if (ok.load(std::memory_order_relaxed) && !convert_slot(i)) {
        ok.store(false, std::memory_order_relaxed);
      }
    });
    if (!ok.load()) return std::nullopt;
  } else {
    for (std::size_t i = 0; i < T; ++i) {
      if (!convert_slot(i)) return std::nullopt;
    }
  }
  return PwlProblem(m, p.beta(), budget, std::move(forms));
}

}  // namespace rs::core
