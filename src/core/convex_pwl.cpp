#include "core/convex_pwl.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/audit.hpp"

namespace rs::core {

using rs::util::kInf;

void audit_convex_pwl(const ConvexPwl& f, const char* site) {
  namespace audit = rs::util::audit;
  if (f.is_infinite()) return;  // the empty function has no representation
  audit::require(f.lo() <= f.hi(), "pwl-domain-ordered", site);
  audit::require(std::isfinite(f.value_lo()), "pwl-anchor-finite", site);
  audit::require(std::isfinite(f.first_slope()), "pwl-slope-finite", site);
  if (f.lo() == f.hi()) {
    // rs-lint: float-eq-ok (representation contract: a point domain stores
    // exactly 0.0, assigned, never computed)
    audit::require(f.first_slope() == 0.0 && f.slope_increments().empty(),
                   "pwl-point-domain-flat", site);
    return;
  }
  for (const auto& [position, increment] : f.slope_increments()) {
    audit::require_with(
        position > f.lo() && position < f.hi(), "pwl-breakpoint-in-domain",
        site, [&] { return "position " + std::to_string(position); });
    audit::require_with(
        increment > 0.0 && std::isfinite(increment), "pwl-increment-positive",
        site, [&] {
          return "position " + std::to_string(position) + " increment " +
                 std::to_string(increment);
        });
  }
}

ConvexPwl ConvexPwl::point(int x, double value) {
  return ConvexPwl(x, x, value);
}

ConvexPwl ConvexPwl::constant(int lo, int hi, double value) {
  if (lo > hi) throw std::invalid_argument("ConvexPwl::constant: lo > hi");
  return ConvexPwl(lo, hi, value);  // slope0_ = 0 covers the whole range
}

ConvexPwl ConvexPwl::from_parts(int lo, int hi, double v_lo, double slope0,
                                std::map<int, double> dslope) {
  if (lo > hi) throw std::invalid_argument("ConvexPwl::from_parts: lo > hi");
  if (!std::isfinite(v_lo)) {
    throw std::invalid_argument("ConvexPwl::from_parts: non-finite value");
  }
  if (!std::isfinite(slope0)) {
    throw std::invalid_argument("ConvexPwl::from_parts: non-finite slope");
  }
  // rs-lint: float-eq-ok (representation contract: a point domain stores
  // exactly 0.0)
  if (lo == hi && (slope0 != 0.0 || !dslope.empty())) {
    throw std::invalid_argument(
        "ConvexPwl::from_parts: point domain carries slopes");
  }
  for (const auto& [position, increment] : dslope) {
    if (position <= lo || position >= hi) {
      throw std::invalid_argument(
          "ConvexPwl::from_parts: increment position outside (lo, hi)");
    }
    if (!(increment > 0.0) || !std::isfinite(increment)) {
      throw std::invalid_argument(
          "ConvexPwl::from_parts: increments must be positive and finite");
    }
  }
  ConvexPwl out(lo, hi, v_lo);
  out.slope0_ = slope0;
  out.dslope_ = std::move(dslope);
  RS_AUDIT(audit_convex_pwl(out, "ConvexPwl::from_parts"));
  return out;
}

double ConvexPwl::value_at(int x) const {
  if (infinite_ || x < lo_ || x > hi_) return kInf;
  double value = v_lo_;
  double slope = slope0_;
  int position = lo_;
  for (const auto& [p, d] : dslope_) {
    if (p > x) break;
    value += slope * static_cast<double>(p - position);
    slope += d;
    position = p;
  }
  value += slope * static_cast<double>(x - position);
  return value;
}

void ConvexPwl::eval_at_sorted(std::span<const int> xs,
                               std::span<double> out) const {
  assert(out.size() >= xs.size());
  std::size_t i = 0;
  if (infinite_) {
    for (; i < xs.size(); ++i) out[i] = kInf;
    return;
  }
  for (; i < xs.size() && xs[i] < lo_; ++i) out[i] = kInf;
  // One forward accumulation shared by all in-domain positions.  Values
  // agree with value_at up to FP association order (exactly on
  // integer-valued forms) — the same contract the conversions carry.
  double value = v_lo_;
  double slope = slope0_;
  int position = lo_;
  auto it = dslope_.begin();
  for (; i < xs.size() && xs[i] <= hi_; ++i) {
    const int x = xs[i];
    assert(x >= position && "eval_at_sorted: positions must ascend");
    while (it != dslope_.end() && it->first <= x) {
      value += slope * static_cast<double>(it->first - position);
      position = it->first;
      slope += it->second;
      ++it;
    }
    value += slope * static_cast<double>(x - position);
    position = x;
    out[i] = value;
  }
  for (; i < xs.size(); ++i) out[i] = kInf;
}

ConvexPwl ConvexPwl::resample_stride(int stride) const {
  assert(stride >= 1);
  if (infinite_) return infinite();
  if (stride == 1) return *this;
  // In-library domains live in [0, m], so plain division is floor/ceil.
  const int y_lo = (lo_ + stride - 1) / stride;
  const int y_hi = hi_ / stride;
  if (y_lo > y_hi) return infinite();

  // Slope sum over the x-range [x0, x1).  Computed as slope·length terms
  // (never as a difference of accumulated values), so rounding stays
  // relative to slope magnitudes — the scale the builder's merge epsilon
  // is calibrated against.  Cells are queried in ascending, disjoint
  // order, so the walk resumes where the previous cell ended (O(K) across
  // the whole resample, not per cell) — increments consumed inside a cell
  // lie strictly left of every later cell.
  auto it = dslope_.begin();
  double running_slope = slope0_;
  const auto cell_delta = [this, &it, &running_slope](int x0, int x1) {
    while (it != dslope_.end() && it->first <= x0) {
      running_slope += it->second;
      ++it;
    }
    double delta = 0.0;
    int position = x0;
    while (it != dslope_.end() && it->first < x1) {
      delta += running_slope * static_cast<double>(it->first - position);
      position = it->first;
      running_slope += it->second;
      ++it;
    }
    delta += running_slope * static_cast<double>(x1 - position);
    return delta;
  };

  ConvexPwlBuilder builder;
  builder.start(y_lo, value_at(y_lo * stride));
  if (y_lo < y_hi) {
    // Grid cells between candidate positions share one slope sum: a
    // breakpoint at p only perturbs the cell containing it (and shifts the
    // steady-state slope from the next cell on), so floor(p/stride) and
    // floor(p/stride)+1 bracket every distinct per-cell delta.
    std::vector<int> candidates;
    candidates.reserve(2 * dslope_.size() + 2);
    candidates.push_back(y_lo);
    for (const auto& [p, d] : dslope_) {
      const int q = p / stride;
      if (q > y_lo && q < y_hi) candidates.push_back(q);
      if (q + 1 > y_lo && q + 1 < y_hi) candidates.push_back(q + 1);
    }
    candidates.push_back(y_hi);
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
      const int a = candidates[i];
      builder.run(cell_delta(a * stride, (a + 1) * stride),
                  candidates[i + 1]);
    }
  }
  // (1 << 30) mirrors kUnboundedBreakpoints, which lives one layer up in
  // cost_function.hpp.
  std::optional<ConvexPwl> result = builder.finish(1 << 30);
  // Restriction of a convex function to an arithmetic grid is convex; the
  // builder could only decline on rounding noise beyond the merge epsilon,
  // which the slope-sum evaluation above keeps orders of magnitude below.
  if (!result) {
    throw std::logic_error("ConvexPwl::resample_stride: non-convex resample");
  }
  return *result;
}

ConvexPwl::ArgminInterval ConvexPwl::argmin() const {
  assert(!infinite_ && "argmin of the infinite function");
  ArgminInterval result;
  if (lo_ == hi_) {
    result.lo = lo_;
    result.hi = lo_;
    result.value = v_lo_;
    return result;
  }
  // Walk the slope sequence: the minimum starts where slopes stop being
  // negative and extends across the (exactly) zero-slope run, matching the
  // dense tracker's strict-< (smallest) / <= (largest) tie-breaking.
  double value = v_lo_;
  double slope = slope0_;
  int position = lo_;
  auto it = dslope_.begin();
  while (slope < 0.0) {
    const int next = it == dslope_.end() ? hi_ : it->first;
    value += slope * static_cast<double>(next - position);
    position = next;
    if (it == dslope_.end()) {
      // Strictly decreasing to the right edge: minimum at hi.
      result.lo = hi_;
      result.hi = hi_;
      result.value = value;
      return result;
    }
    slope += it->second;
    ++it;
  }
  result.lo = position;
  result.value = value;
  // rs-lint: float-eq-ok (a flat plateau is an exactly-zero slope run by
  // the builder's merge contract)
  while (slope == 0.0) {
    const int next = it == dslope_.end() ? hi_ : it->first;
    position = next;
    if (it == dslope_.end()) break;
    slope += it->second;
    ++it;
  }
  result.hi = position;
  return result;
}

void ConvexPwl::materialize(int m, std::span<double> out) const {
  assert(out.size() >= static_cast<std::size_t>(m) + 1);
  std::fill(out.begin(), out.begin() + (m + 1), kInf);
  if (infinite_) return;
  const int from = std::max(lo_, 0);
  const int to = std::min(hi_, m);
  if (from > to) return;
  // One forward accumulation (not value_at per point, which would be
  // O(m·K)).
  double value = v_lo_;
  double slope = slope0_;
  int position = lo_;
  auto it = dslope_.begin();
  auto flush = [&](int until) {  // advance `position` to `until`
    value += slope * static_cast<double>(until - position);
    position = until;
  };
  // Skip to `from` first (handles lo_ < 0 callers; in-library domains are
  // already inside [0, m]).
  while (it != dslope_.end() && it->first <= from) {
    flush(it->first);
    slope += it->second;
    ++it;
  }
  flush(from);
  for (int x = from; x <= to; ++x) {
    out[static_cast<std::size_t>(x)] = value;
    if (x == to) break;
    if (it != dslope_.end() && it->first == x) {  // slope change at x
      slope += it->second;
      ++it;
    }
    value += slope;
    position = x + 1;
  }
}

std::vector<int> ConvexPwl::kink_positions() const {
  std::vector<int> positions;
  if (infinite_) return positions;
  positions.reserve(dslope_.size() + 2);
  positions.push_back(lo_);
  for (const auto& [p, d] : dslope_) positions.push_back(p);
  if (hi_ != lo_) positions.push_back(hi_);
  return positions;
}

double ConvexPwl::last_slope() const {
  assert(!infinite_ && lo_ < hi_);
  double slope = slope0_;
  for (const auto& [p, d] : dslope_) slope += d;
  return slope;
}

void ConvexPwl::clip_back(double s_max) {
  if (infinite_ || lo_ == hi_) return;
  if (slope0_ > s_max) {
    // Every slope exceeds the cap: the whole function becomes the s_max
    // tangent through (lo, v_lo).
    slope0_ = s_max;
    dslope_.clear();
    return;
  }
  double slope = slope0_;
  for (auto it = dslope_.begin(); it != dslope_.end(); ++it) {
    const double next = slope + it->second;
    if (next > s_max) {
      const double kept = s_max - slope;  // >= 0
      if (kept > 0.0) {
        it->second = kept;
        ++it;
      }
      dslope_.erase(it, dslope_.end());
      return;
    }
    slope = next;
  }
}

void ConvexPwl::clip_front(double s_min) {
  if (infinite_ || lo_ == hi_) return;
  if (slope0_ >= s_min) return;
  // Find the first position xc whose outgoing slope is >= s_min,
  // accumulating W(xc) on the way; left of xc the function becomes the
  // s_min tangent through (xc, W(xc)).
  double value = v_lo_;
  double slope = slope0_;
  int position = lo_;
  auto it = dslope_.begin();
  while (it != dslope_.end()) {
    const int p = it->first;
    value += slope * static_cast<double>(p - position);
    position = p;
    slope += it->second;
    it = dslope_.erase(it);
    if (slope >= s_min) {
      const double excess = slope - s_min;
      if (excess > 0.0) dslope_.emplace(p, excess);
      v_lo_ = value - s_min * static_cast<double>(p - lo_);
      slope0_ = s_min;
      return;
    }
  }
  // Slopes stay below s_min all the way: the tangent passes through
  // (hi, W(hi)).
  value += slope * static_cast<double>(hi_ - position);
  v_lo_ = value - s_min * static_cast<double>(hi_ - lo_);
  slope0_ = s_min;
}

void ConvexPwl::extend_left(int new_lo, double slope) {
  if (infinite_ || new_lo >= lo_) return;
  if (lo_ == hi_) {
    slope0_ = slope;
  } else if (slope0_ - slope > 0.0) {
    dslope_.emplace(lo_, slope0_ - slope);
    slope0_ = slope;
  }
  v_lo_ -= slope * static_cast<double>(lo_ - new_lo);
  lo_ = new_lo;
}

void ConvexPwl::extend_right(int new_hi, double slope) {
  if (infinite_ || new_hi <= hi_) return;
  if (lo_ == hi_) {
    slope0_ = slope;
  } else {
    const double step = slope - last_slope();
    if (step > 0.0) dslope_.emplace(hi_, step);
  }
  hi_ = new_hi;
}

void ConvexPwl::restrict_domain(int new_lo, int new_hi) {
  assert(!infinite_ && new_lo >= lo_ && new_hi <= hi_ && new_lo <= new_hi);
  if (new_hi < hi_) {
    dslope_.erase(dslope_.lower_bound(new_hi), dslope_.end());
    hi_ = new_hi;
  }
  if (new_lo > lo_) {
    double value = v_lo_;
    double slope = slope0_;
    int position = lo_;
    auto it = dslope_.begin();
    while (it != dslope_.end() && it->first <= new_lo) {
      value += slope * static_cast<double>(it->first - position);
      position = it->first;
      slope += it->second;
      it = dslope_.erase(it);
    }
    value += slope * static_cast<double>(new_lo - position);
    v_lo_ = value;
    slope0_ = slope;
    lo_ = new_lo;
  }
  if (lo_ == hi_) slope0_ = 0.0;
}

void ConvexPwl::add(const ConvexPwl& g) {
  if (infinite_) return;
  if (g.infinite_) {
    *this = infinite();
    return;
  }
  const int new_lo = std::max(lo_, g.lo_);
  const int new_hi = std::min(hi_, g.hi_);
  if (new_lo > new_hi) {
    *this = infinite();
    return;
  }
  restrict_domain(new_lo, new_hi);
  // g's value and slope at new_lo, folding any g breakpoints at or left of
  // new_lo into the base slope.
  double g_value = g.v_lo_;
  double g_slope = g.slope0_;
  int position = g.lo_;
  auto it = g.dslope_.begin();
  while (it != g.dslope_.end() && it->first <= new_lo) {
    g_value += g_slope * static_cast<double>(it->first - position);
    position = it->first;
    g_slope += it->second;
    ++it;
  }
  g_value += g_slope * static_cast<double>(new_lo - position);
  v_lo_ += g_value;
  if (lo_ == hi_) return;  // point result: slopes are irrelevant
  slope0_ += g_slope;
  for (; it != g.dslope_.end() && it->first < new_hi; ++it) {
    dslope_[it->first] += it->second;
  }
  RS_AUDIT(audit_convex_pwl(*this, "ConvexPwl::add"));
}

bool ConvexPwl::same_shape(const ConvexPwl& other) const noexcept {
  if (infinite_ || other.infinite_) return infinite_ == other.infinite_;
  // Bitwise slope comparison on purpose: the fixpoint argument needs the
  // *exact* FP state to repeat, not an approximately equal one.
  return lo_ == other.lo_ && hi_ == other.hi_ && slope0_ == other.slope0_ &&
         dslope_ == other.dslope_;
}

void ConvexPwl::shift_value(double delta) noexcept {
  if (infinite_) return;
  v_lo_ += delta;
}

bool ConvexPwl::bitwise_equal(const ConvexPwl& other) const noexcept {
  if (!same_shape(other)) return false;
  if (infinite_) return true;
  return std::bit_cast<std::uint64_t>(v_lo_) ==
         std::bit_cast<std::uint64_t>(other.v_lo_);
}

void ConvexPwl::relax_charge_up(double beta, int lo, int hi) {
  if (infinite_) return;
  clip_back(beta);
  clip_front(0.0);
  extend_left(lo, 0.0);
  extend_right(hi, beta);
  RS_AUDIT(audit_convex_pwl(*this, "ConvexPwl::relax_charge_up"));
}

void ConvexPwl::relax_charge_down(double beta, int lo, int hi) {
  if (infinite_) return;
  clip_front(-beta);
  clip_back(0.0);
  extend_left(lo, -beta);
  extend_right(hi, 0.0);
  RS_AUDIT(audit_convex_pwl(*this, "ConvexPwl::relax_charge_down"));
}

// ---------------------------------------------------------------------------

void ConvexPwlBuilder::start(int lo, double value) {
  started_ = true;
  rejected_ = !std::isfinite(value);
  lo_ = lo;
  end_ = lo;
  v_lo_ = value;
  runs_.clear();
}

void ConvexPwlBuilder::run(double slope, int x_end) {
  assert(started_ && x_end > end_);
  if (rejected_) return;
  if (!std::isfinite(slope)) {
    rejected_ = true;
    return;
  }
  if (!runs_.empty()) {
    const double previous = runs_.back().second;
    // Mixed tolerance: relative in the slope magnitudes with an absolute
    // floor of kConvexPwlMergeEps.  Without the 1.0 operand the tolerance
    // would degenerate for adjacent slopes straddling zero (prev ~ +1e-13,
    // next ~ −1e-13), rejecting rounding noise as concavity; see the
    // kConvexPwlMergeEps comment and the NearZeroSlopePairs tests.
    const double scale =
        std::max({std::fabs(previous), std::fabs(slope), 1.0});
    if (slope < previous - kConvexPwlMergeEps * scale) {
      rejected_ = true;  // genuinely non-convex
      return;
    }
    if (slope <= previous) {
      // Duplicate slope (or a sub-epsilon dip): merge into the previous
      // run; the perturbation is bounded by the merge epsilon per segment.
      end_ = x_end;
      return;
    }
  }
  runs_.emplace_back(end_, slope);
  end_ = x_end;
}

std::optional<ConvexPwl> ConvexPwlBuilder::finish(int max_breakpoints) {
  if (!started_ || rejected_) return std::nullopt;
  if (static_cast<int>(runs_.size()) > max_breakpoints + 1) {
    return std::nullopt;
  }
  ConvexPwl result = ConvexPwl::point(lo_, v_lo_);
  result.hi_ = end_;
  if (!runs_.empty()) {
    result.slope0_ = runs_.front().second;
    for (std::size_t i = 1; i < runs_.size(); ++i) {
      result.dslope_.emplace(runs_[i].first,
                             runs_[i].second - runs_[i - 1].second);
    }
  }
  RS_AUDIT(audit_convex_pwl(result, "ConvexPwlBuilder::finish"));
  return result;
}

}  // namespace rs::core
