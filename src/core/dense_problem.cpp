#include "core/dense_problem.hpp"

#include <cmath>
#include <string>

#include "util/audit.hpp"
#include "util/math_util.hpp"
#include "util/thread_pool.hpp"

namespace rs::core {

namespace {

// Eager construction switches to the pool above this many matrix entries;
// below it the task-dispatch overhead dominates the row fills.
constexpr std::size_t kParallelThreshold = 1u << 15;

// Minimizer scans with the exact tie-breaking of smallest_minimizer_scan /
// largest_minimizer_scan (core/cost_function.cpp), on a materialized row.
std::int32_t row_smallest_minimizer(std::span<const double> row) {
  std::size_t best = 0;
  for (std::size_t x = 1; x < row.size(); ++x) {
    if (row[x] < row[best]) best = x;
  }
  return static_cast<std::int32_t>(best);
}

std::int32_t row_largest_minimizer(std::span<const double> row) {
  std::size_t best = 0;
  for (std::size_t x = 1; x < row.size(); ++x) {
    if (row[x] <= row[best]) best = x;  // ties move right
  }
  return static_cast<std::int32_t>(best);
}

}  // namespace

DenseProblem::DenseProblem(const Problem& p, Mode mode,
                           MinimizerCache minimizers)
    : T_(p.horizon()),
      m_(p.max_servers()),
      beta_(p.beta()),
      mode_(mode),
      stride_(static_cast<std::size_t>(m_) + 1) {
  functions_.reserve(static_cast<std::size_t>(T_));
  for (int t = 1; t <= T_; ++t) functions_.push_back(p.f_ptr(t));
  values_.resize(static_cast<std::size_t>(T_) * stride_);
  ready_.assign(static_cast<std::size_t>(T_), 0);
  min_small_.assign(static_cast<std::size_t>(T_), -1);
  min_large_.assign(static_cast<std::size_t>(T_), -1);
  if (mode_ != Mode::kEager || T_ == 0) return;

  // With kPrecompute the minimizer caches are filled here too (the row is
  // cache-hot), so an eager table is fully immutable afterwards and
  // shareable across threads; kOnDemand defers them to the first query.
  const bool precompute = minimizers == MinimizerCache::kPrecompute;
  const auto build_row = [this, precompute](std::size_t i) {
    materialize_row(static_cast<int>(i) + 1);
    if (precompute) ensure_minimizers(static_cast<int>(i) + 1);
  };
  if (values_.size() >= kParallelThreshold && T_ > 1) {
    rs::util::global_pool().parallel_for(0, static_cast<std::size_t>(T_),
                                         build_row);
  } else {
    for (std::size_t i = 0; i < static_cast<std::size_t>(T_); ++i) {
      build_row(i);
    }
  }
  // Every row is materialized; the cost functions are no longer needed.
  functions_ = std::vector<CostPtr>();
  RS_AUDIT(audit_rows("DenseProblem::DenseProblem"));
}

void DenseProblem::audit_rows(const char* site) const {
  namespace audit = rs::util::audit;
  const std::size_t rows = static_cast<std::size_t>(T_);
  audit::require(stride_ == static_cast<std::size_t>(m_) + 1 &&
                     values_.size() == rows * stride_ &&
                     ready_.size() == rows && min_small_.size() == rows &&
                     min_large_.size() == rows,
                 "dense-table-shape", site);
  for (std::size_t i = 0; i < rows; ++i) {
    if (ready_[i] == 0) {
      // An unmaterialized lazy row carries no invariants yet, but its
      // minimizer caches cannot have been computed either.
      audit::require(min_small_[i] < 0 && min_large_[i] < 0,
                     "dense-minimizer-before-row", site);
      continue;
    }
    const std::span<const double> row{values_.data() + i * stride_, stride_};
    bool poisoned = false;
    for (const double v : row) {
      // NaN is deliberately allowed: poisoned instances travel the dense
      // path so the solvers' poison accumulators can classify them.
      audit::require(v != -rs::util::kInf && !(v < 0.0),
                     "dense-row-nonnegative", site);
      poisoned = poisoned || v != v;  // rs-lint: float-eq-ok (NaN probe)
    }
    // A poisoned row has no well-defined argmin (NaN poisons every
    // comparison), so the cache cross-check only applies to clean rows.
    if (!poisoned && min_small_[i] >= 0) {
      audit::require_with(
          min_small_[i] == row_smallest_minimizer(row) &&
              min_large_[i] == row_largest_minimizer(row),
          "dense-minimizer-cache", site,
          [&] { return "row " + std::to_string(i + 1); });
    }
  }
}

void DenseProblem::materialize_row(int t) const {
  const std::size_t i = static_cast<std::size_t>(t - 1);
  const std::span<double> out{values_.data() + i * stride_, stride_};
  functions_[i]->eval_row(m_, out);
  ready_[i] = 1;
}

void DenseProblem::ensure_minimizers(int t) const {
  const std::size_t i = static_cast<std::size_t>(t - 1);
  if (min_small_[i] >= 0) return;
  const std::span<const double> values{values_.data() + i * stride_, stride_};
  min_small_[i] = row_smallest_minimizer(values);
  min_large_[i] = row_largest_minimizer(values);
}

}  // namespace rs::core
