// CSV serialization of schedules and (table-materialized) problem
// instances, so experiment artifacts can be exported, diffed and re-loaded.
//
// Formats:
//   schedule:  comment "# format=rightsizer-schedule-v1", then header
//              "t,x"; one row per slot (t contiguous from 1, x >= 0).
//   problem:   comments "# format=rightsizer-problem-v1" and
//              "# m=<m> beta=<beta>", then header "t,f0,f1,..,fm"; one row
//              per slot with f_t(0..m).  +inf serializes as the literal
//              "inf"; finite values round-trip bit-exactly (17 significant
//              digits).
//
// Readers are strict (the PR-6 trace-reader contract): every numeric field
// must parse completely (no trailing garbage), slot indices must be
// contiguous, schedule states must be non-negative, and cost values must
// lie in the extended-real contract [0, +inf] — NaN and -inf are rejected,
// never loaded into an instance.  The `# format=` tag is validated when
// present and rejected when unknown; artifacts written before versioning
// (no tag) still load.
#pragma once

#include <string>

#include "core/problem.hpp"
#include "core/schedule.hpp"

namespace rs::core {

std::string schedule_to_csv(const Schedule& x);
Schedule schedule_from_csv(const std::string& text);

void write_schedule_csv(const Schedule& x, const std::string& path);
Schedule read_schedule_csv(const std::string& path);

/// Materializes every slot cost on {0,..,m}; lossless for table-backed
/// instances, a faithful snapshot for lazily generated ones.
std::string problem_to_csv(const Problem& p);
Problem problem_from_csv(const std::string& text);

void write_problem_csv(const Problem& p, const std::string& path);
Problem read_problem_csv(const std::string& path);

}  // namespace rs::core
