#include "core/checkpoint.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "util/audit.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace rs::core {

namespace {

// "RSCK" little-endian.
constexpr std::uint32_t kMagic = 0x4B435352u;
// magic + version + kind + payload_size + crc32.
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 4;

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint32_t>(in[pos]) |
         (static_cast<std::uint32_t>(in[pos + 1]) << 8) |
         (static_cast<std::uint32_t>(in[pos + 2]) << 16) |
         (static_cast<std::uint32_t>(in[pos + 3]) << 24);
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t pos) {
  return static_cast<std::uint64_t>(get_u32(in, pos)) |
         (static_cast<std::uint64_t>(get_u32(in, pos + 4)) << 32);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : bytes) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void CheckpointWriter::u8(std::uint8_t v) { payload_.push_back(v); }

void CheckpointWriter::u32(std::uint32_t v) { put_u32(payload_, v); }

void CheckpointWriter::u64(std::uint64_t v) { put_u64(payload_, v); }

void CheckpointWriter::i32(std::int32_t v) {
  put_u32(payload_, static_cast<std::uint32_t>(v));
}

void CheckpointWriter::i64(std::int64_t v) {
  put_u64(payload_, static_cast<std::uint64_t>(v));
}

void CheckpointWriter::f64(double v) {
  put_u64(payload_, std::bit_cast<std::uint64_t>(v));
}

void CheckpointWriter::bytes(std::span<const std::uint8_t> data) {
  payload_.insert(payload_.end(), data.begin(), data.end());
}

std::vector<std::uint8_t> CheckpointWriter::seal(std::uint32_t kind) const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload_.size());
  put_u32(out, kMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, kind);
  put_u64(out, static_cast<std::uint64_t>(payload_.size()));
  put_u32(out, crc32(payload_));
  out.insert(out.end(), payload_.begin(), payload_.end());
  RS_AUDIT(audit_envelope(out, kind, "CheckpointWriter::seal"));
  return out;
}

void audit_envelope(std::span<const std::uint8_t> bytes, std::uint32_t kind,
                    const char* site) {
  try {
    // The constructor validates magic, version, kind, payload size, and
    // CRC-32 — the full envelope contract a future restore depends on.
    const CheckpointReader reader(bytes, kind);
    (void)reader;
  } catch (const CheckpointError& e) {
    rs::util::audit::fail("checkpoint-envelope-roundtrip", site, e.what());
  }
}

CheckpointReader::CheckpointReader(std::span<const std::uint8_t> data,
                                   std::uint32_t expected_kind) {
  if (data.size() < kHeaderSize) {
    throw CheckpointFormatError(
        "checkpoint: truncated header (" + std::to_string(data.size()) +
        " of " + std::to_string(kHeaderSize) + " bytes)");
  }
  if (get_u32(data, 0) != kMagic) {
    throw CheckpointFormatError("checkpoint: bad magic");
  }
  const std::uint32_t version = get_u32(data, 4);
  if (version != kCheckpointVersion) {
    throw CheckpointFormatError("checkpoint: unsupported format version " +
                                std::to_string(version));
  }
  const std::uint32_t kind = get_u32(data, 8);
  if (kind != expected_kind) {
    throw CheckpointFormatError(
        "checkpoint: payload kind " + std::to_string(kind) + ", expected " +
        std::to_string(expected_kind));
  }
  const std::uint64_t size = get_u64(data, 12);
  if (size != data.size() - kHeaderSize) {
    throw CheckpointFormatError(
        "checkpoint: payload size " + std::to_string(size) + " does not "
        "match " + std::to_string(data.size() - kHeaderSize) +
        " available bytes");
  }
  payload_ = data.subspan(kHeaderSize);
  if (crc32(payload_) != get_u32(data, 20)) {
    throw CheckpointCorruptionError("checkpoint: payload checksum mismatch");
  }
}

void CheckpointReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw CheckpointFormatError("checkpoint: payload field truncated");
  }
}

std::uint8_t CheckpointReader::u8() {
  require(1);
  return payload_[pos_++];
}

std::uint32_t CheckpointReader::u32() {
  require(4);
  const std::uint32_t v = get_u32(payload_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t CheckpointReader::u64() {
  require(8);
  const std::uint64_t v = get_u64(payload_, pos_);
  pos_ += 8;
  return v;
}

std::int32_t CheckpointReader::i32() {
  return static_cast<std::int32_t>(u32());
}

std::int64_t CheckpointReader::i64() {
  return static_cast<std::int64_t>(u64());
}

double CheckpointReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> CheckpointReader::bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                payload_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void CheckpointReader::finish() const {
  if (remaining() != 0) {
    throw CheckpointFormatError("checkpoint: " +
                                std::to_string(remaining()) +
                                " unconsumed payload bytes");
  }
}

std::uint32_t checkpoint_kind(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderSize) {
    throw CheckpointFormatError("checkpoint: truncated header");
  }
  if (get_u32(data, 0) != kMagic) {
    throw CheckpointFormatError("checkpoint: bad magic");
  }
  return get_u32(data, 8);
}

namespace {

// Flushes a written file's data and metadata to stable storage where the
// platform offers it; a failed fsync is a real write failure (the data may
// not survive a crash), so it throws like any other I/O error.
void sync_to_disk(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot reopen for fsync: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw std::runtime_error("fsync failed: " + path);
#else
  (void)path;
#endif
}

// Makes the rename itself durable: fsync the containing directory so the
// new directory entry survives a crash (best-effort on platforms where
// directories cannot be opened).
void sync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

void write_checkpoint_file(const std::string& path,
                           std::span<const std::uint8_t> bytes) {
  // Crash-safe save discipline: temp file → fsync → atomic rename.  The
  // file named `path` is only ever replaced by a complete, durable image;
  // a crash mid-save leaves the previous checkpoint intact (plus at worst
  // a stray .tmp the next save overwrites).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + tmp);
    }
  }
  try {
    sync_to_disk(tmp);
  } catch (...) {  // rs-lint: catch-all-ok (cleanup + rethrow)
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("rename failed: " + tmp + " -> " + path);
  }
  sync_parent_dir(path);
}

std::vector<std::uint8_t> read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return bytes;
}

}  // namespace rs::core
