#include "core/transforms.hpp"

#include <memory>
#include <stdexcept>

namespace rs::core {

int next_power_of_two(int n) {
  if (n < 1) throw std::invalid_argument("next_power_of_two: n < 1");
  int p = 1;
  while (p < n) {
    if (p > (1 << 29)) throw std::overflow_error("next_power_of_two: overflow");
    p <<= 1;
  }
  return p;
}

PaddedProblem pad_to_power_of_two(const Problem& p) {
  if (p.max_servers() < 1) {
    throw std::invalid_argument("pad_to_power_of_two: m < 1");
  }
  const int padded_m = next_power_of_two(p.max_servers());
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    if (padded_m == p.max_servers()) {
      fs.push_back(p.f_ptr(t));
    } else {
      fs.push_back(std::make_shared<PaddedCost>(p.f_ptr(t), p.max_servers()));
    }
  }
  return PaddedProblem{Problem(padded_m, p.beta(), std::move(fs)),
                       p.max_servers()};
}

std::vector<int> multiples_of(int step, int m) {
  if (step <= 0) throw std::invalid_argument("multiples_of: step <= 0");
  if (m < 0) throw std::invalid_argument("multiples_of: m < 0");
  std::vector<int> states;
  for (int x = 0; x <= m; x += step) states.push_back(x);
  return states;
}

Problem psi_scale(const Problem& p, int l) {
  if (l < 0) throw std::invalid_argument("psi_scale: l < 0");
  const int stride = 1 << l;
  if (p.max_servers() % stride != 0) {
    throw std::invalid_argument("psi_scale: 2^l must divide m");
  }
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    fs.push_back(stride == 1
                     ? p.f_ptr(t)
                     : CostPtr(std::make_shared<StrideCost>(p.f_ptr(t), stride)));
  }
  return Problem(p.max_servers() / stride, p.beta() * stride, std::move(fs));
}

Problem stretch_problem(const Problem& p, int factor) {
  if (factor < 1) throw std::invalid_argument("stretch_problem: factor < 1");
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()) *
             static_cast<std::size_t>(factor));
  const double scale = 1.0 / static_cast<double>(factor);
  for (int t = 1; t <= p.horizon(); ++t) {
    CostPtr replica = factor == 1
                          ? p.f_ptr(t)
                          : CostPtr(std::make_shared<ScaledCost>(p.f_ptr(t), scale));
    for (int copy = 0; copy < factor; ++copy) fs.push_back(replica);
  }
  return Problem(p.max_servers(), p.beta(), std::move(fs));
}

Problem restricted_problem(const RestrictedModel& model,
                           const std::vector<double>& lambdas) {
  if (!model.per_server_cost) {
    throw std::invalid_argument("restricted_problem: null per-server cost");
  }
  if (model.m < 1) throw std::invalid_argument("restricted_problem: m < 1");
  auto shared_f = std::make_shared<const std::function<double(double)>>(
      model.per_server_cost);
  std::vector<CostPtr> fs;
  fs.reserve(lambdas.size());
  for (double lambda : lambdas) {
    if (lambda < 0.0 || lambda > static_cast<double>(model.m)) {
      throw std::invalid_argument(
          "restricted_problem: workload outside [0, m]");
    }
    fs.push_back(std::make_shared<RestrictedSlotCost>(shared_f, lambda));
  }
  return Problem(model.m, model.beta, std::move(fs));
}

}  // namespace rs::core
