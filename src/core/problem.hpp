// Problem instance P = (T, m, β, F) of the discrete data-center
// optimization problem (paper Section 1): m homogeneous servers, horizon T,
// power-up cost β, and one convex operating-cost function per slot.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cost_function.hpp"

namespace rs::core {

class Problem {
 public:
  /// Constructs an instance.  `functions[t-1]` is f_t; the horizon is
  /// `functions.size()`.  Requires m >= 0, beta > 0, no null functions.
  Problem(int m, double beta, std::vector<CostPtr> functions);

  int horizon() const noexcept { return static_cast<int>(functions_.size()); }
  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }

  /// f_t for t in [1, T] (paper's 1-based time).
  const CostFunction& f(int t) const;
  CostPtr f_ptr(int t) const;

  /// f_t(x) with a domain check 0 <= x <= m.
  double cost_at(int t, int x) const;

  /// Continuous extension f̄_t(x) for x in [0, m] (paper eq. 3).
  double cost_at_real(int t, double x) const;

  /// Throws std::invalid_argument if any f_t fails validation on {0,..,m}
  /// (convexity, non-negativity, contiguous finite range).  Scans all T·(m+1)
  /// values; intended for tests and example/bench entry points.
  void validate() const;

  /// New instance with the first `tau` slots (1 <= tau <= T); used to build
  /// the truncated-workload bounds of Section 3.1 in brute-force form.
  Problem prefix(int tau) const;

 private:
  int m_;
  double beta_;
  std::vector<CostPtr> functions_;
};

/// Builds a Problem whose slot costs are explicit (T x (m+1)) tables;
/// `values[t-1][x]` is f_t(x).  Convenient in tests.
Problem make_table_problem(int m, double beta,
                           const std::vector<std::vector<double>>& values);

/// Materializes all slot costs of `p` as tables (useful to freeze
/// lazily-generated instances before timing-sensitive benchmarks).
Problem materialize(const Problem& p);

/// True when every slot cost converts to an exact convex-PWL form within
/// the per-slot breakpoint budget — the instance-level capability check
/// behind the automatic backend selection (work-function tracker, DP fast
/// path, SolverEngine).  `max_breakpoints = 0` (the default) uses the
/// m-relative auto budget `compact_pwl_budget_for(m)`.  O(sum of per-slot
/// conversion costs), independent of m for compact families.
bool admits_compact_pwl(const Problem& p, int max_breakpoints = 0);

}  // namespace rs::core
