// Piecewise-linear convex cost functions from explicit breakpoints.
//
// The natural user-facing family: operating costs in practice are assembled
// from linear tariffs, hinge penalties, and capacity kinks.  Construction
// validates convexity (slopes must be non-decreasing across breakpoints).
#pragma once

#include <vector>

#include "core/cost_function.hpp"

namespace rs::core {

struct Breakpoint {
  double x = 0.0;
  double value = 0.0;
};

class PiecewiseLinearCost final : public CostFunction {
 public:
  /// Breakpoints must be sorted by strictly increasing x and describe a
  /// convex function; evaluation extends the first/last segment beyond the
  /// breakpoint range.  Needs at least one breakpoint (a constant).
  explicit PiecewiseLinearCost(std::vector<Breakpoint> breakpoints);

  double at(int x) const override;
  double at_real(double x) const override;
  /// Segment-hoisted row fill (the per-x segment search of at() is monotone
  /// in x, so one forward walk suffices); bit-identical to at().
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return true; }  // validated at construction
  /// Integer restriction of the continuous PWL: at most two integer kinks
  /// per (possibly fractional) breakpoint, independent of m.
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override { return "piecewise_linear"; }

  const std::vector<Breakpoint>& breakpoints() const { return breakpoints_; }

 private:
  std::vector<Breakpoint> breakpoints_;
};

/// max(0, slope·(x − knee)) — a convex hinge penalizing excess capacity.
CostPtr make_hinge(double slope, double knee);

/// max(0, slope·(knee − x)) — a convex hinge penalizing shortfall, the
/// building block of SLA penalties (as in dcsim's soft model).
CostPtr make_shortfall_hinge(double slope, double knee);

/// Sum of convex cost functions (convexity is closed under addition).
class SumCost final : public CostFunction {
 public:
  explicit SumCost(std::vector<CostPtr> parts);
  double at(int x) const override;
  double at_real(double x) const override;
  /// One eval_row per part, accumulated in part order — same additions as
  /// at() (its early-out on +inf is absorbed by inf-propagating addition),
  /// hence bit-identical.
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override;  // all parts structurally convex
  /// Every part must convert; the sum is then rebuilt by sampling at()
  /// over the union of the parts' kink positions (keeping kink values
  /// bit-identical to the dense path), and must fit the budget.
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override { return "sum"; }

 private:
  std::vector<CostPtr> parts_;
};

}  // namespace rs::core
