// Convex operating-cost functions f_t.
//
// The data-center optimization problem (paper eq. 1) charges f_t(x_t) for
// running x_t servers in slot t, where every f_t : {0,..,m} -> R>=0 is
// convex.  This header defines the cost-function interface, the concrete
// families used throughout the paper and experiments, the continuous
// extension f̄_t of eq. (3), and convexity/feasibility validators.
//
// Infeasible states (e.g. x_t < λ_t in the restricted model of eq. 2) are
// modelled as +infinity; a convex function may be +inf on a prefix and/or a
// suffix of its domain but must be finite on a contiguous non-empty range.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/convex_pwl.hpp"
#include "util/math_util.hpp"

namespace rs::core {

/// `max_breakpoints` value meaning "no budget" for as_convex_pwl.
inline constexpr int kUnboundedBreakpoints = (1 << 30);

/// Cap on the per-slot breakpoint budget under which the solvers'
/// automatic backend selection considers a cost function "compact" enough
/// for the convex-PWL backend.  Families whose exact PWL form needs more
/// breakpoints (dense tables, quadratics at large m) stay on the dense-row
/// backend, whose per-step cost is O(m) with a much smaller constant.
inline constexpr int kCompactPwlBudget = 64;

/// The effective auto-selection budget at a given m.  A PWL breakpoint
/// costs a map node per operation where the dense backend pays one
/// contiguous double, so the m-independent backend only wins when K << m;
/// the budget therefore scales with m (up to the cap) instead of letting
/// e.g. an m-breakpoint table crawl through the map at small m (a measured
/// ~2x batch-throughput loss before this rule).  Forced-kPwl consumers
/// bypass the budget entirely.
inline constexpr int compact_pwl_budget_for(int m) noexcept {
  const int relative = m / 8;
  const int capped = relative < kCompactPwlBudget ? relative : kCompactPwlBudget;
  return capped > 8 ? capped : 8;
}

/// Abstract convex operating-cost function on server counts.
///
/// Implementations must be convex and non-negative on {0,..,m} for every m
/// they are used with; validate_cost_function() checks this for tests and
/// API-boundary validation.  Values must lie in [0, +inf] (+inf marks
/// infeasible states; -inf and NaN are outside the contract) — the solver
/// kernels rely on extended-real arithmetic over exactly this domain.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// Operating cost of running `x` servers; +inf marks infeasible states.
  /// `x` may be any non-negative integer (functions are defined on all of
  /// N_0 so that instance transforms can extend domains).
  virtual double at(int x) const = 0;

  /// Continuous extension f̄ (paper eq. 3): linear interpolation between
  /// adjacent integer states.  Overridden by families that have an exact
  /// closed form on the reals (the interpolation then coincides with it).
  virtual double at_real(double x) const;

  /// Batched evaluation: writes f(0), .., f(m) into out[0..m] (requires
  /// out.size() >= m+1 and m >= 0).  One virtual call fills a whole row, so
  /// dense consumers (DenseProblem, the DP/work-function kernels) avoid
  /// per-point dispatch through decorator chains.  Overrides MUST produce
  /// bit-identical values to at() — the dense/per-point equivalence property
  /// tests depend on it.
  virtual void eval_row(int m, std::span<double> out) const;

  /// Capability query: true when the family guarantees convexity on all of
  /// N_0 by construction (possibly relying on a documented caller contract,
  /// as RestrictedSlotCost does for its load curve).  False means "not
  /// structurally guaranteed" — the function may still happen to be convex
  /// (validate_cost_function checks values).  The convex-PWL backend
  /// selection keys on as_convex_pwl() instead, which validates exactly.
  virtual bool is_convex() const { return false; }

  /// Exact convex piecewise-linear form of f on {0,..,m}, or nullopt when
  /// the family has no such form, the values are not convex, or the form
  /// needs more than `max_breakpoints` slope increments (the m-independent
  /// backend only pays off for compact representations).  Implementations
  /// must agree with at() on every integer up to rounding: bit-identical
  /// at every breakpoint sample, and within a few ULPs in between (exactly,
  /// when the family's parameters and values are integers) — see
  /// DESIGN.md §8.  Non-virtual entry so the default budget applies on
  /// concrete types too; families override as_convex_pwl_impl.
  std::optional<ConvexPwl> as_convex_pwl(
      int m, int max_breakpoints = kUnboundedBreakpoints) const {
    return as_convex_pwl_impl(m, max_breakpoints);
  }

  /// Human-readable family name for diagnostics.
  virtual std::string name() const { return "cost"; }

 protected:
  virtual std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                                      int max_breakpoints) const;
};

using CostPtr = std::shared_ptr<const CostFunction>;

// ---------------------------------------------------------------------------
// Concrete families
// ---------------------------------------------------------------------------

/// Explicit value table on {0,..,m}; evaluation beyond the table extends
/// linearly with the last slope so that transformed instances stay convex.
class TableCost final : public CostFunction {
 public:
  explicit TableCost(std::vector<double> values, std::string label = "table");
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  /// Scans the table: true iff the values are convex with a contiguous
  /// finite range.  Slope comparisons use the builder's relative merge
  /// epsilon (kConvexPwlMergeEps): dips below ~1e-12 relative count as
  /// rounding noise, not concavity.  O(table_size).
  bool is_convex() const override;
  /// Exact conversion; one breakpoint per slope change in the table, so
  /// only compact under the budget for tables with few distinct slopes.
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override { return label_; }
  int table_size() const noexcept { return static_cast<int>(values_.size()); }

 private:
  std::vector<double> values_;
  std::string label_;
};

/// a·|x − center| + offset, the ϕ family of the lower-bound constructions
/// (ϕ0(x) = ε|x|, ϕ1(x) = ε|x−1|).  Requires a >= 0.
class AffineAbsCost final : public CostFunction {
 public:
  AffineAbsCost(double slope, double center, double offset = 0.0);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return true; }
  /// At most two breakpoints (around the center), independent of m.
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override { return "affine_abs"; }
  double slope() const noexcept { return slope_; }
  double center() const noexcept { return center_; }

 private:
  double slope_;
  double center_;
  double offset_;
};

/// a·(x − center)^2 + offset with a >= 0.
class QuadraticCost final : public CostFunction {
 public:
  QuadraticCost(double curvature, double center, double offset = 0.0);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return true; }
  /// Exact on integers but with one breakpoint per state (the slope grows
  /// by 2·curvature every step), so it only converts when m fits the
  /// budget; curvature 0 collapses to a constant.
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override { return "quadratic"; }

 private:
  double curvature_;
  double center_;
  double offset_;
};

/// Wraps an arbitrary callable; the caller asserts convexity (checked by
/// validate_cost_function in tests).
class FunctionCost final : public CostFunction {
 public:
  explicit FunctionCost(std::function<double(int)> fn,
                        std::string label = "function");
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  // is_convex() stays false and as_convex_pwl() nullopt: the callable is
  // opaque, so these functions always take the dense-row backend.
  std::string name() const override { return label_; }

 private:
  std::function<double(int)> fn_;
  std::string label_;
};

/// Restricted-model slot cost (paper eq. 2): x·f(λ/x) subject to x >= λ,
/// where f : [0,1] -> R>=0 is convex (cost of one server at load z) and λ is
/// the incoming workload of the slot.  States x < λ are +inf; the perspective
/// x·f(λ/x) of a convex f is convex in x, and a +inf prefix keeps convexity.
class RestrictedSlotCost final : public CostFunction {
 public:
  RestrictedSlotCost(std::shared_ptr<const std::function<double(double)>> f,
                     double lambda);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  /// Convex by the perspective-function argument (given the documented
  /// caller contract that f is convex); the load curve is an opaque
  /// std::function though, so there is no exact PWL form and
  /// as_convex_pwl() stays nullopt — the restricted model keeps the
  /// dense-row backend.
  bool is_convex() const override { return true; }
  std::string name() const override { return "restricted_slot"; }
  double lambda() const noexcept { return lambda_; }

 private:
  std::shared_ptr<const std::function<double(double)>> f_;
  double lambda_;
};

/// Restricted-model slot cost (paper eq. 2) with a *linear* per-server
/// tariff f(z) = base + rate·z: the perspective x·f(λ/x) collapses to
/// base·x + rate·λ on the feasible range x >= λ (and 0 at x = 0 when
/// λ = 0), i.e. an affine function with an infeasibility prefix.  Unlike
/// RestrictedSlotCost's opaque load curve, the closed form admits an exact
/// convex-PWL representation with zero breakpoints, so the restricted
/// model with linear tariffs rides the m-independent backend (the variant
/// Hübotter's implementation study, arXiv:2108.09489, benchmarks).
/// Requires base >= 0, rate >= 0, lambda >= 0 (NaN rejected).
class LinearLoadSlotCost final : public CostFunction {
 public:
  LinearLoadSlotCost(double base, double rate, double lambda);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return true; }
  /// Exact: one affine segment on [⌈λ⌉, m] (all-infinite when λ > m).
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override { return "linear_load"; }
  double base() const noexcept { return base_; }
  double rate() const noexcept { return rate_; }
  double lambda() const noexcept { return lambda_; }

 private:
  double base_;    // per-server cost at zero load
  double rate_;    // per-server cost increase per unit load
  double lambda_;  // slot workload; states x < λ are infeasible
};

/// base(x) * factor, factor >= 0.  Used by the Theorem-10 sequence
/// stretching (each replica charges f_t / (n·w)).
class ScaledCost final : public CostFunction {
 public:
  ScaledCost(CostPtr base, double factor);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return base_->is_convex(); }
  /// Scales the base form in place (factor 0 with an infeasible base state
  /// declines: at() yields NaN there, which the PWL form cannot express).
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override;

 private:
  CostPtr base_;
  double factor_;
};

/// base(x * stride), the Ψ_l rescaling of Section 2.3 (state x of the scaled
/// instance corresponds to x·2^l of the original one).
class StrideCost final : public CostFunction {
 public:
  StrideCost(CostPtr base, int stride);
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return base_->is_convex(); }
  /// Resamples the base form on the stride grid (breakpoint positions
  /// contract by the stride; the count never grows).
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override;

 private:
  CostPtr base_;
  int stride_;
};

/// Extension used by the power-of-two padding of Section 2.2: equals `base`
/// on {0,..,m} and continues linearly above m with a slope strictly larger
/// than any slope of `base` (see DESIGN.md §2 for why this deviates from the
/// paper's literal x·(f(m)+ε) formula).
class PaddedCost final : public CostFunction {
 public:
  PaddedCost(CostPtr base, int original_m);
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  bool is_convex() const override { return base_->is_convex(); }
  /// Base form up to original_m plus one extension segment.
  std::optional<ConvexPwl> as_convex_pwl_impl(int m,
                                              int max_breakpoints) const override;
  std::string name() const override;

 private:
  CostPtr base_;
  int original_m_;
  double extension_slope_;
};

// ---------------------------------------------------------------------------
// Validation and helpers
// ---------------------------------------------------------------------------

struct CostFunctionReport {
  bool convex = true;
  bool non_negative = true;
  bool finite_somewhere = true;
  bool contiguous_finite_range = true;
  int first_finite = -1;  // smallest feasible state, -1 if none
  int last_finite = -1;   // largest feasible state
  bool ok() const noexcept {
    return convex && non_negative && finite_somewhere &&
           contiguous_finite_range;
  }
};

/// Scans f on {0,..,m} and reports convexity (slopes non-decreasing on the
/// finite range, +inf allowed only as prefix/suffix), non-negativity, and
/// the feasible range.
CostFunctionReport validate_cost_function(const CostFunction& f, int m);

/// Builds the exact convex-PWL form of f on {0,..,m} from a candidate kink
/// list (positions are clamped into [0, m]; 0 and m are always included):
/// f must be linear between consecutive candidates, and infinite exactly
/// outside the finite candidate range.  Both contracts are verified by
/// probes (a midpoint sample per multi-step segment, one sample past each
/// domain boundary), so a wrong kink list degrades to nullopt instead of a
/// silently wrong function.  The workhorse behind the decorator
/// as_convex_pwl implementations; exposed for custom families and tests.
std::optional<ConvexPwl> convex_pwl_from_kinks(
    const CostFunction& f, int m, std::vector<long long> kinks,
    int max_breakpoints = kUnboundedBreakpoints);

/// Smallest state in {0,..,m} minimizing f (paper's x_t^{min-}).  Linear
/// scan; correct for arbitrary functions.
int smallest_minimizer_scan(const CostFunction& f, int m);

/// Largest state in {0,..,m} minimizing f (paper's x_t^{min+}).
int largest_minimizer_scan(const CostFunction& f, int m);

/// O(log m) minimizer search for *convex* f via binary search on slopes.
/// Returns the smallest minimizer.
int smallest_minimizer_convex(const CostFunction& f, int m);

/// Continuous extension f̄ of eq. (3) for any cost function: interpolates the
/// integer values (identical to f.at_real for the default implementation).
double interpolate(const CostFunction& f, double x);

}  // namespace rs::core
