// Convex operating-cost functions f_t.
//
// The data-center optimization problem (paper eq. 1) charges f_t(x_t) for
// running x_t servers in slot t, where every f_t : {0,..,m} -> R>=0 is
// convex.  This header defines the cost-function interface, the concrete
// families used throughout the paper and experiments, the continuous
// extension f̄_t of eq. (3), and convexity/feasibility validators.
//
// Infeasible states (e.g. x_t < λ_t in the restricted model of eq. 2) are
// modelled as +infinity; a convex function may be +inf on a prefix and/or a
// suffix of its domain but must be finite on a contiguous non-empty range.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/math_util.hpp"

namespace rs::core {

/// Abstract convex operating-cost function on server counts.
///
/// Implementations must be convex and non-negative on {0,..,m} for every m
/// they are used with; validate_cost_function() checks this for tests and
/// API-boundary validation.  Values must lie in [0, +inf] (+inf marks
/// infeasible states; -inf and NaN are outside the contract) — the solver
/// kernels rely on extended-real arithmetic over exactly this domain.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// Operating cost of running `x` servers; +inf marks infeasible states.
  /// `x` may be any non-negative integer (functions are defined on all of
  /// N_0 so that instance transforms can extend domains).
  virtual double at(int x) const = 0;

  /// Continuous extension f̄ (paper eq. 3): linear interpolation between
  /// adjacent integer states.  Overridden by families that have an exact
  /// closed form on the reals (the interpolation then coincides with it).
  virtual double at_real(double x) const;

  /// Batched evaluation: writes f(0), .., f(m) into out[0..m] (requires
  /// out.size() >= m+1 and m >= 0).  One virtual call fills a whole row, so
  /// dense consumers (DenseProblem, the DP/work-function kernels) avoid
  /// per-point dispatch through decorator chains.  Overrides MUST produce
  /// bit-identical values to at() — the dense/per-point equivalence property
  /// tests depend on it.
  virtual void eval_row(int m, std::span<double> out) const;

  /// Human-readable family name for diagnostics.
  virtual std::string name() const { return "cost"; }
};

using CostPtr = std::shared_ptr<const CostFunction>;

// ---------------------------------------------------------------------------
// Concrete families
// ---------------------------------------------------------------------------

/// Explicit value table on {0,..,m}; evaluation beyond the table extends
/// linearly with the last slope so that transformed instances stay convex.
class TableCost final : public CostFunction {
 public:
  explicit TableCost(std::vector<double> values, std::string label = "table");
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override { return label_; }
  int table_size() const noexcept { return static_cast<int>(values_.size()); }

 private:
  std::vector<double> values_;
  std::string label_;
};

/// a·|x − center| + offset, the ϕ family of the lower-bound constructions
/// (ϕ0(x) = ε|x|, ϕ1(x) = ε|x−1|).  Requires a >= 0.
class AffineAbsCost final : public CostFunction {
 public:
  AffineAbsCost(double slope, double center, double offset = 0.0);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override { return "affine_abs"; }
  double slope() const noexcept { return slope_; }
  double center() const noexcept { return center_; }

 private:
  double slope_;
  double center_;
  double offset_;
};

/// a·(x − center)^2 + offset with a >= 0.
class QuadraticCost final : public CostFunction {
 public:
  QuadraticCost(double curvature, double center, double offset = 0.0);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override { return "quadratic"; }

 private:
  double curvature_;
  double center_;
  double offset_;
};

/// Wraps an arbitrary callable; the caller asserts convexity (checked by
/// validate_cost_function in tests).
class FunctionCost final : public CostFunction {
 public:
  explicit FunctionCost(std::function<double(int)> fn,
                        std::string label = "function");
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override { return label_; }

 private:
  std::function<double(int)> fn_;
  std::string label_;
};

/// Restricted-model slot cost (paper eq. 2): x·f(λ/x) subject to x >= λ,
/// where f : [0,1] -> R>=0 is convex (cost of one server at load z) and λ is
/// the incoming workload of the slot.  States x < λ are +inf; the perspective
/// x·f(λ/x) of a convex f is convex in x, and a +inf prefix keeps convexity.
class RestrictedSlotCost final : public CostFunction {
 public:
  RestrictedSlotCost(std::shared_ptr<const std::function<double(double)>> f,
                     double lambda);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override { return "restricted_slot"; }
  double lambda() const noexcept { return lambda_; }

 private:
  std::shared_ptr<const std::function<double(double)>> f_;
  double lambda_;
};

/// base(x) * factor, factor >= 0.  Used by the Theorem-10 sequence
/// stretching (each replica charges f_t / (n·w)).
class ScaledCost final : public CostFunction {
 public:
  ScaledCost(CostPtr base, double factor);
  double at(int x) const override;
  double at_real(double x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override;

 private:
  CostPtr base_;
  double factor_;
};

/// base(x * stride), the Ψ_l rescaling of Section 2.3 (state x of the scaled
/// instance corresponds to x·2^l of the original one).
class StrideCost final : public CostFunction {
 public:
  StrideCost(CostPtr base, int stride);
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override;

 private:
  CostPtr base_;
  int stride_;
};

/// Extension used by the power-of-two padding of Section 2.2: equals `base`
/// on {0,..,m} and continues linearly above m with a slope strictly larger
/// than any slope of `base` (see DESIGN.md §2 for why this deviates from the
/// paper's literal x·(f(m)+ε) formula).
class PaddedCost final : public CostFunction {
 public:
  PaddedCost(CostPtr base, int original_m);
  double at(int x) const override;
  void eval_row(int m, std::span<double> out) const override;
  std::string name() const override;

 private:
  CostPtr base_;
  int original_m_;
  double extension_slope_;
};

// ---------------------------------------------------------------------------
// Validation and helpers
// ---------------------------------------------------------------------------

struct CostFunctionReport {
  bool convex = true;
  bool non_negative = true;
  bool finite_somewhere = true;
  bool contiguous_finite_range = true;
  int first_finite = -1;  // smallest feasible state, -1 if none
  int last_finite = -1;   // largest feasible state
  bool ok() const noexcept {
    return convex && non_negative && finite_somewhere &&
           contiguous_finite_range;
  }
};

/// Scans f on {0,..,m} and reports convexity (slopes non-decreasing on the
/// finite range, +inf allowed only as prefix/suffix), non-negativity, and
/// the feasible range.
CostFunctionReport validate_cost_function(const CostFunction& f, int m);

/// Smallest state in {0,..,m} minimizing f (paper's x_t^{min-}).  Linear
/// scan; correct for arbitrary functions.
int smallest_minimizer_scan(const CostFunction& f, int m);

/// Largest state in {0,..,m} minimizing f (paper's x_t^{min+}).
int largest_minimizer_scan(const CostFunction& f, int m);

/// O(log m) minimizer search for *convex* f via binary search on slopes.
/// Returns the smallest minimizer.
int smallest_minimizer_convex(const CostFunction& f, int m);

/// Continuous extension f̄ of eq. (3) for any cost function: interpolates the
/// integer values (identical to f.at_real for the default implementation).
double interpolate(const CostFunction& f, double x);

}  // namespace rs::core
