#include "core/piecewise_linear.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/workspace.hpp"

namespace rs::core {

PiecewiseLinearCost::PiecewiseLinearCost(std::vector<Breakpoint> breakpoints)
    : breakpoints_(std::move(breakpoints)) {
  if (breakpoints_.empty()) {
    throw std::invalid_argument("PiecewiseLinearCost: no breakpoints");
  }
  double previous_slope = -rs::util::kInf;
  for (std::size_t i = 1; i < breakpoints_.size(); ++i) {
    const double dx = breakpoints_[i].x - breakpoints_[i - 1].x;
    if (!(dx > 0.0)) {
      throw std::invalid_argument(
          "PiecewiseLinearCost: breakpoints must have increasing x");
    }
    const double slope = (breakpoints_[i].value - breakpoints_[i - 1].value) / dx;
    if (slope + 1e-12 < previous_slope) {
      throw std::invalid_argument("PiecewiseLinearCost: not convex");
    }
    previous_slope = slope;
  }
}

double PiecewiseLinearCost::at(int x) const {
  return at_real(static_cast<double>(x));
}

double PiecewiseLinearCost::at_real(double x) const {
  if (breakpoints_.size() == 1) return breakpoints_.front().value;
  // Find the segment; extend the boundary segments outward.
  std::size_t hi = 1;
  while (hi + 1 < breakpoints_.size() && breakpoints_[hi].x < x) ++hi;
  const Breakpoint& a = breakpoints_[hi - 1];
  const Breakpoint& b = breakpoints_[hi];
  const double slope = (b.value - a.value) / (b.x - a.x);
  return a.value + slope * (x - a.x);
}

void PiecewiseLinearCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  if (breakpoints_.size() == 1) {
    std::fill(out.begin(), out.begin() + (m + 1), breakpoints_.front().value);
    return;
  }
  // The segment index of at_real() is monotone in x, so hoist the search
  // across the row; the per-point expression (anchor + slope·dx with the
  // same operands) is unchanged, keeping the values bit-identical to at().
  std::size_t hi = 1;
  double slope = (breakpoints_[1].value - breakpoints_[0].value) /
                 (breakpoints_[1].x - breakpoints_[0].x);
  for (int x = 0; x <= m; ++x) {
    while (hi + 1 < breakpoints_.size() &&
           breakpoints_[hi].x < static_cast<double>(x)) {
      ++hi;
      slope = (breakpoints_[hi].value - breakpoints_[hi - 1].value) /
              (breakpoints_[hi].x - breakpoints_[hi - 1].x);
    }
    const Breakpoint& a = breakpoints_[hi - 1];
    out[static_cast<std::size_t>(x)] =
        a.value + slope * (static_cast<double>(x) - a.x);
  }
}

std::optional<ConvexPwl> PiecewiseLinearCost::as_convex_pwl_impl(
    int m, int max_breakpoints) const {
  // A (possibly fractional) breakpoint at b.x kinks the integer restriction
  // at floor(b.x) and ceil(b.x); sample that neighbourhood.
  std::vector<long long> kinks;
  kinks.reserve(4 * breakpoints_.size());
  for (const Breakpoint& b : breakpoints_) {
    const double clamped =
        std::clamp(b.x, -2.0, static_cast<double>(m) + 2.0);
    const long long knee = static_cast<long long>(std::floor(clamped));
    for (long long offset = -1; offset <= 2; ++offset) {
      kinks.push_back(knee + offset);
    }
  }
  return convex_pwl_from_kinks(*this, m, std::move(kinks), max_breakpoints);
}

CostPtr make_hinge(double slope, double knee) {
  if (slope < 0.0) throw std::invalid_argument("make_hinge: slope < 0");
  return std::make_shared<PiecewiseLinearCost>(std::vector<Breakpoint>{
      {knee - 1.0, 0.0}, {knee, 0.0}, {knee + 1.0, slope}});
}

CostPtr make_shortfall_hinge(double slope, double knee) {
  if (slope < 0.0) {
    throw std::invalid_argument("make_shortfall_hinge: slope < 0");
  }
  return std::make_shared<PiecewiseLinearCost>(std::vector<Breakpoint>{
      {knee - 1.0, slope}, {knee, 0.0}, {knee + 1.0, 0.0}});
}

SumCost::SumCost(std::vector<CostPtr> parts) : parts_(std::move(parts)) {
  if (parts_.empty()) throw std::invalid_argument("SumCost: no parts");
  for (const CostPtr& part : parts_) {
    if (!part) throw std::invalid_argument("SumCost: null part");
  }
}

double SumCost::at(int x) const {
  double sum = 0.0;
  for (const CostPtr& part : parts_) {
    const double v = part->at(x);
    if (std::isinf(v)) return v;
    sum += v;
  }
  return sum;
}

double SumCost::at_real(double x) const {
  double sum = 0.0;
  for (const CostPtr& part : parts_) {
    const double v = part->at_real(x);
    if (std::isinf(v)) return v;
    sum += v;
  }
  return sum;
}

void SumCost::eval_row(int m, std::span<double> out) const {
  assert(m >= 0 && out.size() >= static_cast<std::size_t>(m) + 1);
  parts_.front()->eval_row(m, out);
  if (parts_.size() == 1) return;
  auto scratch = rs::util::this_thread_workspace().borrow<double>(
      static_cast<std::size_t>(m) + 1);
  for (std::size_t i = 1; i < parts_.size(); ++i) {
    parts_[i]->eval_row(m, scratch.span());
    for (int x = 0; x <= m; ++x) {
      out[static_cast<std::size_t>(x)] += scratch[static_cast<std::size_t>(x)];
    }
  }
}

bool SumCost::is_convex() const {
  return std::all_of(parts_.begin(), parts_.end(),
                     [](const CostPtr& part) { return part->is_convex(); });
}

std::optional<ConvexPwl> SumCost::as_convex_pwl_impl(int m,
                                                int max_breakpoints) const {
  // Kinks of the sum are the union of the parts' kinks; sampling this->at()
  // there keeps the kink values bit-identical to the dense path.
  std::vector<long long> kinks;
  for (const CostPtr& part : parts_) {
    const std::optional<ConvexPwl> form =
        part->as_convex_pwl(m, max_breakpoints);
    if (!form) return std::nullopt;
    if (form->is_infinite()) return ConvexPwl::infinite();
    for (int p : form->kink_positions()) kinks.push_back(p);
  }
  return convex_pwl_from_kinks(*this, m, std::move(kinks), max_breakpoints);
}

}  // namespace rs::core
