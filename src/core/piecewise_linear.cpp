#include "core/piecewise_linear.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace rs::core {

PiecewiseLinearCost::PiecewiseLinearCost(std::vector<Breakpoint> breakpoints)
    : breakpoints_(std::move(breakpoints)) {
  if (breakpoints_.empty()) {
    throw std::invalid_argument("PiecewiseLinearCost: no breakpoints");
  }
  double previous_slope = -rs::util::kInf;
  for (std::size_t i = 1; i < breakpoints_.size(); ++i) {
    const double dx = breakpoints_[i].x - breakpoints_[i - 1].x;
    if (!(dx > 0.0)) {
      throw std::invalid_argument(
          "PiecewiseLinearCost: breakpoints must have increasing x");
    }
    const double slope = (breakpoints_[i].value - breakpoints_[i - 1].value) / dx;
    if (slope + 1e-12 < previous_slope) {
      throw std::invalid_argument("PiecewiseLinearCost: not convex");
    }
    previous_slope = slope;
  }
}

double PiecewiseLinearCost::at(int x) const {
  return at_real(static_cast<double>(x));
}

double PiecewiseLinearCost::at_real(double x) const {
  if (breakpoints_.size() == 1) return breakpoints_.front().value;
  // Find the segment; extend the boundary segments outward.
  std::size_t hi = 1;
  while (hi + 1 < breakpoints_.size() && breakpoints_[hi].x < x) ++hi;
  const Breakpoint& a = breakpoints_[hi - 1];
  const Breakpoint& b = breakpoints_[hi];
  const double slope = (b.value - a.value) / (b.x - a.x);
  return a.value + slope * (x - a.x);
}

CostPtr make_hinge(double slope, double knee) {
  if (slope < 0.0) throw std::invalid_argument("make_hinge: slope < 0");
  return std::make_shared<PiecewiseLinearCost>(std::vector<Breakpoint>{
      {knee - 1.0, 0.0}, {knee, 0.0}, {knee + 1.0, slope}});
}

CostPtr make_shortfall_hinge(double slope, double knee) {
  if (slope < 0.0) {
    throw std::invalid_argument("make_shortfall_hinge: slope < 0");
  }
  return std::make_shared<PiecewiseLinearCost>(std::vector<Breakpoint>{
      {knee - 1.0, slope}, {knee, 0.0}, {knee + 1.0, 0.0}});
}

SumCost::SumCost(std::vector<CostPtr> parts) : parts_(std::move(parts)) {
  if (parts_.empty()) throw std::invalid_argument("SumCost: no parts");
  for (const CostPtr& part : parts_) {
    if (!part) throw std::invalid_argument("SumCost: null part");
  }
}

double SumCost::at(int x) const {
  double sum = 0.0;
  for (const CostPtr& part : parts_) {
    const double v = part->at(x);
    if (std::isinf(v)) return v;
    sum += v;
  }
  return sum;
}

double SumCost::at_real(double x) const {
  double sum = 0.0;
  for (const CostPtr& part : parts_) {
    const double v = part->at_real(x);
    if (std::isinf(v)) return v;
    sum += v;
  }
  return sum;
}

}  // namespace rs::core
