// Instance transforms used by the offline algorithm (Section 2), the
// restricted model (eq. 2), and the prediction-window lower bound
// (Theorem 10).
#pragma once

#include <functional>
#include <vector>

#include "core/problem.hpp"

namespace rs::core {

/// Smallest power of two >= n (n >= 1).
int next_power_of_two(int n);

struct PaddedProblem {
  Problem problem;   // padded instance with m' = 2^⌈log2 m⌉
  int original_m;    // m of the source instance
};

/// Section 2.2 padding: extends the instance to a power-of-two number of
/// servers.  Slot costs are extended via PaddedCost (convex, strictly
/// increasing above the original m), so optimal schedules never use padded
/// states and coincide with the original optimum.
PaddedProblem pad_to_power_of_two(const Problem& p);

/// The state set M_k = {n in [m]_0 : n mod 2^k = 0} of the Φ_k transform.
std::vector<int> multiples_of(int step, int m);

/// Ψ_l rescaling (Section 2.3): (T, m/2^l, β·2^l, f'_t(x) = f_t(x·2^l)).
/// Requires 2^l to divide m.
Problem psi_scale(const Problem& p, int l);

/// Theorem-10 stretching: each f_t is replaced by `factor` consecutive
/// copies of f_t / factor, preserving per-slot totals.  The horizon becomes
/// T·factor.
Problem stretch_problem(const Problem& p, int factor);

// ---------------------------------------------------------------------------
// Restricted model (paper eq. 2)
// ---------------------------------------------------------------------------

/// The restricted model of Lin et al.: a single convex per-server load cost
/// f(z), z in [0,1], shared by all slots; slot t has workload λ_t and the
/// constraint x_t >= λ_t.  Distributing load equally is optimal, so the slot
/// cost is x·f(λ_t/x).
struct RestrictedModel {
  std::function<double(double)> per_server_cost;  // f(z), convex on [0,1]
  int m = 1;
  double beta = 1.0;
};

/// Builds the equivalent general-model instance: f_t(x) = x·f(λ_t/x) with
/// +inf below the constraint.  Requires 0 <= λ_t <= m.
Problem restricted_problem(const RestrictedModel& model,
                           const std::vector<double>& lambdas);

}  // namespace rs::core
