#include "core/problem.hpp"

#include <stdexcept>

namespace rs::core {

Problem::Problem(int m, double beta, std::vector<CostPtr> functions)
    : m_(m), beta_(beta), functions_(std::move(functions)) {
  if (m < 0) throw std::invalid_argument("Problem: m < 0");
  if (!(beta > 0.0)) throw std::invalid_argument("Problem: beta must be > 0");
  for (const CostPtr& f : functions_) {
    if (!f) throw std::invalid_argument("Problem: null cost function");
  }
}

const CostFunction& Problem::f(int t) const {
  if (t < 1 || t > horizon()) {
    throw std::out_of_range("Problem::f: t out of [1, T]");
  }
  return *functions_[static_cast<std::size_t>(t - 1)];
}

CostPtr Problem::f_ptr(int t) const {
  if (t < 1 || t > horizon()) {
    throw std::out_of_range("Problem::f_ptr: t out of [1, T]");
  }
  return functions_[static_cast<std::size_t>(t - 1)];
}

double Problem::cost_at(int t, int x) const {
  if (x < 0 || x > m_) {
    throw std::out_of_range("Problem::cost_at: x out of [0, m]");
  }
  return f(t).at(x);
}

double Problem::cost_at_real(int t, double x) const {
  if (x < 0.0 || x > static_cast<double>(m_)) {
    throw std::out_of_range("Problem::cost_at_real: x out of [0, m]");
  }
  return interpolate(f(t), x);
}

void Problem::validate() const {
  for (int t = 1; t <= horizon(); ++t) {
    const CostFunctionReport report = validate_cost_function(f(t), m_);
    if (!report.ok()) {
      throw std::invalid_argument(
          "Problem::validate: f_" + std::to_string(t) + " (" + f(t).name() +
          ") failed: " + (!report.convex ? "non-convex " : "") +
          (!report.non_negative ? "negative " : "") +
          (!report.finite_somewhere ? "all-infinite " : "") +
          (!report.contiguous_finite_range ? "gapped-finite-range " : ""));
    }
  }
}

Problem Problem::prefix(int tau) const {
  if (tau < 0 || tau > horizon()) {
    throw std::out_of_range("Problem::prefix: tau out of [0, T]");
  }
  std::vector<CostPtr> fs(functions_.begin(), functions_.begin() + tau);
  return Problem(m_, beta_, std::move(fs));
}

Problem make_table_problem(int m, double beta,
                           const std::vector<std::vector<double>>& values) {
  std::vector<CostPtr> fs;
  fs.reserve(values.size());
  for (const std::vector<double>& row : values) {
    if (static_cast<int>(row.size()) != m + 1) {
      throw std::invalid_argument(
          "make_table_problem: each row must have m+1 entries");
    }
    fs.push_back(std::make_shared<TableCost>(row));
  }
  return Problem(m, beta, std::move(fs));
}

Problem materialize(const Problem& p) {
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    const CostFunction& f = p.f(t);
    std::vector<double> row(static_cast<std::size_t>(p.max_servers()) + 1);
    f.eval_row(p.max_servers(), row);
    fs.push_back(std::make_shared<TableCost>(std::move(row), f.name()));
  }
  return Problem(p.max_servers(), p.beta(), std::move(fs));
}

bool admits_compact_pwl(const Problem& p, int max_breakpoints) {
  const int budget = max_breakpoints > 0
                         ? max_breakpoints
                         : compact_pwl_budget_for(p.max_servers());
  for (int t = 1; t <= p.horizon(); ++t) {
    if (!p.f(t).as_convex_pwl(p.max_servers(), budget)) {
      return false;
    }
  }
  return true;
}

}  // namespace rs::core
