// Seeded Monte-Carlo evaluation harness over the trace zoo.
//
// Samples each scenario distribution `samples_per_scenario` times, replays
// every configured algorithm on every sample (LCP through the RLE replay,
// randomized rounding through the standard online driver), and summarizes
// competitive ratios and cost savings against the best static provisioning
// per (scenario, algorithm) cell — the ratio dashboard of the README.
//
// Seeding contract (determinism): the seed of sample s of scenario kind k
// is a pure splitmix64 mix of (base_seed, k, s), the randomized-rounding
// seed a further mix of the sample seed — no global RNG state anywhere.
// Sample jobs fan out through SolverEngine::for_each and write results by
// flat index, so the full MonteCarloReport — every sample row and every
// summary cell — is identical under any thread count (pinned by the
// determinism test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/solver_engine.hpp"
#include "scenario/trace_zoo.hpp"
#include "util/math_util.hpp"

namespace rs::scenario {

enum class HarnessAlgorithm {
  kLcpDense,             // LCP via replay_lcp on the dense backend
  kLcpAuto,              // LCP via replay_lcp, backend auto-selected
  kRandomizedRounding,   // Theorem-3 randomized rounding (fresh seed/sample)
};

const char* to_string(HarnessAlgorithm algorithm);

struct HarnessConfig {
  std::vector<ScenarioKind> scenarios = all_scenario_kinds();
  std::vector<HarnessAlgorithm> algorithms = {
      HarnessAlgorithm::kLcpDense, HarnessAlgorithm::kLcpAuto,
      HarnessAlgorithm::kRandomizedRounding};
  int samples_per_scenario = 8;
  std::uint64_t base_seed = 1;
  std::size_t threads = 0;  // SolverEngine::Options::threads
  ZooParams zoo;
};

/// One (scenario sample, algorithm) measurement.
struct SampleRow {
  ScenarioKind kind = ScenarioKind::kDiurnalWeekly;
  HarnessAlgorithm algorithm = HarnessAlgorithm::kLcpDense;
  int sample = 0;
  std::uint64_t seed = 0;          // the scenario sample's seed
  double algorithm_cost = 0.0;
  double optimal_cost = 0.0;       // exact offline DP
  double static_cost = 0.0;        // best single provisioning level
  double ratio = 0.0;              // algorithm_cost / optimal_cost
  double savings_percent = 0.0;    // 100·(static − algorithm)/static
};

/// Per-(scenario, algorithm) dashboard cell.
struct CellSummary {
  ScenarioKind kind = ScenarioKind::kDiurnalWeekly;
  HarnessAlgorithm algorithm = HarnessAlgorithm::kLcpDense;
  rs::util::SampleStats ratio;
  rs::util::SampleStats savings_percent;
  double max_ratio = 0.0;
  double mean_optimal_cost = 0.0;
  int samples = 0;
};

struct MonteCarloReport {
  std::vector<SampleRow> samples;   // scenario-major, sample, algorithm
  std::vector<CellSummary> cells;   // scenario-major, algorithm-minor
  rs::engine::BatchStats stats;     // the sample batch's throughput
};

/// Runs the full scenario × algorithm matrix.  Deterministic in
/// (config minus threads); throws std::invalid_argument on an empty
/// matrix or non-positive sample count.
MonteCarloReport run_monte_carlo(const HarnessConfig& config);

/// Renders the cells as a GitHub-markdown ratio dashboard.
std::string dashboard_markdown(const MonteCarloReport& report);

}  // namespace rs::scenario
