// Fault plans: seeded fault scenarios for the evaluation harness.
//
// The scenario lab (trace_zoo, eval_harness) answers "how well does the
// solver do"; a FaultPlan answers "what happens when the world misbehaves".
// A plan is a small deterministic description — seed, firing period, poison
// kind — from which everything else derives:
//
//   * make_injector(plan)        — the util/fault_injection.hpp injector to
//                                  install around an engine batch (fires
//                                  backend faults at seeded job indices);
//   * apply_fault_plan(p, plan)  — a copy of instance `p` whose seeded
//                                  slots are poisoned (NaN / +inf / throw);
//   * poisoned_slots(plan, T)    — which slots the plan poisons, so tests
//                                  can assert exactly the predicted jobs
//                                  fail and nothing else.
//
// Every derived artifact is a pure function of (plan, inputs): the same
// plan replays the same faults on any machine, thread count, or run —
// that determinism is what lets the isolation acceptance test demand
// "exactly the faulted jobs failed, the rest bit-identical to a clean
// batch".  See DESIGN.md §10.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "util/fault_injection.hpp"

namespace rs::scenario {

/// How a poisoned slot cost misbehaves.
enum class PoisonKind {
  /// at() returns NaN — outside the cost contract; the solvers reject it
  /// (SolveStatus::kInvalidInput), never propagate it into a schedule.
  kNaN,
  /// at() returns +inf everywhere — *within* the extended-real contract: an
  /// all-infeasible slot.  The solve legitimately reports +inf cost with
  /// status kOk; tests use this to pin the fault/infeasibility distinction.
  kInfeasible,
  /// at() throws — a crashing dependency; classified kException.
  kThrow,
};

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Each instrumented passage fires with probability ~1/period (period 1 =
  /// always); see util::FaultInjector.
  std::uint64_t period = 16;
  PoisonKind poison = PoisonKind::kNaN;
};

/// The injector realizing this plan's backend-fault stream (sites
/// kPwlBackend / kDenseBackend keyed by job index).  Install with
/// util::ScopedFaultInjection around the batch under test.
rs::util::FaultInjector make_injector(const FaultPlan& plan);

/// The 1-based slots of a horizon-T instance this plan poisons (site
/// kSlotCost keyed by slot), ascending.  Deterministic in (plan, horizon).
std::vector<int> poisoned_slots(const FaultPlan& plan, int horizon);

/// Wraps `base` so every evaluation misbehaves per `kind`.  The wrapper is
/// opaque to the convex-PWL conversion (as_convex_pwl yields nullopt), so
/// poisoned slots always reach the dense evaluation path where the
/// contract violation is detected.
rs::core::CostPtr make_poisoned_cost(rs::core::CostPtr base, PoisonKind kind);

/// A copy of `p` with this plan's seeded slots replaced by poisoned
/// wrappers; the untouched slots share the original CostPtrs.  With no slot
/// selected (large period, unlucky seed) the copy is fault-free and solves
/// bit-identically to `p`.
rs::core::Problem apply_fault_plan(const rs::core::Problem& p,
                                   const FaultPlan& plan);

// ---- Fleet-site predictors (the chaos drill's witnesses) ----
//
// The fleet controller's fault sites are keyed by util::tenant_fault_index
// (tenant ordinal × a per-tenant monotone counter), so which tenants get
// killed or poisoned under a plan is a pure function of (plan, ordinal,
// counter range) — computable before the drill runs and asserted exactly
// after it.

/// True iff this plan's injector fires at tenant `tenant`'s `counter`-th
/// passage through `site`.
bool fleet_fires(const FaultPlan& plan, rs::util::FaultSite site,
                 std::size_t tenant, std::uint64_t counter);

/// 0-based offer indices (among tenant `tenant`'s first `offers` offer
/// calls) whose λ sample this plan corrupts in flight (site kIngest),
/// ascending.  A tenant fed before any tick quarantines iff this is
/// non-empty — and at exactly the first returned index, since later offers
/// of a quarantined tenant consume no fault indices.
std::vector<std::uint64_t> corrupted_offers(const FaultPlan& plan,
                                            std::size_t tenant,
                                            std::uint64_t offers);

/// 0-based fresh-attempt indices (among the first `attempts`, counting no
/// recovery retries) whose kFleetTick passage fires.  Non-empty iff an
/// unquarantined tenant with that many queued samples performs at least
/// one checkpoint recovery: attempts before the first fire consume exactly
/// one index each, so the first kill is index-exact (later ones may shift
/// under the retries the first recovery adds).
std::vector<std::uint64_t> killed_attempts(const FaultPlan& plan,
                                           std::size_t tenant,
                                           std::uint64_t attempts);

}  // namespace rs::scenario
