#include "scenario/eval_harness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/online_algorithm.hpp"
#include "online/randomized_rounding.hpp"
#include "scenario/rle.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace rs::scenario {

namespace {

// Pure splitmix64 mix of (base, k, s): the harness seeding contract.  No
// global RNG state — the same triple always yields the same seed.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t k, std::uint64_t s) {
  std::uint64_t state = base;
  state ^= rs::util::splitmix64(state) + k;
  state ^= rs::util::splitmix64(state) + s;
  return rs::util::splitmix64(state);
}

// Best static provisioning: min over x of β·x (one power-up from the empty
// initial state) + Σ_t f_t(x), evaluated once per RLE run, not per slot.
double best_static_cost(const RleProblem& rle) {
  double best = rs::util::kInf;
  for (int x = 0; x <= rle.max_servers(); ++x) {
    double total = rle.beta() * static_cast<double>(x);
    for (const RleProblem::Run& run : rle.runs()) {
      total += static_cast<double>(run.length) * run.cost->at(x);
      if (!std::isfinite(total)) break;
    }
    best = std::min(best, total);
  }
  return best;
}

double safe_ratio(double cost, double optimal) {
  if (optimal > 0.0) return cost / optimal;
  return cost > 0.0 ? rs::util::kInf : 1.0;
}

struct PerSample {
  std::uint64_t seed = 0;
  double optimal_cost = 0.0;
  double static_cost = 0.0;
  std::vector<double> algorithm_cost;  // by algorithm index
};

double run_algorithm(HarnessAlgorithm algorithm, const Scenario& scenario,
                     std::uint64_t sample_seed) {
  switch (algorithm) {
    case HarnessAlgorithm::kLcpDense: {
      const rs::core::Schedule x = replay_lcp(
          scenario.rle, rs::offline::WorkFunctionTracker::Backend::kDense);
      return rs::core::total_cost(scenario.problem, x);
    }
    case HarnessAlgorithm::kLcpAuto: {
      const rs::core::Schedule x = replay_lcp(
          scenario.rle, rs::offline::WorkFunctionTracker::Backend::kAuto);
      return rs::core::total_cost(scenario.problem, x);
    }
    case HarnessAlgorithm::kRandomizedRounding: {
      // Fresh rounding seed per sample, derived from the sample seed so the
      // trial stays a pure function of (base_seed, k, s).
      std::uint64_t state = sample_seed ^ 0xda3e39cb94b95bdbull;
      rs::online::RandomizedRounding rounding(rs::util::splitmix64(state));
      const rs::core::Schedule x =
          rs::online::run_online(rounding, scenario.problem);
      return rs::core::total_cost(scenario.problem, x);
    }
  }
  throw std::invalid_argument("run_algorithm: unknown HarnessAlgorithm");
}

}  // namespace

const char* to_string(HarnessAlgorithm algorithm) {
  switch (algorithm) {
    case HarnessAlgorithm::kLcpDense:
      return "lcp(dense)";
    case HarnessAlgorithm::kLcpAuto:
      return "lcp(auto)";
    case HarnessAlgorithm::kRandomizedRounding:
      return "randomized_rounding";
  }
  throw std::invalid_argument("to_string: unknown HarnessAlgorithm");
}

MonteCarloReport run_monte_carlo(const HarnessConfig& config) {
  if (config.scenarios.empty() || config.algorithms.empty()) {
    throw std::invalid_argument("run_monte_carlo: empty scenario/algorithm matrix");
  }
  if (config.samples_per_scenario < 1) {
    throw std::invalid_argument("run_monte_carlo: samples_per_scenario < 1");
  }
  const std::size_t kinds = config.scenarios.size();
  const std::size_t samples = static_cast<std::size_t>(config.samples_per_scenario);
  const std::size_t algorithms = config.algorithms.size();
  std::vector<PerSample> results(kinds * samples);

  rs::engine::SolverEngine engine(
      rs::engine::SolverEngine::Options{config.threads, true});
  MonteCarloReport report;
  engine.for_each(
      results.size(),
      [&](std::size_t job) {
        const std::size_t k = job / samples;
        const std::size_t s = job % samples;
        PerSample& out = results[job];
        out.seed = mix_seed(config.base_seed, k, s);
        const Scenario scenario =
            make_scenario(config.scenarios[k], config.zoo, out.seed);
        out.optimal_cost = rs::offline::DpSolver().solve_cost(scenario.problem);
        out.static_cost = best_static_cost(scenario.rle);
        out.algorithm_cost.reserve(algorithms);
        for (HarnessAlgorithm algorithm : config.algorithms) {
          out.algorithm_cost.push_back(
              run_algorithm(algorithm, scenario, out.seed));
        }
      },
      &report.stats);

  // Serialize in fixed scenario-major order — independent of which thread
  // produced which sample.
  report.samples.reserve(results.size() * algorithms);
  for (std::size_t k = 0; k < kinds; ++k) {
    for (std::size_t s = 0; s < samples; ++s) {
      const PerSample& in = results[k * samples + s];
      for (std::size_t a = 0; a < algorithms; ++a) {
        SampleRow row;
        row.kind = config.scenarios[k];
        row.algorithm = config.algorithms[a];
        row.sample = static_cast<int>(s);
        row.seed = in.seed;
        row.algorithm_cost = in.algorithm_cost[a];
        row.optimal_cost = in.optimal_cost;
        row.static_cost = in.static_cost;
        row.ratio = safe_ratio(row.algorithm_cost, row.optimal_cost);
        row.savings_percent =
            std::isfinite(in.static_cost) && in.static_cost > 0.0
                ? 100.0 * (in.static_cost - row.algorithm_cost) / in.static_cost
                : 0.0;
        report.samples.push_back(row);
      }
    }
  }

  report.cells.reserve(kinds * algorithms);
  for (std::size_t k = 0; k < kinds; ++k) {
    for (std::size_t a = 0; a < algorithms; ++a) {
      CellSummary cell;
      cell.kind = config.scenarios[k];
      cell.algorithm = config.algorithms[a];
      std::vector<double> ratios;
      std::vector<double> savings;
      rs::util::KahanSum opt_sum;
      for (std::size_t s = 0; s < samples; ++s) {
        const SampleRow& row =
            report.samples[(k * samples + s) * algorithms + a];
        ratios.push_back(row.ratio);
        savings.push_back(row.savings_percent);
        opt_sum.add(row.optimal_cost);
        cell.max_ratio = std::max(cell.max_ratio, row.ratio);
      }
      cell.ratio = rs::util::summarize(ratios);
      cell.savings_percent = rs::util::summarize(savings);
      cell.mean_optimal_cost = opt_sum.value() / static_cast<double>(samples);
      cell.samples = static_cast<int>(samples);
      report.cells.push_back(cell);
    }
  }
  return report;
}

std::string dashboard_markdown(const MonteCarloReport& report) {
  rs::util::TextTable table({"scenario", "algorithm", "mean ratio",
                             "max ratio", "mean savings %", "samples"});
  for (const CellSummary& cell : report.cells) {
    table.add_row({to_string(cell.kind), to_string(cell.algorithm),
                   rs::util::TextTable::num(cell.ratio.mean),
                   rs::util::TextTable::num(cell.max_ratio),
                   rs::util::TextTable::num(cell.savings_percent.mean, 1),
                   std::to_string(cell.samples)});
  }
  return table.to_string(true);
}

}  // namespace rs::scenario
