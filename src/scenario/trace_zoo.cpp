#include "scenario/trace_zoo.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/cost_function.hpp"
#include "core/piecewise_linear.hpp"
#include "lowerbound/adversary.hpp"
#include "online/lcp.hpp"
#include "util/rng.hpp"

namespace rs::scenario {

// f_t(x) = energy·x + sla·(headroom·λ − x)⁺ — the convex-PWL form of the
// dcsim soft-SLA model (whose FunctionCost slots are opaque to the PWL
// backend); built from the explicit hinge family so as_convex_pwl is exact.
rs::core::CostPtr hinge_sla_cost(const ZooParams& params, double lambda) {
  std::vector<rs::core::CostPtr> parts;
  parts.push_back(std::make_shared<rs::core::PiecewiseLinearCost>(
      std::vector<rs::core::Breakpoint>{{0.0, 0.0}, {1.0, params.energy}}));
  parts.push_back(
      rs::core::make_shortfall_hinge(params.sla, params.headroom * lambda));
  return std::make_shared<rs::core::SumCost>(std::move(parts));
}

namespace {

using rs::core::CostPtr;
using rs::util::Rng;
using rs::workload::Trace;

constexpr double kPi = 3.14159265358979323846;

void check_params(const ZooParams& params) {
  if (params.servers < 1) {
    throw std::invalid_argument("ZooParams: servers must be >= 1");
  }
  if (!(params.beta > 0.0)) {
    throw std::invalid_argument("ZooParams: beta must be > 0");
  }
  if (params.horizon < 1) {
    throw std::invalid_argument("ZooParams: horizon must be >= 1");
  }
  if (params.slots_per_day < 1) {
    throw std::invalid_argument("ZooParams: slots_per_day must be >= 1");
  }
  if (!(params.peak > 0.0)) {
    throw std::invalid_argument("ZooParams: peak must be > 0");
  }
  if (params.quantize_levels < 1) {
    throw std::invalid_argument("ZooParams: quantize_levels must be >= 1");
  }
  if (!(params.energy >= 0.0) || !(params.sla >= 0.0)) {
    throw std::invalid_argument("ZooParams: energy and sla must be >= 0");
  }
  if (!(params.headroom > 0.0)) {
    throw std::invalid_argument("ZooParams: headroom must be > 0");
  }
  if (!(params.tariff_base >= 0.0) || !(params.tariff_rate >= 0.0)) {
    throw std::invalid_argument("ZooParams: tariff must be >= 0");
  }
  if (!(params.pareto_alpha > 1.0)) {
    throw std::invalid_argument("ZooParams: pareto_alpha must be > 1");
  }
  if (!(params.adversary_eps > 0.0)) {
    throw std::invalid_argument("ZooParams: adversary_eps must be > 0");
  }
}

// Raised-cosine day shape in [0, 1], peaking mid-day.
double day_shape(int slot_of_day, int slots_per_day) {
  const double frac =
      static_cast<double>(slot_of_day) / static_cast<double>(slots_per_day);
  return 0.5 * (1.0 - std::cos(2.0 * kPi * frac));
}

// Weekday envelope: full weekday demand, a pronounced weekend dip.
double week_envelope(int day) { return day % 7 >= 5 ? 0.55 : 1.0; }

Trace diurnal_weekly_trace(const ZooParams& params, Rng& rng) {
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  const double valley = 0.25;
  for (int t = 0; t < params.horizon; ++t) {
    const int day = t / params.slots_per_day;
    const double shape = day_shape(t % params.slots_per_day,
                                   params.slots_per_day);
    const double level =
        week_envelope(day) * (valley + (1.0 - valley) * shape);
    const double noisy = level * (1.0 + rng.normal(0.0, 0.03));
    trace.lambda.push_back(std::max(0.0, params.peak * noisy));
  }
  return trace;
}

Trace flash_crowd_trace(const ZooParams& params, Rng& rng) {
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  double crowd = 1.0;  // multiplicative surge factor, decays geometrically
  for (int t = 0; t < params.horizon; ++t) {
    const double shape = day_shape(t % params.slots_per_day,
                                   params.slots_per_day);
    const double baseline = 0.6 * params.peak * (0.3 + 0.7 * shape);
    if (rng.bernoulli(0.004)) crowd = std::max(crowd, rng.uniform(2.0, 3.5));
    crowd = 1.0 + (crowd - 1.0) * 0.82;
    const double noisy = baseline * crowd * (1.0 + rng.normal(0.0, 0.02));
    trace.lambda.push_back(std::max(0.0, noisy));
  }
  return trace;
}

Trace heavy_tail_trace(const ZooParams& params, Rng& rng) {
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  // Demand must stay strictly inside the fleet so LinearLoadSlotCost keeps
  // a non-empty feasible range (it is all-infinite when λ > m).
  const double cap =
      std::min(params.peak, 0.95 * static_cast<double>(params.servers));
  const double scale = 0.15 * params.peak;  // Pareto x_m
  while (trace.horizon() < params.horizon) {
    // Inverse-CDF Pareto sample: x_m · u^{-1/α}, u ∈ (0, 1].
    const double u = std::max(rng.uniform(), 1e-12);
    const double value =
        std::min(cap, scale * std::pow(u, -1.0 / params.pareto_alpha));
    // Block-constant holds (telemetry aggregation windows): the natural
    // source of the constant-λ runs the RLE replay collapses.
    const int block = static_cast<int>(rng.uniform_int(4, 24));
    for (int i = 0; i < block && trace.horizon() < params.horizon; ++i) {
      trace.lambda.push_back(value);
    }
  }
  return trace;
}

Trace correlated_multi_dc_trace(const ZooParams& params, Rng& rng) {
  constexpr int kDataCenters = 4;
  double weights[kDataCenters];
  double total_weight = 0.0;
  for (double& w : weights) {
    w = rng.uniform(0.5, 1.5);
    total_weight += w;
  }
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(params.horizon));
  for (int t = 0; t < params.horizon; ++t) {
    const int day = t / params.slots_per_day;
    // One shared demand factor drives every data center (the correlated
    // component); each adds its own idiosyncratic noise.
    const double shared =
        week_envelope(day) *
        (0.3 + 0.7 * day_shape(t % params.slots_per_day,
                               params.slots_per_day)) *
        (1.0 + rng.normal(0.0, 0.02));
    double aggregate = 0.0;
    for (double w : weights) {
      aggregate += (w / total_weight) * shared *
                   std::max(0.0, 1.0 + rng.normal(0.0, 0.08));
    }
    trace.lambda.push_back(std::max(0.0, params.peak * aggregate));
  }
  return rs::workload::rescale_peak(trace, params.peak);
}

Scenario finish_scenario(ScenarioKind kind, const ZooParams& params,
                         Trace trace,
                         const std::function<CostPtr(double)>& cost_of) {
  trace = quantize_trace(trace, params.peak, params.quantize_levels);
  RleTrace rle_trace = rle_encode(trace);
  RleProblem rle = rle_problem_from_trace(rle_trace, params.servers,
                                          params.beta, cost_of);
  rs::core::Problem problem = rle.expand();
  return Scenario{to_string(kind), kind, std::move(trace), std::move(rle),
                  std::move(problem)};
}

Scenario adversarial_scenario(const ZooParams& params) {
  // Theorem-4 adversary against LCP itself (m = 1, β = 2 by construction);
  // deterministic, so the seed plays no role here.
  rs::online::Lcp lcp;
  rs::lowerbound::AdversaryOutcome outcome =
      rs::lowerbound::deterministic_discrete_adversary(
          lcp, params.adversary_eps, params.horizon);
  // The ϕ-center sequence is the trace: ϕ(ε, c) evaluates to ε·c at x = 0,
  // so c = 1 exactly when f_t(0) > 0.
  Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(outcome.problem.horizon()));
  for (int t = 1; t <= outcome.problem.horizon(); ++t) {
    trace.lambda.push_back(outcome.problem.f(t).at(0) > 0.0 ? 1.0 : 0.0);
  }
  // Rebuild the instance through the RLE factory so each constant-center
  // run shares one AffineAbsCost — structurally the adversary's instance,
  // now in the shared-pointer form rle_compress can recover.
  const double eps = params.adversary_eps;
  RleProblem rle = rle_problem_from_trace(
      rle_encode(trace), outcome.problem.max_servers(),
      outcome.problem.beta(), [eps](double lambda) -> CostPtr {
        return std::make_shared<rs::core::AffineAbsCost>(eps, lambda);
      });
  rs::core::Problem problem = rle.expand();
  return Scenario{to_string(ScenarioKind::kAdversarial),
                  ScenarioKind::kAdversarial, std::move(trace),
                  std::move(rle), std::move(problem)};
}

}  // namespace

const char* to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kDiurnalWeekly:
      return "diurnal_weekly";
    case ScenarioKind::kFlashCrowd:
      return "flash_crowd";
    case ScenarioKind::kHeavyTail:
      return "heavy_tail";
    case ScenarioKind::kCorrelatedMultiDc:
      return "correlated_multi_dc";
    case ScenarioKind::kAdversarial:
      return "adversarial";
  }
  throw std::invalid_argument("to_string: unknown ScenarioKind");
}

std::vector<ScenarioKind> all_scenario_kinds() {
  return {ScenarioKind::kDiurnalWeekly, ScenarioKind::kFlashCrowd,
          ScenarioKind::kHeavyTail, ScenarioKind::kCorrelatedMultiDc,
          ScenarioKind::kAdversarial};
}

rs::workload::Trace quantize_trace(const rs::workload::Trace& trace,
                                   double peak, int levels) {
  if (!(peak > 0.0)) {
    throw std::invalid_argument("quantize_trace: peak must be > 0");
  }
  if (levels < 1) {
    throw std::invalid_argument("quantize_trace: levels must be >= 1");
  }
  const double step = peak / static_cast<double>(levels);
  Trace out;
  out.lambda.reserve(trace.lambda.size());
  for (double value : trace.lambda) {
    // round-then-rescale: equal grid indices yield bitwise-identical
    // doubles, which is what rle_encode's == grouping needs.
    double index = std::round(value / step);
    index = std::min(index, static_cast<double>(levels));
    index = std::max(index, 0.0);
    out.lambda.push_back(index * step);
  }
  return out;
}

Scenario make_scenario(ScenarioKind kind, const ZooParams& params,
                       std::uint64_t seed) {
  check_params(params);
  Rng rng(seed);
  switch (kind) {
    case ScenarioKind::kDiurnalWeekly:
      return finish_scenario(kind, params, diurnal_weekly_trace(params, rng),
                             [&params](double lambda) {
                               return hinge_sla_cost(params, lambda);
                             });
    case ScenarioKind::kFlashCrowd:
      return finish_scenario(kind, params, flash_crowd_trace(params, rng),
                             [&params](double lambda) {
                               return hinge_sla_cost(params, lambda);
                             });
    case ScenarioKind::kHeavyTail:
      return finish_scenario(
          kind, params, heavy_tail_trace(params, rng),
          [&params](double lambda) -> CostPtr {
            return std::make_shared<rs::core::LinearLoadSlotCost>(
                params.tariff_base, params.tariff_rate, lambda);
          });
    case ScenarioKind::kCorrelatedMultiDc:
      return finish_scenario(kind, params,
                             correlated_multi_dc_trace(params, rng),
                             [&params](double lambda) {
                               return hinge_sla_cost(params, lambda);
                             });
    case ScenarioKind::kAdversarial:
      return adversarial_scenario(params);
  }
  throw std::invalid_argument("make_scenario: unknown ScenarioKind");
}

std::vector<Scenario> make_zoo(const ZooParams& params, std::uint64_t seed) {
  std::vector<Scenario> zoo;
  std::uint64_t state = seed;
  for (ScenarioKind kind : all_scenario_kinds()) {
    zoo.push_back(make_scenario(kind, params, rs::util::splitmix64(state)));
  }
  return zoo;
}

}  // namespace rs::scenario
