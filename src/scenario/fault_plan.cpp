#include "scenario/fault_plan.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "util/math_util.hpp"

namespace rs::scenario {

namespace {

// rs-lint: eval-row-ok (inherits the per-point default so every poison
// kind misbehaves identically on the batched path)
class PoisonedCost final : public rs::core::CostFunction {
 public:
  PoisonedCost(rs::core::CostPtr base, PoisonKind kind)
      : base_(std::move(base)), kind_(kind) {}

  double at(int x) const override {
    switch (kind_) {
      case PoisonKind::kNaN:
        return std::numeric_limits<double>::quiet_NaN();
      case PoisonKind::kInfeasible:
        return rs::util::kInf;
      case PoisonKind::kThrow:
        throw std::runtime_error("injected fault: poisoned slot cost");
    }
    return base_->at(x);  // unreachable
  }

  // eval_row inherits the default (per-point at() loop), so every poison
  // kind misbehaves identically on the batched path.

  std::string name() const override {
    return "poisoned(" + base_->name() + ")";
  }

 private:
  rs::core::CostPtr base_;
  PoisonKind kind_;
};

}  // namespace

rs::util::FaultInjector make_injector(const FaultPlan& plan) {
  return rs::util::FaultInjector(plan.seed, plan.period);
}

std::vector<int> poisoned_slots(const FaultPlan& plan, int horizon) {
  if (horizon < 0) {
    throw std::invalid_argument("poisoned_slots: horizon < 0");
  }
  const rs::util::FaultInjector injector = make_injector(plan);
  std::vector<int> slots;
  for (int t = 1; t <= horizon; ++t) {
    if (injector.fires(rs::util::FaultSite::kSlotCost,
                       static_cast<std::uint64_t>(t))) {
      slots.push_back(t);
    }
  }
  return slots;
}

rs::core::CostPtr make_poisoned_cost(rs::core::CostPtr base, PoisonKind kind) {
  if (base == nullptr) {
    throw std::invalid_argument("make_poisoned_cost: null base");
  }
  return std::make_shared<const PoisonedCost>(std::move(base), kind);
}

rs::core::Problem apply_fault_plan(const rs::core::Problem& p,
                                   const FaultPlan& plan) {
  const rs::util::FaultInjector injector = make_injector(plan);
  std::vector<rs::core::CostPtr> functions;
  functions.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    rs::core::CostPtr f = p.f_ptr(t);
    if (injector.fires(rs::util::FaultSite::kSlotCost,
                       static_cast<std::uint64_t>(t))) {
      f = make_poisoned_cost(std::move(f), plan.poison);
    }
    functions.push_back(std::move(f));
  }
  return rs::core::Problem(p.max_servers(), p.beta(), std::move(functions));
}

bool fleet_fires(const FaultPlan& plan, rs::util::FaultSite site,
                 std::size_t tenant, std::uint64_t counter) {
  return make_injector(plan).fires(
      site, rs::util::tenant_fault_index(tenant, counter));
}

namespace {

std::vector<std::uint64_t> firing_counters(const FaultPlan& plan,
                                           rs::util::FaultSite site,
                                           std::size_t tenant,
                                           std::uint64_t count) {
  const rs::util::FaultInjector injector = make_injector(plan);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (injector.fires(site, rs::util::tenant_fault_index(tenant, i))) {
      fired.push_back(i);
    }
  }
  return fired;
}

}  // namespace

std::vector<std::uint64_t> corrupted_offers(const FaultPlan& plan,
                                            std::size_t tenant,
                                            std::uint64_t offers) {
  return firing_counters(plan, rs::util::FaultSite::kIngest, tenant, offers);
}

std::vector<std::uint64_t> killed_attempts(const FaultPlan& plan,
                                           std::size_t tenant,
                                           std::uint64_t attempts) {
  return firing_counters(plan, rs::util::FaultSite::kFleetTick, tenant,
                         attempts);
}

}  // namespace rs::scenario
