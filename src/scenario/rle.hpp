// Run-length-encoded traces and instances.
//
// Real arrival traces hold λ_t — and hence the slot cost f_t — constant
// across long stretches (quantized telemetry, night valleys, flat SLAs).
// This module collapses those stretches so replays advance once per *run*
// instead of once per *slot*:
//
//   * RleTrace / RleProblem are exact views: expand() / rle_decode()
//     reproduce the original slot sequence, and rle_compress() groups a
//     Problem's slots by cost-function identity (the same CostPtr repeated
//     is the cheap, unambiguous witness that the slots are equal).
//   * replay_lcp() runs the LCP recurrence (eq. 13) over an RleProblem via
//     WorkFunctionTracker::advance_repeated: on the convex-PWL backend a
//     run's repeated relax+add reaches a bitwise *shape* fixpoint after a
//     handful of steps, after which the remaining slots of the run are a
//     single O(1) jump (see ConvexPwl::same_shape); the dense backend
//     evaluates the run's cost row once and re-feeds it per slot.  The
//     produced schedule is bit-identical to the slot-by-slot replay of the
//     expanded instance on the same backend — pinned by the RLE property
//     suite — which turns an O(T) replay into O(#runs) tracker work plus a
//     trivial O(T) projection fill.
#pragma once

#include <functional>
#include <vector>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "offline/work_function.hpp"
#include "workload/trace.hpp"

namespace rs::scenario {

/// One maximal constant-λ stretch.
struct RleRun {
  double lambda = 0.0;
  int length = 0;
};

struct RleTrace {
  std::vector<RleRun> runs;

  int run_count() const noexcept { return static_cast<int>(runs.size()); }
  int horizon() const noexcept {
    int total = 0;
    for (const RleRun& run : runs) total += run.length;
    return total;
  }
};

/// Groups maximal stretches of bitwise-equal λ values.  Exact: decode
/// reproduces the input trace entry for entry.
RleTrace rle_encode(const rs::workload::Trace& trace);

/// Expands back to one entry per slot.
rs::workload::Trace rle_decode(const RleTrace& rle);

/// A Problem whose slots are grouped into runs of one shared cost
/// function.  The view is exact: expand() materializes the slot sequence,
/// sharing one CostPtr across each run's slots.
class RleProblem {
 public:
  struct Run {
    rs::core::CostPtr cost;
    int length = 0;
  };

  /// Requires m >= 0, beta > 0, no null costs, every length >= 1.
  RleProblem(int m, double beta, std::vector<Run> runs);

  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }
  int run_count() const noexcept { return static_cast<int>(runs_.size()); }
  int horizon() const noexcept { return horizon_; }
  const std::vector<Run>& runs() const noexcept { return runs_; }

  /// The equivalent per-slot Problem (run r's cost pointer appears
  /// `length` times — slot costs are shared, not copied).
  rs::core::Problem expand() const;

 private:
  int m_;
  double beta_;
  int horizon_;
  std::vector<Run> runs_;
};

/// Builds the instance for an RLE trace: one cost per run from `cost_of`
/// (λ -> slot cost), shared across the run's slots.
RleProblem rle_problem_from_trace(
    const RleTrace& rle, int m, double beta,
    const std::function<rs::core::CostPtr(double lambda)>& cost_of);

/// Collapses maximal stretches of identical (same CostPtr) slots of `p`.
/// Identity comparison only — structurally equal but distinct cost objects
/// stay separate runs, so the compression is always exact.
RleProblem rle_compress(const rs::core::Problem& p);

/// LCP (eq. 13) over the RLE view, advancing the work-function tracker
/// once per run.  Bit-identical schedule to run_online(Lcp(backend),
/// rle.expand()); see the header comment for the per-backend mechanics.
rs::core::Schedule replay_lcp(
    const RleProblem& rle,
    rs::offline::WorkFunctionTracker::Backend backend =
        rs::offline::WorkFunctionTracker::Backend::kAuto);

/// Per-slot LCP corridor bounds (x^L_τ, x^U_τ) over the RLE view — the
/// compute_bounds analog, exposed for the property tests.
rs::offline::BoundTrajectory compute_bounds(
    const RleProblem& rle,
    rs::offline::WorkFunctionTracker::Backend backend =
        rs::offline::WorkFunctionTracker::Backend::kAuto);

}  // namespace rs::scenario
