// Trace zoo: parameterized scenario generators for the evaluation harness.
//
// Each scenario couples a synthetic arrival trace (workload/trace.hpp) with
// the instance it induces under one of the library's cost families, exposed
// both run-length-encoded (scenario/rle.hpp) and expanded.  λ values are
// quantized to a coarse grid before the instance is built — real telemetry
// is quantized the same way, and the resulting constant-λ stretches are
// what make the RLE replay pay off.
//
// The five kinds cover the shapes the right-sizing literature evaluates on:
//
//   kDiurnalWeekly     — seven raised-cosine day cycles with a weekend dip
//                        (the Hotmail-like regime of Lin et al.'s study).
//   kFlashCrowd        — a diurnal baseline plus rare multiplicative flash
//                        crowds with geometric decay.
//   kHeavyTail         — block-constant Pareto (heavy-tailed) arrivals; the
//                        instance uses the restricted-model linear tariff
//                        (LinearLoadSlotCost), capped below the fleet size.
//   kCorrelatedMultiDc — several data centers driven by one shared diurnal
//                        factor plus idiosyncratic noise, aggregated into a
//                        single provisioning problem.
//   kAdversarial       — the Theorem-4 lower-bound adversary played against
//                        LCP (lowerbound/adversary.hpp); its ϕ-center
//                        sequence is the trace, and the instance is rebuilt
//                        through the RLE factory so each constant-center run
//                        shares one AffineAbsCost.
//
// All generators are deterministic functions of (params, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/rle.hpp"
#include "workload/trace.hpp"

namespace rs::scenario {

enum class ScenarioKind {
  kDiurnalWeekly,
  kFlashCrowd,
  kHeavyTail,
  kCorrelatedMultiDc,
  kAdversarial,
};

const char* to_string(ScenarioKind kind);

/// All five kinds in declaration order (the harness matrix rows).
std::vector<ScenarioKind> all_scenario_kinds();

struct ZooParams {
  int servers = 48;           // fleet size m (adversarial scenarios use m = 1)
  double beta = 6.0;          // power-up cost
  int horizon = 672;          // slots; 7 days at 96 slots/day by default
  int slots_per_day = 96;
  double peak = 40.0;         // peak arrival rate, in server units
  int quantize_levels = 24;   // λ grid resolution (>= 1); coarser -> longer runs
  // Hinge-SLA cost family (the convex-PWL form of dcsim's soft model):
  //   f_t(x) = energy·x + sla·(headroom·λ_t − x)⁺.
  double energy = 1.0;
  double sla = 20.0;
  double headroom = 1.1;
  // Restricted-model linear tariff for kHeavyTail: f(z) = base + rate·z.
  double tariff_base = 1.0;
  double tariff_rate = 0.5;
  double pareto_alpha = 2.2;  // tail index (> 1 so the mean exists)
  double adversary_eps = 0.1; // Theorem-4 ε; smaller pushes the ratio to 3
};

struct Scenario {
  std::string name;
  ScenarioKind kind;
  rs::workload::Trace trace;
  RleProblem rle;             // the run-grouped instance
  rs::core::Problem problem;  // rle.expand() — one shared CostPtr per run
};

/// Builds one scenario.  Deterministic in (kind, params, seed); validates
/// params (throws std::invalid_argument).
Scenario make_scenario(ScenarioKind kind, const ZooParams& params,
                       std::uint64_t seed);

/// One scenario per kind, with per-kind seeds derived from `seed` via
/// splitmix64 (so kinds stay decorrelated but reproducible).
std::vector<Scenario> make_zoo(const ZooParams& params, std::uint64_t seed);

/// Snaps every λ to the `levels`-step grid over [0, peak] (bitwise-stable
/// rounding — equal inputs map to identical doubles, creating the constant
/// runs rle_encode collapses).  Exposed for the tests.
rs::workload::Trace quantize_trace(const rs::workload::Trace& trace,
                                   double peak, int levels);

/// f(x) = energy·x + sla·(headroom·λ − x)⁺ — the hinge-SLA slot cost the
/// zoo instances are built from (exact convex-PWL, so the m-independent
/// backend applies).  Exported as the default cost family for fleet
/// tenants: TenantConfig::cost_of = [p](double l) {
///   return hinge_sla_cost(p, l); }.
rs::core::CostPtr hinge_sla_cost(const ZooParams& params, double lambda);

}  // namespace rs::scenario
