#include "scenario/rle.hpp"

#include <stdexcept>
#include <utility>

#include "util/math_util.hpp"

namespace rs::scenario {

using rs::core::CostPtr;
using rs::core::Problem;
using rs::core::Schedule;
using rs::offline::WorkFunctionTracker;

RleTrace rle_encode(const rs::workload::Trace& trace) {
  RleTrace rle;
  for (double value : trace.lambda) {
    // Bitwise grouping (==): exactness matters more than merging nearly
    // equal levels — a lossy merge would change the replayed instance.
    if (!rle.runs.empty() && rle.runs.back().lambda == value) {
      ++rle.runs.back().length;
    } else {
      rle.runs.push_back(RleRun{value, 1});
    }
  }
  return rle;
}

rs::workload::Trace rle_decode(const RleTrace& rle) {
  rs::workload::Trace trace;
  trace.lambda.reserve(static_cast<std::size_t>(rle.horizon()));
  for (const RleRun& run : rle.runs) {
    for (int i = 0; i < run.length; ++i) trace.lambda.push_back(run.lambda);
  }
  return trace;
}

RleProblem::RleProblem(int m, double beta, std::vector<Run> runs)
    : m_(m), beta_(beta), horizon_(0), runs_(std::move(runs)) {
  if (m < 0) throw std::invalid_argument("RleProblem: m < 0");
  if (!(beta > 0.0)) throw std::invalid_argument("RleProblem: beta must be > 0");
  for (const Run& run : runs_) {
    if (!run.cost) throw std::invalid_argument("RleProblem: null cost");
    if (run.length < 1) {
      throw std::invalid_argument("RleProblem: run length < 1");
    }
    horizon_ += run.length;
  }
}

Problem RleProblem::expand() const {
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(horizon_));
  for (const Run& run : runs_) {
    for (int i = 0; i < run.length; ++i) fs.push_back(run.cost);
  }
  return Problem(m_, beta_, std::move(fs));
}

RleProblem rle_problem_from_trace(
    const RleTrace& rle, int m, double beta,
    const std::function<CostPtr(double lambda)>& cost_of) {
  if (!cost_of) {
    throw std::invalid_argument("rle_problem_from_trace: null cost factory");
  }
  std::vector<RleProblem::Run> runs;
  runs.reserve(rle.runs.size());
  for (const RleRun& run : rle.runs) {
    runs.push_back(RleProblem::Run{cost_of(run.lambda), run.length});
  }
  return RleProblem(m, beta, std::move(runs));
}

RleProblem rle_compress(const Problem& p) {
  std::vector<RleProblem::Run> runs;
  for (int t = 1; t <= p.horizon(); ++t) {
    CostPtr f = p.f_ptr(t);
    if (!runs.empty() && runs.back().cost.get() == f.get()) {
      ++runs.back().length;
    } else {
      runs.push_back(RleProblem::Run{std::move(f), 1});
    }
  }
  return RleProblem(p.max_servers(), p.beta(), std::move(runs));
}

Schedule replay_lcp(const RleProblem& rle,
                    WorkFunctionTracker::Backend backend) {
  WorkFunctionTracker tracker(rle.max_servers(), rle.beta(), backend);
  Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(rle.horizon()));
  std::vector<int> xl;
  std::vector<int> xu;
  int current = 0;
  for (const RleProblem::Run& run : rle.runs()) {
    if (static_cast<int>(xl.size()) < run.length) {
      xl.resize(static_cast<std::size_t>(run.length));
      xu.resize(static_cast<std::size_t>(run.length));
    }
    tracker.advance_repeated(*run.cost, run.length, xl, xu);
    // Same projection loop as Lcp::decide — after the shape fixpoint the
    // bounds entries repeat, so this stays a trivial O(length) pass.
    for (int i = 0; i < run.length; ++i) {
      current = rs::util::project(current, xl[static_cast<std::size_t>(i)],
                                  xu[static_cast<std::size_t>(i)]);
      schedule.push_back(current);
    }
  }
  return schedule;
}

rs::offline::BoundTrajectory compute_bounds(
    const RleProblem& rle, WorkFunctionTracker::Backend backend) {
  rs::offline::BoundTrajectory bounds;
  bounds.lower.resize(static_cast<std::size_t>(rle.horizon()));
  bounds.upper.resize(static_cast<std::size_t>(rle.horizon()));
  WorkFunctionTracker tracker(rle.max_servers(), rle.beta(), backend);
  std::size_t offset = 0;
  for (const RleProblem::Run& run : rle.runs()) {
    tracker.advance_repeated(
        *run.cost, run.length,
        std::span<int>(bounds.lower).subspan(offset),
        std::span<int>(bounds.upper).subspan(offset));
    offset += static_cast<std::size_t>(run.length);
  }
  return bounds;
}

}  // namespace rs::scenario
