#include "offline/dp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/math_util.hpp"

namespace rs::offline {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;

namespace {

// One DP step: given W_{t-1} (in `previous`), writes W_t into `next` and,
// if `parent` is non-null, records the argmin predecessor of each state.
// Tie-breaking: the prefix candidate (largest x' <= x among prefix argmins)
// is preferred only when strictly better than the suffix candidate, and
// argmins keep the smallest x'.
void dp_step(const Problem& p, int t, const std::vector<double>& previous,
             std::vector<double>& next, std::int32_t* parent) {
  const int m = p.max_servers();
  const double beta = p.beta();

  // Suffix minima of W_{t-1}: suffix_min[x] = min_{x' >= x} W_{t-1}(x').
  std::vector<double> suffix_min(static_cast<std::size_t>(m) + 1);
  std::vector<std::int32_t> suffix_arg(static_cast<std::size_t>(m) + 1);
  suffix_min[static_cast<std::size_t>(m)] = previous[static_cast<std::size_t>(m)];
  suffix_arg[static_cast<std::size_t>(m)] = m;
  for (int x = m - 1; x >= 0; --x) {
    const double here = previous[static_cast<std::size_t>(x)];
    if (here <= suffix_min[static_cast<std::size_t>(x + 1)]) {
      suffix_min[static_cast<std::size_t>(x)] = here;
      suffix_arg[static_cast<std::size_t>(x)] = x;  // smallest argmin
    } else {
      suffix_min[static_cast<std::size_t>(x)] = suffix_min[static_cast<std::size_t>(x + 1)];
      suffix_arg[static_cast<std::size_t>(x)] = suffix_arg[static_cast<std::size_t>(x + 1)];
    }
  }

  // Running prefix minimum of W_{t-1}(x') − β·x'.
  double prefix_min = kInf;
  std::int32_t prefix_arg = -1;
  for (int x = 0; x <= m; ++x) {
    const double shifted =
        previous[static_cast<std::size_t>(x)] - beta * static_cast<double>(x);
    if (shifted < prefix_min) {
      prefix_min = shifted;
      prefix_arg = static_cast<std::int32_t>(x);
    }
    const double up_candidate = prefix_min + beta * static_cast<double>(x);
    const double stay_candidate = suffix_min[static_cast<std::size_t>(x)];
    double transition;
    std::int32_t chosen;
    if (up_candidate < stay_candidate) {
      transition = up_candidate;
      chosen = prefix_arg;
    } else {
      transition = stay_candidate;
      chosen = suffix_arg[static_cast<std::size_t>(x)];
    }
    const double f = p.cost_at(t, x);
    next[static_cast<std::size_t>(x)] =
        std::isinf(f) || std::isinf(transition) ? kInf : transition + f;
    if (parent != nullptr) parent[x] = chosen;
  }
}

std::vector<double> initial_labels(int m, double beta) {
  // W_0 encodes x_0 = 0: transitioning to x costs β·x in the power-up
  // accounting, folded into the first dp_step via W_0(0) = 0, +inf else.
  std::vector<double> w(static_cast<std::size_t>(m) + 1, kInf);
  w[0] = 0.0;
  (void)beta;
  return w;
}

}  // namespace

OfflineResult DpSolver::solve(const Problem& p) const {
  const int T = p.horizon();
  const int m = p.max_servers();
  OfflineResult result;
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }

  std::vector<std::int32_t> parents(static_cast<std::size_t>(T) *
                                    (static_cast<std::size_t>(m) + 1));
  std::vector<double> current = initial_labels(m, p.beta());
  std::vector<double> next(static_cast<std::size_t>(m) + 1);
  for (int t = 1; t <= T; ++t) {
    dp_step(p, t, current, next,
            parents.data() + static_cast<std::size_t>(t - 1) *
                                 (static_cast<std::size_t>(m) + 1));
    std::swap(current, next);
  }

  // Final state: cheapest label (power-down to x_{T+1} = 0 is free).
  int best = 0;
  for (int x = 1; x <= m; ++x) {
    if (current[static_cast<std::size_t>(x)] < current[static_cast<std::size_t>(best)]) {
      best = x;
    }
  }
  result.cost = current[static_cast<std::size_t>(best)];
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  int state = best;
  for (int t = T; t >= 1; --t) {
    result.schedule[static_cast<std::size_t>(t - 1)] = state;
    state = parents[static_cast<std::size_t>(t - 1) *
                        (static_cast<std::size_t>(m) + 1) +
                    static_cast<std::size_t>(state)];
  }
  return result;
}

double DpSolver::solve_cost(const Problem& p) const {
  const int T = p.horizon();
  const int m = p.max_servers();
  if (T == 0) return 0.0;
  std::vector<double> current = initial_labels(m, p.beta());
  std::vector<double> next(static_cast<std::size_t>(m) + 1);
  for (int t = 1; t <= T; ++t) {
    dp_step(p, t, current, next, nullptr);
    std::swap(current, next);
  }
  return *std::min_element(current.begin(), current.end());
}

}  // namespace rs::offline
