// rs-lint: minmax-audited — the DP label folds are approved branch-free
// kernels: a poisoned NaN row is surfaced by the `poison` accumulators
// below, never laundered into +inf by std::min (DESIGN.md §13).
#include "offline/dp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "offline/backward_solver.hpp"
#include "offline/work_function.hpp"
#include "util/math_util.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

using rs::core::DenseProblem;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::util::Workspace;

namespace {

// One DP step: given W_{t-1} (in `previous`) and the dense row f_t(0..m),
// writes W_t into `next` and, if `parent` is non-null, records the argmin
// predecessor of each state.  The row comes from CostFunction::eval_row (or
// a DenseProblem), so the loop is branch-light and dispatch-free.
// Tie-breaking: the prefix candidate (largest x' <= x among prefix argmins)
// is preferred only when strictly better than the suffix candidate, and
// argmins keep the smallest x'.
//
// Extended-real arithmetic: labels and row values live in [0, +inf], so
// `transition + f` is +inf exactly when either operand is — the value
// computation carries no isinf guards.  The argmin bookkeeping keeps its
// rarely-taken branches (the predictor makes them free; select chains
// would serialize the loop-carried minima).
void dp_step(std::span<const double> frow, double beta,
             std::span<const double> previous, std::span<double> next,
             std::span<double> suffix_min, std::span<std::int32_t> suffix_arg,
             std::int32_t* parent) {
  const int m = static_cast<int>(frow.size()) - 1;

  // Suffix minima of W_{t-1}: suffix_min[x] = min_{x' >= x} W_{t-1}(x').
  // The suffix workspaces are owned by the caller so the per-step loop is
  // allocation-free.
  suffix_min[static_cast<std::size_t>(m)] = previous[static_cast<std::size_t>(m)];
  suffix_arg[static_cast<std::size_t>(m)] = m;
  for (int x = m - 1; x >= 0; --x) {
    const double here = previous[static_cast<std::size_t>(x)];
    if (here <= suffix_min[static_cast<std::size_t>(x + 1)]) {
      suffix_min[static_cast<std::size_t>(x)] = here;
      suffix_arg[static_cast<std::size_t>(x)] = x;  // smallest argmin
    } else {
      suffix_min[static_cast<std::size_t>(x)] = suffix_min[static_cast<std::size_t>(x + 1)];
      suffix_arg[static_cast<std::size_t>(x)] = suffix_arg[static_cast<std::size_t>(x + 1)];
    }
  }

  // Running prefix minimum of W_{t-1}(x') − β·x'.
  double prefix_min = kInf;
  std::int32_t prefix_arg = -1;
  for (int x = 0; x <= m; ++x) {
    const double shifted =
        previous[static_cast<std::size_t>(x)] - beta * static_cast<double>(x);
    if (shifted < prefix_min) {
      prefix_min = shifted;
      prefix_arg = static_cast<std::int32_t>(x);
    }
    const double up_candidate = prefix_min + beta * static_cast<double>(x);
    const double stay_candidate = suffix_min[static_cast<std::size_t>(x)];
    double transition;
    std::int32_t chosen;
    if (up_candidate < stay_candidate) {
      transition = up_candidate;
      chosen = prefix_arg;
    } else {
      transition = stay_candidate;
      chosen = suffix_arg[static_cast<std::size_t>(x)];
    }
    next[static_cast<std::size_t>(x)] =
        transition + frow[static_cast<std::size_t>(x)];
    if (parent != nullptr) parent[x] = chosen;
  }
}

// W_0 encodes x_0 = 0: transitioning to x costs β·x in the power-up
// accounting, folded into the first dp_step via W_0(0) = 0, +inf else.
void initial_labels(std::span<double> w) {
  std::fill(w.begin(), w.end(), kInf);
  w[0] = 0.0;
}

// The full solver parameterized over a row provider `row_at(t)`; shared by
// the streaming (eval_row per step, O(m) extra memory) and the table-backed
// (DenseProblem) entry points.  All scratch comes from the calling thread's
// workspace, so repeated solves are allocation-free after warm-up.
template <typename RowAt>
OfflineResult solve_impl(int T, int m, double beta, RowAt&& row_at) {
  OfflineResult result;
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }

  const std::size_t width = static_cast<std::size_t>(m) + 1;
  Workspace& workspace = rs::util::this_thread_workspace();
  auto parents =
      workspace.borrow<std::int32_t>(static_cast<std::size_t>(T) * width);
  auto current = workspace.borrow<double>(width);
  auto next = workspace.borrow<double>(width);
  auto suffix_min = workspace.borrow<double>(width);
  auto suffix_arg = workspace.borrow<std::int32_t>(width);
  initial_labels(current.span());
  for (int t = 1; t <= T; ++t) {
    dp_step(row_at(t), beta, current.span(), next.span(), suffix_min.span(),
            suffix_arg.span(),
            parents.data() + static_cast<std::size_t>(t - 1) * width);
    std::swap(current.vec(), next.vec());
  }

  // Final state: cheapest label (power-down to x_{T+1} = 0 is free).
  int best = 0;
  for (int x = 1; x <= m; ++x) {
    if (current[static_cast<std::size_t>(x)] < current[static_cast<std::size_t>(best)]) {
      best = x;
    }
  }
  result.cost = current[static_cast<std::size_t>(best)];
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  int state = best;
  for (int t = T; t >= 1; --t) {
    result.schedule[static_cast<std::size_t>(t - 1)] = state;
    state = parents[static_cast<std::size_t>(t - 1) * width +
                    static_cast<std::size_t>(state)];
  }
  return result;
}

// Cost-only DP: no argmin bookkeeping, so the transition relax runs
// in-place in two passes (forward prefix fold, backward suffix fold fused
// with the f_t addition) — the same extended-real minima as dp_step, hence
// bit-identical labels, at roughly half the memory traffic.  Both passes
// are straight min/add chains with no data-dependent branches.
//
// std::min discards NaN (it loses every `<` comparison), so a NaN row value
// would silently launder into +inf one slot later — indistinguishable from
// legitimate infeasibility.  The branch-free `poison` accumulator keeps this
// entry point consistent with the parent-tracking DP, whose suffix seed
// copies labels verbatim and therefore propagates NaN to the final cost.
template <typename RowAt>
double solve_cost_impl(int T, int m, double beta, RowAt&& row_at) {
  if (T == 0) return 0.0;
  Workspace& workspace = rs::util::this_thread_workspace();
  auto labels = workspace.borrow<double>(static_cast<std::size_t>(m) + 1);
  initial_labels(labels.span());
  double* w = labels.data();
  double poison = 0.0;  // NaN iff any row value was NaN
  for (int t = 1; t <= T; ++t) {
    const std::span<const double> frow = row_at(t);
    double best_shifted = kInf;  // min W_{t-1}(x') − βx'
    for (int x = 0; x <= m; ++x) {
      best_shifted =
          std::min(best_shifted, w[x] - beta * static_cast<double>(x));
      w[x] = std::min(w[x], best_shifted + beta * static_cast<double>(x));
    }
    double suffix = kInf;  // free power-down: min over x' >= x
    for (int x = m; x >= 0; --x) {
      suffix = std::min(suffix, w[x]);
      w[x] = suffix + frow[static_cast<std::size_t>(x)];
      poison += frow[static_cast<std::size_t>(x)];
    }
  }
  if (std::isnan(poison)) return poison;
  return *std::min_element(labels.begin(), labels.end());
}

// The convex fast path: the DP labels coincide with the bound work
// function Ĉ^L (same relax, same f_t addition), so one auto-backend
// tracker pass yields the optimal cost (min Ĉ^L_T) and the per-step bound
// corridor, from which the Lemma-11 backward projection reconstructs an
// optimal schedule without any parent table.  With the PWL backend this is
// O(T·B log K) time and O(T + K) memory; on the dense fallback it is the
// usual O(T·m).
// Shared by the streaming (per-slot conversion inside the tracker) and the
// cached-forms (PwlProblem) entry points; `advance_at(tracker, t)` feeds
// slot t into the tracker.
template <typename AdvanceAt>
OfflineResult solve_convex_impl(int T, int m, double beta, bool want_schedule,
                                WorkFunctionTracker::Backend backend,
                                AdvanceAt&& advance_at) {
  OfflineResult result;
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  WorkFunctionTracker tracker(m, beta, backend);
  BoundTrajectory bounds;
  if (want_schedule) {
    bounds.lower.reserve(static_cast<std::size_t>(T));
    bounds.upper.reserve(static_cast<std::size_t>(T));
  }
  for (int t = 1; t <= T; ++t) {
    advance_at(tracker, t);
    if (want_schedule) {
      bounds.lower.push_back(tracker.x_lower());
      bounds.upper.push_back(tracker.x_upper());
    }
  }
  result.cost = tracker.chat_lower(tracker.x_lower());
  if (want_schedule && result.feasible()) {
    result.schedule = backward_schedule(bounds);
  }
  return result;
}

OfflineResult solve_convex_auto(const Problem& p, bool want_schedule) {
  return solve_convex_impl(
      p.horizon(), p.max_servers(), p.beta(), want_schedule,
      WorkFunctionTracker::Backend::kAuto,
      [&p](WorkFunctionTracker& tracker, int t) { tracker.advance(p.f(t)); });
}

OfflineResult solve_convex_cached(const rs::core::PwlProblem& pwl,
                                  bool want_schedule) {
  return solve_convex_impl(pwl.horizon(), pwl.max_servers(), pwl.beta(),
                           want_schedule, WorkFunctionTracker::Backend::kPwl,
                           [&pwl](WorkFunctionTracker& tracker, int t) {
                             tracker.advance(pwl.form(t));
                           });
}

}  // namespace

OfflineResult DpSolver::solve(const Problem& p) const {
  if (backend_ == Backend::kConvexAuto) {
    return solve_convex_auto(p, /*want_schedule=*/true);
  }
  const int m = p.max_servers();
  auto frow = rs::util::this_thread_workspace().borrow<double>(
      static_cast<std::size_t>(m) + 1);
  return solve_impl(p.horizon(), m, p.beta(),
                    [&p, m, &frow](int t) -> std::span<const double> {
                      p.f(t).eval_row(m, frow.span());
                      return frow.span();
                    });
}

OfflineResult DpSolver::solve(const DenseProblem& dense) const {
  return solve_impl(dense.horizon(), dense.max_servers(), dense.beta(),
                    [&dense](int t) { return dense.row(t); });
}

OfflineResult DpSolver::solve(const rs::core::PwlProblem& pwl) const {
  return solve_convex_cached(pwl, /*want_schedule=*/true);
}

double DpSolver::solve_cost(const rs::core::PwlProblem& pwl) const {
  return solve_convex_cached(pwl, /*want_schedule=*/false).cost;
}

double DpSolver::solve_cost(const Problem& p) const {
  if (backend_ == Backend::kConvexAuto) {
    return solve_convex_auto(p, /*want_schedule=*/false).cost;
  }
  const int m = p.max_servers();
  auto frow = rs::util::this_thread_workspace().borrow<double>(
      static_cast<std::size_t>(m) + 1);
  return solve_cost_impl(p.horizon(), m, p.beta(),
                         [&p, m, &frow](int t) -> std::span<const double> {
                           p.f(t).eval_row(m, frow.span());
                           return frow.span();
                         });
}

double DpSolver::solve_cost(const DenseProblem& dense) const {
  return solve_cost_impl(dense.horizon(), dense.max_servers(), dense.beta(),
                         [&dense](int t) { return dense.row(t); });
}

}  // namespace rs::offline
