// The paper's polynomial offline algorithm (Section 2.2, Theorem 1).
//
// After padding m to a power of two, the algorithm performs log2(m) − 1
// refinement iterations k = K, K−1, .., 0 with K = log2(m) − 2.  Iteration K
// solves the instance restricted to the five rows {0, m/4, m/2, 3m/4, m};
// every later iteration k keeps, per column, the five states
// { x̂^{k+1}_t + ξ·2^k : ξ ∈ {−2,−1,0,1,2} } ∩ [0, m] around the previous
// iterate.  Lemma 5 guarantees an optimal schedule of P_k within distance
// 2^{k+1} of any optimal schedule of P_{k+1}, so the final iteration (k = 0)
// is optimal for the original instance.  Running time O(T·log m).
#pragma once

#include "offline/bounded_dp.hpp"
#include "offline/solver.hpp"

namespace rs::offline {

struct BinarySearchStats {
  int iterations = 0;
  BoundedDpStats dp;
};

class BinarySearchSolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;

  /// As solve(), additionally reporting iteration and evaluation counts
  /// (used by the Theorem-1 scaling experiment to verify O(T·log m)).
  OfflineResult solve_with_stats(const rs::core::Problem& p,
                                 BinarySearchStats& stats) const;

  std::string name() const override { return "binary_search"; }
};

}  // namespace rs::offline
