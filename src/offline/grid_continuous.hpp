// Continuous-setting optimum on a uniform grid.
//
// The continuous extension P̄ of an instance (eq. 3) has piecewise-linear
// slot costs with breakpoints at the integers, so its optimum is attained at
// grid points of any grid refining the integers (Lemma 4 rounds optima to
// integers; intermediate resolutions are used by the continuous lower-bound
// experiments of Section 5.2 where the adversary's ϕ functions make the
// online algorithm move in ε/2 steps).  This solver discretizes [0, m] into
// steps of 1/q and runs the exact DP on the scaled integer instance; for
// cost functions whose breakpoints lie on the grid the result is the exact
// continuous optimum.
#pragma once

#include "core/problem.hpp"
#include "core/schedule.hpp"

namespace rs::offline {

struct ContinuousResult {
  rs::core::FractionalSchedule schedule;
  double cost = rs::util::kInf;
  bool feasible() const noexcept { return std::isfinite(cost); }
};

/// Optimal fractional schedule of P̄ on the grid {0, 1/q, 2/q, .., m}.
/// Requires q >= 1.
ContinuousResult solve_continuous_on_grid(const rs::core::Problem& p, int q);

}  // namespace rs::offline
