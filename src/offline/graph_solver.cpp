#include "offline/graph_solver.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/math_util.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

using rs::util::kInf;
using rs::util::pos;

OfflineResult GraphSolver::solve(const rs::core::Problem& p) const {
  OfflineResult result;
  const int T = p.horizon();
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  const int m = p.max_servers();
  const double beta = p.beta();
  const std::size_t width = static_cast<std::size_t>(m) + 1;

  rs::util::Workspace& workspace = rs::util::this_thread_workspace();
  auto dist = workspace.borrow<double>(width);
  auto next = workspace.borrow<double>(width);
  auto frow = workspace.borrow<double>(width);
  auto parents =
      workspace.borrow<std::int32_t>(static_cast<std::size_t>(T) * width);

  const auto fill_row = [&](int t) {
    p.f(t).eval_row(m, frow.span());
    for (int x = 0; x <= m; ++x) {
      if (std::isnan(frow[static_cast<std::size_t>(x)])) {
        // The explicit builder rejected NaN at add_edge time; keep the
        // contract.
        throw std::invalid_argument("GraphSolver: NaN edge weight");
      }
    }
  };

  // Layer 0 -> 1: the single source v_{0,0} pays f_1(j) + β·j (power-up
  // from x_0 = 0); same expression as the explicit edge weights.
  fill_row(1);
  for (int j = 0; j <= m; ++j) {
    dist[static_cast<std::size_t>(j)] =
        frow[static_cast<std::size_t>(j)] + beta * static_cast<double>(j);
    parents[static_cast<std::size_t>(j)] = 0;
  }

  // Layers t-1 -> t: relax every (j -> j') transition with weight
  // β(j'−j)⁺ + f_t(j').  Candidates arrive in ascending j for each j',
  // exactly the insertion order of the explicit per-layer edge lists, so
  // argmin ties resolve identically (first strict improvement wins).
  for (int t = 2; t <= T; ++t) {
    fill_row(t);
    std::int32_t* parent_row =
        parents.data() + static_cast<std::size_t>(t - 1) * width;
    for (int jp = 0; jp <= m; ++jp) {
      const double fj = frow[static_cast<std::size_t>(jp)];
      double best = kInf;
      std::int32_t arg = -1;
      if (!std::isinf(fj)) {
        for (int j = 0; j <= m; ++j) {
          const double from = dist[static_cast<std::size_t>(j)];
          if (std::isinf(from)) continue;
          const double weight =
              beta * static_cast<double>(pos(jp - j)) + fj;
          const double candidate = from + weight;
          if (candidate < best) {
            best = candidate;
            arg = static_cast<std::int32_t>(j);
          }
        }
      }
      next[static_cast<std::size_t>(jp)] = best;
      parent_row[jp] = arg;
    }
    std::swap(dist.vec(), next.vec());
  }

  // Layer T -> T+1: free power-down into v_{T+1,0}; smallest argmin wins
  // (edges were inserted in ascending j).
  double best = kInf;
  int final_state = -1;
  for (int j = 0; j <= m; ++j) {
    if (dist[static_cast<std::size_t>(j)] < best) {
      best = dist[static_cast<std::size_t>(j)];
      final_state = j;
    }
  }
  result.cost = final_state >= 0 ? best : kInf;
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  int state = final_state;
  for (int t = T; t >= 1; --t) {
    if (state < 0) {
      throw std::logic_error("GraphSolver: broken parent chain");
    }
    result.schedule[static_cast<std::size_t>(t - 1)] = state;
    state = parents[static_cast<std::size_t>(t - 1) * width +
                    static_cast<std::size_t>(state)];
  }
  return result;
}

}  // namespace rs::offline
