#include "offline/graph_solver.hpp"

#include "graph/layered_graph.hpp"
#include "graph/schedule_graph.hpp"

namespace rs::offline {

OfflineResult GraphSolver::solve(const rs::core::Problem& p) const {
  OfflineResult result;
  if (p.horizon() == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  const rs::graph::LayeredGraph graph = rs::graph::build_schedule_graph(p);
  const rs::graph::LayeredGraph::PathResult path = graph.shortest_path(0, 0);
  result.cost = path.distance;
  if (path.reachable()) {
    result.schedule = rs::graph::path_to_schedule(path);
  }
  return result;
}

}  // namespace rs::offline
