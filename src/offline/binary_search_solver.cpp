#include "offline/binary_search_solver.hpp"

#include <algorithm>
#include <cmath>

#include "core/transforms.hpp"
#include "offline/dp_solver.hpp"

namespace rs::offline {

using rs::core::PaddedProblem;
using rs::core::Problem;
using rs::core::Schedule;

namespace {

int log2_exact(int power_of_two) {
  int log = 0;
  while ((1 << log) < power_of_two) ++log;
  return log;
}

std::vector<std::vector<int>> refine_columns(const Schedule& anchor,
                                             int half_step, int m) {
  std::vector<std::vector<int>> columns(anchor.size());
  for (std::size_t t = 0; t < anchor.size(); ++t) {
    std::vector<int>& column = columns[t];
    for (int xi = -2; xi <= 2; ++xi) {
      const int state = anchor[t] + xi * half_step;
      if (state >= 0 && state <= m) column.push_back(state);
    }
  }
  return columns;
}

}  // namespace

OfflineResult BinarySearchSolver::solve(const Problem& p) const {
  BinarySearchStats stats;
  return solve_with_stats(p, stats);
}

OfflineResult BinarySearchSolver::solve_with_stats(
    const Problem& p, BinarySearchStats& stats) const {
  stats = BinarySearchStats{};
  if (p.horizon() == 0) {
    return OfflineResult{{}, 0.0};
  }
  if (p.max_servers() < 1) {
    // Only the all-zero schedule exists.
    Schedule zeros(static_cast<std::size_t>(p.horizon()), 0);
    const double cost = rs::core::total_cost(p, zeros);
    return OfflineResult{std::isfinite(cost) ? zeros : Schedule{}, cost};
  }

  const PaddedProblem padded = pad_to_power_of_two(p);
  const Problem& q = padded.problem;
  const int m = q.max_servers();

  if (m < 4) {
    // K = log2(m) − 2 < 0: the instance is small enough to solve directly.
    ++stats.iterations;
    const std::vector<int> column = rs::core::multiples_of(1, m);
    OfflineResult result = solve_bounded(
        q,
        std::vector<std::vector<int>>(static_cast<std::size_t>(q.horizon()),
                                      column),
        &stats.dp);
    return result;
  }

  const int K = log2_exact(m) - 2;

  // Iteration K: rows {0, m/4, m/2, 3m/4, m}.
  std::vector<int> first_column;
  for (int xi = 0; xi <= 4; ++xi) first_column.push_back(xi * (m / 4));
  std::vector<std::vector<int>> columns(
      static_cast<std::size_t>(q.horizon()), first_column);

  OfflineResult result;
  for (int k = K; k >= 0; --k) {
    ++stats.iterations;
    result = solve_bounded(q, columns, &stats.dp);
    if (!result.feasible()) {
      // The refinement invariant (Lemma 5) needs an optimum of P_k.  With
      // finite convex costs the five-row grid always contains one, but
      // +inf-valued states (hard constraints) can make a restriction
      // infeasible.  Widen to all multiples of 2^k; if even P_k is
      // infeasible, Lemma 5 no longer applies and we fall back to the exact
      // O(T·m) DP, which handles arbitrary extended-real convex costs.
      result = solve_phi_restricted(q, k);
      if (!result.feasible()) {
        return DpSolver().solve(q);
      }
    }
    if (k > 0) {
      columns = refine_columns(result.schedule, 1 << (k - 1), m);
    }
  }

  // The optimum of the padded instance never uses padded states; clamp
  // defensively so the returned schedule is valid for the original m.
  for (int& state : result.schedule) {
    state = std::min(state, padded.original_m);
  }
  return result;
}

}  // namespace rs::offline
