// Shortest-path baseline over the explicit Figure-1 graph.
//
// O(T·m²) time and memory — the pseudo-polynomial algorithm Section 2.1
// starts from.  Kept as an independently-implemented cross-check for the DP
// and binary-search solvers, and as the subject of the E1/E2 benchmarks.
#pragma once

#include "offline/solver.hpp"

namespace rs::offline {

class GraphSolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;
  std::string name() const override { return "graph_sssp"; }
};

}  // namespace rs::offline
