// Shortest-path baseline over the Figure-1 graph.
//
// O(T·m²) time — the pseudo-polynomial algorithm Section 2.1 starts from.
// The grid graph is relaxed edge by edge exactly as an explicit
// LayeredGraph build would visit it (same weights, same order, hence the
// same distances and tie-breaking bit for bit), but the edges are
// enumerated implicitly: with one vertex per (t, x) the edge set is fully
// determined by β and f_t, so storing T·m² Edge records — the dominant
// allocation of the old explicit build — buys nothing.  All per-solve
// state (distance rows, the f_t row, the T×(m+1) parent table) is borrowed
// from the per-thread workspace arenas (util/workspace.hpp), so repeated
// solves are allocation-free after warm-up; this is what made the solver
// stable enough to rejoin the bench smoke gate.
//
// Kept as an independently-implemented cross-check for the DP and
// binary-search solvers (it relaxes every O(m²) transition, no
// prefix/suffix-minima shortcut), and as the subject of the E1/E2
// benchmarks.  graph/layered_graph.hpp remains the generic explicit-DAG
// substrate for the visualization and structure tests.
#pragma once

#include "offline/solver.hpp"

namespace rs::offline {

class GraphSolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;
  std::string name() const override { return "graph_sssp"; }
};

}  // namespace rs::offline
