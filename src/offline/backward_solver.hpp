// Offline optimal schedule from the Lemma-11 backward recursion:
//
//   x̂_{T+1} = 0,   x̂_t = [ x̂_{t+1} ]^{x^U_t}_{x^L_t}  for t = T..1,
//
// i.e. project the successor state into the online bound corridor.  Lemma 11
// proves the result is optimal; this gives an O(T·m) optimal solver whose
// machinery is shared with the online LCP algorithm, and an executable
// witness for the Lemma-6/11 property tests.
#pragma once

#include "offline/solver.hpp"
#include "offline/work_function.hpp"

namespace rs::offline {

class BackwardSolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;
  std::string name() const override { return "backward_lemma11"; }
};

/// The Lemma-11 schedule for precomputed bounds (exposed for tests).
rs::core::Schedule backward_schedule(const BoundTrajectory& bounds);

}  // namespace rs::offline
