// Incremental re-solve sessions: delta propagation instead of replay.
//
// A DpDeltaSession keeps a solved instance *live*: the work-function
// tracker that produced the solution stays resident with its rewind buffer
// (offline/work_function.hpp) covering the whole horizon, so editing one
// slot costs a forward repair from the edit point — with a bitwise
// reconvergence early-exit — instead of an O(T) replay.  The repaired
// result (cost, corridor bounds, Lemma-11 schedule) is bit-identical to
// tearing the session down and re-solving the edited instance from scratch
// on the same backend; edits that would flip the kAuto backend trajectory
// (a convertible slot becoming non-convertible or vice versa) are handled
// by an automatic full re-solve, preserving the same contract.
//
// probe_delta answers what-if questions non-destructively: it repairs
// forward, copies the result, then repairs *back* with the original cost.
// The inverse repair early-exits at the same reconvergence boundary (the
// stored post-states there are the original run's), so the session returns
// to its pre-probe state bitwise and nothing needs to be snapshotted.
//
// This is the incremental-propagator idiom of constraint solvers applied
// to the paper's work-function recursion; SolverEngine's kDeltaResolve job
// kind and the fleet's what_if probes are the serving-layer consumers.
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "offline/solver.hpp"
#include "offline/work_function.hpp"

namespace rs::offline {

class DpDeltaSession {
 public:
  /// Which label representation carries the session; maps onto
  /// WorkFunctionTracker::Backend (kAuto = PWL while every slot converts
  /// compactly, dense after the first that does not).
  enum class Backend { kDense, kPwl, kAuto };

  /// Per-edit repair statistics.
  struct DeltaStats {
    int slots_repaired = 0;  // slots re-advanced by the repair
    bool early_exit = false;  // labels reconverged before the horizon end
    bool full_replay = false;  // backend trajectory changed: full re-solve
  };

  /// Solves `p` from scratch and keeps the session live.  Requires a
  /// non-empty horizon.  The slot costs are retained (shared_ptr copies);
  /// the Problem itself is not referenced after construction.
  explicit DpDeltaSession(const rs::core::Problem& p,
                          Backend backend = Backend::kAuto);

  int horizon() const noexcept { return static_cast<int>(costs_.size()); }
  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }
  Backend backend() const noexcept { return backend_; }

  /// Cost of the current (possibly edited) instance; O(1).
  double cost() const noexcept { return cost_; }

  /// Bound corridor of the current instance.
  const BoundTrajectory& bounds() const noexcept { return bounds_; }

  /// Full result; the Lemma-11 schedule is materialized lazily (one O(T)
  /// backward clamp after a batch of edits, not one per edit).
  const OfflineResult& result();

  /// Replaces f_slot (1-based) with `cost` and repairs the labels forward
  /// from the edit.  Bit-identical to re-solving the edited instance from
  /// scratch on this backend.  Throws std::invalid_argument on a null cost
  /// or slot outside [1, T]; a failed repair falls back to the full
  /// re-solve internally (reported via stats->full_replay).
  void resolve_delta(int slot, rs::core::CostPtr cost,
                     DeltaStats* stats = nullptr);

  /// What-if probe: the result of resolve_delta(slot, cost) without
  /// changing the session — the edit is applied, the result copied, and
  /// the original cost repaired back in (restoring the session bitwise).
  /// `stats` reports the forward repair.
  OfflineResult probe_delta(int slot, rs::core::CostPtr cost,
                            DeltaStats* stats = nullptr);

 private:
  WorkFunctionTracker::Backend tracker_backend() const noexcept;
  void rebuild();  // full from-scratch solve of costs_; strong guarantee

  int m_;
  double beta_;
  Backend backend_;
  std::vector<rs::core::CostPtr> costs_;  // costs_[t-1] = current f_t
  BoundTrajectory bounds_;  // declared before tracker_: the base solve
                            // fills it while constructing the tracker
  WorkFunctionTracker tracker_;
  double cost_ = rs::util::kInf;
  OfflineResult result_;
  bool schedule_dirty_ = true;
};

}  // namespace rs::offline
