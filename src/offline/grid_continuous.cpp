#include "offline/grid_continuous.hpp"

#include <memory>
#include <stdexcept>

#include "offline/dp_solver.hpp"

namespace rs::offline {

using rs::core::CostPtr;
using rs::core::FunctionCost;
using rs::core::Problem;

ContinuousResult solve_continuous_on_grid(const Problem& p, int q) {
  if (q < 1) throw std::invalid_argument("solve_continuous_on_grid: q < 1");

  // Scaled instance: grid index j represents the fractional state j/q.
  // Switching β(Δx)⁺ becomes (β/q)(Δj)⁺ and operating cost f̄_t(j/q).
  const int grid_m = p.max_servers() * q;
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    CostPtr base = p.f_ptr(t);
    fs.push_back(std::make_shared<FunctionCost>(
        [base, q](int j) {
          return rs::core::interpolate(*base,
                                       static_cast<double>(j) / q);
        },
        "grid(" + base->name() + ")"));
  }
  const Problem grid_problem(grid_m, p.beta() / static_cast<double>(q),
                             std::move(fs));

  const OfflineResult grid_result = DpSolver().solve(grid_problem);
  ContinuousResult result;
  result.cost = grid_result.cost;
  if (!grid_result.feasible()) return result;
  result.schedule.reserve(grid_result.schedule.size());
  for (int j : grid_result.schedule) {
    result.schedule.push_back(static_cast<double>(j) / q);
  }
  return result;
}

}  // namespace rs::offline
