// rs-lint: minmax-audited — the advance/relax label folds are approved
// branch-free kernels: a NaN slot cost is classified downstream (solver
// poison accumulators, engine NaN demotion, tenant ingest probes), and the
// RIGHTSIZER_AUDIT labels-nan-free check pins the labels themselves
// (DESIGN.md §13).
#include "offline/work_function.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/audit.hpp"
#include "util/math_util.hpp"

namespace rs::offline {

using rs::core::ConvexPwl;
using rs::util::kInf;

WorkFunctionTracker::WorkFunctionTracker(int m, double beta, Backend backend)
    : m_(m), beta_(beta), backend_(backend) {
  if (m < 0) throw std::invalid_argument("WorkFunctionTracker: m < 0");
  if (!(beta > 0.0)) {
    throw std::invalid_argument("WorkFunctionTracker: beta must be > 0");
  }
  // τ = 0 state encodes x_0 = 0: reaching x already "costs" the pending
  // power-up βx under L-accounting and nothing under U-accounting; those
  // charges materialize on the first advance through the relax step, so the
  // initial work functions are 0 at state 0 and +inf elsewhere.  Backend
  // storage is created lazily: the PWL pair is two empty point functions,
  // the dense rows are borrowed from the thread workspace only if the
  // dense backend is ever engaged.
  pwl_l_ = ConvexPwl::point(0, 0.0);
  pwl_u_ = ConvexPwl::point(0, 0.0);
}

void WorkFunctionTracker::init_dense() {
  const std::size_t width = static_cast<std::size_t>(m_) + 1;
  rs::util::Workspace& workspace = rs::util::this_thread_workspace();
  chat_l_ = workspace.borrow<double>(width);
  chat_u_ = workspace.borrow<double>(width);
  scratch_ = workspace.borrow<double>(width);
  if (tau_ == 0) {
    std::fill(chat_l_.begin(), chat_l_.end(), kInf);
    std::fill(chat_u_.begin(), chat_u_.end(), kInf);
    chat_l_[0] = 0.0;
    chat_u_[0] = 0.0;
  } else {
    // Mid-run fallback: materialize the PWL pair into label rows.  Values
    // agree with an all-dense run up to FP association order (exactly on
    // integer instances); see DESIGN.md §8.
    pwl_l_.materialize(m_, chat_l_.span());
    pwl_u_.materialize(m_, chat_u_.span());
  }
  pwl_l_ = ConvexPwl::infinite();
  pwl_u_ = ConvexPwl::infinite();
  mode_ = Mode::kDense;
}

void WorkFunctionTracker::ensure_dense_backend() {
  if (mode_ == Mode::kDense) return;
  if (backend_ == Backend::kPwl) {
    throw std::logic_error(
        "WorkFunctionTracker: dense backend requested on a forced-PWL "
        "tracker");
  }
  init_dense();
  // An external mode switch is not an advance and cannot be replayed, so
  // the history before it is no longer reconstructible: restart the rewind
  // window from the freshly materialized state.
  if (rewind_enabled_ && !rewind_replaying_) rewind_reset_base();
}

void WorkFunctionTracker::advance(const rs::core::CostFunction& f) {
  if (mode_ != Mode::kDense) {
    const int budget = backend_ == Backend::kPwl
                           ? rs::core::kUnboundedBreakpoints
                           : rs::core::compact_pwl_budget_for(m_);
    if (backend_ != Backend::kDense) {
      if (std::optional<ConvexPwl> form = f.as_convex_pwl(m_, budget)) {
        advance_pwl(*form);
        if (rewind_enabled_ && !rewind_replaying_) {
          rewind_record(StoredInput{false, std::move(*form), {}}, 1);
        }
        return;
      }
      if (backend_ == Backend::kPwl) {
        throw std::invalid_argument(
            "WorkFunctionTracker: cost function has no compact convex-PWL "
            "form (forced-PWL backend)");
      }
    }
    init_dense();
  }
  f.eval_row(m_, scratch_.span());
  advance_dense(std::span<const double>(scratch_.span()));
  if (rewind_enabled_ && !rewind_replaying_) {
    rewind_record(
        StoredInput{true, {},
                    std::vector<double>(scratch_.begin(), scratch_.end())},
        1);
  }
}

void WorkFunctionTracker::advance(const rs::core::ConvexPwl& f) {
  if (mode_ != Mode::kDense) {
    if (backend_ == Backend::kDense) {
      init_dense();
    } else {
      advance_pwl(f);
      if (rewind_enabled_ && !rewind_replaying_) {
        rewind_record(StoredInput{false, f, {}}, 1);
      }
      return;
    }
  }
  f.materialize(m_, scratch_.span());
  advance_dense(std::span<const double>(scratch_.span()));
  if (rewind_enabled_ && !rewind_replaying_) {
    // Record the materialized row, not the form: the recorded kind mirrors
    // the executed backend path, which is what makes the edit-kind check in
    // repair_impl equivalent to backend-trajectory preservation.
    rewind_record(
        StoredInput{true, {},
                    std::vector<double>(scratch_.begin(), scratch_.end())},
        1);
  }
}

void WorkFunctionTracker::advance(const std::vector<double>& values) {
  advance(std::span<const double>(values));
}

void WorkFunctionTracker::advance(std::span<const double> values) {
  if (static_cast<int>(values.size()) != m_ + 1) {
    throw std::invalid_argument("WorkFunctionTracker::advance: need m+1 values");
  }
  if (mode_ != Mode::kDense) {
    if (backend_ == Backend::kPwl) {
      throw std::logic_error(
          "WorkFunctionTracker: raw value rows require the dense backend");
    }
    init_dense();
  }
  advance_dense(values);
  if (rewind_enabled_ && !rewind_replaying_) {
    rewind_record(
        StoredInput{true, {}, std::vector<double>(values.begin(), values.end())},
        1);
  }
}

namespace {

void check_repeat_args(int count, std::span<const int> xl,
                       std::span<const int> xu) {
  if (count < 0) {
    throw std::invalid_argument("advance_repeated: count < 0");
  }
  if (xl.size() < static_cast<std::size_t>(count) ||
      xu.size() < static_cast<std::size_t>(count)) {
    throw std::invalid_argument("advance_repeated: bound spans too short");
  }
}

}  // namespace

void WorkFunctionTracker::advance_repeated(const rs::core::CostFunction& f,
                                           int count, std::span<int> xl,
                                           std::span<int> xu) {
  check_repeat_args(count, xl, xu);
  if (count == 0) return;
  if (mode_ != Mode::kDense) {
    const int budget = backend_ == Backend::kPwl
                           ? rs::core::kUnboundedBreakpoints
                           : rs::core::compact_pwl_budget_for(m_);
    if (backend_ != Backend::kDense) {
      if (std::optional<ConvexPwl> form = f.as_convex_pwl(m_, budget)) {
        // One conversion for the whole run — the RLE replay's analog of the
        // PwlProblem one-conversion-per-slot contract.
        advance_repeated_pwl(*form, count, xl, xu);
        if (rewind_enabled_ && !rewind_replaying_) {
          rewind_record(StoredInput{false, std::move(*form), {}}, count);
        }
        return;
      }
      if (backend_ == Backend::kPwl) {
        throw std::invalid_argument(
            "WorkFunctionTracker: cost function has no compact convex-PWL "
            "form (forced-PWL backend)");
      }
    }
    init_dense();
  }
  f.eval_row(m_, scratch_.span());
  advance_repeated_dense(std::span<const double>(scratch_.span()), count, xl,
                         xu);
  if (rewind_enabled_ && !rewind_replaying_) {
    rewind_record(
        StoredInput{true, {},
                    std::vector<double>(scratch_.begin(), scratch_.end())},
        count);
  }
}

void WorkFunctionTracker::advance_repeated(const rs::core::ConvexPwl& f,
                                           int count, std::span<int> xl,
                                           std::span<int> xu) {
  check_repeat_args(count, xl, xu);
  if (count == 0) return;
  if (mode_ != Mode::kDense) {
    if (backend_ == Backend::kDense) {
      init_dense();
    } else {
      advance_repeated_pwl(f, count, xl, xu);
      if (rewind_enabled_ && !rewind_replaying_) {
        rewind_record(StoredInput{false, f, {}}, count);
      }
      return;
    }
  }
  f.materialize(m_, scratch_.span());
  advance_repeated_dense(std::span<const double>(scratch_.span()), count, xl,
                         xu);
  if (rewind_enabled_ && !rewind_replaying_) {
    rewind_record(
        StoredInput{true, {},
                    std::vector<double>(scratch_.begin(), scratch_.end())},
        count);
  }
}

void WorkFunctionTracker::advance_repeated(std::span<const double> values,
                                           int count, std::span<int> xl,
                                           std::span<int> xu) {
  check_repeat_args(count, xl, xu);
  if (count == 0) return;
  if (static_cast<int>(values.size()) != m_ + 1) {
    throw std::invalid_argument(
        "WorkFunctionTracker::advance_repeated: need m+1 values");
  }
  if (mode_ != Mode::kDense) {
    if (backend_ == Backend::kPwl) {
      throw std::logic_error(
          "WorkFunctionTracker: raw value rows require the dense backend");
    }
    init_dense();
  }
  advance_repeated_dense(values, count, xl, xu);
  if (rewind_enabled_ && !rewind_replaying_) {
    rewind_record(
        StoredInput{true, {}, std::vector<double>(values.begin(), values.end())},
        count);
  }
}

void WorkFunctionTracker::advance_repeated_pwl(const ConvexPwl& f, int count,
                                               std::span<int> xl,
                                               std::span<int> xu) {
  ConvexPwl prev_l;
  ConvexPwl prev_u;
  for (int done = 0; done < count; ++done) {
    // Snapshot the shapes (O(K) map copies) only while a jump can still pay.
    const bool may_jump = done + 1 < count;
    double vl_prev = 0.0;
    double vu_prev = 0.0;
    if (may_jump) {
      prev_l = pwl_l_;
      prev_u = pwl_u_;
      vl_prev = pwl_l_.is_infinite() ? 0.0 : pwl_l_.value_at(pwl_l_.lo());
      vu_prev = pwl_u_.is_infinite() ? 0.0 : pwl_u_.value_at(pwl_u_.lo());
    }
    advance_pwl(f);
    xl[static_cast<std::size_t>(done)] = x_lower_;
    xu[static_cast<std::size_t>(done)] = x_upper_;
    if (may_jump && pwl_l_.same_shape(prev_l) && pwl_u_.same_shape(prev_u)) {
      // Shape fixpoint: every mutating ConvexPwl operation drives its
      // control flow from the shape alone (see same_shape), so all
      // remaining advances of this run would reproduce this exact shape —
      // and hence these exact bounds.  Values grow by a shape-determined
      // per-step increment; fast-forward them in one shift.
      const int remaining = count - done - 1;
      if (!pwl_l_.is_infinite()) {
        const double step_l = pwl_l_.value_at(pwl_l_.lo()) - vl_prev;
        pwl_l_.shift_value(static_cast<double>(remaining) * step_l);
      }
      if (!pwl_u_.is_infinite()) {
        const double step_u = pwl_u_.value_at(pwl_u_.lo()) - vu_prev;
        pwl_u_.shift_value(static_cast<double>(remaining) * step_u);
      }
      for (int i = done + 1; i < count; ++i) {
        xl[static_cast<std::size_t>(i)] = x_lower_;
        xu[static_cast<std::size_t>(i)] = x_upper_;
      }
      tau_ += remaining;
      RS_AUDIT(
          audit_invariants("WorkFunctionTracker::advance_repeated_pwl"));
      return;
    }
  }
}

void WorkFunctionTracker::advance_repeated_dense(std::span<const double> values,
                                                 int count, std::span<int> xl,
                                                 std::span<int> xu) {
  // No dense step can be skipped (the minimizer scans compare accumulated
  // label values), but the caller evaluated the run's row once — the
  // eval_row elimination is the dense RLE win.
  for (int i = 0; i < count; ++i) {
    advance_dense(values);
    xl[static_cast<std::size_t>(i)] = x_lower_;
    xu[static_cast<std::size_t>(i)] = x_upper_;
  }
}

void WorkFunctionTracker::advance_pwl(const ConvexPwl& f) {
  mode_ = Mode::kPwl;
  // The PWL mirror of the three dense passes: relax clips the slope
  // sequence into the accounting band and extends the domain to [0, m]
  // (flat where the movement is free, ±β where it is charged), then the
  // f_τ addition merges breakpoint sets and intersects domains.
  pwl_l_.relax_charge_up(beta_, 0, m_);
  pwl_l_.add(f);
  pwl_u_.relax_charge_down(beta_, 0, m_);
  pwl_u_.add(f);
  if (pwl_l_.is_infinite()) {
    // All labels +inf: the dense minimizer scans leave x^L at 0 (strict <
    // never fires) and walk x^U to m (<= always fires); mirror that.
    x_lower_ = 0;
    x_upper_ = m_;
  } else {
    x_lower_ = pwl_l_.argmin().lo;
    x_upper_ = pwl_u_.argmin().hi;
  }
  ++tau_;
  RS_AUDIT(audit_invariants("WorkFunctionTracker::advance_pwl"));
}

void WorkFunctionTracker::advance_dense(std::span<const double> values) {
  const int m = m_;
  const double beta = beta_;
  double* cl = chat_l_.data();
  double* cu = chat_u_.data();

  // Pass 1 (forward) — L-relax prefix part:
  //   chat_l(x) <- min( chat_l(x), min_{x'<=x} chat_l(x') + β(x−x') ).
  double best_up = kInf;  // min chat_l(x') − βx'
  for (int x = 0; x <= m; ++x) {
    best_up = std::min(best_up, cl[x] - beta * x);
    cl[x] = std::min(cl[x], best_up + beta * x);
  }

  // Pass 2 (backward) — L suffix minimum (free power-down under
  // L-accounting) and the U-relax descent part
  //   chat_u(x) <- min( chat_u(x), min_{x'>=x} chat_u(x') + β(x'−x) ).
  double suffix_l = kInf;
  double best_down = kInf;  // min chat_u(x') + βx'
  for (int x = m; x >= 0; --x) {
    suffix_l = std::min(suffix_l, cl[x]);
    cl[x] = suffix_l;
    best_down = std::min(best_down, cu[x] + beta * x);
    cu[x] = std::min(cu[x], best_down - beta * x);
  }

  // Pass 3 (forward) — U prefix minimum (free power-up under U-accounting),
  // the f_τ addition for both accountings, and the minimizer bounds of
  // Section 3.1 tracked on the final values (strict < keeps the smallest
  // argmin of Ĉ^L; <= moves x^U right onto the largest argmin of Ĉ^U).
  // All labels are extended reals in [0, +inf], so the additions need no
  // infinity guards.  The minimizer updates stay *branches*, not selects:
  // they fire O(1) times per pass, so the predictor eats them for free,
  // whereas cmov chains would sit on the loop-carried dependency (a
  // measured 15-35% LCP slowdown).
  double prefix_u = kInf;
  double best_l = kInf;
  double best_u = kInf;
  int x_lower = 0;
  int x_upper = 0;
  for (int x = 0; x <= m; ++x) {
    const double f = values[static_cast<std::size_t>(x)];
    if (std::isnan(f)) {
      throw std::invalid_argument("WorkFunctionTracker::advance: NaN cost");
    }
    prefix_u = std::min(prefix_u, cu[x]);
    const double l = cl[x] + f;
    const double u = prefix_u + f;
    cl[x] = l;
    cu[x] = u;
    if (l < best_l) {
      best_l = l;
      x_lower = x;
    }
    if (u <= best_u) {
      best_u = u;
      x_upper = x;
    }
  }
  x_lower_ = x_lower;
  x_upper_ = x_upper;
  ++tau_;
  RS_AUDIT(audit_invariants("WorkFunctionTracker::advance_dense"));
}

namespace {

// PWL form wire layout: u8 infinite-flag, then (finite only) i32 lo, i32 hi,
// f64 v_lo, f64 slope0, u32 increment count, count × (i32 pos, f64 dv).
void write_pwl(rs::core::CheckpointWriter& w, const ConvexPwl& f) {
  w.u8(f.is_infinite() ? 1 : 0);
  if (f.is_infinite()) return;
  w.i32(f.lo());
  w.i32(f.hi());
  w.f64(f.value_lo());
  w.f64(f.first_slope());
  const std::map<int, double>& increments = f.slope_increments();
  w.u32(static_cast<std::uint32_t>(increments.size()));
  for (const auto& [pos, dv] : increments) {
    w.i32(pos);
    w.f64(dv);
  }
}

ConvexPwl read_pwl(rs::core::CheckpointReader& r, int m) {
  const std::uint8_t infinite_flag = r.u8();
  if (infinite_flag > 1) {
    throw rs::core::CheckpointFormatError(
        "tracker checkpoint: invalid PWL infinite flag");
  }
  if (infinite_flag == 1) return ConvexPwl::infinite();
  const std::int32_t lo = r.i32();
  const std::int32_t hi = r.i32();
  const double v_lo = r.f64();
  const double slope0 = r.f64();
  const std::uint32_t count = r.u32();
  // Each increment occupies 12 payload bytes; an inflated count must be a
  // format error before it becomes an allocation.
  if (count > r.remaining() / 12) {
    throw rs::core::CheckpointFormatError(
        "tracker checkpoint: PWL increment count exceeds payload");
  }
  if (lo < 0 || hi > m) {
    throw rs::core::CheckpointFormatError(
        "tracker checkpoint: PWL domain outside [0, m]");
  }
  std::map<int, double> increments;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::int32_t pos = r.i32();
    const double dv = r.f64();
    if (!increments.emplace(pos, dv).second) {
      throw rs::core::CheckpointFormatError(
          "tracker checkpoint: duplicate PWL increment position");
    }
  }
  try {
    return ConvexPwl::from_parts(lo, hi, v_lo, slope0, std::move(increments));
  } catch (const std::invalid_argument& e) {
    throw rs::core::CheckpointFormatError(
        std::string("tracker checkpoint: invalid PWL form: ") + e.what());
  }
}

}  // namespace

std::vector<std::uint8_t> WorkFunctionTracker::snapshot() const {
  rs::core::CheckpointWriter w;
  w.i32(m_);
  w.f64(beta_);
  w.u8(static_cast<std::uint8_t>(backend_));
  w.u8(static_cast<std::uint8_t>(mode_));
  w.i64(tau_);
  w.i32(x_lower_);
  w.i32(x_upper_);
  if (mode_ == Mode::kPwl) {
    write_pwl(w, pwl_l_);
    write_pwl(w, pwl_u_);
  } else if (mode_ == Mode::kDense) {
    for (int x = 0; x <= m_; ++x) w.f64(chat_l_[static_cast<std::size_t>(x)]);
    for (int x = 0; x <= m_; ++x) w.f64(chat_u_[static_cast<std::size_t>(x)]);
  }
  return w.seal(rs::core::kTrackerCheckpointKind);
}

WorkFunctionTracker WorkFunctionTracker::restore(
    std::span<const std::uint8_t> bytes) {
  using rs::core::CheckpointFormatError;
  rs::core::CheckpointReader r(bytes, rs::core::kTrackerCheckpointKind);
  const std::int32_t m = r.i32();
  const double beta = r.f64();
  const std::uint8_t backend_tag = r.u8();
  const std::uint8_t mode_tag = r.u8();
  const std::int64_t tau = r.i64();
  const std::int32_t x_lower = r.i32();
  const std::int32_t x_upper = r.i32();

  if (m < 0) throw CheckpointFormatError("tracker checkpoint: m < 0");
  if (!std::isfinite(beta) || !(beta > 0.0)) {
    throw CheckpointFormatError("tracker checkpoint: invalid beta");
  }
  if (backend_tag > static_cast<std::uint8_t>(Backend::kPwl)) {
    throw CheckpointFormatError("tracker checkpoint: invalid backend tag");
  }
  if (mode_tag > static_cast<std::uint8_t>(Mode::kDense)) {
    throw CheckpointFormatError("tracker checkpoint: invalid mode tag");
  }
  if (tau < 0 || tau > std::numeric_limits<std::int32_t>::max()) {
    throw CheckpointFormatError("tracker checkpoint: invalid tau");
  }
  if (x_lower < 0 || x_lower > m || x_upper < 0 || x_upper > m) {
    throw CheckpointFormatError("tracker checkpoint: bounds outside [0, m]");
  }
  const Backend backend = static_cast<Backend>(backend_tag);
  const Mode mode = static_cast<Mode>(mode_tag);
  if (mode == Mode::kPwl && backend == Backend::kDense) {
    throw CheckpointFormatError(
        "tracker checkpoint: PWL mode on a forced-dense backend");
  }
  if (mode == Mode::kDense && backend == Backend::kPwl) {
    throw CheckpointFormatError(
        "tracker checkpoint: dense mode on a forced-PWL backend");
  }
  if (mode == Mode::kUndecided && tau != 0) {
    throw CheckpointFormatError(
        "tracker checkpoint: advanced tracker with undecided backend");
  }
  if (mode == Mode::kPwl && tau == 0) {
    throw CheckpointFormatError("tracker checkpoint: PWL mode with tau = 0");
  }

  WorkFunctionTracker t(m, beta, backend);
  if (mode == Mode::kPwl) {
    t.pwl_l_ = read_pwl(r, m);
    t.pwl_u_ = read_pwl(r, m);
    t.mode_ = Mode::kPwl;
  } else if (mode == Mode::kDense) {
    // Borrow the workspace rows (and the eval_row scratch later advances
    // need) exactly as a live fallback would, then overwrite the labels
    // with the snapshotted bit patterns.
    t.init_dense();
    for (int x = 0; x <= m; ++x) {
      const double v = r.f64();
      if (std::isnan(v)) {
        throw CheckpointFormatError("tracker checkpoint: NaN dense label");
      }
      t.chat_l_[static_cast<std::size_t>(x)] = v;
    }
    for (int x = 0; x <= m; ++x) {
      const double v = r.f64();
      if (std::isnan(v)) {
        throw CheckpointFormatError("tracker checkpoint: NaN dense label");
      }
      t.chat_u_[static_cast<std::size_t>(x)] = v;
    }
  }
  r.finish();
  t.tau_ = static_cast<int>(tau);
  t.x_lower_ = x_lower;
  t.x_upper_ = x_upper;
  RS_AUDIT(t.audit_invariants("WorkFunctionTracker::restore"));
  return t;
}

void WorkFunctionTracker::require_started() const {
  if (tau_ == 0) {
    throw std::logic_error("WorkFunctionTracker: no function fed yet");
  }
}

int WorkFunctionTracker::breakpoint_count() const noexcept {
  return mode_ == Mode::kPwl ? pwl_l_.breakpoints() : 0;
}

double WorkFunctionTracker::chat_lower(int x) const {
  require_started();
  if (x < 0 || x > m_) throw std::out_of_range("chat_lower: x out of range");
  if (mode_ == Mode::kPwl) return pwl_l_.value_at(x);
  return chat_l_[static_cast<std::size_t>(x)];
}

double WorkFunctionTracker::chat_upper(int x) const {
  require_started();
  if (x < 0 || x > m_) throw std::out_of_range("chat_upper: x out of range");
  if (mode_ == Mode::kPwl) return pwl_u_.value_at(x);
  return chat_u_[static_cast<std::size_t>(x)];
}

const std::vector<double>& WorkFunctionTracker::chat_lower_vector() {
  require_started();
  ensure_dense_backend();
  return chat_l_.vec();
}

const std::vector<double>& WorkFunctionTracker::chat_upper_vector() {
  require_started();
  ensure_dense_backend();
  return chat_u_.vec();
}

const ConvexPwl& WorkFunctionTracker::chat_lower_pwl() const {
  require_started();
  if (mode_ != Mode::kPwl) {
    throw std::logic_error("chat_lower_pwl: PWL backend is not live");
  }
  return pwl_l_;
}

const ConvexPwl& WorkFunctionTracker::chat_upper_pwl() const {
  require_started();
  if (mode_ != Mode::kPwl) {
    throw std::logic_error("chat_upper_pwl: PWL backend is not live");
  }
  return pwl_u_;
}

int WorkFunctionTracker::x_lower() const {
  require_started();
  return x_lower_;
}

int WorkFunctionTracker::x_upper() const {
  require_started();
  return x_upper_;
}

// ---------------------------------------------------------------------------
// Incremental repair (rewind buffer) — DESIGN.md §12
// ---------------------------------------------------------------------------

namespace {

// Bit-pattern row comparison (stricter than ==: distinguishes ±0.0).  The
// labels are NaN-free by the advance contract, so memcmp equality implies
// value equality and vice versa up to signed zeros.
bool rows_bitwise_equal(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

WorkFunctionTracker::TrackerState WorkFunctionTracker::capture_state() const {
  TrackerState s;
  s.mode = mode_;
  s.tau = tau_;
  s.x_lower = x_lower_;
  s.x_upper = x_upper_;
  if (mode_ == Mode::kDense) {
    s.chat_l.assign(chat_l_.begin(), chat_l_.end());
    s.chat_u.assign(chat_u_.begin(), chat_u_.end());
  } else {
    s.pwl_l = pwl_l_;
    s.pwl_u = pwl_u_;
  }
  return s;
}

void WorkFunctionTracker::restore_state(const TrackerState& s) {
  mode_ = s.mode;
  tau_ = s.tau;
  x_lower_ = s.x_lower;
  x_upper_ = s.x_upper;
  if (s.mode == Mode::kDense) {
    const std::size_t width = static_cast<std::size_t>(m_) + 1;
    rs::util::Workspace& workspace = rs::util::this_thread_workspace();
    if (chat_l_.size() != width) chat_l_ = workspace.borrow<double>(width);
    if (chat_u_.size() != width) chat_u_ = workspace.borrow<double>(width);
    if (scratch_.size() != width) scratch_ = workspace.borrow<double>(width);
    std::copy(s.chat_l.begin(), s.chat_l.end(), chat_l_.begin());
    std::copy(s.chat_u.begin(), s.chat_u.end(), chat_u_.begin());
    pwl_l_ = ConvexPwl::infinite();
    pwl_u_ = ConvexPwl::infinite();
  } else {
    pwl_l_ = s.pwl_l;
    pwl_u_ = s.pwl_u;
  }
}

bool WorkFunctionTracker::states_equal(const TrackerState& a,
                                       const TrackerState& b) {
  if (a.mode != b.mode || a.tau != b.tau || a.x_lower != b.x_lower ||
      a.x_upper != b.x_upper) {
    return false;
  }
  if (a.mode == Mode::kDense) {
    return rows_bitwise_equal(a.chat_l, b.chat_l) &&
           rows_bitwise_equal(a.chat_u, b.chat_u);
  }
  return a.pwl_l.bitwise_equal(b.pwl_l) && a.pwl_u.bitwise_equal(b.pwl_u);
}

void WorkFunctionTracker::enable_rewind(int capacity) {
  if (capacity < 1) {
    throw std::invalid_argument(
        "WorkFunctionTracker::enable_rewind: capacity must be >= 1");
  }
  rewind_enabled_ = true;
  rewind_capacity_ = static_cast<std::size_t>(capacity);
  rewind_reset_base();
}

void WorkFunctionTracker::disable_rewind() {
  rewind_enabled_ = false;
  rewind_capacity_ = 0;
  rewind_entries_.clear();
  rewind_base_ = TrackerState{};
  rewind_base_tau_ = tau_;
}

void WorkFunctionTracker::rewind_reset_base() {
  rewind_entries_.clear();
  rewind_base_ = capture_state();
  rewind_base_tau_ = tau_;
}

void WorkFunctionTracker::rewind_record(StoredInput input, int count) {
  RewindEntry entry;
  entry.start = tau_ - count + 1;
  entry.count = count;
  entry.input = std::move(input);
  entry.post = capture_state();
  rewind_entries_.push_back(std::move(entry));
  while (rewind_entries_.size() > rewind_capacity_) {
    RewindEntry& front = rewind_entries_.front();
    rewind_base_tau_ = front.start + front.count - 1;
    rewind_base_ = std::move(front.post);
    rewind_entries_.pop_front();
  }
}

WorkFunctionTracker::StoredInput WorkFunctionTracker::rewind_input(
    int slot) const {
  if (!rewind_covers(slot)) {
    throw std::out_of_range(
        "WorkFunctionTracker::rewind_input: slot outside the rewind window");
  }
  auto it = std::upper_bound(
      rewind_entries_.begin(), rewind_entries_.end(), slot,
      [](int s, const RewindEntry& e) { return s < e.start; });
  return std::prev(it)->input;
}

void WorkFunctionTracker::replay_input(const StoredInput& input, int count,
                                       std::vector<int>* lo,
                                       std::vector<int>* up) {
  if (count <= 0) return;
  std::vector<int> xl(static_cast<std::size_t>(count));
  std::vector<int> xu(static_cast<std::size_t>(count));
  if (input.is_row) {
    advance_repeated(std::span<const double>(input.row), count, xl, xu);
  } else {
    advance_repeated(input.form, count, xl, xu);
  }
  if (lo != nullptr) lo->insert(lo->end(), xl.begin(), xl.end());
  if (up != nullptr) up->insert(up->end(), xu.begin(), xu.end());
}

WorkFunctionTracker::Repair WorkFunctionTracker::repair_impl(
    int slot, const std::function<StoredInput()>& resolve_edit) {
  if (!rewind_enabled_) {
    throw std::logic_error(
        "WorkFunctionTracker::repair_from: rewind buffer not enabled");
  }
  if (!rewind_covers(slot)) {
    throw std::out_of_range(
        "WorkFunctionTracker::repair_from: slot outside the rewind window");
  }
  auto it = std::upper_bound(
      rewind_entries_.begin(), rewind_entries_.end(), slot,
      [](int s, const RewindEntry& e) { return s < e.start; });
  const std::size_t e = static_cast<std::size_t>(
      std::distance(rewind_entries_.begin(), std::prev(it)));
  const RewindEntry& edited_entry = rewind_entries_[e];
  const int prefix = slot - edited_entry.start;
  const int suffix = edited_entry.count - prefix - 1;

  TrackerState final_backup = capture_state();
  Repair result;
  result.first_slot = slot;

  std::vector<RewindEntry> rebuilt;  // replaces entries [e, stop)
  std::size_t stop = e;
  bool reconverged = false;
  const bool was_replaying = rewind_replaying_;
  rewind_replaying_ = true;
  try {
    restore_state(e == 0 ? rewind_base_ : rewind_entries_[e - 1].post);
    // The containing run replays in up to three portions: the unchanged
    // prefix, the edited slot, the unchanged run suffix.  Splitting an RLE
    // run defines the reference semantics advance_repeated(f, prefix) ·
    // advance(f') · advance_repeated(f, suffix) — a legitimate from-scratch
    // sequence (bounds bit-identical to slot-by-slot on both backends).
    if (prefix > 0) {
      replay_input(edited_entry.input, prefix, nullptr, nullptr);
      result.slots_replayed += prefix;
      rebuilt.push_back(
          {edited_entry.start, prefix, edited_entry.input, capture_state()});
    }
    StoredInput edited = resolve_edit();
    if (edited.is_row != edited_entry.input.is_row) {
      // The edit would flip the backend trajectory at this slot (a PWL-mode
      // slot edited to a non-convertible cost, or the dense-fallback slot
      // edited to a convertible one).  The stored suffix was recorded under
      // the other mode, so a bit-faithful repair is impossible — callers
      // re-solve from scratch instead.
      throw std::invalid_argument(
          "WorkFunctionTracker::repair_from: edit changes the backend "
          "trajectory; re-solve from scratch");
    }
    replay_input(edited, 1, &result.lower, &result.upper);
    result.slots_replayed += 1;
    rebuilt.push_back({slot, 1, std::move(edited), capture_state()});
    if (suffix > 0) {
      replay_input(edited_entry.input, suffix, &result.lower, &result.upper);
      result.slots_replayed += suffix;
      rebuilt.push_back(
          {slot + 1, suffix, edited_entry.input, capture_state()});
    }
    stop = e + 1;
    reconverged = states_equal(rebuilt.back().post, edited_entry.post);
    // Re-relax through the stored suffix until the recomputed state equals
    // a stored post-state bitwise: replay from identical bits is
    // deterministic, so the rest of the suffix — including the final
    // labels — is then already correct and need not be touched.
    while (!reconverged && stop < rewind_entries_.size()) {
      const RewindEntry& next = rewind_entries_[stop];
      replay_input(next.input, next.count, &result.lower, &result.upper);
      result.slots_replayed += next.count;
      rebuilt.push_back({next.start, next.count, next.input, capture_state()});
      reconverged = states_equal(rebuilt.back().post, next.post);
      ++stop;
    }
  } catch (...) {  // rs-lint: catch-all-ok (restore pre-repair state +
                   // rethrow)
    rewind_replaying_ = was_replaying;
    restore_state(final_backup);
    throw;
  }
  rewind_replaying_ = was_replaying;

  if (reconverged) {
    // Everything from the reconvergence boundary on — including the final
    // labels and bounds — is bitwise what it already was.
    restore_state(final_backup);
    result.early_exit = stop < rewind_entries_.size();
  }
  auto first = rewind_entries_.begin() + static_cast<std::ptrdiff_t>(e);
  auto last = rewind_entries_.begin() + static_cast<std::ptrdiff_t>(stop);
  auto pos = rewind_entries_.erase(first, last);
  rewind_entries_.insert(pos, std::make_move_iterator(rebuilt.begin()),
                         std::make_move_iterator(rebuilt.end()));
  while (rewind_entries_.size() > rewind_capacity_) {
    RewindEntry& front = rewind_entries_.front();
    rewind_base_tau_ = front.start + front.count - 1;
    rewind_base_ = std::move(front.post);
    rewind_entries_.pop_front();
  }
  RS_AUDIT(audit_invariants("WorkFunctionTracker::repair_from"));
  return result;
}

WorkFunctionTracker::Repair WorkFunctionTracker::repair_from(
    int slot, const rs::core::CostFunction& f) {
  return repair_impl(slot, [&]() -> StoredInput {
    // Resolve exactly as advance() would, given the mode reached by the
    // replayed prefix — which is the mode a from-scratch run of the edited
    // instance has at this slot.
    if (mode_ != Mode::kDense && backend_ != Backend::kDense) {
      const int budget = backend_ == Backend::kPwl
                             ? rs::core::kUnboundedBreakpoints
                             : rs::core::compact_pwl_budget_for(m_);
      if (std::optional<ConvexPwl> form = f.as_convex_pwl(m_, budget)) {
        return StoredInput{false, std::move(*form), {}};
      }
      if (backend_ == Backend::kPwl) {
        throw std::invalid_argument(
            "WorkFunctionTracker::repair_from: cost function has no convex-"
            "PWL form (forced-PWL backend)");
      }
    }
    StoredInput input;
    input.is_row = true;
    input.row.resize(static_cast<std::size_t>(m_) + 1);
    f.eval_row(m_, input.row);
    return input;
  });
}

WorkFunctionTracker::Repair WorkFunctionTracker::repair_from(
    int slot, const rs::core::ConvexPwl& f) {
  return repair_impl(slot, [&]() -> StoredInput {
    if (mode_ != Mode::kDense && backend_ != Backend::kDense) {
      return StoredInput{false, f, {}};
    }
    StoredInput input;
    input.is_row = true;
    input.row.resize(static_cast<std::size_t>(m_) + 1);
    f.materialize(m_, input.row);
    return input;
  });
}

WorkFunctionTracker::Repair WorkFunctionTracker::repair_from(
    int slot, std::span<const double> values) {
  if (static_cast<int>(values.size()) != m_ + 1) {
    throw std::invalid_argument(
        "WorkFunctionTracker::repair_from: need m+1 values");
  }
  if (backend_ == Backend::kPwl) {
    throw std::logic_error(
        "WorkFunctionTracker::repair_from: raw value rows require the dense "
        "backend");
  }
  return repair_impl(slot, [&]() -> StoredInput {
    return StoredInput{true, {},
                       std::vector<double>(values.begin(), values.end())};
  });
}

WorkFunctionTracker::Repair WorkFunctionTracker::repair_from(
    int slot, const StoredInput& input) {
  if (input.is_row && static_cast<int>(input.row.size()) != m_ + 1) {
    throw std::invalid_argument(
        "WorkFunctionTracker::repair_from: stored row needs m+1 values");
  }
  return repair_impl(slot, [&]() -> StoredInput { return input; });
}

WorkFunctionTracker WorkFunctionTracker::clone() const {
  WorkFunctionTracker t(m_, beta_, backend_);
  t.restore_state(capture_state());
  t.rewind_enabled_ = rewind_enabled_;
  t.rewind_capacity_ = rewind_capacity_;
  t.rewind_base_tau_ = rewind_base_tau_;
  t.rewind_base_ = rewind_base_;
  t.rewind_entries_ = rewind_entries_;
  return t;
}

void WorkFunctionTracker::audit_invariants(const char* site) const {
  namespace audit = rs::util::audit;
  if (tau_ == 0) return;  // nothing advanced yet: no corridor to check

  // Corridor invariants (Lemma 6): ordered, in range.
  audit::require(x_lower_ >= 0 && x_upper_ <= m_, "corridor-in-range", site);
  audit::require(x_lower_ <= x_upper_, "corridor-ordered", site);

  // A label is an extended real in [0, +inf]: NaN-free, and non-negative up
  // to FP association noise (the relax re-anchoring subtracts tangents).
  const auto check_label = [&](double v) {
    audit::require(!std::isnan(v), "labels-nan-free", site);
    audit::require(v >= -1e-6 * std::max(1.0, std::fabs(v)),
                   "labels-nonnegative", site);
  };

  if (mode_ == Mode::kPwl) {
    rs::core::audit_convex_pwl(pwl_l_, site);
    rs::core::audit_convex_pwl(pwl_u_, site);
    if (pwl_l_.is_infinite() || pwl_u_.is_infinite()) {
      // All labels +inf: the dense scans' conventions pin the corridor.
      audit::require(x_lower_ == 0 && x_upper_ == m_,
                     "corridor-argmin", site);
      return;
    }
    const rs::core::ConvexPwl::ArgminInterval al = pwl_l_.argmin();
    const rs::core::ConvexPwl::ArgminInterval au = pwl_u_.argmin();
    audit::require(al.lo == x_lower_ && au.hi == x_upper_,
                   "corridor-argmin", site);
    check_label(al.value);
    check_label(au.value);
    // Lemma-7 redundancy Ĉ^L(x) = Ĉ^U(x) + βx at the corridor ends.
    for (const int x : {x_lower_, x_upper_}) {
      const double cl = pwl_l_.value_at(x);
      const double cu = pwl_u_.value_at(x);
      if (std::isinf(cl) || std::isinf(cu)) continue;
      audit::require(
          rs::util::approx_equal(cl, cu + beta_ * x, 1e-6, 1e-6),
          "lemma7-redundancy", site);
    }
    return;
  }

  if (mode_ != Mode::kDense) return;
  const std::size_t width = static_cast<std::size_t>(m_) + 1;
  audit::require(chat_l_.size() == width && chat_u_.size() == width,
                 "labels-shape", site);
  const double* cl = chat_l_.data();
  const double* cu = chat_u_.data();
  // Tie-break-exact argmin re-scan (strict < keeps the smallest argmin of
  // Ĉ^L; <= walks x^U onto the largest argmin of Ĉ^U) — all-+inf rows
  // leave x^L at 0 and carry x^U to m, matching the advance conventions.
  double best_l = kInf;
  double best_u = kInf;
  int x_lower = 0;
  int x_upper = 0;
  for (int x = 0; x <= m_; ++x) {
    check_label(cl[static_cast<std::size_t>(x)]);
    check_label(cu[static_cast<std::size_t>(x)]);
    if (cl[static_cast<std::size_t>(x)] < best_l) {
      best_l = cl[static_cast<std::size_t>(x)];
      x_lower = x;
    }
    if (cu[static_cast<std::size_t>(x)] <= best_u) {
      best_u = cu[static_cast<std::size_t>(x)];
      x_upper = x;
    }
  }
  audit::require_with(
      x_lower == x_lower_ && x_upper == x_upper_, "corridor-argmin", site,
      [&] {
        return "rescan (" + std::to_string(x_lower) + ", " +
               std::to_string(x_upper) + ") vs tracked (" +
               std::to_string(x_lower_) + ", " + std::to_string(x_upper_) +
               ")";
      });
  // Lemma-7 redundancy at sampled states (0, corridor ends, m).
  for (const int x : {0, x_lower_, x_upper_, m_}) {
    const double l = cl[static_cast<std::size_t>(x)];
    const double u = cu[static_cast<std::size_t>(x)];
    if (std::isinf(l) || std::isinf(u)) continue;
    audit::require(
        rs::util::approx_equal(l, u + beta_ * x, 1e-6, 1e-6),
        "lemma7-redundancy", site);
  }
  // min Ĉ^L monotone non-decreasing under relax+add (costs are >= 0, so
  // work functions only grow).  The watermark reseeds whenever τ moved
  // backwards — a repair or restore rewound the tracker.
  if (tau_ > audit_last_tau_ && audit_last_tau_ > 0) {
    // An infinite watermark (infeasible instance) admits no slack: the
    // relative term would be inf - inf = NaN and poison the comparison.
    const double slack =
        std::isinf(audit_min_watermark_)
            ? 0.0
            : 1e-6 * std::max(1.0, std::fabs(audit_min_watermark_));
    audit::require(best_l >= audit_min_watermark_ - slack,
                   "workfn-min-monotone", site);
  }
  audit_last_tau_ = tau_;
  audit_min_watermark_ = best_l;
}

BoundTrajectory compute_bounds(const rs::core::Problem& p,
                               WorkFunctionTracker::Backend backend) {
  BoundTrajectory bounds;
  bounds.lower.reserve(static_cast<std::size_t>(p.horizon()));
  bounds.upper.reserve(static_cast<std::size_t>(p.horizon()));
  WorkFunctionTracker tracker(p.max_servers(), p.beta(), backend);
  for (int t = 1; t <= p.horizon(); ++t) {
    tracker.advance(p.f(t));
    bounds.lower.push_back(tracker.x_lower());
    bounds.upper.push_back(tracker.x_upper());
  }
  return bounds;
}

BoundTrajectory compute_bounds(const rs::core::DenseProblem& dense) {
  BoundTrajectory bounds;
  bounds.lower.reserve(static_cast<std::size_t>(dense.horizon()));
  bounds.upper.reserve(static_cast<std::size_t>(dense.horizon()));
  WorkFunctionTracker tracker(dense.max_servers(), dense.beta(),
                              WorkFunctionTracker::Backend::kDense);
  for (int t = 1; t <= dense.horizon(); ++t) {
    tracker.advance(dense.row(t));
    bounds.lower.push_back(tracker.x_lower());
    bounds.upper.push_back(tracker.x_upper());
  }
  return bounds;
}

BoundTrajectory compute_bounds(const rs::core::PwlProblem& pwl) {
  BoundTrajectory bounds;
  bounds.lower.reserve(static_cast<std::size_t>(pwl.horizon()));
  bounds.upper.reserve(static_cast<std::size_t>(pwl.horizon()));
  WorkFunctionTracker tracker(pwl.max_servers(), pwl.beta(),
                              WorkFunctionTracker::Backend::kPwl);
  for (int t = 1; t <= pwl.horizon(); ++t) {
    tracker.advance(pwl.form(t));
    bounds.lower.push_back(tracker.x_lower());
    bounds.upper.push_back(tracker.x_upper());
  }
  return bounds;
}

}  // namespace rs::offline
