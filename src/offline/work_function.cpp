#include "offline/work_function.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::offline {

using rs::util::kInf;

WorkFunctionTracker::WorkFunctionTracker(int m, double beta)
    : m_(m), beta_(beta) {
  if (m < 0) throw std::invalid_argument("WorkFunctionTracker: m < 0");
  if (!(beta > 0.0)) {
    throw std::invalid_argument("WorkFunctionTracker: beta must be > 0");
  }
  // τ = 0 state encodes x_0 = 0: reaching x already "costs" the pending
  // power-up βx under L-accounting and nothing under U-accounting; those
  // charges materialize on the first advance through the relax step, so the
  // initial labels are 0 at state 0 and +inf elsewhere.
  chat_l_.assign(static_cast<std::size_t>(m_) + 1, kInf);
  chat_u_.assign(static_cast<std::size_t>(m_) + 1, kInf);
  chat_l_[0] = 0.0;
  chat_u_[0] = 0.0;
  scratch_.resize(static_cast<std::size_t>(m_) + 1);
}

void WorkFunctionTracker::relax(std::vector<double>& chat, double beta,
                                bool charge_up) {
  const int m = static_cast<int>(chat.size()) - 1;
  if (charge_up) {
    // new(x) = min( min_{x'<=x} chat(x') + β(x−x'), min_{x'>=x} chat(x') ).
    // Forward sweep folds the prefix part; backward sweep the suffix part.
    double best_shifted = kInf;  // min chat(x') − βx'
    for (int x = 0; x <= m; ++x) {
      best_shifted = std::min(
          best_shifted, chat[static_cast<std::size_t>(x)] - beta * x);
      chat[static_cast<std::size_t>(x)] =
          std::min(chat[static_cast<std::size_t>(x)], best_shifted + beta * x);
    }
    double suffix = kInf;
    for (int x = m; x >= 0; --x) {
      suffix = std::min(suffix, chat[static_cast<std::size_t>(x)]);
      chat[static_cast<std::size_t>(x)] = suffix;
    }
  } else {
    // U-accounting: moving down from x' > x costs β(x'−x); moving up is
    // free.  new(x) = min( min_{x'>=x} chat(x') + β(x'−x),
    //                      min_{x'<=x} chat(x') ).
    double best_shifted = kInf;  // min chat(x') + βx'
    for (int x = m; x >= 0; --x) {
      best_shifted = std::min(
          best_shifted, chat[static_cast<std::size_t>(x)] + beta * x);
      chat[static_cast<std::size_t>(x)] =
          std::min(chat[static_cast<std::size_t>(x)], best_shifted - beta * x);
    }
    double prefix = kInf;
    for (int x = 0; x <= m; ++x) {
      prefix = std::min(prefix, chat[static_cast<std::size_t>(x)]);
      chat[static_cast<std::size_t>(x)] = prefix;
    }
  }
}

void WorkFunctionTracker::advance(const rs::core::CostFunction& f) {
  for (int x = 0; x <= m_; ++x) {
    scratch_[static_cast<std::size_t>(x)] = f.at(x);
  }
  advance(scratch_);
}

void WorkFunctionTracker::advance(const std::vector<double>& values) {
  if (static_cast<int>(values.size()) != m_ + 1) {
    throw std::invalid_argument("WorkFunctionTracker::advance: need m+1 values");
  }
  relax(chat_l_, beta_, /*charge_up=*/true);
  relax(chat_u_, beta_, /*charge_up=*/false);
  for (int x = 0; x <= m_; ++x) {
    const double f = values[static_cast<std::size_t>(x)];
    if (std::isnan(f)) {
      throw std::invalid_argument("WorkFunctionTracker::advance: NaN cost");
    }
    chat_l_[static_cast<std::size_t>(x)] += f;
    chat_u_[static_cast<std::size_t>(x)] += f;
  }
  ++tau_;
}

void WorkFunctionTracker::require_started() const {
  if (tau_ == 0) {
    throw std::logic_error("WorkFunctionTracker: no function fed yet");
  }
}

double WorkFunctionTracker::chat_lower(int x) const {
  require_started();
  if (x < 0 || x > m_) throw std::out_of_range("chat_lower: x out of range");
  return chat_l_[static_cast<std::size_t>(x)];
}

double WorkFunctionTracker::chat_upper(int x) const {
  require_started();
  if (x < 0 || x > m_) throw std::out_of_range("chat_upper: x out of range");
  return chat_u_[static_cast<std::size_t>(x)];
}

int WorkFunctionTracker::x_lower() const {
  require_started();
  int best = 0;
  for (int x = 1; x <= m_; ++x) {
    if (chat_l_[static_cast<std::size_t>(x)] <
        chat_l_[static_cast<std::size_t>(best)]) {
      best = x;  // strict: keeps the smallest minimizer
    }
  }
  return best;
}

int WorkFunctionTracker::x_upper() const {
  require_started();
  int best = 0;
  for (int x = 1; x <= m_; ++x) {
    if (chat_u_[static_cast<std::size_t>(x)] <=
        chat_u_[static_cast<std::size_t>(best)]) {
      best = x;  // ties move right: keeps the largest minimizer
    }
  }
  return best;
}

BoundTrajectory compute_bounds(const rs::core::Problem& p) {
  BoundTrajectory bounds;
  bounds.lower.reserve(static_cast<std::size_t>(p.horizon()));
  bounds.upper.reserve(static_cast<std::size_t>(p.horizon()));
  WorkFunctionTracker tracker(p.max_servers(), p.beta());
  for (int t = 1; t <= p.horizon(); ++t) {
    tracker.advance(p.f(t));
    bounds.lower.push_back(tracker.x_lower());
    bounds.upper.push_back(tracker.x_upper());
  }
  return bounds;
}

}  // namespace rs::offline
