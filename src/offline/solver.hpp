// Common interface of the offline optimal solvers (Section 2).
#pragma once

#include <string>

#include "core/problem.hpp"
#include "core/schedule.hpp"

namespace rs::offline {

struct OfflineResult {
  rs::core::Schedule schedule;  // empty iff the instance is infeasible
  double cost = rs::util::kInf;

  bool feasible() const noexcept { return std::isfinite(cost); }
};

/// An algorithm computing an optimal schedule for eq. (1).
class OfflineSolver {
 public:
  virtual ~OfflineSolver() = default;

  /// Computes an optimal schedule and its cost.  All solvers in this module
  /// return schedules with identical (optimal) cost; the schedules
  /// themselves may differ when the optimum is not unique.
  virtual OfflineResult solve(const rs::core::Problem& p) const = 0;

  /// Optimal cost only; the default forwards to solve().  Overridden by
  /// solvers that can avoid storing reconstruction state.
  virtual double solve_cost(const rs::core::Problem& p) const {
    return solve(p).cost;
  }

  virtual std::string name() const = 0;
};

}  // namespace rs::offline
