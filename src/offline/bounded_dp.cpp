#include "offline/bounded_dp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/transforms.hpp"
#include "util/math_util.hpp"

namespace rs::offline {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::util::pos;

OfflineResult solve_bounded(const Problem& p,
                            const std::vector<std::vector<int>>& states,
                            BoundedDpStats* stats) {
  const int T = p.horizon();
  if (static_cast<int>(states.size()) != T) {
    throw std::invalid_argument("solve_bounded: need one state set per slot");
  }
  OfflineResult result;
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  for (const std::vector<int>& column : states) {
    if (column.empty()) {
      throw std::invalid_argument("solve_bounded: empty candidate column");
    }
    if (!std::is_sorted(column.begin(), column.end())) {
      throw std::invalid_argument("solve_bounded: candidates must be sorted");
    }
    if (column.front() < 0 || column.back() > p.max_servers()) {
      throw std::invalid_argument("solve_bounded: candidate out of [0, m]");
    }
  }

  // labels[i]: best cost ending in states[t-1][i]; parents for backtracking.
  std::vector<std::vector<std::int32_t>> parents(static_cast<std::size_t>(T));
  std::vector<double> labels;
  std::vector<double> fvals;  // f_t over the candidate column
  std::vector<int> previous_column = {0};  // x_0 = 0
  std::vector<double> previous_labels = {0.0};

  for (int t = 1; t <= T; ++t) {
    const std::vector<int>& column = states[static_cast<std::size_t>(t - 1)];
    labels.assign(column.size(), kInf);
    parents[static_cast<std::size_t>(t - 1)].assign(column.size(), -1);

    // Row-oriented evaluation: resolve f_t once.  A column covering all of
    // {0,..,m} (the exact-DP configurations) goes through eval_row — one
    // virtual call for the whole row; sparse columns (the O(log m)
    // binary-search grids) gather per candidate, keeping the solver's
    // sublinear evaluation count in m.
    const rs::core::CostFunction& f = p.f(t);
    fvals.resize(column.size());
    bool dense_column = column.size() == static_cast<std::size_t>(p.max_servers()) + 1;
    if (dense_column) {
      for (std::size_t i = 0; i < column.size(); ++i) {
        if (column[i] != static_cast<int>(i)) {
          dense_column = false;
          break;
        }
      }
    }
    if (dense_column) {
      f.eval_row(p.max_servers(), fvals);
    } else {
      for (std::size_t i = 0; i < column.size(); ++i) {
        fvals[i] = f.at(column[i]);
      }
    }
    if (stats != nullptr) {
      stats->function_evaluations += static_cast<std::int64_t>(column.size());
    }

    for (std::size_t i = 0; i < column.size(); ++i) {
      const double fv = fvals[i];
      if (std::isinf(fv)) continue;
      double best = kInf;
      std::int32_t best_parent = -1;
      for (std::size_t j = 0; j < previous_column.size(); ++j) {
        if (stats != nullptr) ++stats->transitions_evaluated;
        if (std::isinf(previous_labels[j])) continue;
        const double candidate =
            previous_labels[j] +
            p.beta() * static_cast<double>(pos(column[i] - previous_column[j]));
        if (candidate < best) {
          best = candidate;
          best_parent = static_cast<std::int32_t>(j);
        }
      }
      if (std::isfinite(best)) {
        labels[i] = best + fv;
        parents[static_cast<std::size_t>(t - 1)][i] = best_parent;
      }
    }
    previous_column = column;
    previous_labels = labels;
  }

  const auto best_it =
      std::min_element(previous_labels.begin(), previous_labels.end());
  result.cost = *best_it;
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  std::int32_t index =
      static_cast<std::int32_t>(best_it - previous_labels.begin());
  for (int t = T; t >= 1; --t) {
    result.schedule[static_cast<std::size_t>(t - 1)] =
        states[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(index)];
    index = parents[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(index)];
  }
  return result;
}

OfflineResult solve_phi_restricted(const Problem& p, int k) {
  if (k < 0) throw std::invalid_argument("solve_phi_restricted: k < 0");
  const std::vector<int> column =
      rs::core::multiples_of(1 << k, p.max_servers());
  return solve_bounded(
      p, std::vector<std::vector<int>>(static_cast<std::size_t>(p.horizon()),
                                       column));
}

}  // namespace rs::offline
