#include "offline/bounded_dp.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "core/transforms.hpp"
#include "util/math_util.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::util::pos;

OfflineResult solve_bounded(const Problem& p,
                            const std::vector<std::vector<int>>& states,
                            BoundedDpStats* stats) {
  const int T = p.horizon();
  if (static_cast<int>(states.size()) != T) {
    throw std::invalid_argument("solve_bounded: need one state set per slot");
  }
  OfflineResult result;
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  std::size_t max_columns = 1;
  std::size_t total_states = 0;
  for (const std::vector<int>& column : states) {
    if (column.empty()) {
      throw std::invalid_argument("solve_bounded: empty candidate column");
    }
    if (!std::is_sorted(column.begin(), column.end())) {
      throw std::invalid_argument("solve_bounded: candidates must be sorted");
    }
    if (column.front() < 0 || column.back() > p.max_servers()) {
      throw std::invalid_argument("solve_bounded: candidate out of [0, m]");
    }
    max_columns = std::max(max_columns, column.size());
    total_states += column.size();
  }

  // labels[i]: best cost ending in states[t-1][i].  Parents for backtracking
  // live in one flat workspace buffer (offsets[t-1] is slot t's base), so
  // the repeated-solve consumers (binary-search grids, sweeps) stay
  // allocation-free after warm-up.
  rs::util::Workspace& workspace = rs::util::this_thread_workspace();
  auto parents = workspace.borrow<std::int32_t>(total_states);
  auto offsets = workspace.borrow<std::int64_t>(static_cast<std::size_t>(T) + 1);
  offsets[0] = 0;
  for (int t = 1; t <= T; ++t) {
    offsets[static_cast<std::size_t>(t)] =
        offsets[static_cast<std::size_t>(t - 1)] +
        static_cast<std::int64_t>(states[static_cast<std::size_t>(t - 1)].size());
  }
  auto labels = workspace.borrow<double>(max_columns);
  auto previous_labels = workspace.borrow<double>(max_columns);
  auto fvals = workspace.borrow<double>(max_columns);  // f_t over the column

  static constexpr int kOrigin[] = {0};  // x_0 = 0
  std::span<const int> previous_column{kOrigin};
  previous_labels[0] = 0.0;

  for (int t = 1; t <= T; ++t) {
    const std::vector<int>& column = states[static_cast<std::size_t>(t - 1)];
    std::fill(labels.begin(), labels.begin() + column.size(), kInf);
    std::int32_t* parent_row =
        parents.data() + offsets[static_cast<std::size_t>(t - 1)];
    std::fill(parent_row, parent_row + column.size(), std::int32_t{-1});

    // Row-oriented evaluation: resolve f_t once.  A column covering all of
    // {0,..,m} (the exact-DP configurations) goes through eval_row — one
    // virtual call for the whole row; sparse columns (the O(log m)
    // binary-search grids) gather per candidate, keeping the solver's
    // sublinear evaluation count in m.
    const rs::core::CostFunction& f = p.f(t);
    bool dense_column = column.size() == static_cast<std::size_t>(p.max_servers()) + 1;
    if (dense_column) {
      for (std::size_t i = 0; i < column.size(); ++i) {
        if (column[i] != static_cast<int>(i)) {
          dense_column = false;
          break;
        }
      }
    }
    if (dense_column) {
      f.eval_row(p.max_servers(), fvals.span());
    } else {
      for (std::size_t i = 0; i < column.size(); ++i) {
        fvals[i] = f.at(column[i]);
      }
    }
    if (stats != nullptr) {
      stats->function_evaluations += static_cast<std::int64_t>(column.size());
    }

    for (std::size_t i = 0; i < column.size(); ++i) {
      const double fv = fvals[i];
      if (std::isinf(fv)) continue;
      double best = kInf;
      std::int32_t best_parent = -1;
      for (std::size_t j = 0; j < previous_column.size(); ++j) {
        if (stats != nullptr) ++stats->transitions_evaluated;
        if (std::isinf(previous_labels[j])) continue;
        const double candidate =
            previous_labels[j] +
            p.beta() * static_cast<double>(pos(column[i] - previous_column[j]));
        if (candidate < best) {
          best = candidate;
          best_parent = static_cast<std::int32_t>(j);
        }
      }
      if (std::isfinite(best)) {
        labels[i] = best + fv;
        parent_row[i] = best_parent;
      }
    }
    previous_column = column;
    std::swap(labels.vec(), previous_labels.vec());
  }

  const std::size_t final_size = previous_column.size();
  const auto best_it = std::min_element(previous_labels.begin(),
                                        previous_labels.begin() + final_size);
  result.cost = *best_it;
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  std::int32_t index =
      static_cast<std::int32_t>(best_it - previous_labels.begin());
  for (int t = T; t >= 1; --t) {
    result.schedule[static_cast<std::size_t>(t - 1)] =
        states[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(index)];
    index = parents[static_cast<std::size_t>(
        offsets[static_cast<std::size_t>(t - 1)] + index)];
  }
  return result;
}

OfflineResult solve_phi_restricted(const Problem& p, int k) {
  if (k < 0) throw std::invalid_argument("solve_phi_restricted: k < 0");
  const std::vector<int> column =
      rs::core::multiples_of(1 << k, p.max_servers());
  return solve_bounded(
      p, std::vector<std::vector<int>>(static_cast<std::size_t>(p.horizon()),
                                       column));
}

}  // namespace rs::offline
