#include "offline/bounded_dp.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "core/transforms.hpp"
#include "util/math_util.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

using rs::core::ConvexPwl;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::util::pos;

namespace {

void validate_columns(const Problem& p,
                      const std::vector<std::vector<int>>& states,
                      std::size_t& max_columns, std::size_t& total_states) {
  if (static_cast<int>(states.size()) != p.horizon()) {
    throw std::invalid_argument("solve_bounded: need one state set per slot");
  }
  max_columns = 1;
  total_states = 0;
  for (const std::vector<int>& column : states) {
    if (column.empty()) {
      throw std::invalid_argument("solve_bounded: empty candidate column");
    }
    if (!std::is_sorted(column.begin(), column.end())) {
      throw std::invalid_argument("solve_bounded: candidates must be sorted");
    }
    if (column.front() < 0 || column.back() > p.max_servers()) {
      throw std::invalid_argument("solve_bounded: candidate out of [0, m]");
    }
    max_columns = std::max(max_columns, column.size());
    total_states += column.size();
  }
}

// Stride s when every column is the same arithmetic progression
// {0, s, 2s, ..}, the shape of the full-state and Φ_k grid configurations
// (Section 2.3); 0 otherwise.  Only these columns admit the convex label
// fast path — a sparse irregular candidate set is not a convex domain.
int uniform_grid_stride(const std::vector<std::vector<int>>& states) {
  if (states.empty()) return 0;
  const std::vector<int>& first = states.front();
  if (first.front() != 0) return 0;
  const int stride = first.size() > 1 ? first[1] : 1;
  if (stride <= 0) return 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i] != static_cast<int>(i) * stride) return 0;
  }
  for (const std::vector<int>& column : states) {
    if (column != first) return 0;
  }
  return stride;
}

// The transition kernel β·(y − y')⁺ as a function of y' on [0, m_y]:
// slope −β up to y, flat after — what a dense parent scan adds to the
// previous labels before taking its smallest argmin.
ConvexPwl up_transition_kernel(double beta, int y, int m_y) {
  rs::core::ConvexPwlBuilder builder;
  builder.start(0, beta * static_cast<double>(y));
  if (y > 0) builder.run(-beta, y);
  if (y < m_y) builder.run(0.0, m_y);
  return *builder.finish(rs::core::kUnboundedBreakpoints);
}

// Convex label fast path for uniform-grid columns: in grid units y = x/s
// the restricted DP is the plain DP with β_y = β·s and f_y(y) = f(y·s), so
// the labels W_t are convex PWL whenever the slot costs are — one step
// costs O(B log K) independent of both m and the column size (the dense
// kernel below enumerates |column|² transitions).  The per-step labels are
// retained (O(T·K) memory) so the schedule is reconstructed with the dense
// path's exact tie-breaking: final state = smallest argmin of W_T, parent
// of y = smallest argmin of W_{t-1}(y') + β_y(y − y')⁺ — the same "strict
// improvement, ascending scan" rule the parent pointers record.
OfflineResult solve_bounded_grid_pwl(const Problem& p,
                                     const rs::core::PwlProblem& pwl,
                                     int stride, int m_y) {
  const int T = p.horizon();
  const double beta_y = p.beta() * static_cast<double>(stride);
  std::vector<ConvexPwl> labels;
  labels.reserve(static_cast<std::size_t>(T));
  ConvexPwl w = ConvexPwl::point(0, 0.0);  // x_0 = 0
  for (int t = 1; t <= T; ++t) {
    w.relax_charge_up(beta_y, 0, m_y);
    // add() intersects domains, so a form whose feasible range ends below
    // (or starts above) the grid restricts the labels exactly like the
    // dense kernel's +inf candidates.
    w.add(pwl.form(t).resample_stride(stride));
    labels.push_back(w);
  }

  OfflineResult result;
  if (w.is_infinite()) {
    result.cost = kInf;
    return result;
  }
  const ConvexPwl::ArgminInterval last = w.argmin();
  result.cost = last.value;
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  int y = last.lo;
  result.schedule[static_cast<std::size_t>(T - 1)] = y * stride;
  for (int t = T; t >= 2; --t) {
    ConvexPwl h = labels[static_cast<std::size_t>(t - 2)];
    h.add(up_transition_kernel(beta_y, y, m_y));
    if (h.is_infinite()) {
      throw std::logic_error("solve_bounded: no predecessor for a state on "
                             "a feasible path");
    }
    y = h.argmin().lo;
    result.schedule[static_cast<std::size_t>(t - 2)] = y * stride;
  }
  return result;
}

// The candidate-column DP shared by the dense and the PWL-cached
// evaluation paths; `eval_column(t, column, out)` fills f_t over the
// column.  Callers have already validated the columns (max_columns /
// total_states come from that pass) and handled T = 0.
template <typename EvalColumn>
OfflineResult solve_bounded_impl(const Problem& p,
                                 const std::vector<std::vector<int>>& states,
                                 BoundedDpStats* stats,
                                 std::size_t max_columns,
                                 std::size_t total_states,
                                 EvalColumn&& eval_column) {
  const int T = p.horizon();
  OfflineResult result;

  // labels[i]: best cost ending in states[t-1][i].  Parents for backtracking
  // live in one flat workspace buffer (offsets[t-1] is slot t's base), so
  // the repeated-solve consumers (binary-search grids, sweeps) stay
  // allocation-free after warm-up.
  rs::util::Workspace& workspace = rs::util::this_thread_workspace();
  auto parents = workspace.borrow<std::int32_t>(total_states);
  auto offsets = workspace.borrow<std::int64_t>(static_cast<std::size_t>(T) + 1);
  offsets[0] = 0;
  for (int t = 1; t <= T; ++t) {
    offsets[static_cast<std::size_t>(t)] =
        offsets[static_cast<std::size_t>(t - 1)] +
        static_cast<std::int64_t>(states[static_cast<std::size_t>(t - 1)].size());
  }
  auto labels = workspace.borrow<double>(max_columns);
  auto previous_labels = workspace.borrow<double>(max_columns);
  auto fvals = workspace.borrow<double>(max_columns);  // f_t over the column

  static constexpr int kOrigin[] = {0};  // x_0 = 0
  std::span<const int> previous_column{kOrigin};
  previous_labels[0] = 0.0;

  for (int t = 1; t <= T; ++t) {
    const std::vector<int>& column = states[static_cast<std::size_t>(t - 1)];
    std::fill(labels.begin(), labels.begin() + column.size(), kInf);
    std::int32_t* parent_row =
        parents.data() + offsets[static_cast<std::size_t>(t - 1)];
    std::fill(parent_row, parent_row + column.size(), std::int32_t{-1});

    eval_column(t, column, fvals.span());
    if (stats != nullptr) {
      stats->function_evaluations += static_cast<std::int64_t>(column.size());
    }

    for (std::size_t i = 0; i < column.size(); ++i) {
      const double fv = fvals[i];
      if (std::isinf(fv)) continue;
      double best = kInf;
      std::int32_t best_parent = -1;
      for (std::size_t j = 0; j < previous_column.size(); ++j) {
        if (stats != nullptr) ++stats->transitions_evaluated;
        if (std::isinf(previous_labels[j])) continue;
        const double candidate =
            previous_labels[j] +
            p.beta() * static_cast<double>(pos(column[i] - previous_column[j]));
        if (candidate < best) {
          best = candidate;
          best_parent = static_cast<std::int32_t>(j);
        }
      }
      if (std::isfinite(best)) {
        labels[i] = best + fv;
        parent_row[i] = best_parent;
      }
    }
    previous_column = column;
    std::swap(labels.vec(), previous_labels.vec());
  }

  const std::size_t final_size = previous_column.size();
  const auto best_it = std::min_element(previous_labels.begin(),
                                        previous_labels.begin() + final_size);
  result.cost = *best_it;
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  std::int32_t index =
      static_cast<std::int32_t>(best_it - previous_labels.begin());
  for (int t = T; t >= 1; --t) {
    result.schedule[static_cast<std::size_t>(t - 1)] =
        states[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(index)];
    index = parents[static_cast<std::size_t>(
        offsets[static_cast<std::size_t>(t - 1)] + index)];
  }
  return result;
}

OfflineResult empty_horizon_result() {
  OfflineResult result;
  result.schedule = {};
  result.cost = 0.0;
  return result;
}

}  // namespace

OfflineResult solve_bounded(const Problem& p,
                            const std::vector<std::vector<int>>& states,
                            BoundedDpStats* stats) {
  std::size_t max_columns = 1;
  std::size_t total_states = 0;
  validate_columns(p, states, max_columns, total_states);
  if (p.horizon() == 0) return empty_horizon_result();
  const int m = p.max_servers();
  return solve_bounded_impl(
      p, states, stats, max_columns, total_states,
      [&p, m](int t, const std::vector<int>& column, std::span<double> out) {
        // Row-oriented evaluation: resolve f_t once.  A column covering all
        // of {0,..,m} (the exact-DP configurations) goes through eval_row —
        // one virtual call for the whole row; sparse columns (the O(log m)
        // binary-search grids) gather per candidate, keeping the solver's
        // sublinear evaluation count in m.
        const rs::core::CostFunction& f = p.f(t);
        bool dense_column = column.size() == static_cast<std::size_t>(m) + 1;
        if (dense_column) {
          for (std::size_t i = 0; i < column.size(); ++i) {
            if (column[i] != static_cast<int>(i)) {
              dense_column = false;
              break;
            }
          }
        }
        if (dense_column) {
          f.eval_row(m, out);
        } else {
          for (std::size_t i = 0; i < column.size(); ++i) {
            out[i] = f.at(column[i]);
          }
        }
      });
}

OfflineResult solve_bounded(const Problem& p,
                            const std::vector<std::vector<int>>& states,
                            const rs::core::PwlProblem& pwl,
                            BoundedDpStats* stats) {
  if (pwl.horizon() != p.horizon() || pwl.max_servers() != p.max_servers()) {
    throw std::invalid_argument(
        "solve_bounded: PwlProblem does not match the instance");
  }
  std::size_t max_columns = 1;
  std::size_t total_states = 0;
  validate_columns(p, states, max_columns, total_states);
  if (p.horizon() == 0) return empty_horizon_result();
  if (const int stride = uniform_grid_stride(states); stride > 0) {
    // stats stays untouched on this path: the label recursion enumerates
    // no per-state evaluations or transitions, which is the point.
    return solve_bounded_grid_pwl(
        p, pwl, stride,
        static_cast<int>(states.front().size()) - 1);
  }
  // Irregular columns: the same DP, with column values filled from the
  // cached forms in one O(K + |column|) walk per slot (no re-conversion,
  // no virtual per-candidate dispatch).
  return solve_bounded_impl(
      p, states, stats, max_columns, total_states,
      [&pwl](int t, const std::vector<int>& column, std::span<double> out) {
        pwl.form(t).eval_at_sorted(column, out);
      });
}

OfflineResult solve_phi_restricted(const Problem& p, int k) {
  if (k < 0) throw std::invalid_argument("solve_phi_restricted: k < 0");
  const std::vector<int> column =
      rs::core::multiples_of(1 << k, p.max_servers());
  return solve_bounded(
      p, std::vector<std::vector<int>>(static_cast<std::size_t>(p.horizon()),
                                       column));
}

OfflineResult solve_phi_restricted(const Problem& p, int k,
                                   const rs::core::PwlProblem& pwl) {
  if (k < 0) throw std::invalid_argument("solve_phi_restricted: k < 0");
  const std::vector<int> column =
      rs::core::multiples_of(1 << k, p.max_servers());
  return solve_bounded(
      p,
      std::vector<std::vector<int>>(static_cast<std::size_t>(p.horizon()),
                                    column),
      pwl);
}

}  // namespace rs::offline
