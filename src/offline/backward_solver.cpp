#include "offline/backward_solver.hpp"

#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::offline {

rs::core::Schedule backward_schedule(const BoundTrajectory& bounds) {
  if (bounds.lower.size() != bounds.upper.size()) {
    throw std::invalid_argument("backward_schedule: bound size mismatch");
  }
  const int T = static_cast<int>(bounds.lower.size());
  rs::core::Schedule x(static_cast<std::size_t>(T), 0);
  int successor = 0;  // x̂_{T+1} = 0
  for (int t = T; t >= 1; --t) {
    const int lo = bounds.lower[static_cast<std::size_t>(t - 1)];
    const int hi = bounds.upper[static_cast<std::size_t>(t - 1)];
    if (lo > hi) {
      throw std::logic_error("backward_schedule: x^L > x^U (invalid bounds)");
    }
    successor = rs::util::project(successor, lo, hi);
    x[static_cast<std::size_t>(t - 1)] = successor;
  }
  return x;
}

OfflineResult BackwardSolver::solve(const rs::core::Problem& p) const {
  OfflineResult result;
  if (p.horizon() == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  // The bound pass reads every row anyway, so materialize them lazily once
  // and let the final cost accounting reuse the table instead of
  // re-dispatching through the cost functions.
  const rs::core::DenseProblem dense(p, rs::core::DenseProblem::Mode::kLazy);
  const BoundTrajectory bounds = compute_bounds(dense);
  result.schedule = backward_schedule(bounds);
  result.cost = rs::core::total_cost(dense, result.schedule);
  if (!result.feasible()) result.schedule.clear();
  return result;
}

}  // namespace rs::offline
