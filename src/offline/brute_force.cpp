#include "offline/brute_force.hpp"

#include <cmath>
#include <stdexcept>

namespace rs::offline {

using rs::core::Problem;
using rs::core::Schedule;

OfflineResult BruteForceSolver::solve(const Problem& p) const {
  const int T = p.horizon();
  const int m = p.max_servers();
  const double combos = std::pow(static_cast<double>(m) + 1.0, T);
  if (combos > 1e7) {
    throw std::invalid_argument("BruteForceSolver: instance too large");
  }

  OfflineResult best;
  if (T == 0) {
    best.schedule = {};
    best.cost = 0.0;
    return best;
  }

  // Up to (m+1)^T schedules are scored against the same T·(m+1) values;
  // materialize them once so each evaluation is a table lookup.
  const rs::core::DenseProblem dense(p);
  Schedule current(static_cast<std::size_t>(T), 0);
  for (;;) {
    const double cost = rs::core::total_cost(dense, current);
    if (cost < best.cost) {
      best.cost = cost;
      best.schedule = current;
    }
    // Odometer increment over {0,..,m}^T.
    int position = 0;
    while (position < T) {
      if (current[static_cast<std::size_t>(position)] < m) {
        ++current[static_cast<std::size_t>(position)];
        break;
      }
      current[static_cast<std::size_t>(position)] = 0;
      ++position;
    }
    if (position == T) break;
  }
  return best;
}

}  // namespace rs::offline
