// Exhaustive search over all (m+1)^T schedules.  Ground truth for tests on
// tiny instances; rejects anything that would enumerate more than ~10^7
// schedules.
#pragma once

#include "offline/solver.hpp"

namespace rs::offline {

class BruteForceSolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;
  std::string name() const override { return "brute_force"; }
};

}  // namespace rs::offline
