// Incremental maintenance of the bound work functions of Section 3.1.
//
//   Ĉ^L_τ(x) = min cost of serving f_1..f_τ ending in state x, switching
//              cost charged on power-UP (eq. 11 minimized over prefixes);
//   Ĉ^U_τ(x) = same with switching cost charged on power-DOWN (eq. 12).
//
// From them the online bounds are
//   x^L_τ = smallest minimizer of Ĉ^L_τ   (lower bound, Lemma 6)
//   x^U_τ = largest  minimizer of Ĉ^U_τ   (upper bound, Lemma 6)
//
// One advance() costs O(m) via prefix/suffix minima, fused into three
// array passes (L-relax forward; L-suffix + U-relax backward; U-prefix +
// cost add + minimizer tracking forward), so the bounds x^L_τ / x^U_τ come
// out of the advance itself instead of two extra O(m) scans.  Both
// functions are maintained independently even though Lemma 7 proves
// Ĉ^L_τ(x) = Ĉ^U_τ(x) + βx — the redundancy is asserted in tests.
//
// This tracker powers the discrete LCP algorithm (Section 3), the
// prediction-window variant, and the Lemma-11 offline construction.
#pragma once

#include <span>
#include <vector>

#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

class WorkFunctionTracker {
 public:
  /// Tracker for a data center with m servers and power-up cost beta.
  /// Label storage is borrowed from the constructing thread's workspace
  /// arena (util/workspace.hpp); the handles keep the arena state alive,
  /// so the tracker may safely outlive the thread (its memory then parks
  /// with that thread's pool until the tracker is destroyed).
  WorkFunctionTracker(int m, double beta);

  /// Feeds f_τ (the next operating-cost function); O(m).  The row is
  /// evaluated in one eval_row call — no per-state virtual dispatch.
  void advance(const rs::core::CostFunction& f);

  /// Feeds f_τ given as explicit values f(0..m).
  void advance(const std::vector<double>& values);

  /// Feeds f_τ given as a dense row (e.g. DenseProblem::row).
  void advance(std::span<const double> values);

  int tau() const noexcept { return tau_; }
  int max_servers() const noexcept { return m_; }

  /// Ĉ^L_τ(x) and Ĉ^U_τ(x); require 0 <= x <= m and τ >= 1.
  double chat_lower(int x) const;
  double chat_upper(int x) const;
  const std::vector<double>& chat_lower_vector() const { return chat_l_.vec(); }
  const std::vector<double>& chat_upper_vector() const { return chat_u_.vec(); }

  /// The online bounds x^L_τ and x^U_τ (tie-broken per Section 3.1);
  /// O(1) — maintained during advance().
  int x_lower() const;
  int x_upper() const;

 private:
  void require_started() const;

  int m_;
  double beta_;
  int tau_ = 0;
  int x_lower_ = 0;  // smallest minimizer of chat_l_, updated per advance
  int x_upper_ = 0;  // largest minimizer of chat_u_
  // Label rows and the eval_row scratch are workspace-borrowed so repeated
  // tracker construction (one per LCP replay / trial) is allocation-free
  // after warm-up; the tracker is move-only as a consequence.
  rs::util::Workspace::Buffer<double> chat_l_;
  rs::util::Workspace::Buffer<double> chat_u_;
  rs::util::Workspace::Buffer<double> scratch_;
};

/// Runs the tracker over the full instance and returns (x^L_τ, x^U_τ) for
/// every τ in [1, T].
struct BoundTrajectory {
  std::vector<int> lower;  // x^L_1..x^L_T
  std::vector<int> upper;  // x^U_1..x^U_T
};
BoundTrajectory compute_bounds(const rs::core::Problem& p);

/// Same, consuming pre-materialized rows (shared with other dense-backed
/// passes over the instance).
BoundTrajectory compute_bounds(const rs::core::DenseProblem& dense);

}  // namespace rs::offline
