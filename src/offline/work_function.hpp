// Incremental maintenance of the bound work functions of Section 3.1.
//
//   Ĉ^L_τ(x) = min cost of serving f_1..f_τ ending in state x, switching
//              cost charged on power-UP (eq. 11 minimized over prefixes);
//   Ĉ^U_τ(x) = same with switching cost charged on power-DOWN (eq. 12).
//
// From them the online bounds are
//   x^L_τ = smallest minimizer of Ĉ^L_τ   (lower bound, Lemma 6)
//   x^U_τ = largest  minimizer of Ĉ^U_τ   (upper bound, Lemma 6)
//
// Two interchangeable backends maintain the pair:
//
//   * kDense — flat label rows; one advance() costs O(m) via prefix/suffix
//     minima fused into three array passes (L-relax forward; L-suffix +
//     U-relax backward; U-prefix + cost add + minimizer tracking forward).
//   * kPwl — both functions are convex whenever every f_τ is convex, so
//     they are kept as exact convex piecewise-linear functions
//     (core/convex_pwl.hpp): the relax steps clip the slope sequences into
//     [0, β] / [−β, 0] (amortized O(1) per breakpoint) and the f_τ
//     addition merges its breakpoints, making one advance O(B log K) in
//     breakpoint counts and fully independent of m — the backend for
//     m ~ 10⁵..10⁶ instances where even streaming O(m) rows is the
//     bottleneck (arXiv:1807.05112 §LCP, arXiv:2108.09489).
//
// Backend::kAuto (the default) resolves per instance at runtime: advances
// fed a CostFunction use kPwl while every slot converts compactly
// (CostFunction::as_convex_pwl within kCompactPwlBudget breakpoints) and
// switch to kDense permanently — materializing the current Ĉ pair into
// label rows — on the first slot that does not.  Advances fed raw value
// rows always use kDense.  Both backends produce identical bounds and
// chat values up to floating-point association order (bit-identical on
// integer-valued instances); see DESIGN.md §8.
//
// Both functions are maintained independently even though Lemma 7 proves
// Ĉ^L_τ(x) = Ĉ^U_τ(x) + βx — the redundancy is asserted in tests.
//
// This tracker powers the discrete LCP algorithm (Section 3), the
// prediction-window variant, the Lemma-11 offline construction, and the
// DpSolver convex fast path.
#pragma once

#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "core/convex_pwl.hpp"
#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "core/pwl_problem.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

class WorkFunctionTracker {
 public:
  enum class Backend {
    kAuto,   // kPwl while every advanced cost converts compactly, else kDense
    kDense,  // always the O(m) label rows
    kPwl,    // force the PWL backend; non-convertible advances throw
  };

  /// Tracker for a data center with m servers and power-up cost beta.
  /// Dense label storage is borrowed lazily from the constructing thread's
  /// workspace arena (util/workspace.hpp) the first time the dense backend
  /// is engaged, so a PWL-backed tracker never allocates O(m) state; the
  /// buffer handles keep the arena state alive, so the tracker may safely
  /// outlive the thread.
  WorkFunctionTracker(int m, double beta, Backend backend = Backend::kAuto);

  /// Feeds f_τ (the next operating-cost function).  O(B log K) on the PWL
  /// backend, O(m) (one eval_row, no per-state dispatch) on the dense one.
  void advance(const rs::core::CostFunction& f);

  /// Feeds f_τ in exact convex-PWL form (skips the conversion; a dense
  /// tracker materializes the row instead).
  void advance(const rs::core::ConvexPwl& f);

  /// Feeds f_τ given as explicit values f(0..m); dense backend only (a
  /// forced-kPwl tracker throws std::logic_error).
  void advance(const std::vector<double>& values);

  /// Feeds f_τ given as a dense row (e.g. DenseProblem::row).
  void advance(std::span<const double> values);

  /// Feeds the SAME cost function for `count` consecutive slots and writes
  /// the per-slot bounds x^L / x^U into xl[0..count) / xu[0..count) —
  /// the run-length-encoded replay primitive (scenario/rle.hpp).
  ///
  /// Bounds are bit-identical to `count` individual advance() calls on
  /// both backends:
  ///
  ///   * kPwl — the Ĉ pair's *shape* (domain + slope sequence) evolves
  ///     autonomously under a repeated relax+add (values never feed the
  ///     control flow; see ConvexPwl::same_shape), so the first advance
  ///     whose shapes reproduce the previous step's is a permanent
  ///     fixpoint: the remaining slots of the run reuse the pinned bounds
  ///     and fast-forward τ and the chat values in O(1).  In practice the
  ///     fixpoint lands within a handful of steps (the relax clips the
  ///     slopes into [0,β]/[−β,0] and f's breakpoints stop moving), making
  ///     a length-k run cost O(min(k, fixpoint) · B log K) instead of
  ///     O(k · B log K).  Chat *values* after a jump are fast-forwarded by
  ///     the shape-determined per-step increment, which matches stepping
  ///     up to FP association order (exactly on integer-valued runs) —
  ///     same tolerance class as the dense-vs-PWL contract of DESIGN.md §8.
  ///   * kDense — no steps can be skipped (the minimizer scans compare
  ///     accumulated values), but the run's cost row is evaluated ONCE and
  ///     re-fed per slot, eliminating the per-slot eval_row — the dominant
  ///     cost for dispatch-heavy families (RestrictedSlotCost decorator
  ///     chains).
  ///
  /// Requires xl.size() >= count and xu.size() >= count; count >= 0.
  void advance_repeated(const rs::core::CostFunction& f, int count,
                        std::span<int> xl, std::span<int> xu);

  /// Same, with f in exact convex-PWL form.
  void advance_repeated(const rs::core::ConvexPwl& f, int count,
                        std::span<int> xl, std::span<int> xu);

  /// Same, with f as explicit values f(0..m); dense backend only.
  void advance_repeated(std::span<const double> values, int count,
                        std::span<int> xl, std::span<int> xu);

  int tau() const noexcept { return tau_; }
  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }
  Backend backend() const noexcept { return backend_; }

  /// Serialized tracker state in the versioned, checksummed checkpoint
  /// container (core/checkpoint.hpp): (m, beta, backend, mode, τ, bounds)
  /// plus the live Ĉ pair — the PWL forms bit-exactly, or the dense label
  /// rows bit-exactly.  A tracker restored from this snapshot continues
  /// bitwise-identically to the uninterrupted run on either backend (the
  /// kill-and-resume suite pins schedules, corridor bounds, and costs).
  std::vector<std::uint8_t> snapshot() const;

  /// Reconstructs a tracker from snapshot() bytes.  Rejects malformed,
  /// truncated, mislabeled, or bit-flipped input with the typed
  /// core::CheckpointError hierarchy (format / corruption), and re-validates
  /// every decoded invariant (enum ranges, bound ranges, PWL-form
  /// invariants, NaN-free labels) so no checkpoint can construct a broken
  /// tracker.  Callers restoring into a known instance should additionally
  /// check max_servers()/beta() against it (the session-level restores in
  /// online/lcp*.hpp do, throwing CheckpointMismatchError).
  static WorkFunctionTracker restore(std::span<const std::uint8_t> bytes);

  /// True while the PWL backend is live (false before the first advance
  /// and after any fallback to dense).
  bool using_pwl() const noexcept { return mode_ == Mode::kPwl; }

  /// Live breakpoints of Ĉ^L (0 on the dense backend); diagnostics for the
  /// K-vs-m scaling story.
  int breakpoint_count() const noexcept;

  /// Ĉ^L_τ(x) and Ĉ^U_τ(x); require 0 <= x <= m and τ >= 1.  O(K) on the
  /// PWL backend, O(1) dense.
  double chat_lower(int x) const;
  double chat_upper(int x) const;

  /// Dense label rows; switches a PWL tracker to the dense backend first
  /// (the row views must stay valid across later advances).
  const std::vector<double>& chat_lower_vector();
  const std::vector<double>& chat_upper_vector();

  /// The live PWL forms; require using_pwl().
  const rs::core::ConvexPwl& chat_lower_pwl() const;
  const rs::core::ConvexPwl& chat_upper_pwl() const;

  /// Permanently switches to the dense backend (no-op if already dense),
  /// materializing the current Ĉ pair.  Mixed consumers (e.g. a windowed
  /// LCP whose lookahead does not convert) use this to keep every per-x
  /// query O(1).
  void ensure_dense_backend();

  /// The online bounds x^L_τ and x^U_τ (tie-broken per Section 3.1);
  /// O(1) — maintained during advance().
  int x_lower() const;
  int x_upper() const;

  // -------------------------------------------------------------------------
  // Incremental repair (rewind buffer + repair_from) — DESIGN.md §12.
  //
  // When enabled, every advance records (a) the cost it consumed, in the
  // *resolved* replayable kind — the exact convex-PWL form on the PWL path,
  // the evaluated value row on the dense path — and (b) the post-advance
  // tracker state.  RLE runs (advance_repeated) record ONE entry for the
  // whole run, so the buffer costs O(K) per run on the PWL path, not O(k·K).
  // repair_from(t, f') then re-relaxes forward from the edited slot and
  // early-exits as soon as the recomputed state compares bitwise equal to a
  // stored post-state: replay is deterministic, so from that boundary on the
  // entire stored suffix — including the final labels — is already correct.
  //
  // The repaired tracker is bit-identical to a tracker fed the recorded
  // input sequence from scratch with the edit substituted.  Edits that
  // would change the backend *trajectory* (a PWL-mode slot edited to a
  // non-convertible cost, or the fallback-triggering slot edited to a
  // convertible one) throw std::invalid_argument before mutating anything —
  // callers fall back to a full re-solve, which handles the mode flip
  // naturally (offline/delta_session.hpp does exactly this).
  //
  // Rewind state is deliberately excluded from snapshot()/restore() — the
  // checkpoint wire format is unchanged; re-enable after a restore.
  // -------------------------------------------------------------------------

  /// A recorded advance input in replayable form.
  struct StoredInput {
    bool is_row = false;
    rs::core::ConvexPwl form;  // valid when !is_row
    std::vector<double> row;   // valid when is_row
  };

  /// Outcome of a repair: the repaired per-slot bounds starting at the
  /// edited slot, whether replay stopped at a reconvergence boundary before
  /// the end of the recorded history, and how many slots were re-advanced
  /// (including the unchanged prefix of a split RLE run).
  struct Repair {
    bool early_exit = false;
    int first_slot = 0;       // == the edited slot
    int slots_replayed = 0;   // advances re-executed during the repair
    std::vector<int> lower;   // repaired x^L for slots first_slot, ...
    std::vector<int> upper;   // repaired x^U, same indexing
  };

  /// Starts recording with room for `capacity` entries (one per advance /
  /// advance_repeated call; capacity >= 1).  The rewind base is the current
  /// state; prior history is not reconstructible.  Appending past capacity
  /// evicts the oldest entry (the base moves forward).
  void enable_rewind(int capacity);
  void disable_rewind();
  bool rewind_enabled() const noexcept { return rewind_enabled_; }

  /// First slot a repair can target (rewind_base_tau + 1); tau() + 1 when
  /// nothing is recorded.
  int rewind_begin() const noexcept { return rewind_base_tau_ + 1; }
  bool rewind_covers(int slot) const noexcept {
    return rewind_enabled_ && slot >= rewind_begin() && slot <= tau_;
  }

  /// Copy of the recorded (resolved) input consumed at `slot`; throws
  /// std::out_of_range outside the covered window.
  StoredInput rewind_input(int slot) const;

  /// Replaces the cost consumed at `slot` and repairs the labels forward.
  /// Requires rewind_covers(slot).  Strong exception guarantee: on throw
  /// the tracker (and its rewind history) is bitwise unchanged.
  Repair repair_from(int slot, const rs::core::CostFunction& f);
  Repair repair_from(int slot, const rs::core::ConvexPwl& f);
  Repair repair_from(int slot, std::span<const double> values);
  Repair repair_from(int slot, const StoredInput& input);

  /// Deep copy, including the rewind history; dense labels are borrowed
  /// from the *calling* thread's workspace.  Fleet what-if probes repair a
  /// clone so the live session stays bitwise untouched.
  WorkFunctionTracker clone() const;

  /// Deep corridor-invariant audit (util/audit.hpp; DESIGN.md §13): corridor
  /// ordered and in range (0 <= x^L <= x^U <= m), labels NaN-free and
  /// non-negative (extended reals in [0, +inf]), corridor bounds equal to a
  /// tie-break-exact argmin re-scan of the live Ĉ pair, the Lemma-7
  /// redundancy Ĉ^L(x) = Ĉ^U(x) + βx at sampled states, and min Ĉ^L
  /// monotone non-decreasing across advances (work functions only grow).
  /// Raises rs::util::audit::AuditError naming the violated invariant.
  /// Always compiled; the RS_AUDIT hooks after every advance / restore /
  /// repair engage only under RIGHTSIZER_AUDIT.
  void audit_invariants(const char* site) const;

 private:
  friend struct WorkFunctionTrackerTestAccess;
  enum class Mode { kUndecided, kPwl, kDense };

  void require_started() const;
  void init_dense();
  void advance_dense(std::span<const double> values);
  void advance_pwl(const rs::core::ConvexPwl& f);
  void advance_repeated_pwl(const rs::core::ConvexPwl& f, int count,
                            std::span<int> xl, std::span<int> xu);
  void advance_repeated_dense(std::span<const double> values, int count,
                              std::span<int> xl, std::span<int> xu);

  // Full tracker state at a run boundary — what a rewind entry stores and
  // what reconvergence compares.  Dense labels are value copies (the live
  // rows are workspace buffers).
  struct TrackerState {
    Mode mode = Mode::kUndecided;
    int tau = 0;
    int x_lower = 0;
    int x_upper = 0;
    rs::core::ConvexPwl pwl_l;
    rs::core::ConvexPwl pwl_u;
    std::vector<double> chat_l;  // mode == kDense only
    std::vector<double> chat_u;
  };
  struct RewindEntry {
    int start = 0;  // first slot of the run (1-based)
    int count = 0;  // run length (>= 1)
    StoredInput input;
    TrackerState post;  // state after the run
  };

  TrackerState capture_state() const;
  void restore_state(const TrackerState& s);
  static bool states_equal(const TrackerState& a, const TrackerState& b);
  void rewind_record(StoredInput input, int count);
  void rewind_reset_base();
  // Replays a recorded input through the normal typed advance paths without
  // re-recording; appends the per-slot bounds when collectors are given.
  void replay_input(const StoredInput& input, int count, std::vector<int>* lo,
                    std::vector<int>* up);
  Repair repair_impl(int slot,
                     const std::function<StoredInput()>& resolve_edit);

  int m_;
  double beta_;
  Backend backend_;
  Mode mode_ = Mode::kUndecided;
  int tau_ = 0;
  int x_lower_ = 0;  // smallest minimizer of Ĉ^L, updated per advance
  int x_upper_ = 0;  // largest minimizer of Ĉ^U
  // PWL backend state (empty maps until first use).
  rs::core::ConvexPwl pwl_l_;
  rs::core::ConvexPwl pwl_u_;
  // Dense backend state.  Label rows and the eval_row scratch are
  // workspace-borrowed so repeated tracker construction (one per LCP
  // replay / trial) is allocation-free after warm-up; the tracker is
  // move-only as a consequence.
  rs::util::Workspace::Buffer<double> chat_l_;
  rs::util::Workspace::Buffer<double> chat_u_;
  rs::util::Workspace::Buffer<double> scratch_;
  // Rewind buffer (excluded from snapshot()/restore(); see above).
  bool rewind_enabled_ = false;
  bool rewind_replaying_ = false;  // suppress recording during repairs
  std::size_t rewind_capacity_ = 0;
  int rewind_base_tau_ = 0;
  TrackerState rewind_base_;
  std::deque<RewindEntry> rewind_entries_;
  // Auditor watermark for the min-Ĉ^L-monotone check (audit_invariants);
  // touched only inside audits, reseeded whenever τ moved backwards (a
  // repair rewound the tracker).
  mutable int audit_last_tau_ = 0;
  mutable double audit_min_watermark_ = 0.0;
};

/// Test-only corruption hooks for the auditor's negative tests
/// (tests/test_audit.cpp): direct references to the private corridor and
/// label state so a test can break exactly one invariant and assert
/// audit_invariants names it.  Never use outside tests.
struct WorkFunctionTrackerTestAccess {
  static int& x_lower(WorkFunctionTracker& t) noexcept { return t.x_lower_; }
  static int& x_upper(WorkFunctionTracker& t) noexcept { return t.x_upper_; }
  static rs::core::ConvexPwl& pwl_lower(WorkFunctionTracker& t) noexcept {
    return t.pwl_l_;
  }
  static rs::core::ConvexPwl& pwl_upper(WorkFunctionTracker& t) noexcept {
    return t.pwl_u_;
  }
  static std::vector<double>& dense_lower(WorkFunctionTracker& t) noexcept {
    return t.chat_l_.vec();
  }
  static std::vector<double>& dense_upper(WorkFunctionTracker& t) noexcept {
    return t.chat_u_.vec();
  }
};

/// Runs the tracker over the full instance and returns (x^L_τ, x^U_τ) for
/// every τ in [1, T].
struct BoundTrajectory {
  std::vector<int> lower;  // x^L_1..x^L_T
  std::vector<int> upper;  // x^U_1..x^U_T
};
BoundTrajectory compute_bounds(
    const rs::core::Problem& p,
    WorkFunctionTracker::Backend backend = WorkFunctionTracker::Backend::kAuto);

/// Same, consuming pre-materialized rows (shared with other dense-backed
/// passes over the instance); always the dense backend.
BoundTrajectory compute_bounds(const rs::core::DenseProblem& dense);

/// Same, consuming cached convex-PWL forms (shared with the other PWL
/// consumers of the instance — no per-advance re-conversion); always the
/// PWL backend.
BoundTrajectory compute_bounds(const rs::core::PwlProblem& pwl);

}  // namespace rs::offline
