// Incremental maintenance of the bound work functions of Section 3.1.
//
//   Ĉ^L_τ(x) = min cost of serving f_1..f_τ ending in state x, switching
//              cost charged on power-UP (eq. 11 minimized over prefixes);
//   Ĉ^U_τ(x) = same with switching cost charged on power-DOWN (eq. 12).
//
// From them the online bounds are
//   x^L_τ = smallest minimizer of Ĉ^L_τ   (lower bound, Lemma 6)
//   x^U_τ = largest  minimizer of Ĉ^U_τ   (upper bound, Lemma 6)
//
// Two interchangeable backends maintain the pair:
//
//   * kDense — flat label rows; one advance() costs O(m) via prefix/suffix
//     minima fused into three array passes (L-relax forward; L-suffix +
//     U-relax backward; U-prefix + cost add + minimizer tracking forward).
//   * kPwl — both functions are convex whenever every f_τ is convex, so
//     they are kept as exact convex piecewise-linear functions
//     (core/convex_pwl.hpp): the relax steps clip the slope sequences into
//     [0, β] / [−β, 0] (amortized O(1) per breakpoint) and the f_τ
//     addition merges its breakpoints, making one advance O(B log K) in
//     breakpoint counts and fully independent of m — the backend for
//     m ~ 10⁵..10⁶ instances where even streaming O(m) rows is the
//     bottleneck (arXiv:1807.05112 §LCP, arXiv:2108.09489).
//
// Backend::kAuto (the default) resolves per instance at runtime: advances
// fed a CostFunction use kPwl while every slot converts compactly
// (CostFunction::as_convex_pwl within kCompactPwlBudget breakpoints) and
// switch to kDense permanently — materializing the current Ĉ pair into
// label rows — on the first slot that does not.  Advances fed raw value
// rows always use kDense.  Both backends produce identical bounds and
// chat values up to floating-point association order (bit-identical on
// integer-valued instances); see DESIGN.md §8.
//
// Both functions are maintained independently even though Lemma 7 proves
// Ĉ^L_τ(x) = Ĉ^U_τ(x) + βx — the redundancy is asserted in tests.
//
// This tracker powers the discrete LCP algorithm (Section 3), the
// prediction-window variant, the Lemma-11 offline construction, and the
// DpSolver convex fast path.
#pragma once

#include <span>
#include <vector>

#include "core/convex_pwl.hpp"
#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "core/pwl_problem.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

class WorkFunctionTracker {
 public:
  enum class Backend {
    kAuto,   // kPwl while every advanced cost converts compactly, else kDense
    kDense,  // always the O(m) label rows
    kPwl,    // force the PWL backend; non-convertible advances throw
  };

  /// Tracker for a data center with m servers and power-up cost beta.
  /// Dense label storage is borrowed lazily from the constructing thread's
  /// workspace arena (util/workspace.hpp) the first time the dense backend
  /// is engaged, so a PWL-backed tracker never allocates O(m) state; the
  /// buffer handles keep the arena state alive, so the tracker may safely
  /// outlive the thread.
  WorkFunctionTracker(int m, double beta, Backend backend = Backend::kAuto);

  /// Feeds f_τ (the next operating-cost function).  O(B log K) on the PWL
  /// backend, O(m) (one eval_row, no per-state dispatch) on the dense one.
  void advance(const rs::core::CostFunction& f);

  /// Feeds f_τ in exact convex-PWL form (skips the conversion; a dense
  /// tracker materializes the row instead).
  void advance(const rs::core::ConvexPwl& f);

  /// Feeds f_τ given as explicit values f(0..m); dense backend only (a
  /// forced-kPwl tracker throws std::logic_error).
  void advance(const std::vector<double>& values);

  /// Feeds f_τ given as a dense row (e.g. DenseProblem::row).
  void advance(std::span<const double> values);

  /// Feeds the SAME cost function for `count` consecutive slots and writes
  /// the per-slot bounds x^L / x^U into xl[0..count) / xu[0..count) —
  /// the run-length-encoded replay primitive (scenario/rle.hpp).
  ///
  /// Bounds are bit-identical to `count` individual advance() calls on
  /// both backends:
  ///
  ///   * kPwl — the Ĉ pair's *shape* (domain + slope sequence) evolves
  ///     autonomously under a repeated relax+add (values never feed the
  ///     control flow; see ConvexPwl::same_shape), so the first advance
  ///     whose shapes reproduce the previous step's is a permanent
  ///     fixpoint: the remaining slots of the run reuse the pinned bounds
  ///     and fast-forward τ and the chat values in O(1).  In practice the
  ///     fixpoint lands within a handful of steps (the relax clips the
  ///     slopes into [0,β]/[−β,0] and f's breakpoints stop moving), making
  ///     a length-k run cost O(min(k, fixpoint) · B log K) instead of
  ///     O(k · B log K).  Chat *values* after a jump are fast-forwarded by
  ///     the shape-determined per-step increment, which matches stepping
  ///     up to FP association order (exactly on integer-valued runs) —
  ///     same tolerance class as the dense-vs-PWL contract of DESIGN.md §8.
  ///   * kDense — no steps can be skipped (the minimizer scans compare
  ///     accumulated values), but the run's cost row is evaluated ONCE and
  ///     re-fed per slot, eliminating the per-slot eval_row — the dominant
  ///     cost for dispatch-heavy families (RestrictedSlotCost decorator
  ///     chains).
  ///
  /// Requires xl.size() >= count and xu.size() >= count; count >= 0.
  void advance_repeated(const rs::core::CostFunction& f, int count,
                        std::span<int> xl, std::span<int> xu);

  /// Same, with f in exact convex-PWL form.
  void advance_repeated(const rs::core::ConvexPwl& f, int count,
                        std::span<int> xl, std::span<int> xu);

  /// Same, with f as explicit values f(0..m); dense backend only.
  void advance_repeated(std::span<const double> values, int count,
                        std::span<int> xl, std::span<int> xu);

  int tau() const noexcept { return tau_; }
  int max_servers() const noexcept { return m_; }
  double beta() const noexcept { return beta_; }
  Backend backend() const noexcept { return backend_; }

  /// Serialized tracker state in the versioned, checksummed checkpoint
  /// container (core/checkpoint.hpp): (m, beta, backend, mode, τ, bounds)
  /// plus the live Ĉ pair — the PWL forms bit-exactly, or the dense label
  /// rows bit-exactly.  A tracker restored from this snapshot continues
  /// bitwise-identically to the uninterrupted run on either backend (the
  /// kill-and-resume suite pins schedules, corridor bounds, and costs).
  std::vector<std::uint8_t> snapshot() const;

  /// Reconstructs a tracker from snapshot() bytes.  Rejects malformed,
  /// truncated, mislabeled, or bit-flipped input with the typed
  /// core::CheckpointError hierarchy (format / corruption), and re-validates
  /// every decoded invariant (enum ranges, bound ranges, PWL-form
  /// invariants, NaN-free labels) so no checkpoint can construct a broken
  /// tracker.  Callers restoring into a known instance should additionally
  /// check max_servers()/beta() against it (the session-level restores in
  /// online/lcp*.hpp do, throwing CheckpointMismatchError).
  static WorkFunctionTracker restore(std::span<const std::uint8_t> bytes);

  /// True while the PWL backend is live (false before the first advance
  /// and after any fallback to dense).
  bool using_pwl() const noexcept { return mode_ == Mode::kPwl; }

  /// Live breakpoints of Ĉ^L (0 on the dense backend); diagnostics for the
  /// K-vs-m scaling story.
  int breakpoint_count() const noexcept;

  /// Ĉ^L_τ(x) and Ĉ^U_τ(x); require 0 <= x <= m and τ >= 1.  O(K) on the
  /// PWL backend, O(1) dense.
  double chat_lower(int x) const;
  double chat_upper(int x) const;

  /// Dense label rows; switches a PWL tracker to the dense backend first
  /// (the row views must stay valid across later advances).
  const std::vector<double>& chat_lower_vector();
  const std::vector<double>& chat_upper_vector();

  /// The live PWL forms; require using_pwl().
  const rs::core::ConvexPwl& chat_lower_pwl() const;
  const rs::core::ConvexPwl& chat_upper_pwl() const;

  /// Permanently switches to the dense backend (no-op if already dense),
  /// materializing the current Ĉ pair.  Mixed consumers (e.g. a windowed
  /// LCP whose lookahead does not convert) use this to keep every per-x
  /// query O(1).
  void ensure_dense_backend();

  /// The online bounds x^L_τ and x^U_τ (tie-broken per Section 3.1);
  /// O(1) — maintained during advance().
  int x_lower() const;
  int x_upper() const;

 private:
  enum class Mode { kUndecided, kPwl, kDense };

  void require_started() const;
  void init_dense();
  void advance_dense(std::span<const double> values);
  void advance_pwl(const rs::core::ConvexPwl& f);
  void advance_repeated_pwl(const rs::core::ConvexPwl& f, int count,
                            std::span<int> xl, std::span<int> xu);
  void advance_repeated_dense(std::span<const double> values, int count,
                              std::span<int> xl, std::span<int> xu);

  int m_;
  double beta_;
  Backend backend_;
  Mode mode_ = Mode::kUndecided;
  int tau_ = 0;
  int x_lower_ = 0;  // smallest minimizer of Ĉ^L, updated per advance
  int x_upper_ = 0;  // largest minimizer of Ĉ^U
  // PWL backend state (empty maps until first use).
  rs::core::ConvexPwl pwl_l_;
  rs::core::ConvexPwl pwl_u_;
  // Dense backend state.  Label rows and the eval_row scratch are
  // workspace-borrowed so repeated tracker construction (one per LCP
  // replay / trial) is allocation-free after warm-up; the tracker is
  // move-only as a consequence.
  rs::util::Workspace::Buffer<double> chat_l_;
  rs::util::Workspace::Buffer<double> chat_u_;
  rs::util::Workspace::Buffer<double> scratch_;
};

/// Runs the tracker over the full instance and returns (x^L_τ, x^U_τ) for
/// every τ in [1, T].
struct BoundTrajectory {
  std::vector<int> lower;  // x^L_1..x^L_T
  std::vector<int> upper;  // x^U_1..x^U_T
};
BoundTrajectory compute_bounds(
    const rs::core::Problem& p,
    WorkFunctionTracker::Backend backend = WorkFunctionTracker::Backend::kAuto);

/// Same, consuming pre-materialized rows (shared with other dense-backed
/// passes over the instance); always the dense backend.
BoundTrajectory compute_bounds(const rs::core::DenseProblem& dense);

/// Same, consuming cached convex-PWL forms (shared with the other PWL
/// consumers of the instance — no per-advance re-conversion); always the
/// PWL backend.
BoundTrajectory compute_bounds(const rs::core::PwlProblem& pwl);

}  // namespace rs::offline
