// Exact dynamic program over the full state space.
//
// Computes W_t(x) = min_{x'} { W_{t-1}(x') + β(x − x')⁺ } + f_t(x) for all
// x in {0,..,m}.  The inner minimum splits into a prefix part (x' <= x, pay
// β per powered-up server) and a suffix part (x' >= x, free power-down), so
// one time step costs O(m) using running prefix/suffix minima — O(T·m)
// total, the standard baseline the paper's O(T·log m) algorithm improves on
// (a naive shortest-path in the Figure-1 graph would be O(T·m²)).
#pragma once

#include "core/dense_problem.hpp"
#include "offline/solver.hpp"

namespace rs::offline {

class DpSolver final : public OfflineSolver {
 public:
  /// Streams one dense row per step through CostFunction::eval_row — the
  /// per-step cost is a contiguous O(m) scan with no virtual dispatch in
  /// the inner loop.
  OfflineResult solve(const rs::core::Problem& p) const override;

  /// Runs on a pre-built dense table; use when several solvers (or repeated
  /// runs) share one instance and the rows should be evaluated only once.
  OfflineResult solve(const rs::core::DenseProblem& dense) const;

  /// O(m)-memory variant that skips parent bookkeeping; used by the scaling
  /// benchmarks where T·m parent tables would not fit.
  double solve_cost(const rs::core::Problem& p) const override;
  double solve_cost(const rs::core::DenseProblem& dense) const;

  std::string name() const override { return "dp"; }
};

}  // namespace rs::offline
