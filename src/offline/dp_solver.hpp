// Exact dynamic program over the full state space.
//
// Computes W_t(x) = min_{x'} { W_{t-1}(x') + β(x − x')⁺ } + f_t(x) for all
// x in {0,..,m}.  The inner minimum splits into a prefix part (x' <= x, pay
// β per powered-up server) and a suffix part (x' >= x, free power-down), so
// one time step costs O(m) using running prefix/suffix minima — O(T·m)
// total, the standard baseline the paper's O(T·log m) algorithm improves on
// (a naive shortest-path in the Figure-1 graph would be O(T·m²)).
#pragma once

#include "offline/solver.hpp"

namespace rs::offline {

class DpSolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;

  /// O(m)-memory variant that skips parent bookkeeping; used by the scaling
  /// benchmarks where T·m parent tables would not fit.
  double solve_cost(const rs::core::Problem& p) const override;

  std::string name() const override { return "dp"; }
};

}  // namespace rs::offline
