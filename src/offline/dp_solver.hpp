// Exact dynamic program over the full state space.
//
// Computes W_t(x) = min_{x'} { W_{t-1}(x') + β(x − x')⁺ } + f_t(x) for all
// x in {0,..,m}.  The inner minimum splits into a prefix part (x' <= x, pay
// β per powered-up server) and a suffix part (x' >= x, free power-down), so
// one time step costs O(m) using running prefix/suffix minima — O(T·m)
// total, the standard baseline the paper's O(T·log m) algorithm improves on
// (a naive shortest-path in the Figure-1 graph would be O(T·m²)).
//
// Backends:
//   kDense      — the O(T·m) table DP above with parent-pointer schedule
//                 reconstruction; the reference tie-breaking.
//   kConvexAuto — convex fast path: W_t is exactly the bound work function
//                 Ĉ^L_t (eq. 11), so when every slot admits a compact
//                 convex-PWL form the labels are maintained as convex
//                 piecewise-linear functions (per-step cost independent of
//                 m), the optimal cost is min Ĉ^L_T, and an optimal
//                 schedule follows from the Lemma-11 backward projection
//                 through the per-step bound corridor.  Instances that do
//                 not convert fall back to the same work-function recursion
//                 on dense rows (still O(T·m), no parent table).  The cost
//                 agrees with kDense up to FP association order
//                 (bit-identical on integer instances); the schedule is
//                 optimal but tie-breaks per Lemma 11 rather than per the
//                 parent-pointer reconstruction.
#pragma once

#include "core/dense_problem.hpp"
#include "core/pwl_problem.hpp"
#include "offline/solver.hpp"

namespace rs::offline {

class DpDeltaSession;

class DpSolver final : public OfflineSolver {
 public:
  enum class Backend { kDense, kConvexAuto };

  DpSolver() : DpSolver(Backend::kDense) {}
  explicit DpSolver(Backend backend) : backend_(backend) {}

  /// Streams one dense row per step through CostFunction::eval_row — the
  /// per-step cost is a contiguous O(m) scan with no virtual dispatch in
  /// the inner loop.  Under kConvexAuto, compact convex instances skip the
  /// rows entirely (see Backend above).
  OfflineResult solve(const rs::core::Problem& p) const override;

  /// Runs on a pre-built dense table; use when several solvers (or repeated
  /// runs) share one instance and the rows should be evaluated only once.
  /// Always the dense backend (the rows already exist).
  OfflineResult solve(const rs::core::DenseProblem& dense) const;

  /// Runs on pre-converted convex-PWL forms; use when several solvers (or
  /// repeated runs) share one instance and the slots should be converted
  /// only once (the batch engine's PwlProblem cache).  Always the convex
  /// fast path (the forms already exist), regardless of `backend`.
  OfflineResult solve(const rs::core::PwlProblem& pwl) const;

  /// O(m)-memory variant that skips parent bookkeeping (O(K)-memory on the
  /// convex fast path); used by the scaling benchmarks where T·m parent
  /// tables would not fit.
  double solve_cost(const rs::core::Problem& p) const override;
  double solve_cost(const rs::core::DenseProblem& dense) const;
  double solve_cost(const rs::core::PwlProblem& pwl) const;

  Backend backend() const noexcept { return backend_; }

  /// Solves `p` and keeps the solution live for incremental re-solves:
  /// edited slots are repaired in place via the work-function rewind buffer
  /// (offline/delta_session.hpp) instead of replaying the horizon.  The
  /// session labels follow this solver's backend (kConvexAuto → PWL with
  /// dense fallback, kDense → dense label rows); defined in
  /// delta_session.cpp.
  DpDeltaSession begin_delta(const rs::core::Problem& p) const;

  std::string name() const override { return "dp"; }

 private:
  Backend backend_ = Backend::kDense;
};

}  // namespace rs::offline
