// rs-lint: minmax-audited — the rolling-label folds are approved
// branch-free kernels: a poisoned NaN row is surfaced by the `poison`
// accumulators below, never laundered into +inf by std::min
// (DESIGN.md §13).
#include "offline/low_memory_solver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>

#include "util/math_util.hpp"
#include "util/workspace.hpp"

namespace rs::offline {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::util::Workspace;

namespace {

// The divide-and-conquer recursion re-evaluates each slot O(log T) times;
// rows are streamed through CostFunction::eval_row into a caller-provided
// scratch buffer instead of a DenseProblem table, preserving the solver's
// O(m) memory guarantee.
std::span<const double> eval_slot(const Problem& p, int t,
                                  std::span<double> scratch) {
  p.f(t).eval_row(p.max_servers(), scratch);
  return scratch;
}

// One forward relax step: labels(x) <- min_x' labels(x') + β(x−x')⁺, then
// += f_t(x).  Identical kernel to the DP solver, kept local for the
// self-contained O(m) memory guarantee.  Labels are extended reals in
// [0, +inf], so the suffix fold and the f_t addition fuse into one
// branchless backward pass (x + inf = inf covers the old isinf guard).
void forward_step(std::span<const double> frow, double beta,
                  std::span<double> labels) {
  const int m = static_cast<int>(frow.size()) - 1;
  double best_shifted = kInf;
  for (int x = 0; x <= m; ++x) {
    best_shifted =
        std::min(best_shifted, labels[static_cast<std::size_t>(x)] -
                                   beta * static_cast<double>(x));
    labels[static_cast<std::size_t>(x)] =
        std::min(labels[static_cast<std::size_t>(x)],
                 best_shifted + beta * static_cast<double>(x));
  }
  double suffix = kInf;
  for (int x = m; x >= 0; --x) {
    suffix = std::min(suffix, labels[static_cast<std::size_t>(x)]);
    labels[static_cast<std::size_t>(x)] =
        suffix + frow[static_cast<std::size_t>(x)];
  }
}

// One backward relax step: given B_t (cost of suffix starting *after* slot
// t from state x), produce B_{t-1}(x) = min_x' β(x'−x)⁺ + f_t(x') + B_t(x').
// `d` is caller-owned scratch so the per-step loop is allocation-free.
void backward_step(std::span<const double> frow, double beta,
                   std::span<double> labels, std::span<double> d) {
  const int m = static_cast<int>(frow.size()) - 1;
  for (int x = 0; x <= m; ++x) {
    labels[static_cast<std::size_t>(x)] =
        labels[static_cast<std::size_t>(x)] + frow[static_cast<std::size_t>(x)];
  }
  // d(x) = min( min_{x'>=x} g(x') + β(x'−x), min_{x'<=x} g(x') ).
  double best_shifted = kInf;
  std::span<double> g = labels;
  for (int x = m; x >= 0; --x) {
    best_shifted = std::min(best_shifted,
                            g[static_cast<std::size_t>(x)] +
                                beta * static_cast<double>(x));
    d[static_cast<std::size_t>(x)] = best_shifted - beta * static_cast<double>(x);
  }
  double prefix = kInf;
  for (int x = 0; x <= m; ++x) {
    prefix = std::min(prefix, g[static_cast<std::size_t>(x)]);
    d[static_cast<std::size_t>(x)] = std::min(d[static_cast<std::size_t>(x)], prefix);
    labels[static_cast<std::size_t>(x)] = d[static_cast<std::size_t>(x)];
  }
}

// PWL mirror of the recursion: identical splits, identical tie-breaks.
// Forward labels follow the work-function recursion (relax then add);
// backward labels follow the completion-cost recursion (add then relax
// with the opposite clip).  Every argmin is taken as ArgminInterval::lo —
// the smallest minimizer, matching the dense scans' strict-< updates.
struct PwlRecursion {
  const rs::core::PwlProblem& pwl;
  Schedule& out;

  rs::core::ConvexPwl forward_labels(int lo, int hi, int start) const {
    rs::core::ConvexPwl w = rs::core::ConvexPwl::point(start, 0.0);
    for (int t = lo; t <= hi; ++t) {
      w.relax_charge_up(pwl.beta(), 0, pwl.max_servers());
      w.add(pwl.form(t));
    }
    return w;
  }

  void run(int lo, int hi, int start, std::optional<int> end) const {
    const int m = pwl.max_servers();
    if (lo > hi) return;
    if (lo == hi) {
      if (end) {
        out[static_cast<std::size_t>(lo - 1)] = *end;
        return;
      }
      // Single slot: smallest argmin of β(x − start)⁺ + f(x); the dense
      // scan leaves `start` in place when every state is infinite.
      const rs::core::ConvexPwl w = forward_labels(lo, lo, start);
      out[static_cast<std::size_t>(lo - 1)] =
          w.is_infinite() ? start : w.argmin().lo;
      return;
    }

    const int mid = lo + (hi - lo) / 2;
    const rs::core::ConvexPwl forward = forward_labels(lo, mid, start);

    rs::core::ConvexPwl backward =
        end ? rs::core::ConvexPwl::point(*end, 0.0)
            : rs::core::ConvexPwl::constant(0, m, 0.0);
    for (int t = hi; t > mid; --t) {
      backward.add(pwl.form(t));
      backward.relax_charge_down(pwl.beta(), 0, m);
    }

    rs::core::ConvexPwl sum = forward;
    sum.add(backward);
    if (sum.is_infinite()) {
      throw std::logic_error("LowMemorySolver: infeasible sub-range");
    }
    const int best_mid = sum.argmin().lo;
    out[static_cast<std::size_t>(mid - 1)] = best_mid;
    run(lo, mid, start, best_mid);  // left half, x_mid pinned
    run(mid + 1, hi, best_mid, end);
  }
};

struct Recursion {
  const Problem& p;
  Schedule& out;
  std::span<double> frow;  // shared O(m) row scratch

  // Serves slots lo..hi given x_{lo-1} = start; if `end` is set, x_hi must
  // equal *end.  Writes the optimal states into out[lo-1..hi-1].
  void run(int lo, int hi, int start, std::optional<int> end) {
    const int m = p.max_servers();
    if (lo > hi) return;
    if (lo == hi) {
      if (end) {
        out[static_cast<std::size_t>(lo - 1)] = *end;
        return;
      }
      // Single slot: pick argmin of the direct transition (+inf rows never
      // improve, so the old isinf skip is subsumed by the comparison).
      const std::span<const double> row = eval_slot(p, lo, frow);
      int best = start;
      double best_value = kInf;
      for (int x = 0; x <= m; ++x) {
        const double value =
            p.beta() * static_cast<double>(std::max(0, x - start)) +
            row[static_cast<std::size_t>(x)];
        if (value < best_value) {
          best_value = value;
          best = x;
        }
      }
      out[static_cast<std::size_t>(lo - 1)] = best;
      return;
    }

    const int mid = lo + (hi - lo) / 2;
    const std::size_t width = static_cast<std::size_t>(m) + 1;
    Workspace& workspace = rs::util::this_thread_workspace();

    // Forward labels over lo..mid from the pinned start state.
    auto forward = workspace.borrow<double>(width);
    std::fill(forward.begin(), forward.end(), kInf);
    forward[static_cast<std::size_t>(start)] = 0.0;
    for (int t = lo; t <= mid; ++t) {
      forward_step(eval_slot(p, t, frow), p.beta(), forward.span());
    }

    // Backward labels over mid+1..hi, terminal condition from `end`.
    auto backward = workspace.borrow<double>(width);
    auto step_scratch = workspace.borrow<double>(width);
    if (end) {
      std::fill(backward.begin(), backward.end(), kInf);
      backward[static_cast<std::size_t>(*end)] = 0.0;
    } else {
      std::fill(backward.begin(), backward.end(), 0.0);
    }
    for (int t = hi; t > mid; --t) {
      backward_step(eval_slot(p, t, frow), p.beta(), backward.span(),
                    step_scratch.span());
    }

    int best_mid = -1;
    double best_value = kInf;
    for (int x = 0; x <= m; ++x) {
      const double value = forward[static_cast<std::size_t>(x)] +
                           backward[static_cast<std::size_t>(x)];
      if (value < best_value) {
        best_value = value;
        best_mid = x;
      }
    }
    if (best_mid < 0) {
      throw std::logic_error("LowMemorySolver: infeasible sub-range");
    }
    out[static_cast<std::size_t>(mid - 1)] = best_mid;
    // Release the label scratch before recursing so both halves reuse the
    // same pooled buffers instead of deepening the arena by O(log T).
    forward.reset();
    backward.reset();
    step_scratch.reset();
    run(lo, mid, start, best_mid);  // left half, x_mid pinned
    run(mid + 1, hi, best_mid, end);
  }
};

}  // namespace

OfflineResult LowMemorySolver::solve(const Problem& p) const {
  if (backend_ == Backend::kConvexAuto) {
    // One conversion per slot, up front; the D&C revisits each slot
    // O(log T) times but only ever touches the cached forms.
    if (std::optional<rs::core::PwlProblem> pwl =
            rs::core::PwlProblem::try_convert(p)) {
      return solve(*pwl);
    }
  }
  OfflineResult result;
  const int T = p.horizon();
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  // Feasibility and optimal value via one forward sweep.  std::min discards
  // NaN, so a NaN row value would launder into +inf one slot later; the
  // `poison` accumulator surfaces it as a NaN cost instead (same guard as
  // DpSolver::solve_cost).
  const std::size_t width = static_cast<std::size_t>(p.max_servers()) + 1;
  Workspace& workspace = rs::util::this_thread_workspace();
  auto frow = workspace.borrow<double>(width);
  auto labels = workspace.borrow<double>(width);
  std::fill(labels.begin(), labels.end(), kInf);
  labels[0] = 0.0;
  double poison = 0.0;  // NaN iff any row value was NaN
  for (int t = 1; t <= T; ++t) {
    const std::span<const double> row = eval_slot(p, t, frow.span());
    forward_step(row, p.beta(), labels.span());
    for (double value : row) poison += value;
  }
  double optimum = kInf;
  for (double label : labels) optimum = std::min(optimum, label);
  result.cost = std::isnan(poison) ? poison : optimum;
  labels.reset();
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  Recursion recursion{p, result.schedule, frow.span()};
  recursion.run(1, T, 0, std::nullopt);
  return result;
}

OfflineResult LowMemorySolver::solve(const rs::core::PwlProblem& pwl) const {
  OfflineResult result;
  const int T = pwl.horizon();
  if (T == 0) {
    result.schedule = {};
    result.cost = 0.0;
    return result;
  }
  // Feasibility and optimal value via one forward sweep over the forms;
  // the dense sweep's "min over final labels" is the argmin value.
  PwlRecursion recursion{pwl, result.schedule};
  const rs::core::ConvexPwl final_labels = recursion.forward_labels(1, T, 0);
  result.cost =
      final_labels.is_infinite() ? kInf : final_labels.argmin().value;
  if (!result.feasible()) return result;

  result.schedule.assign(static_cast<std::size_t>(T), 0);
  recursion.run(1, T, 0, std::nullopt);
  return result;
}

}  // namespace rs::offline
