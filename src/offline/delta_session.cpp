#include "offline/delta_session.hpp"

#include <stdexcept>
#include <utility>

#include "offline/backward_solver.hpp"
#include "offline/dp_solver.hpp"

namespace rs::offline {

DpDeltaSession DpSolver::begin_delta(const rs::core::Problem& p) const {
  return DpDeltaSession(p, backend_ == Backend::kDense
                               ? DpDeltaSession::Backend::kDense
                               : DpDeltaSession::Backend::kAuto);
}

namespace {

WorkFunctionTracker make_base_tracker(int m, double beta,
                                      WorkFunctionTracker::Backend backend,
                                      const std::vector<rs::core::CostPtr>& costs,
                                      BoundTrajectory& bounds) {
  const int T = static_cast<int>(costs.size());
  if (T == 0) {
    throw std::invalid_argument("DpDeltaSession: empty horizon");
  }
  WorkFunctionTracker tracker(m, beta, backend);
  // One rewind entry per slot (the base solve advances slot-by-slot), and
  // repairs never split single-slot entries, so horizon-many entries cover
  // every future edit.
  tracker.enable_rewind(T);
  bounds.lower.clear();
  bounds.upper.clear();
  bounds.lower.reserve(static_cast<std::size_t>(T));
  bounds.upper.reserve(static_cast<std::size_t>(T));
  for (int t = 1; t <= T; ++t) {
    tracker.advance(*costs[static_cast<std::size_t>(t - 1)]);
    bounds.lower.push_back(tracker.x_lower());
    bounds.upper.push_back(tracker.x_upper());
  }
  return tracker;
}

}  // namespace

WorkFunctionTracker::Backend DpDeltaSession::tracker_backend() const noexcept {
  switch (backend_) {
    case Backend::kDense:
      return WorkFunctionTracker::Backend::kDense;
    case Backend::kPwl:
      return WorkFunctionTracker::Backend::kPwl;
    case Backend::kAuto:
      break;
  }
  return WorkFunctionTracker::Backend::kAuto;
}

DpDeltaSession::DpDeltaSession(const rs::core::Problem& p, Backend backend)
    : m_(p.max_servers()),
      beta_(p.beta()),
      backend_(backend),
      costs_([&p] {
        std::vector<rs::core::CostPtr> costs;
        costs.reserve(static_cast<std::size_t>(p.horizon()));
        for (int t = 1; t <= p.horizon(); ++t) costs.push_back(p.f_ptr(t));
        return costs;
      }()),
      tracker_(make_base_tracker(m_, beta_, tracker_backend(), costs_,
                                 bounds_)) {
  cost_ = tracker_.chat_lower(tracker_.x_lower());
}

void DpDeltaSession::rebuild() {
  BoundTrajectory bounds;
  WorkFunctionTracker fresh =
      make_base_tracker(m_, beta_, tracker_backend(), costs_, bounds);
  tracker_ = std::move(fresh);
  bounds_ = std::move(bounds);
  cost_ = tracker_.chat_lower(tracker_.x_lower());
  schedule_dirty_ = true;
}

const OfflineResult& DpDeltaSession::result() {
  if (schedule_dirty_) {
    result_.cost = cost_;
    result_.schedule =
        result_.feasible() ? backward_schedule(bounds_) : rs::core::Schedule{};
    schedule_dirty_ = false;
  }
  return result_;
}

void DpDeltaSession::resolve_delta(int slot, rs::core::CostPtr cost,
                                   DeltaStats* stats) {
  if (cost == nullptr) {
    throw std::invalid_argument("DpDeltaSession::resolve_delta: null cost");
  }
  if (slot < 1 || slot > horizon()) {
    throw std::invalid_argument(
        "DpDeltaSession::resolve_delta: slot outside [1, T]");
  }
  rs::core::CostPtr previous =
      std::exchange(costs_[static_cast<std::size_t>(slot - 1)],
                    std::move(cost));
  try {
    WorkFunctionTracker::Repair repair = tracker_.repair_from(
        slot, *costs_[static_cast<std::size_t>(slot - 1)]);
    for (std::size_t i = 0; i < repair.lower.size(); ++i) {
      const std::size_t at = static_cast<std::size_t>(slot - 1) + i;
      bounds_.lower[at] = repair.lower[i];
      bounds_.upper[at] = repair.upper[i];
    }
    cost_ = tracker_.chat_lower(tracker_.x_lower());
    schedule_dirty_ = true;
    if (stats != nullptr) {
      stats->slots_repaired = repair.slots_replayed;
      stats->early_exit = repair.early_exit;
      stats->full_replay = false;
    }
  } catch (const std::invalid_argument&) {
    // The edit changed the kAuto backend trajectory (or has no PWL form on
    // a forced-PWL session): repair cannot reproduce the from-scratch run,
    // so do the from-scratch run.  rebuild() has the strong guarantee; if
    // it throws too (forced-PWL, non-convertible edit), undo the mirror so
    // the session still matches its tracker.
    try {
      rebuild();
    } catch (...) {  // rs-lint: catch-all-ok (undo the mirror + rethrow)
      costs_[static_cast<std::size_t>(slot - 1)] = std::move(previous);
      throw;
    }
    if (stats != nullptr) {
      stats->slots_repaired = horizon();
      stats->early_exit = false;
      stats->full_replay = true;
    }
  }
}

OfflineResult DpDeltaSession::probe_delta(int slot, rs::core::CostPtr cost,
                                          DeltaStats* stats) {
  if (slot < 1 || slot > horizon()) {
    throw std::invalid_argument(
        "DpDeltaSession::probe_delta: slot outside [1, T]");
  }
  rs::core::CostPtr previous = costs_[static_cast<std::size_t>(slot - 1)];
  resolve_delta(slot, std::move(cost), stats);
  OfflineResult probed = result();
  // Repairing the original cost back in reproduces the original states:
  // the inverse repair reconverges exactly where the forward one did (the
  // stored post-states beyond that boundary are the original run's), so
  // the session is restored bitwise — no snapshot needed.
  resolve_delta(slot, std::move(previous), nullptr);
  return probed;
}

}  // namespace rs::offline
