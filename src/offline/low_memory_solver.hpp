// Divide-and-conquer (Hirschberg-style) optimal solver with O(m + T)
// working memory.
//
// The plain DP stores T·(m+1) parent pointers to reconstruct a schedule —
// prohibitive for the largest instances the O(T·log m) cost-only solvers
// handle easily.  This solver recovers a full optimal schedule using only
// two label vectors: split the horizon at its midpoint, compute forward
// labels W (cost of a prefix ending in x) and backward labels B (cost of a
// suffix starting from x), fix the optimal midpoint state
// argmin_x W(x) + B(x), and recurse on both halves with pinned boundary
// states.  Time O(T·m·log T), memory O(m) labels + the output schedule.
#pragma once

#include <optional>

#include "offline/solver.hpp"

namespace rs::offline {

class LowMemorySolver final : public OfflineSolver {
 public:
  OfflineResult solve(const rs::core::Problem& p) const override;
  std::string name() const override { return "low_memory_dnc"; }
};

}  // namespace rs::offline
