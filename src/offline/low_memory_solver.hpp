// Divide-and-conquer (Hirschberg-style) optimal solver with O(m + T)
// working memory.
//
// The plain DP stores T·(m+1) parent pointers to reconstruct a schedule —
// prohibitive for the largest instances the O(T·log m) cost-only solvers
// handle easily.  This solver recovers a full optimal schedule using only
// two label vectors: split the horizon at its midpoint, compute forward
// labels W (cost of a prefix ending in x) and backward labels B (cost of a
// suffix starting from x), fix the optimal midpoint state
// argmin_x W(x) + B(x), and recurse on both halves with pinned boundary
// states.  Time O(T·m·log T), memory O(m) labels + the output schedule.
//
// Backends: kDense streams one eval_row per visited slot (the reference).
// kConvexAuto runs the identical recursion with the labels kept as convex
// piecewise-linear functions (core/convex_pwl.hpp) whenever every slot
// admits a compact form — forward labels evolve by relax+add, backward
// labels by add+relax (the completion-cost recursion), and every midpoint
// pick is the smallest argmin of W + B, exactly the dense scan's strict-<
// tie-break — and falls back to the dense path otherwise.  One D&C level
// then costs O(T·B log K) instead of O(T·m): time O(T log T) independent
// of m, memory O(T·K) cached forms (converted once, up front) + O(K)
// labels.  Same schedule as the dense path: bit-identical on
// integer-valued instances, tie-equivalent elsewhere (DESIGN.md §8).
#pragma once

#include <optional>

#include "core/pwl_problem.hpp"
#include "offline/solver.hpp"

namespace rs::offline {

class LowMemorySolver final : public OfflineSolver {
 public:
  enum class Backend { kDense, kConvexAuto };

  LowMemorySolver() : LowMemorySolver(Backend::kDense) {}
  explicit LowMemorySolver(Backend backend) : backend_(backend) {}

  /// kConvexAuto converts the instance once (a private PwlProblem) and
  /// runs the PWL recursion, or falls back to the dense path when any slot
  /// has no compact form.
  OfflineResult solve(const rs::core::Problem& p) const override;

  /// Runs on pre-converted forms (e.g. the batch engine's shared
  /// PwlProblem) — no conversions at all, regardless of `backend`.
  OfflineResult solve(const rs::core::PwlProblem& pwl) const;

  Backend backend() const noexcept { return backend_; }

  std::string name() const override { return "low_memory_dnc"; }

 private:
  Backend backend_ = Backend::kDense;
};

}  // namespace rs::offline
