// Dynamic program restricted to explicit per-column candidate state sets.
//
// This is the inner kernel of the paper's O(T·log m) offline algorithm
// (Section 2.2): every binary-search iteration solves the instance on at
// most five candidate states per column.  It also computes optima of the
// Φ_k-restricted instances P_k (states that are multiples of 2^k), which the
// correctness lemmas of Section 2.3 quantify over.
#pragma once

#include <vector>

#include "offline/solver.hpp"

namespace rs::offline {

struct BoundedDpStats {
  std::int64_t transitions_evaluated = 0;  // (x', x) pairs relaxed
  std::int64_t function_evaluations = 0;   // f_t(x) calls
};

/// Optimal schedule over schedules with x_t ∈ states[t-1] for every t.
/// Each states[t-1] must be non-empty, sorted ascending, within [0, m].
/// Returns an infeasible result if every allowed path has infinite cost.
OfflineResult solve_bounded(const rs::core::Problem& p,
                            const std::vector<std::vector<int>>& states,
                            BoundedDpStats* stats = nullptr);

/// Optimal schedule of P_k = Φ_k(P): states restricted to multiples of
/// 2^k (Section 2.3).  k = 0 reproduces the unrestricted optimum.
OfflineResult solve_phi_restricted(const rs::core::Problem& p, int k);

}  // namespace rs::offline
