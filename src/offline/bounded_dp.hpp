// Dynamic program restricted to explicit per-column candidate state sets.
//
// This is the inner kernel of the paper's O(T·log m) offline algorithm
// (Section 2.2): every binary-search iteration solves the instance on at
// most five candidate states per column.  It also computes optima of the
// Φ_k-restricted instances P_k (states that are multiples of 2^k), which the
// correctness lemmas of Section 2.3 quantify over.
#pragma once

#include <vector>

#include "core/pwl_problem.hpp"
#include "offline/solver.hpp"

namespace rs::offline {

struct BoundedDpStats {
  std::int64_t transitions_evaluated = 0;  // (x', x) pairs relaxed
  std::int64_t function_evaluations = 0;   // f_t(x) calls
};

/// Optimal schedule over schedules with x_t ∈ states[t-1] for every t.
/// Each states[t-1] must be non-empty, sorted ascending, within [0, m].
/// Returns an infeasible result if every allowed path has infinite cost.
OfflineResult solve_bounded(const rs::core::Problem& p,
                            const std::vector<std::vector<int>>& states,
                            BoundedDpStats* stats = nullptr);

/// Convex-PWL-backed variant running on an instance's cached forms (one
/// conversion per slot for the whole batch, shared with every other PWL
/// consumer).  Uniform-grid columns — every column equal to {0, s, 2s, ..},
/// the full-state and Φ_k configurations — run a convex label recursion in
/// grid units whose per-step cost is independent of m *and* of the column
/// size, with the dense path's exact tie-breaking (bit-identical schedules
/// on integer-valued instances; ULP-level label agreement otherwise, the
/// DESIGN.md §8 contract).  Irregular columns run the ordinary DP with the
/// column values filled from the forms in one walk per slot.  `stats`
/// stays untouched on the grid fast path (nothing is enumerated).
OfflineResult solve_bounded(const rs::core::Problem& p,
                            const std::vector<std::vector<int>>& states,
                            const rs::core::PwlProblem& pwl,
                            BoundedDpStats* stats = nullptr);

/// Optimal schedule of P_k = Φ_k(P): states restricted to multiples of
/// 2^k (Section 2.3).  k = 0 reproduces the unrestricted optimum.
OfflineResult solve_phi_restricted(const rs::core::Problem& p, int k);

/// Same, on cached convex-PWL forms — the Φ_k grid is a uniform grid, so
/// this always takes the m-independent label fast path.
OfflineResult solve_phi_restricted(const rs::core::Problem& p, int k,
                                   const rs::core::PwlProblem& pwl);

}  // namespace rs::offline
