// Umbrella header: the full public API of the rightsizer library.
//
// Reproduction of "Optimal Algorithms for Right-Sizing Data Centers"
// (Albers & Quedenfeld, SPAA 2018).  See README.md for a tour and
// DESIGN.md for the module inventory.
#pragma once

#include "analysis/competitive.hpp"      // IWYU pragma: export
#include "analysis/monte_carlo.hpp"      // IWYU pragma: export
#include "analysis/savings.hpp"          // IWYU pragma: export
#include "analysis/sweep.hpp"            // IWYU pragma: export
#include "core/checkpoint.hpp"           // IWYU pragma: export
#include "core/convex_pwl.hpp"           // IWYU pragma: export
#include "core/cost_function.hpp"        // IWYU pragma: export
#include "core/dense_problem.hpp"        // IWYU pragma: export
#include "core/piecewise_linear.hpp"     // IWYU pragma: export
#include "core/problem.hpp"              // IWYU pragma: export
#include "core/pwl_problem.hpp"          // IWYU pragma: export
#include "core/schedule.hpp"             // IWYU pragma: export
#include "core/serialization.hpp"        // IWYU pragma: export
#include "core/transforms.hpp"           // IWYU pragma: export
#include "dcsim/cost_model.hpp"          // IWYU pragma: export
#include "dcsim/datacenter.hpp"          // IWYU pragma: export
#include "dcsim/delay_model.hpp"         // IWYU pragma: export
#include "dcsim/power_model.hpp"         // IWYU pragma: export
#include "engine/solver_engine.hpp"      // IWYU pragma: export
#include "graph/dot_export.hpp"          // IWYU pragma: export
#include "graph/layered_graph.hpp"       // IWYU pragma: export
#include "graph/schedule_graph.hpp"      // IWYU pragma: export
#include "hetero/hetero_problem.hpp"     // IWYU pragma: export
#include "hetero/hetero_solver.hpp"      // IWYU pragma: export
#include "lowerbound/adversary.hpp"      // IWYU pragma: export
#include "offline/backward_solver.hpp"   // IWYU pragma: export
#include "offline/binary_search_solver.hpp"  // IWYU pragma: export
#include "offline/bounded_dp.hpp"        // IWYU pragma: export
#include "offline/brute_force.hpp"       // IWYU pragma: export
#include "offline/dp_solver.hpp"         // IWYU pragma: export
#include "offline/graph_solver.hpp"      // IWYU pragma: export
#include "offline/grid_continuous.hpp"   // IWYU pragma: export
#include "offline/low_memory_solver.hpp" // IWYU pragma: export
#include "offline/solver.hpp"            // IWYU pragma: export
#include "offline/work_function.hpp"     // IWYU pragma: export
#include "online/baselines.hpp"          // IWYU pragma: export
#include "online/gradient_flow.hpp"      // IWYU pragma: export
#include "online/lcp.hpp"                // IWYU pragma: export
#include "online/lcp_window.hpp"         // IWYU pragma: export
#include "online/level_flow.hpp"         // IWYU pragma: export
#include "online/memoryless.hpp"         // IWYU pragma: export
#include "online/online_algorithm.hpp"   // IWYU pragma: export
#include "online/randomized_rounding.hpp"  // IWYU pragma: export
#include "online/receding_horizon.hpp"   // IWYU pragma: export
#include "scenario/eval_harness.hpp"     // IWYU pragma: export
#include "scenario/fault_plan.hpp"       // IWYU pragma: export
#include "scenario/rle.hpp"              // IWYU pragma: export
#include "scenario/trace_zoo.hpp"        // IWYU pragma: export
#include "util/cli.hpp"                  // IWYU pragma: export
#include "util/csv.hpp"                  // IWYU pragma: export
#include "util/fault_injection.hpp"      // IWYU pragma: export
#include "util/math_util.hpp"            // IWYU pragma: export
#include "util/rng.hpp"                  // IWYU pragma: export
#include "util/stopwatch.hpp"            // IWYU pragma: export
#include "util/table.hpp"                // IWYU pragma: export
#include "util/thread_pool.hpp"          // IWYU pragma: export
#include "util/workspace.hpp"            // IWYU pragma: export
#include "workload/generators.hpp"       // IWYU pragma: export
#include "workload/random_instance.hpp"  // IWYU pragma: export
#include "workload/trace.hpp"            // IWYU pragma: export
