#include "dcsim/cost_model.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::dcsim {

using rs::core::CostPtr;
using rs::core::Problem;
using rs::util::kInf;

void DataCenterModel::validate() const {
  power.validate();
  delay.validate();
  if (servers < 1 || energy_price < 0.0 || delay_weight < 0.0 ||
      utilization_cap <= 0.0 || utilization_cap >= 1.0) {
    throw std::invalid_argument("DataCenterModel: inconsistent parameters");
  }
}

rs::core::RestrictedModel restricted_model(const DataCenterModel& model) {
  model.validate();
  const ServerPowerModel power = model.power;
  const DelayParams delay = model.delay;
  const double energy_price = model.energy_price;
  const double delay_weight = model.delay_weight;
  const double cap = model.utilization_cap;

  rs::core::RestrictedModel restricted;
  restricted.m = model.servers;
  restricted.beta = model.beta();
  restricted.per_server_cost = [power, delay, energy_price, delay_weight,
                                cap](double z) -> double {
    if (z < 0.0) return kInf;
    if (z > cap) return kInf;  // keeps per-server utilization bounded
    const double energy = energy_price * power.active_energy(z);
    // Aggregate delay per server: arrival rate z times mean response time.
    const double delay_cost = delay_weight * z * mean_response_time(delay, z);
    return energy + delay_cost;
  };
  return restricted;
}

Problem restricted_datacenter_problem(const DataCenterModel& model,
                                      const rs::workload::Trace& trace) {
  const rs::core::RestrictedModel restricted = restricted_model(model);
  // With the utilization cap the feasibility constraint is x >= λ/cap:
  // scale the workload so RestrictedSlotCost's built-in x >= λ' check
  // enforces the cap (λ' = λ/cap, f'(z') = f(z'·cap) keeps costs equal).
  // We keep it simpler and faithful to eq. (2): feed λ directly; the cap
  // materializes as +inf slot costs for x < λ/cap because f(z) = +inf for
  // z > cap.
  for (double lambda : trace.lambda) {
    if (lambda < 0.0 ||
        lambda > model.utilization_cap * static_cast<double>(model.servers)) {
      throw std::invalid_argument(
          "restricted_datacenter_problem: trace exceeds data-center "
          "capacity (peak must be <= cap * servers)");
    }
  }
  return rs::core::restricted_problem(restricted, trace.lambda);
}

Problem soft_sla_problem(const SoftSlaModel& model,
                         const rs::workload::Trace& trace) {
  if (model.servers < 1 || model.beta <= 0.0 ||
      model.energy_per_server < 0.0 || model.sla_penalty < 0.0 ||
      model.headroom < 0.0) {
    throw std::invalid_argument("soft_sla_problem: inconsistent parameters");
  }
  std::vector<CostPtr> fs;
  fs.reserve(trace.lambda.size());
  for (double lambda : trace.lambda) {
    if (lambda < 0.0) {
      throw std::invalid_argument("soft_sla_problem: negative workload");
    }
    const double target = model.headroom * lambda;
    const double energy = model.energy_per_server;
    const double penalty = model.sla_penalty;
    fs.push_back(std::make_shared<rs::core::FunctionCost>(
        [target, energy, penalty](int x) {
          const double shortfall = target - static_cast<double>(x);
          return energy * static_cast<double>(x) +
                 penalty * (shortfall > 0.0 ? shortfall : 0.0);
        },
        "soft_sla"));
  }
  return Problem(model.servers, model.beta, std::move(fs));
}

}  // namespace rs::dcsim
