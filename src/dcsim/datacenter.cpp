#include "dcsim/datacenter.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::dcsim {

SimulationReport simulate(const DataCenterModel& model,
                          const rs::workload::Trace& trace,
                          const rs::core::Schedule& schedule) {
  model.validate();
  if (static_cast<int>(schedule.size()) != trace.horizon()) {
    throw std::invalid_argument("simulate: schedule/trace length mismatch");
  }
  SimulationReport report;
  rs::util::KahanSum active_energy;
  rs::util::KahanSum sleep_energy;
  rs::util::KahanSum utilization_sum;
  rs::util::KahanSum active_sum;

  int previous = 0;
  for (int t = 0; t < trace.horizon(); ++t) {
    const int x = schedule[static_cast<std::size_t>(t)];
    if (x < 0 || x > model.servers) {
      throw std::invalid_argument("simulate: schedule outside [0, m]");
    }
    const double lambda = trace.lambda[static_cast<std::size_t>(t)];
    const double z = x > 0 ? std::min(lambda / x, 1.0) : 0.0;
    if (x > 0) {
      active_energy.add(static_cast<double>(x) * model.power.active_energy(z));
    }
    sleep_energy.add(static_cast<double>(model.servers - x) *
                     model.power.sleep_energy());
    if (x > previous) {
      report.power_ups += x - previous;
      report.transition_energy_joules +=
          static_cast<double>(x - previous) * model.power.transition_joules;
    } else {
      report.power_downs += previous - x;
    }
    if (static_cast<double>(x) < lambda) ++report.sla_violation_slots;
    utilization_sum.add(z);
    active_sum.add(static_cast<double>(x));
    report.peak_utilization = std::max(report.peak_utilization, z);
    previous = x;
  }
  // Final power-down at the horizon end (x_{T+1} = 0).
  report.power_downs += previous;

  report.active_energy_joules = active_energy.value();
  report.sleep_energy_joules = sleep_energy.value();
  report.total_energy_joules = report.active_energy_joules +
                               report.sleep_energy_joules +
                               report.transition_energy_joules;
  if (trace.horizon() > 0) {
    report.mean_utilization =
        utilization_sum.value() / static_cast<double>(trace.horizon());
    report.mean_active_servers =
        active_sum.value() / static_cast<double>(trace.horizon());
  }
  return report;
}

double energy_savings_percent(const DataCenterModel& model,
                              const rs::workload::Trace& trace,
                              const rs::core::Schedule& schedule) {
  const SimulationReport dynamic = simulate(model, trace, schedule);
  const rs::core::Schedule all_on(
      static_cast<std::size_t>(trace.horizon()), model.servers);
  const SimulationReport static_report = simulate(model, trace, all_on);
  if (static_report.total_energy_joules <= 0.0) return 0.0;
  return 100.0 * (1.0 - dynamic.total_energy_joules /
                            static_report.total_energy_joules);
}

}  // namespace rs::dcsim
