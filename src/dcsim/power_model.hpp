// Server power model.
//
// The introduction of the paper motivates right-sizing with two facts:
// idle servers draw about half their peak power, and state transitions cost
// energy.  This model captures exactly that: affine active power in the
// utilization, a small sleep power, and a fixed transition energy that maps
// to the switching cost β.
#pragma once

#include <stdexcept>

namespace rs::dcsim {

struct ServerPowerModel {
  double idle_watts = 150.0;    // active but idle (~half of peak, [26])
  double peak_watts = 300.0;    // active at full utilization
  double sleep_watts = 10.0;    // sleep state
  double transition_joules = 30000.0;  // energy to wake a server up
  double slot_seconds = 300.0;  // slot length (5-minute slots by default)

  void validate() const {
    if (idle_watts < 0 || peak_watts < idle_watts || sleep_watts < 0 ||
        transition_joules < 0 || slot_seconds <= 0) {
      throw std::invalid_argument("ServerPowerModel: inconsistent parameters");
    }
  }

  /// Energy (joules) one active server consumes during one slot at
  /// utilization z in [0, 1].
  double active_energy(double z) const {
    if (z < 0.0) z = 0.0;
    if (z > 1.0) z = 1.0;
    return (idle_watts + (peak_watts - idle_watts) * z) * slot_seconds;
  }

  /// Energy (joules) a sleeping server consumes during one slot.
  double sleep_energy() const { return sleep_watts * slot_seconds; }

  /// The switching cost β expressed in the same units as slot energy costs:
  /// transition energy normalized by the energy price unit used for f_t.
  double beta_energy() const { return transition_joules; }
};

}  // namespace rs::dcsim
