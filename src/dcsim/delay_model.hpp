// Queueing-delay models for a single server at utilization z ∈ [0, 1).
//
// Lin et al.'s experimental section models the performance cost per server
// as a mean-response-time penalty; we provide the two standard choices.
// Both are convex and increasing in z and diverge as z -> 1, which is what
// creates the operating-cost pressure to keep enough servers active.
#pragma once

#include <stdexcept>
#include <string>

#include "util/math_util.hpp"

namespace rs::dcsim {

enum class DelayModel {
  kMM1,    // M/M/1: mean response time 1/(μ(1−z))
  kMG1PS,  // M/G/1 processor sharing with squared coefficient of variation c²
};

struct DelayParams {
  DelayModel model = DelayModel::kMM1;
  double service_rate = 1.0;  // μ: jobs per slot one server completes
  double scv = 1.0;           // c² for M/G/1-PS (1.0 reduces to M/M/1-like)

  void validate() const {
    if (service_rate <= 0.0 || scv < 0.0) {
      throw std::invalid_argument("DelayParams: bad parameters");
    }
  }
};

/// Mean response time of one server at utilization z (jobs arrive at rate
/// z·μ).  Returns +inf for z >= 1 (overload).
inline double mean_response_time(const DelayParams& params, double z) {
  if (z < 0.0) throw std::invalid_argument("mean_response_time: z < 0");
  if (z >= 1.0) return rs::util::kInf;
  switch (params.model) {
    case DelayModel::kMM1:
      return 1.0 / (params.service_rate * (1.0 - z));
    case DelayModel::kMG1PS: {
      // Mean sojourn in M/G/1 round-robin/PS is insensitive to the service
      // distribution: 1/(μ(1−z)); the c² term enters the waiting-time
      // variant used for SLA percentiles — we apply the standard
      // Pollaczek-Khinchine mean-waiting correction for FCFS as the
      // pessimistic choice.
      const double waiting = (1.0 + params.scv) / 2.0 * z /
                             (params.service_rate * (1.0 - z));
      return 1.0 / params.service_rate + waiting;
    }
  }
  throw std::invalid_argument("mean_response_time: unknown model");
}

inline std::string delay_model_name(DelayModel model) {
  switch (model) {
    case DelayModel::kMM1: return "mm1";
    case DelayModel::kMG1PS: return "mg1ps";
  }
  return "unknown";
}

}  // namespace rs::dcsim
