// Data-center simulator: replays a schedule against a trace and a power
// model and reports physical quantities (energy, transitions, SLA
// violations, utilization) — the quantities the E10 savings study and the
// examples print alongside the abstract objective value.
#pragma once

#include "core/schedule.hpp"
#include "dcsim/cost_model.hpp"
#include "workload/trace.hpp"

namespace rs::dcsim {

struct SimulationReport {
  double active_energy_joules = 0.0;   // energy of active servers
  double sleep_energy_joules = 0.0;    // energy of sleeping servers
  double transition_energy_joules = 0.0;
  double total_energy_joules = 0.0;
  std::int64_t power_ups = 0;          // server power-up events
  std::int64_t power_downs = 0;
  int sla_violation_slots = 0;         // slots with x_t < λ_t
  double mean_utilization = 0.0;       // mean per-server load over slots
  double peak_utilization = 0.0;
  double mean_active_servers = 0.0;
};

/// Simulates `schedule` serving `trace` on `model.servers` machines.
/// Schedule length must match the trace horizon.
SimulationReport simulate(const DataCenterModel& model,
                          const rs::workload::Trace& trace,
                          const rs::core::Schedule& schedule);

/// Percentage of energy saved by `schedule` relative to keeping all
/// servers active the whole horizon.
double energy_savings_percent(const DataCenterModel& model,
                              const rs::workload::Trace& trace,
                              const rs::core::Schedule& schedule);

}  // namespace rs::dcsim
