// Builders turning an arrival trace into a data-center optimization
// instance P = (T, m, β, F).
//
// Two model families are provided, matching the paper:
//
// 1. The restricted model (eq. 2): a single per-server load cost
//    f(z) = energy_price·(idle + (peak−idle)·z)·slot + delay_weight·z·E[T(z)]
//    with the hard constraint x_t >= λ_t.  z·E[T(z)] is the aggregate delay
//    experienced per unit time by the jobs on one server (arrival rate
//    z·μ_normalized times mean response time); it is convex on [0, 1).
//
// 2. A general-model "soft SLA" family: f_t(x) = energy·x + sla_penalty·
//    (κ·λ_t − x)⁺, convex and finite everywhere, for experiments that need
//    finite costs at every state.
#pragma once

#include "core/problem.hpp"
#include "core/transforms.hpp"
#include "dcsim/delay_model.hpp"
#include "dcsim/power_model.hpp"
#include "workload/trace.hpp"

namespace rs::dcsim {

struct DataCenterModel {
  int servers = 64;                 // m
  ServerPowerModel power;           // energy model
  DelayParams delay;                // queueing model
  double energy_price = 1e-6;       // cost units per joule
  double delay_weight = 0.1;        // cost units per unit aggregate delay
  double utilization_cap = 0.98;    // keep per-server load below this

  void validate() const;

  /// Switching cost β implied by the transition energy.
  double beta() const { return energy_price * power.beta_energy(); }
};

/// Per-server load cost f(z) of the restricted model; convex, non-negative
/// on [0, 1] with f(z) finite for z <= utilization_cap.
rs::core::RestrictedModel restricted_model(const DataCenterModel& model);

/// Restricted-model instance for a trace: slot costs x·f(λ_t/x),
/// constraint x_t >= λ_t (λ in units of "servers of work").
rs::core::Problem restricted_datacenter_problem(
    const DataCenterModel& model, const rs::workload::Trace& trace);

struct SoftSlaModel {
  int servers = 64;
  double beta = 6.0;
  double energy_per_server = 1.0;   // cost of one active server per slot
  double sla_penalty = 20.0;        // cost per unit of unserved demand
  double headroom = 1.25;           // κ: provision κ·λ servers for SLA
};

/// General-model instance: f_t(x) = energy·x + sla·(κλ_t − x)⁺.
rs::core::Problem soft_sla_problem(const SoftSlaModel& model,
                                   const rs::workload::Trace& trace);

}  // namespace rs::dcsim
