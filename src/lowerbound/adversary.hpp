// Lower-bound adversaries (Section 5).
//
// All constructions use the ϕ functions ϕ0(x) = ε|x| and ϕ1(x) = ε|1−x|
// with β = 2, so one unit of movement costs 1 per direction and the cost
// convention of Section 5 (C = Σf + Σ|Δx| over the closed trajectory)
// coincides with eq. (1).
//
//   Theorem 4: deterministic discrete, ratio -> 3.  The adversary penalizes
//     the algorithm's current state: ϕ1 while at 0, ϕ0 while at 1.
//   Theorem 5: the same bound in the restricted model (m = 2,
//     f(z) = ε|1−2z|, λ ∈ {0.5, 1}).
//   Theorems 6/7: continuous setting, ratio -> 2 against any fractional
//     algorithm (Lemma 23 strategy, driving the algorithm against B).
//   Theorems 8/9: randomized discrete, ratio -> 2 against the rounding
//     marginals.
//
// Each run returns the generated instance, the algorithm's cost, the
// offline optimum and their ratio, so benches can print convergence tables.
#pragma once

#include <functional>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "online/online_algorithm.hpp"
#include "online/randomized_rounding.hpp"

namespace rs::lowerbound {

struct AdversaryOutcome {
  rs::core::Problem problem;
  double algorithm_cost = 0.0;
  double optimal_cost = 0.0;
  double ratio = 0.0;
};

/// Theorem 4: deterministic adversary for the discrete general model
/// (m = 1, β = 2).  Runs for T = max(⌈1/ε²⌉, min_T) slots.
AdversaryOutcome deterministic_discrete_adversary(
    rs::online::OnlineAlgorithm& algorithm, double eps, int horizon = 0);

/// Theorem 5: deterministic adversary for the discrete restricted model
/// (m = 2, f(z) = ε|1−2z|, λ_t ∈ {0.5, 1}, β = 2).
AdversaryOutcome restricted_discrete_adversary(
    rs::online::OnlineAlgorithm& algorithm, double eps, int horizon = 0);

/// Theorems 6/7: adversary for the continuous setting.  Sends ϕ1 while the
/// algorithm is at or below the reference algorithm B and below 1, else ϕ0
/// (Lemma 23).  The optimum is computed on a grid of resolution ε/2.
AdversaryOutcome continuous_adversary(
    rs::online::FractionalOnlineAlgorithm& algorithm, double eps,
    int horizon = 0);

/// Theorems 8/9: adversary for randomized discrete algorithms, playing
/// against the rounding marginals x̄^A_t; reports the *expected* algorithm
/// cost (= the fractional cost by Lemmas 19/20).
AdversaryOutcome randomized_discrete_adversary(
    rs::online::RandomizedRounding& algorithm, double eps, int horizon = 0);

/// Theorem-10 helper: replicates every slot of the base outcome's problem
/// `factor` times at 1/factor scale; with a prediction window w < factor
/// the lower bound construction retains its strength.
rs::core::Problem stretch_for_window(const rs::core::Problem& base,
                                     int factor);

}  // namespace rs::lowerbound
