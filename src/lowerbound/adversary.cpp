#include "lowerbound/adversary.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/cost_function.hpp"
#include "core/transforms.hpp"
#include "offline/dp_solver.hpp"
#include "offline/grid_continuous.hpp"
#include "util/math_util.hpp"

namespace rs::lowerbound {

using rs::core::AffineAbsCost;
using rs::core::CostPtr;
using rs::core::Problem;
using rs::core::Schedule;
using rs::online::OnlineContext;

namespace {

int default_horizon(double eps, int horizon) {
  if (horizon > 0) return horizon;
  if (!(eps > 0.0) || eps >= 1.0) {
    throw std::invalid_argument("adversary: need 0 < eps < 1");
  }
  const double suggested = 1.0 / (eps * eps);
  return static_cast<int>(std::min(suggested, 4e6)) + 1;
}

CostPtr phi(double eps, double center) {
  return std::make_shared<AffineAbsCost>(eps, center);
}

}  // namespace

AdversaryOutcome deterministic_discrete_adversary(
    rs::online::OnlineAlgorithm& algorithm, double eps, int horizon) {
  const int T = default_horizon(eps, horizon);
  const double beta = 2.0;
  algorithm.reset(OnlineContext{1, beta});

  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  Schedule play;
  play.reserve(static_cast<std::size_t>(T));
  int state = 0;  // x_0 = 0
  for (int t = 1; t <= T; ++t) {
    // Penalize the algorithm's current state (proof of Theorem 4).
    CostPtr f = phi(eps, state == 0 ? 1.0 : 0.0);
    fs.push_back(f);
    state = algorithm.decide(f, {});
    if (state < 0 || state > 1) {
      throw std::logic_error("adversary: algorithm left {0, 1}");
    }
    play.push_back(state);
  }

  AdversaryOutcome outcome{Problem(1, beta, std::move(fs))};
  outcome.algorithm_cost =
      rs::core::total_cost_symmetric(outcome.problem, play);
  outcome.optimal_cost = rs::offline::DpSolver().solve_cost(outcome.problem);
  outcome.ratio = outcome.optimal_cost > 0.0
                      ? outcome.algorithm_cost / outcome.optimal_cost
                      : 0.0;
  return outcome;
}

AdversaryOutcome restricted_discrete_adversary(
    rs::online::OnlineAlgorithm& algorithm, double eps, int horizon) {
  const int T = default_horizon(eps, horizon);
  const double beta = 2.0;
  // Restricted model of Theorem 5: two servers, f(z) = ε|1−2z|; workload
  // λ = 1 penalizes state 1 (pushing to 2), λ = 0.5 penalizes state 2.
  auto per_server = std::make_shared<const std::function<double(double)>>(
      [eps](double z) { return eps * std::fabs(1.0 - 2.0 * z); });

  algorithm.reset(OnlineContext{2, beta});
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  Schedule play;
  play.reserve(static_cast<std::size_t>(T));
  int state = 0;  // x_0 = 0; the first workload forces x >= 1
  for (int t = 1; t <= T; ++t) {
    // G-model state is x^L − 1; penalize it as in Theorem 4.
    const double lambda = state <= 1 ? 1.0 : 0.5;
    CostPtr f = std::make_shared<rs::core::RestrictedSlotCost>(per_server,
                                                               lambda);
    fs.push_back(f);
    state = algorithm.decide(f, {});
    play.push_back(state);
  }

  AdversaryOutcome outcome{Problem(2, beta, std::move(fs))};
  outcome.algorithm_cost =
      rs::core::total_cost_symmetric(outcome.problem, play);
  outcome.optimal_cost = rs::offline::DpSolver().solve_cost(outcome.problem);
  outcome.ratio = outcome.optimal_cost > 0.0
                      ? outcome.algorithm_cost / outcome.optimal_cost
                      : 0.0;
  return outcome;
}

AdversaryOutcome continuous_adversary(
    rs::online::FractionalOnlineAlgorithm& algorithm, double eps,
    int horizon) {
  const int T = default_horizon(eps, horizon);
  const double beta = 2.0;
  algorithm.reset(OnlineContext{1, beta});

  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  rs::core::FractionalSchedule play;
  play.reserve(static_cast<std::size_t>(T));

  double a = 0.0;  // algorithm state
  double b = 0.0;  // reference algorithm B state
  for (int t = 1; t <= T; ++t) {
    // Lemma 23 strategy: ϕ1 while a_t <= b_t and a_t < 1; ϕ0 otherwise
    // (also when a_t has reached 1).
    const bool send_phi1 = a <= b && a < 1.0;
    CostPtr f = phi(eps, send_phi1 ? 1.0 : 0.0);
    fs.push_back(f);
    // B moves by ε/2 toward the minimizer.
    b = send_phi1 ? std::min(b + eps / 2.0, 1.0)
                  : std::max(b - eps / 2.0, 0.0);
    a = algorithm.decide(f, {});
    play.push_back(a);
  }

  AdversaryOutcome outcome{Problem(1, beta, std::move(fs))};
  outcome.algorithm_cost =
      rs::core::total_cost_symmetric(outcome.problem, play);
  // Continuous optimum: grid of resolution ε/2 is exact for trajectories of
  // B and the piecewise-linear ϕ costs.
  const int q = std::max(2, static_cast<int>(std::ceil(2.0 / eps)));
  outcome.optimal_cost =
      rs::offline::solve_continuous_on_grid(outcome.problem, q).cost;
  outcome.ratio = outcome.optimal_cost > 0.0
                      ? outcome.algorithm_cost / outcome.optimal_cost
                      : 0.0;
  return outcome;
}

AdversaryOutcome randomized_discrete_adversary(
    rs::online::RandomizedRounding& algorithm, double eps, int horizon) {
  const int T = default_horizon(eps, horizon);
  const double beta = 2.0;
  algorithm.reset(OnlineContext{1, beta});

  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  rs::core::FractionalSchedule marginals;
  marginals.reserve(static_cast<std::size_t>(T));

  double a = 0.0;  // marginal Pr[x^A_t = 1] = fractional state (m = 1)
  double b = 0.0;  // reference algorithm B
  for (int t = 1; t <= T; ++t) {
    const bool send_phi1 = a <= b && a < 1.0;
    CostPtr f = phi(eps, send_phi1 ? 1.0 : 0.0);
    fs.push_back(f);
    b = send_phi1 ? std::min(b + eps / 2.0, 1.0)
                  : std::max(b - eps / 2.0, 0.0);
    algorithm.decide(f, {});
    a = algorithm.last_fractional();
    marginals.push_back(a);
  }

  AdversaryOutcome outcome{Problem(1, beta, std::move(fs))};
  // Expected cost of the randomized algorithm = fractional cost of its
  // marginal schedule (Lemmas 19/20, proven exact in the rounding tests).
  outcome.algorithm_cost =
      rs::core::total_cost_symmetric(outcome.problem, marginals);
  outcome.optimal_cost = rs::offline::DpSolver().solve_cost(outcome.problem);
  outcome.ratio = outcome.optimal_cost > 0.0
                      ? outcome.algorithm_cost / outcome.optimal_cost
                      : 0.0;
  return outcome;
}

Problem stretch_for_window(const Problem& base, int factor) {
  return rs::core::stretch_problem(base, factor);
}

}  // namespace rs::lowerbound
