// Shared cross-tenant conversion cache (DESIGN.md §12).
//
// Fleets commonly multiplex tenants over a small family of slot-cost
// shapes: scenario generators intern one CostPtr per distinct λ level, and
// every tenant fed that level receives the *same* CostFunction object.
// Without sharing, each tenant's tracker re-derives the convex-PWL form of
// that object independently (one as_convex_pwl per tenant per first-sight),
// and the conversion — not the advance — dominates ingest for
// dispatch-heavy cost families.
//
// SlotFormCache converts each distinct (cost object, m) pair exactly once,
// fleet-wide, and pins the CostPtr so the keyed address can never be
// recycled by a later allocation.  Consumers (TenantSession::offer_run)
// attach the cached form to the queued entry and feed it through
// Lcp::decide_run(ConvexPwl), which is bit-identical to the CostFunction
// overload on the PWL path (the tracker would derive the identical form).
// Negative results are cached too: a cost with no compact form under the
// kAuto budget maps to nullptr, and callers fall back to the CostFunction
// path (the tracker then applies its own backend policy, including the
// forced-kPwl unbounded budget).
//
// Thread safety: all members are safe to call concurrently (offer paths
// run from producer threads while ticks run elsewhere).  The cache is
// bounded; once full it stops inserting and returns nullptr for new keys —
// callers degrade to per-use conversion, never to an unbounded map.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "core/convex_pwl.hpp"
#include "core/cost_function.hpp"

namespace rs::fleet {

class SlotFormCache {
 public:
  /// `capacity` bounds the number of distinct (cost, m) entries (>= 1).
  explicit SlotFormCache(std::size_t capacity = 4096);

  /// The exact convex-PWL form of `cost` on domain [0, m], converted under
  /// the kAuto budget (core::compact_pwl_budget_for) on first sight and
  /// cached — the CostPtr is pinned for the cache's lifetime.  Returns
  /// nullptr when the cost has no compact form (cached negatively), when
  /// the cache is full and the key is new, or on a null/invalid argument.
  std::shared_ptr<const rs::core::ConvexPwl> form_for(
      const rs::core::CostPtr& cost, int m);

  /// Conversion attempts (== distinct keys ever inserted).
  std::uint64_t conversions() const;

  /// Lookups answered from an existing entry.
  std::uint64_t hits() const;

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    rs::core::CostPtr pinned;  // keeps the keyed address alive and unique
    std::shared_ptr<const rs::core::ConvexPwl> form;  // nullptr: no compact form
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::map<std::pair<const rs::core::CostFunction*, int>, Entry> entries_;
  std::uint64_t conversions_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace rs::fleet
