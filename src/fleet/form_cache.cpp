#include "fleet/form_cache.hpp"

#include <optional>
#include <stdexcept>

namespace rs::fleet {

SlotFormCache::SlotFormCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 1) {
    throw std::invalid_argument("SlotFormCache: capacity must be >= 1");
  }
}

std::shared_ptr<const rs::core::ConvexPwl> SlotFormCache::form_for(
    const rs::core::CostPtr& cost, int m) {
  if (cost == nullptr || m < 1) return nullptr;
  const std::pair<const rs::core::CostFunction*, int> key{cost.get(), m};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second.form;
  }
  if (entries_.size() >= capacity_) return nullptr;
  // Convert under the kAuto budget — the same rule a kAuto tracker applies
  // when fed the CostFunction directly, so a cached (non-null) form is
  // exactly the form the tracker would have derived itself.
  ++conversions_;
  std::shared_ptr<const rs::core::ConvexPwl> form;
  try {
    if (std::optional<rs::core::ConvexPwl> exact = cost->as_convex_pwl(
            m, rs::core::compact_pwl_budget_for(m))) {
      form = std::make_shared<const rs::core::ConvexPwl>(std::move(*exact));
    }
  } catch (const std::exception&) {
    // A throwing conversion caches as "no compact form"; the tenant's own
    // cost probing decides whether the cost itself is poison.
  }
  entries_.emplace(key, Entry{cost, form});
  return form;
}

std::uint64_t SlotFormCache::conversions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return conversions_;
}

std::uint64_t SlotFormCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t SlotFormCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace rs::fleet
