#include "fleet/tenant.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/checkpoint.hpp"
#include "engine/solver_engine.hpp"
#include "fleet/form_cache.hpp"
#include "online/online_algorithm.hpp"
#include "util/audit.hpp"
#include "util/fault_injection.hpp"
#include "util/math_util.hpp"
#include "util/stopwatch.hpp"

namespace rs::fleet {

namespace {

// Per-tenant event buffer cap: enough for any drill's transition history;
// past it the oldest events drop (counted, never silently).
constexpr std::size_t kMaxPendingEvents = 256;

void validate_config(const TenantConfig& config) {
  if (config.name.empty()) {
    throw std::invalid_argument("TenantConfig: name must be non-empty");
  }
  if (config.m < 1) {
    throw std::invalid_argument("TenantConfig: m must be >= 1");
  }
  if (!std::isfinite(config.beta) || config.beta < 0.0) {
    throw std::invalid_argument("TenantConfig: beta must be finite and >= 0");
  }
  if (config.window < 0) {
    throw std::invalid_argument("TenantConfig: window must be >= 0");
  }
  if (!config.cost_of) {
    throw std::invalid_argument("TenantConfig: cost_of is required");
  }
  if (config.queue_capacity < 1) {
    throw std::invalid_argument("TenantConfig: queue_capacity must be >= 1");
  }
  if (config.checkpoint_every < 1) {
    throw std::invalid_argument("TenantConfig: checkpoint_every must be >= 1");
  }
  if (config.degrade_after < 1) {
    throw std::invalid_argument("TenantConfig: degrade_after must be >= 1");
  }
  if (config.max_recoveries < 0) {
    throw std::invalid_argument("TenantConfig: max_recoveries must be >= 0");
  }
  if (config.what_if_slots < 0) {
    throw std::invalid_argument("TenantConfig: what_if_slots must be >= 0");
  }
  if (config.what_if_slots > 0 && config.window > 0) {
    throw std::invalid_argument(
        "TenantConfig: what_if probes require window == 0");
  }
}

}  // namespace

const char* to_string(TenantState state) noexcept {
  switch (state) {
    case TenantState::kHealthy:
      return "healthy";
    case TenantState::kDegraded:
      return "degraded";
    case TenantState::kRecovering:
      return "recovering";
    case TenantState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

bool tenant_transition_legal(TenantState from, TenantState to) noexcept {
  if (from == to) return true;  // re-asserting a state is always a no-op
  if (from == TenantState::kQuarantined) return false;  // terminal
  if (from == TenantState::kDegraded && to == TenantState::kHealthy) {
    return false;  // the dense pin is permanent
  }
  return true;
}

void audit_tenant_transition(TenantState from, TenantState to,
                             const char* site) {
  rs::util::audit::require_with(
      tenant_transition_legal(from, to), "tenant-transition-legal", site,
      [&] { return std::string(to_string(from)) + " -> " + to_string(to); });
}

const char* to_string(FleetEventKind kind) noexcept {
  switch (kind) {
    case FleetEventKind::kCheckpointed:
      return "checkpointed";
    case FleetEventKind::kResumed:
      return "resumed";
    case FleetEventKind::kRecovered:
      return "recovered";
    case FleetEventKind::kDegradedToDense:
      return "degraded-to-dense";
    case FleetEventKind::kDeferred:
      return "deferred";
    case FleetEventKind::kQuarantined:
      return "quarantined";
    case FleetEventKind::kOverflow:
      return "overflow";
  }
  return "unknown";
}

TenantSession::TenantSession(TenantConfig config, std::size_t ordinal,
                             rs::core::CheckpointStore* resume_from)
    : config_(std::move(config)), ordinal_(ordinal) {
  validate_config(config_);
  reset_session_locked();
  if (resume_from == nullptr) return;
  const std::optional<std::vector<std::uint8_t>> saved =
      resume_from->latest(store_key());
  if (!saved.has_value()) return;
  try {
    TenantCheckpoint ck = decode_checkpoint(*saved);
    const rs::online::OnlineContext context{config_.m, config_.beta};
    if (lcp_ != nullptr) {
      lcp_->restore(context, ck.session);
    } else {
      windowed_->restore(context, ck.session);
    }
    stats_.steps = ck.steps;
    stats_.degraded_to_dense = ck.degraded;
    set_state_locked(ck.degraded ? TenantState::kDegraded
                                 : TenantState::kHealthy,
                     "TenantSession::TenantSession/resume");
    resume_steps_ = ck.steps;
    resume_state_ = lcp_ != nullptr ? lcp_->current_state() : 0;
    emit_locked(FleetEventKind::kResumed,
                "restored " + std::to_string(ck.steps) +
                    " decided slots from the checkpoint store");
  } catch (const std::exception& e) {
    // An unreadable save must not brick the tenant: start fresh (the
    // store's envelope validation makes this path rare — a payload-level
    // mismatch, e.g. a config change between runs).
    reset_session_locked();
    stats_ = TenantStats{};
    // Direct assignment, not set_state_locked: a failed resume rebirths
    // the session from scratch (possibly out of a half-restored kDegraded),
    // which is not a ladder move the transition audit should model.
    state_ = TenantState::kHealthy;
    emit_locked(FleetEventKind::kResumed,
                std::string("stale checkpoint ignored, starting fresh: ") +
                    e.what());
  }
}

bool TenantSession::offer_run(double lambda, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count <= 0) {
    throw std::invalid_argument("TenantSession::offer_run: count must be >= 1");
  }
  const std::uint64_t slots = static_cast<std::uint64_t>(count);
  if (state_ == TenantState::kQuarantined || finished_) {
    stats_.rejected += slots;
    return false;
  }

  // In-flight corruption site: one kIngest index per offer (runs included),
  // consumed while the tenant is live so the firing schedule is a pure
  // function of the tenant's offer count (scenario::corrupted_offers).
  if (rs::util::fault_fires(
          rs::util::FaultSite::kIngest,
          rs::util::tenant_fault_index(ordinal_, ingests_++))) {
    lambda = std::numeric_limits<double>::quiet_NaN();
  }

  // λ hardening: a poisoned sample quarantines with a reason, never crashes
  // or reaches the session.
  if (!std::isfinite(lambda) || lambda < 0.0) {
    stats_.rejected += slots;
    quarantine_locked("invalid λ sample: " + std::to_string(lambda));
    return false;
  }

  // Build and probe the slot cost at the domain ends; NaN or a throwing
  // evaluation is poison (+inf is legitimate infeasibility and passes).
  rs::core::CostPtr cost;
  try {
    cost = config_.cost_of(lambda);
  } catch (const std::exception& e) {
    stats_.rejected += slots;
    quarantine_locked(std::string("cost factory threw: ") + e.what());
    return false;
  }
  if (cost == nullptr) {
    stats_.rejected += slots;
    quarantine_locked("cost factory returned null");
    return false;
  }
  try {
    const double at_zero = cost->at(0);
    const double at_m = cost->at(config_.m);
    if (std::isnan(at_zero) || std::isnan(at_m)) {
      stats_.rejected += slots;
      quarantine_locked("slot cost evaluates to NaN");
      return false;
    }
    if (at_zero < 0.0 || at_m < 0.0) {
      stats_.rejected += slots;
      quarantine_locked("slot cost is negative");
      return false;
    }
  } catch (const std::exception& e) {
    stats_.rejected += slots;
    quarantine_locked(std::string("slot cost evaluation threw: ") + e.what());
    return false;
  }

  // Bounded queue with explicit overflow policy.
  if (queued_slots_ + slots > config_.queue_capacity) {
    if (config_.overflow == OverflowPolicy::kRejectNewest) {
      stats_.rejected += slots;
      emit_locked(FleetEventKind::kOverflow,
                  "queue full: rejected run of " + std::to_string(count));
      return false;
    }
    std::uint64_t dropped = 0;
    while (!queue_.empty() &&
           queued_slots_ + slots > config_.queue_capacity) {
      dropped += static_cast<std::uint64_t>(queue_.front().count);
      queued_slots_ -= static_cast<std::size_t>(queue_.front().count);
      queue_.pop_front();
    }
    stats_.overflow_drops += dropped;
    emit_locked(FleetEventKind::kOverflow,
                "queue full: dropped " + std::to_string(dropped) +
                    " oldest slots");
    if (queued_slots_ + slots > config_.queue_capacity) {
      // The run alone exceeds capacity.
      stats_.rejected += slots;
      return false;
    }
  }

  if (config_.window > 0 && count > 1) {
    // Windowed lookahead is slot-granular: expand the run, sharing the one
    // CostPtr across its slots.
    for (int i = 0; i < count; ++i) {
      queue_.push_back(QueueEntry{lambda, 1, cost, nullptr});
    }
  } else {
    // Fetch (or convert once, fleet-wide) the shared convex-PWL form.
    // Only non-kDense plain-LCP tenants consume forms — the dense path
    // materializes rows differently, and bit-identity with the
    // CostFunction overload holds only on the PWL path.
    std::shared_ptr<const rs::core::ConvexPwl> form;
    if (config_.form_cache != nullptr && config_.window == 0 &&
        config_.backend !=
            rs::offline::WorkFunctionTracker::Backend::kDense) {
      form = config_.form_cache->form_for(cost, config_.m);
    }
    queue_.push_back(
        QueueEntry{lambda, count, std::move(cost), std::move(form)});
  }
  queued_slots_ += static_cast<std::size_t>(count);
  stats_.offered += slots;
  return true;
}

void TenantSession::finish_stream() {
  std::lock_guard<std::mutex> lock(mutex_);
  finished_ = true;
}

bool TenantSession::due() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return due_locked();
}

bool TenantSession::due_locked() const {
  if (state_ == TenantState::kQuarantined || queue_.empty()) return false;
  if (config_.window == 0) return true;
  return queued_slots_ > static_cast<std::size_t>(config_.window) ||
         finished_;
}

bool TenantSession::drained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() || state_ == TenantState::kQuarantined;
}

int TenantSession::step(rs::core::CheckpointStore& store) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!due_locked()) return 0;
  const rs::util::Stopwatch watch;
  int recoveries_this_slot = 0;
  for (;;) {
    std::string failure;
    try {
      const int advanced = decide_front_locked();
      commit_front_locked(advanced, store);
      stats_.last_step_seconds = watch.seconds();
      return advanced;
    } catch (const rs::engine::BackendFailureError& e) {
      failure = e.what();  // transient: run the recovery ladder below
    } catch (const std::exception& e) {
      // Deterministic poison (a throwing cost mid-evaluation, a violated
      // precondition): retrying cannot succeed.
      quarantine_locked(e.what());
      return 0;
    }

    ++fail_streak_;
    if (recoveries_this_slot >= config_.max_recoveries) {
      quarantine_locked("backend failure persisted after " +
                        std::to_string(recoveries_this_slot) +
                        " recoveries: " + failure);
      return 0;
    }
    ++recoveries_this_slot;
    try {
      recover_locked(store, failure);
      if (fail_streak_ >= config_.degrade_after &&
          !stats_.degraded_to_dense && lcp_ != nullptr &&
          lcp_->degrade_to_dense()) {
        // Dense rung taken: checkpoint immediately so every future
        // recovery restores a snapshot whose tracker mode matches the mode
        // the replay-buffer slots were (and will be) decided in.
        stats_.degraded_to_dense = true;
        emit_locked(FleetEventKind::kDegradedToDense,
                    "after " + std::to_string(fail_streak_) +
                        " consecutive backend failures");
        checkpoint_locked(store);
      }
    } catch (const std::exception& e) {
      quarantine_locked(std::string("recovery failed: ") + e.what());
      return 0;
    }
  }
}

int TenantSession::decide_front_locked() {
  const std::uint64_t index =
      rs::util::tenant_fault_index(ordinal_, attempts_++);
  if (rs::util::fault_fires(rs::util::FaultSite::kFleetTick, index)) {
    throw rs::engine::BackendFailureError("injected fault: fleet tick");
  }
  const QueueEntry& entry = queue_.front();
  std::vector<rs::core::CostPtr> lookahead;
  if (windowed_ != nullptr) lookahead = lookahead_after_locked(1);
  return session_decide_locked(entry, lookahead);
}

int TenantSession::session_decide_locked(
    const QueueEntry& entry, std::span<const rs::core::CostPtr> lookahead) {
  const std::size_t need = static_cast<std::size_t>(
      entry.count > 1 ? entry.count : 1);
  if (decisions_scratch_.size() < need) {
    decisions_scratch_.resize(need);
    lower_scratch_.resize(need);
    upper_scratch_.resize(need);
  }
  if (lcp_ != nullptr) {
    // Consume the shared cached form only while the tracker is on (or can
    // still choose) the PWL path: there decide_run(ConvexPwl) is
    // bit-identical to the CostFunction overload (the tracker would derive
    // the identical form).  After a dense fallback the CostFunction path
    // evaluates rows directly, so forms are bypassed.  The gate re-evaluates
    // identically during recovery replay — the restored tracker is in the
    // mode the slot was originally decided in.
    const rs::offline::WorkFunctionTracker* tracker = lcp_->tracker();
    const bool pwl_path =
        tracker != nullptr && (tracker->using_pwl() || tracker->tau() == 0);
    if (entry.form != nullptr && pwl_path) {
      lcp_->decide_run(*entry.form, entry.count, decisions_scratch_,
                       lower_scratch_, upper_scratch_);
    } else {
      lcp_->decide_run(*entry.cost, entry.count, decisions_scratch_,
                       lower_scratch_, upper_scratch_);
    }
    return entry.count;
  }
  decisions_scratch_[0] = windowed_->decide(entry.cost, lookahead);
  lower_scratch_[0] = windowed_->last_lower();
  upper_scratch_[0] = windowed_->last_upper();
  return 1;
}

void TenantSession::commit_front_locked(int advanced,
                                        rs::core::CheckpointStore& store) {
  for (int i = 0; i < advanced; ++i) {
    const std::size_t j = static_cast<std::size_t>(i);
    schedule_.push_back(decisions_scratch_[j]);
    lower_.push_back(lower_scratch_[j]);
    upper_.push_back(upper_scratch_[j]);
  }
  replay_.push_back(std::move(queue_.front()));
  queue_.pop_front();
  queued_slots_ -= static_cast<std::size_t>(advanced);
  stats_.steps += static_cast<std::uint64_t>(advanced);
  slots_since_checkpoint_ += advanced;
  fail_streak_ = 0;
  set_state_locked(stats_.degraded_to_dense ? TenantState::kDegraded
                                            : TenantState::kHealthy,
                   "TenantSession::commit_front_locked");
  if (slots_since_checkpoint_ >= config_.checkpoint_every) {
    checkpoint_locked(store);
  }
  RS_AUDIT(audit_invariants_locked("TenantSession::commit_front_locked"));
}

void TenantSession::checkpoint_locked(rs::core::CheckpointStore& store) {
  store.put(store_key(), snapshot_bytes_locked());
  replay_.clear();
  slots_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  emit_locked(FleetEventKind::kCheckpointed,
              "at slot " + std::to_string(stats_.steps));
}

void TenantSession::recover_locked(rs::core::CheckpointStore& store,
                                   const std::string& reason) {
  set_state_locked(TenantState::kRecovering, "TenantSession::recover_locked");
  reset_session_locked();
  const std::optional<std::vector<std::uint8_t>> saved =
      store.latest(store_key());
  if (saved.has_value()) {
    const TenantCheckpoint ck = decode_checkpoint(*saved);
    const rs::online::OnlineContext context{config_.m, config_.beta};
    if (lcp_ != nullptr) {
      lcp_->restore(context, ck.session);
    } else {
      windowed_->restore(context, ck.session);
    }
  }
  // Replay the gap between the restored checkpoint and the failure point.
  // No fault sites are consulted here: recovery itself is deterministic,
  // and the replayed decisions overwrite their original positions (they
  // are bit-identical by the checkpoint round-trip contract).
  std::size_t pos = schedule_.size() -
                    static_cast<std::size_t>(slots_since_checkpoint_);
  for (std::size_t i = 0; i < replay_.size(); ++i) {
    std::vector<rs::core::CostPtr> lookahead;
    if (windowed_ != nullptr) {
      const std::size_t w = static_cast<std::size_t>(config_.window);
      for (std::size_t j = i + 1; j < replay_.size() && lookahead.size() < w;
           ++j) {
        lookahead.push_back(replay_[j].cost);
      }
      for (std::size_t q = 0; q < queue_.size() && lookahead.size() < w;
           ++q) {
        lookahead.push_back(queue_[q].cost);
      }
    }
    const int n = session_decide_locked(replay_[i], lookahead);
    for (int k = 0; k < n; ++k) {
      const std::size_t j = static_cast<std::size_t>(k);
      schedule_[pos + j] = decisions_scratch_[j];
      lower_[pos + j] = lower_scratch_[j];
      upper_[pos + j] = upper_scratch_[j];
    }
    pos += static_cast<std::size_t>(n);
  }
  ++stats_.recoveries;
  emit_locked(FleetEventKind::kRecovered,
              "replayed " + std::to_string(slots_since_checkpoint_) +
                  " slots after: " + reason);
}

void TenantSession::reset_session_locked() {
  const rs::online::OnlineContext context{config_.m, config_.beta};
  if (config_.window > 0) {
    lcp_.reset();
    windowed_ = std::make_unique<rs::online::WindowedLcp>(config_.backend);
    windowed_->reset(context);
  } else {
    windowed_.reset();
    lcp_ = std::make_unique<rs::online::Lcp>(config_.backend);
    if (config_.what_if_slots > 0) lcp_->enable_what_if(config_.what_if_slots);
    lcp_->reset(context);
  }
}

std::vector<rs::core::CostPtr> TenantSession::lookahead_after_locked(
    std::size_t skip_queue_front) const {
  std::vector<rs::core::CostPtr> lookahead;
  const std::size_t w = static_cast<std::size_t>(config_.window);
  lookahead.reserve(w);
  for (std::size_t q = skip_queue_front;
       q < queue_.size() && lookahead.size() < w; ++q) {
    lookahead.push_back(queue_[q].cost);
  }
  return lookahead;
}

void TenantSession::checkpoint_now(rs::core::CheckpointStore& store) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == TenantState::kQuarantined) return;
  try {
    checkpoint_locked(store);
  } catch (const std::exception& e) {
    quarantine_locked(std::string("checkpoint failed: ") + e.what());
  }
}

std::vector<std::uint8_t> TenantSession::snapshot_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_bytes_locked();
}

std::vector<std::uint8_t> TenantSession::snapshot_bytes_locked() const {
  rs::core::CheckpointWriter writer;
  writer.u64(stats_.steps);
  writer.u8(stats_.degraded_to_dense ? 1 : 0);
  const std::vector<std::uint8_t> session =
      lcp_ != nullptr ? lcp_->snapshot() : windowed_->snapshot();
  writer.u64(session.size());
  writer.bytes(session);
  return writer.seal(rs::core::kTenantCheckpointKind);
}

TenantCheckpoint TenantSession::decode_checkpoint(
    std::span<const std::uint8_t> bytes) {
  rs::core::CheckpointReader reader(bytes, rs::core::kTenantCheckpointKind);
  TenantCheckpoint ck;
  ck.steps = reader.u64();
  const std::uint8_t degraded = reader.u8();
  if (degraded > 1) {
    throw rs::core::CheckpointFormatError(
        "tenant checkpoint: invalid degraded flag");
  }
  ck.degraded = degraded == 1;
  const std::uint64_t size = reader.u64();
  ck.session = reader.bytes(static_cast<std::size_t>(size));
  reader.finish();
  return ck;
}

void TenantSession::note_deferred() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.deferrals;
  emit_locked(FleetEventKind::kDeferred,
              "tick budget exhausted; " + std::to_string(queued_slots_) +
                  " slots queued");
}

std::optional<WhatIfResult> TenantSession::what_if(int slot,
                                                   double lambda) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (lcp_ == nullptr || config_.what_if_slots <= 0) return std::nullopt;
  if (state_ == TenantState::kQuarantined) return std::nullopt;
  if (!std::isfinite(lambda) || lambda < 0.0) return std::nullopt;
  const rs::offline::WorkFunctionTracker* live = lcp_->tracker();
  if (live == nullptr || !live->rewind_covers(slot)) return std::nullopt;
  try {
    const rs::core::CostPtr cost = config_.cost_of(lambda);
    if (cost == nullptr) return std::nullopt;

    // Repair a clone; the live tracker (and with it the session's next
    // checkpoint) stays bitwise untouched.
    rs::offline::WorkFunctionTracker probe = live->clone();
    const rs::offline::WorkFunctionTracker::Repair repair =
        probe.repair_from(slot, *cost);

    WhatIfResult out;
    out.slots_repaired = repair.slots_replayed;
    out.early_exit = repair.early_exit;
    out.x_lower = probe.x_lower();
    out.x_upper = probe.x_upper();
    out.chat_min = probe.chat_lower(probe.x_lower());

    // Re-run the eq. 13 projection from the decision preceding the edit:
    // repaired corridor for the replayed slots, the stored (bitwise
    // unchanged past the reconvergence boundary) corridor beyond.
    int x = 0;
    if (slot > 1) {
      const std::uint64_t prev = static_cast<std::uint64_t>(slot) - 1;
      x = prev == resume_steps_
              ? resume_state_
              : schedule_[static_cast<std::size_t>(prev - resume_steps_) - 1];
    }
    for (std::uint64_t t = static_cast<std::uint64_t>(slot);
         t <= stats_.steps; ++t) {
      const std::size_t k = static_cast<std::size_t>(
          t - static_cast<std::uint64_t>(slot));
      int lo;
      int hi;
      if (k < repair.lower.size()) {
        lo = repair.lower[k];
        hi = repair.upper[k];
      } else {
        const std::size_t j = static_cast<std::size_t>(t - resume_steps_) - 1;
        lo = lower_[j];
        hi = upper_[j];
      }
      x = rs::util::project(x, lo, hi);
    }
    out.projected_state = x;
    return out;
  } catch (const std::exception&) {
    // Probes never quarantine or throw: a throwing cost factory, a
    // non-convertible edit on a PWL-mode clone (backend-trajectory flip),
    // or any other failure simply yields "no answer".
    return std::nullopt;
  }
}

void TenantSession::quarantine_locked(std::string reason) {
  set_state_locked(TenantState::kQuarantined,
                   "TenantSession::quarantine_locked");
  stats_.quarantine_reason = reason;
  emit_locked(FleetEventKind::kQuarantined, std::move(reason));
  // Free what will never be decided; future offers are rejected outright.
  queue_.clear();
  queued_slots_ = 0;
  replay_.clear();
  RS_AUDIT(audit_invariants_locked("TenantSession::quarantine_locked"));
}

void TenantSession::set_state_locked(TenantState next,
                                     [[maybe_unused]] const char* site) {
  RS_AUDIT(audit_tenant_transition(state_, next, site));
  state_ = next;
}

void TenantSession::audit_invariants(const char* site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  audit_invariants_locked(site);
}

void TenantSession::audit_invariants_locked(const char* site) const {
  namespace audit = rs::util::audit;
  const bool quarantined = state_ == TenantState::kQuarantined;
  audit::require(quarantined == !stats_.quarantine_reason.empty(),
                 "tenant-quarantine-reason", site,
                 "quarantine state and recorded reason disagree");
  if (quarantined) {
    audit::require(queue_.empty() && queued_slots_ == 0 && replay_.empty(),
                   "tenant-quarantine-drained", site,
                   "a terminal tenant must hold no queued or replayable work");
  }
  audit::require(
      state_ != TenantState::kDegraded || stats_.degraded_to_dense,
      "tenant-degraded-flag", site,
      "kDegraded without the sticky degraded_to_dense flag");
  audit::require(
      schedule_.size() == lower_.size() && schedule_.size() == upper_.size(),
      "tenant-trajectory-shape", site);
  audit::require(stats_.steps ==
                     resume_steps_ +
                         static_cast<std::uint64_t>(schedule_.size()),
                 "tenant-steps-accounting", site);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    audit::require_with(
        0 <= lower_[i] && lower_[i] <= schedule_[i] &&
            schedule_[i] <= upper_[i] && upper_[i] <= config_.m,
        "tenant-decision-in-corridor", site, [&] {
          return "slot " + std::to_string(resume_steps_ + i + 1) +
                 ": x = " + std::to_string(schedule_[i]) + " outside [" +
                 std::to_string(lower_[i]) + ", " +
                 std::to_string(upper_[i]) + "] in [0, " +
                 std::to_string(config_.m) + "]";
        });
  }
}

void TenantSession::emit_locked(FleetEventKind kind, std::string detail) {
  if (events_.size() >= kMaxPendingEvents) {
    ++dropped_events_;
    return;
  }
  events_.push_back(
      FleetEvent{ordinal_, stats_.steps, kind, std::move(detail)});
}

TenantState TenantSession::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

TenantStats TenantSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::string TenantSession::store_key() const { return config_.name; }

std::size_t TenantSession::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_slots_;
}

std::uint64_t TenantSession::steps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.steps;
}

rs::core::Schedule TenantSession::schedule() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return schedule_;
}

std::vector<int> TenantSession::lower_bounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lower_;
}

std::vector<int> TenantSession::upper_bounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return upper_;
}

std::vector<FleetEvent> TenantSession::drain_events() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FleetEvent> out;
  out.swap(events_);
  return out;
}

std::uint64_t TenantSession::take_dropped_events() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t dropped = dropped_events_;
  dropped_events_ = 0;
  return dropped;
}

}  // namespace rs::fleet
