// FleetController: the resident multi-tenant serving layer (DESIGN.md §11).
//
// The ROADMAP's north star multiplexes thousands of independent data-center
// tenants — each a long-lived LCP session fed by a live λ_t stream — over
// one process.  The controller owns the tenant sessions, a shared
// CheckpointStore (in-memory, optionally mirrored to disk), and a
// SolverEngine whose batched dispatch advances every tenant due a slot in
// one tick().  Robustness is the contract:
//
//   * per-tenant fault domains — each TenantSession classifies its own
//     faults into typed state transitions; a poisoned or throwing tenant
//     quarantines alone, and the tick that advances every other tenant
//     completes regardless;
//   * checkpoint-backed self-healing — killed tenants restore from the
//     store and replay their gap mid-tick, bit-identical to an undisturbed
//     run (the chaos drill asserts this across backends and thread counts);
//   * deadline degradation — a per-tick time budget defers not-yet-started
//     tenants past the deadline (typed kDeferred events, queue
//     backpressure); at least one due tenant always advances, so a drain
//     loop terminates under any budget.
//
// Determinism: every tenant's decisions depend only on its own stream and
// fault indices, so schedules and corridor bounds are bit-identical across
// tick partitionings and thread counts (deferral changes *when* a slot is
// decided, never *what* is decided).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "engine/solver_engine.hpp"
#include "fleet/form_cache.hpp"
#include "fleet/tenant.hpp"

namespace rs::fleet {

struct FleetOptions {
  /// Engine dispatch width: 0 = process-global pool, 1 = inline, N > 1 =
  /// dedicated pool (see SolverEngine::Options::threads).
  std::size_t threads = 1;
  /// Non-empty: mirror checkpoints to this directory (created when
  /// missing) and resume tenants from it on add_tenant — the
  /// process-restart path.  Empty: in-memory store only.
  std::string checkpoint_dir;
  /// Per-tick wall-clock budget in seconds; 0 = unlimited.  Once exceeded,
  /// tenants not yet started this tick are deferred (never mid-slot).
  double tick_budget_seconds = 0.0;
  /// Controller event-log bound; past it the oldest are dropped (counted).
  std::size_t max_events = 4096;
};

/// What one tick did.
struct TickReport {
  std::size_t due = 0;               // tenants eligible at tick start
  std::size_t advanced_tenants = 0;  // tenants that committed >= 1 slot
  std::size_t advanced_slots = 0;    // slots committed across the fleet
  std::size_t deferred = 0;          // tenants pushed past the deadline
  std::size_t quarantined = 0;       // tenants newly quarantined this tick
  double seconds = 0.0;              // tick wall time
};

/// Whole-fleet aggregates (tenant stats summed at call time + controller
/// counters).
struct FleetStats {
  std::uint64_t ticks = 0;
  std::uint64_t tenant_steps = 0;  // slots committed across all ticks
  double busy_seconds = 0.0;       // Σ tick wall time
  double tenant_steps_per_second = 0.0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t deferrals = 0;
  std::size_t healthy = 0;  // current census (kRecovering counts healthy)
  std::size_t degraded = 0;
  std::size_t quarantined = 0;
};

class FleetController {
 public:
  explicit FleetController(FleetOptions options = {});

  /// Registers a tenant and returns its ordinal (stable; the fault-index
  /// namespace of util::tenant_fault_index).  Names must be unique after
  /// CheckpointStore::sanitize_key (throws std::invalid_argument).  With a
  /// persistent store, a tenant whose key has a saved checkpoint resumes
  /// from it.
  std::size_t add_tenant(TenantConfig config);

  std::size_t tenant_count() const noexcept { return tenants_.size(); }
  TenantSession& tenant(std::size_t ordinal);
  const TenantSession& tenant(std::size_t ordinal) const;

  /// Ingest forwarding (thread-safe; callable while a tick runs).
  bool offer(std::size_t ordinal, double lambda);
  bool offer_run(std::size_t ordinal, double lambda, int count);
  /// End-of-stream for every tenant (windowed tails become due).
  void finish_streams();

  /// One batched tick: every due tenant advances one sample (a whole RLE
  /// run for window = 0 tenants) through the engine's dispatch; faults stay
  /// inside their tenant.  Under a time budget, tenants not yet started
  /// when it expires are deferred — except the first, so ticks always make
  /// progress.
  TickReport tick();

  /// Ticks until no tenant is due (call finish_streams() first for
  /// windowed tails).  Returns ticks used; throws std::runtime_error when
  /// max_ticks is hit (a wedged fleet is a bug, not a spin).
  std::size_t run_until_drained(std::size_t max_ticks = 1000000);

  /// Snapshot every non-quarantined tenant into the store now.
  void checkpoint_all();

  FleetStats stats() const;

  /// Copy of the bounded controller event log (tenant events merged in
  /// tick order each tick; checkpoint_all and quarantines-at-offer land on
  /// the next tick's drain or events() call).
  std::vector<FleetEvent> events() const;
  std::uint64_t dropped_events() const;

  rs::core::CheckpointStore& store() noexcept { return store_; }
  const FleetOptions& options() const noexcept { return options_; }

  /// The fleet-wide slot-cost conversion cache add_tenant injects into
  /// every tenant (unless the config brings its own).
  const SlotFormCache& form_cache() const noexcept { return form_cache_; }

 private:
  void drain_tenant_events_locked() const;

  FleetOptions options_;
  rs::core::CheckpointStore store_;
  rs::engine::SolverEngine engine_;
  SlotFormCache form_cache_;
  // unique_ptr: TenantSession owns a mutex and is immovable; the vector
  // only ever grows (ordinals are stable for the controller's lifetime).
  std::vector<std::unique_ptr<TenantSession>> tenants_;

  mutable std::mutex mutex_;  // guards the event log + counters below
  // mutable: events() drains tenant buffers into the log on read.
  mutable std::vector<FleetEvent> events_;
  mutable std::uint64_t dropped_events_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t total_slots_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace rs::fleet
