// One fleet tenant: a long-lived LCP serving session wrapped in a fault
// domain (DESIGN.md §11).
//
// A tenant owns an Lcp (window = 0) or WindowedLcp (window > 0) session, a
// bounded ingest queue of λ samples, and a replay buffer of everything
// decided since its last checkpoint.  The contract robustness rests on:
//
//   * input hardening — offer() validates the λ sample (NaN / inf /
//     negative) and probes the built slot cost (NaN / throwing) before
//     anything reaches the session; a poisoned stream quarantines *this*
//     tenant with a recorded reason instead of crashing the process;
//   * checkpoint-backed self-healing — step() snapshots into the
//     CheckpointStore every `checkpoint_every` slots; on a backend failure
//     (injected via FaultSite::kFleetTick or real) it restores the latest
//     good checkpoint, replays the gap from the replay buffer, and retries
//     — decisions and corridor bounds stay bit-identical to an undisturbed
//     run (the chaos drill pins this);
//   * a degradation ladder — after `degrade_after` consecutive failed
//     attempts a kAuto/kDense session is pinned to the dense streaming
//     backend (one typed kDegradedToDense event + an immediate checkpoint,
//     so later recoveries replay in the right mode); recoveries exhausted
//     on both rungs end in quarantine, never a wedged controller.
//
// Every public member takes the tenant mutex, so a checkpoint taken from
// the controller thread while the session is mid-advance_repeated
// serializes against the step and captures the pre- or post-state — never
// a torn one (the concurrency suite hammers exactly this).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "core/cost_function.hpp"
#include "core/schedule.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "online/lcp_window.hpp"

namespace rs::fleet {

/// Tenant health, in ladder order.  kRecovering is only observable from
/// another thread mid-step (or in the event stream): a step either commits
/// (back to kHealthy / kDegraded) or ends in kQuarantined.
enum class TenantState {
  kHealthy,
  kDegraded,     // pinned to the dense streaming backend
  kRecovering,   // mid restore-and-replay
  kQuarantined,  // terminal; reason in stats().quarantine_reason
};

const char* to_string(TenantState state) noexcept;

/// Ladder legality (DESIGN.md §11/§13): a state may re-assert itself;
/// kQuarantined is terminal; and kDegraded never steps back to kHealthy
/// (the dense pin is permanent — recoveries from a degraded session land
/// back on kDegraded).  Everything else moves freely along the ladder.
bool tenant_transition_legal(TenantState from, TenantState to) noexcept;

/// Raises rs::util::audit::AuditError("tenant-transition-legal", site)
/// naming both states when the move is illegal.  Always compiled; the
/// RS_AUDIT hooks inside TenantSession engage only under RIGHTSIZER_AUDIT.
void audit_tenant_transition(TenantState from, TenantState to,
                             const char* site);

/// What a full ingest queue does to the *next* sample.
enum class OverflowPolicy {
  kRejectNewest,  // offer() returns false — backpressure to the producer
  kDropOldest,    // evict the oldest undecided samples to make room
};

enum class FleetEventKind {
  kCheckpointed,     // snapshot sealed into the store
  kResumed,          // session restored from a previous process's disk save
  kRecovered,        // restore + gap replay after a failure
  kDegradedToDense,  // PWL → dense streaming rung taken
  kDeferred,         // slot pushed past a tick deadline (backpressure)
  kQuarantined,      // terminal isolation; detail holds the reason
  kOverflow,         // ingest queue overflow (either policy)
};

const char* to_string(FleetEventKind kind) noexcept;

/// One typed transition in a tenant's life; `slot` is the tenant-local
/// count of decided slots when the event fired.
struct FleetEvent {
  std::size_t tenant = 0;
  std::uint64_t slot = 0;
  FleetEventKind kind = FleetEventKind::kCheckpointed;
  std::string detail;
};

/// Scheduling class within a controller tick: every due kInteractive
/// tenant starts before any kBatch tenant, so under a tick deadline the
/// deferrals land on batch work first.  Within a class, registration
/// (ordinal) order is preserved.  Priority changes *when* a slot is
/// decided, never *what* — per-tenant decisions depend only on the
/// tenant's own stream.
enum class Priority {
  kInteractive = 0,
  kBatch = 1,
};

class SlotFormCache;

/// Answer to a TenantSession::what_if probe: the final-slot corridor and
/// eq. 13 state the session *would* show had the probed slot carried the
/// probed λ, plus repair statistics.  Computed on a rewind-buffer clone —
/// the live session is bitwise untouched.
struct WhatIfResult {
  int slots_repaired = 0;   // tracker advances re-executed by the probe
  bool early_exit = false;  // labels reconverged before the newest slot
  int x_lower = 0;          // corridor at the newest slot under the edit
  int x_upper = 0;
  int projected_state = 0;  // x^LCP at the newest slot under the edit
  double chat_min = 0.0;    // min Ĉ^L over the edited decided prefix
};

struct TenantConfig {
  /// Unique within a controller; doubles as the checkpoint-store key (after
  /// CheckpointStore::sanitize_key).
  std::string name;
  int m = 0;
  double beta = 1.0;
  /// 0 = plain Lcp; w > 0 = WindowedLcp deciding each slot with the next w
  /// queued samples as its prediction window.
  int window = 0;
  rs::offline::WorkFunctionTracker::Backend backend =
      rs::offline::WorkFunctionTracker::Backend::kAuto;
  /// λ → slot cost; required.  May throw or return nullptr for bad samples
  /// — both quarantine the tenant with a reason instead of escaping.
  std::function<rs::core::CostPtr(double)> cost_of;
  /// Ingest bound, in slots (expanded runs count per slot).
  std::size_t queue_capacity = 1024;
  OverflowPolicy overflow = OverflowPolicy::kRejectNewest;
  /// Slots between automatic snapshots (>= 1); also bounds the replay
  /// buffer a recovery replays.
  int checkpoint_every = 16;
  /// Consecutive failed attempts on one slot before the dense rung (>= 1).
  int degrade_after = 2;
  /// Restore-and-replay attempts per slot before the ladder ends (>= 0).
  int max_recoveries = 12;
  /// Tick scheduling class (see Priority).
  Priority priority = Priority::kBatch;
  /// > 0: keep a rewind buffer of the last `what_if_slots` decided samples
  /// on the session tracker and serve what_if() probes from it.  Requires
  /// window == 0 (probes ride the plain-LCP tracker).  The buffer is
  /// process-local — never checkpointed — and restarts at every restore.
  int what_if_slots = 0;
  /// Shared conversion cache (fleet/form_cache.hpp); FleetController
  /// injects its fleet-wide cache here on add_tenant when unset.  Used by
  /// window == 0, non-kDense tenants to convert each distinct slot cost
  /// once fleet-wide; nullptr disables sharing (standalone sessions).
  SlotFormCache* form_cache = nullptr;
};

struct TenantStats {
  std::uint64_t offered = 0;         // slots accepted into the queue
  std::uint64_t rejected = 0;        // slots refused (overflow / quarantine)
  std::uint64_t overflow_drops = 0;  // slots evicted by kDropOldest
  std::uint64_t steps = 0;           // slots decided
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;  // successful restore + replay cycles
  std::uint64_t deferrals = 0;   // slots pushed past a tick deadline
  bool degraded_to_dense = false;
  std::string quarantine_reason;  // empty unless quarantined
  double last_step_seconds = 0.0;
};

/// Decoded form of the sealed tenant checkpoint (kTenantCheckpointKind):
/// the slot count and degradation flag wrap the nested session snapshot.
struct TenantCheckpoint {
  std::uint64_t steps = 0;
  bool degraded = false;
  std::vector<std::uint8_t> session;
};

class TenantSession {
 public:
  /// Validates the config (throws std::invalid_argument).  When
  /// `resume_from` is non-null and holds a checkpoint under this tenant's
  /// key, the session restores from it (event kResumed); an unreadable
  /// save starts fresh instead of failing construction.
  TenantSession(TenantConfig config, std::size_t ordinal,
                rs::core::CheckpointStore* resume_from = nullptr);

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  // ---- ingest (safe to call concurrently with step / snapshot) ----

  /// Queues one λ sample; false when rejected (validation, overflow under
  /// kRejectNewest, quarantine, finished stream).  A poisoned sample —
  /// NaN/inf/negative λ, possibly via FaultSite::kIngest corruption, or a
  /// cost that probes to NaN / throws — quarantines the tenant and returns
  /// false; it never reaches the session.
  bool offer(double lambda) { return offer_run(lambda, 1); }

  /// Queues a run of `count` slots sharing one λ (RLE ingest).  Window = 0
  /// tenants keep the run intact and decide it through the closed-form
  /// advance_repeated path; windowed tenants expand it to slots (their
  /// lookahead is slot-granular).
  bool offer_run(double lambda, int count);

  /// Declares end-of-stream: windowed tenants become due for their tail
  /// slots (with truncated lookahead), and further offers are rejected.
  void finish_stream();

  // ---- the tick path ----

  /// True when step() would advance: queue non-empty, not quarantined,
  /// and (windowed) enough lookahead queued or the stream finished.
  bool due() const;

  /// Queue fully decided (quarantined tenants count as drained — nothing
  /// further will ever advance).
  bool drained() const;

  /// Decides the next queued sample (whole run for window = 0), running
  /// the recovery ladder on failure.  Never throws: every fault is
  /// classified into state transitions and typed events.  Returns slots
  /// advanced (0 when not due or the ladder ended in quarantine).
  int step(rs::core::CheckpointStore& store);

  /// Snapshot into the store now, off-cadence (no-op when quarantined or
  /// before the first reset).  The controller's checkpoint_all and the
  /// concurrency suite call this from other threads mid-step.
  void checkpoint_now(rs::core::CheckpointStore& store);

  /// The sealed tenant checkpoint (kTenantCheckpointKind) of the current
  /// state, without storing it.
  std::vector<std::uint8_t> snapshot_bytes() const;

  /// Decodes snapshot_bytes() output (typed CheckpointErrors on bad input).
  static TenantCheckpoint decode_checkpoint(
      std::span<const std::uint8_t> bytes);

  /// Records a deadline deferral (controller tick bookkeeping).
  void note_deferred();

  /// Interactive what-if probe: "had decided slot `slot` (1-based) carried
  /// λ = `lambda` instead, where would the session be now?"  Served from a
  /// clone of the session tracker's rewind buffer (config.what_if_slots),
  /// repaired forward from the edit with the bitwise reconvergence
  /// early-exit, then re-projected through eq. 13 — the live session, its
  /// schedule, and its checkpoint bytes are untouched (the isolation suite
  /// pins snapshot_bytes() before/after).  Returns nullopt when probes are
  /// disabled (what_if_slots == 0 or window > 0), the tenant is
  /// quarantined, `slot` is outside the rewind window, λ or its cost is
  /// invalid, or the edit would flip the tracker's backend trajectory —
  /// probes never throw and never quarantine.
  std::optional<WhatIfResult> what_if(int slot, double lambda) const;

  // ---- observation ----

  TenantState state() const;
  TenantStats stats() const;
  std::size_t ordinal() const noexcept { return ordinal_; }
  const TenantConfig& config() const noexcept { return config_; }
  std::string store_key() const;
  std::size_t queue_depth() const;  // undecided slots
  std::uint64_t steps() const;      // decided slots

  /// Copies of the decided trajectory so far.
  rs::core::Schedule schedule() const;
  std::vector<int> lower_bounds() const;
  std::vector<int> upper_bounds() const;

  /// Drains this tenant's pending typed events (bounded; oldest dropped
  /// past the cap, counted in the controller's dropped-events tally).
  std::vector<FleetEvent> drain_events();

  /// Returns and clears the count of events dropped past the buffer cap.
  std::uint64_t take_dropped_events();

  /// Deep session-consistency audit (util/audit.hpp; DESIGN.md §13):
  /// quarantine state and reason agree (and a quarantined tenant holds no
  /// queued or replayable work), the kDegraded state implies the sticky
  /// degraded_to_dense flag, the decided trajectory arrays stay equal
  /// length, stats().steps equals resume anchor + decided slots, and every
  /// decision sits inside its recorded corridor within [0, m].  Takes the
  /// tenant mutex; raises rs::util::audit::AuditError naming the violated
  /// invariant.
  void audit_invariants(const char* site) const;

 private:
  friend struct TenantSessionTestAccess;
  struct QueueEntry {
    double lambda = 0.0;
    int count = 0;
    rs::core::CostPtr cost;
    // Cached convex-PWL form from the shared fleet cache (nullptr when the
    // cache is absent/full or the cost has no compact form).  Replay
    // entries carry the same pointer, so a recovery consumes the identical
    // input and stays bit-identical.
    std::shared_ptr<const rs::core::ConvexPwl> form;
  };

  // All *_locked members require mutex_ held.
  // Every ladder move funnels through here so the transition-legality
  // audit sees them all (the constructor's stale-checkpoint fallback is
  // the one deliberate exception: a session rebirth, not a ladder move).
  void set_state_locked(TenantState next, const char* site);
  void audit_invariants_locked(const char* site) const;
  bool due_locked() const;
  void emit_locked(FleetEventKind kind, std::string detail);
  void quarantine_locked(std::string reason);
  int decide_front_locked();
  void commit_front_locked(int advanced, rs::core::CheckpointStore& store);
  void checkpoint_locked(rs::core::CheckpointStore& store);
  void recover_locked(rs::core::CheckpointStore& store,
                      const std::string& reason);
  void replay_entry_locked(const QueueEntry& entry, std::size_t replay_pos,
                           std::size_t slot_base);
  std::vector<rs::core::CostPtr> lookahead_after_locked(
      std::size_t skip_queue_front) const;
  std::vector<std::uint8_t> snapshot_bytes_locked() const;
  void reset_session_locked();
  int session_decide_locked(const QueueEntry& entry,
                            std::span<const rs::core::CostPtr> lookahead);

  mutable std::mutex mutex_;
  TenantConfig config_;
  std::size_t ordinal_ = 0;

  // Exactly one of the two sessions is live, chosen by config_.window.
  std::unique_ptr<rs::online::Lcp> lcp_;
  std::unique_ptr<rs::online::WindowedLcp> windowed_;

  std::deque<QueueEntry> queue_;
  std::size_t queued_slots_ = 0;
  bool finished_ = false;

  TenantState state_ = TenantState::kHealthy;
  TenantStats stats_;
  std::vector<FleetEvent> events_;
  std::uint64_t dropped_events_ = 0;

  // Decided trajectory (slot i of the stream → index i).
  std::vector<int> schedule_;
  std::vector<int> lower_;
  std::vector<int> upper_;

  // Entries committed since the last checkpoint, in order — the gap a
  // recovery replays.  Bounded by the checkpoint cadence.
  std::deque<QueueEntry> replay_;
  int slots_since_checkpoint_ = 0;

  // Per-slot decision scratch (reused across steps).
  std::vector<int> decisions_scratch_;
  std::vector<int> lower_scratch_;
  std::vector<int> upper_scratch_;

  // Monotone fault-index counters (see util::tenant_fault_index): one
  // kFleetTick index per slot *attempt* (fresh or post-recovery retry, so
  // a retried attempt draws a new fault decision), one kIngest index per
  // offer call.
  std::uint64_t attempts_ = 0;
  std::uint64_t ingests_ = 0;
  int fail_streak_ = 0;

  // Cross-process resume anchor: schedule_/lower_/upper_ index slot
  // (resume_steps_ + i + 1) at position i, and resume_state_ is the eq. 13
  // state at slot resume_steps_ (what_if projection needs the decision
  // preceding the probed slot).  Both stay 0 for fresh sessions.
  std::uint64_t resume_steps_ = 0;
  int resume_state_ = 0;
};

/// Test-only corruption hooks for the auditor's negative tests
/// (tests/test_audit.cpp).  Callers must not race these against live
/// session threads; never use outside tests.
struct TenantSessionTestAccess {
  static TenantState& state(TenantSession& t) noexcept { return t.state_; }
  static TenantStats& stats(TenantSession& t) noexcept { return t.stats_; }
  static std::vector<int>& schedule(TenantSession& t) noexcept {
    return t.schedule_;
  }
  static std::vector<int>& lower(TenantSession& t) noexcept {
    return t.lower_;
  }
  static std::vector<int>& upper(TenantSession& t) noexcept {
    return t.upper_;
  }
  static void set_state_audited(TenantSession& t, TenantState next,
                                const char* site) {
    std::lock_guard<std::mutex> lock(t.mutex_);
    audit_tenant_transition(t.state_, next, site);
    t.state_ = next;
  }
};

}  // namespace rs::fleet
