#include "fleet/fleet_controller.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "util/audit.hpp"
#include "util/stopwatch.hpp"

namespace rs::fleet {

FleetController::FleetController(FleetOptions options)
    : options_(std::move(options)),
      store_(options_.checkpoint_dir),
      engine_(rs::engine::SolverEngine::Options{options_.threads, true}) {
  if (options_.tick_budget_seconds < 0.0) {
    throw std::invalid_argument(
        "FleetOptions: tick_budget_seconds must be >= 0");
  }
  if (options_.max_events < 1) {
    throw std::invalid_argument("FleetOptions: max_events must be >= 1");
  }
}

std::size_t FleetController::add_tenant(TenantConfig config) {
  // Sanitized names key the checkpoint store; a collision would make two
  // tenants overwrite each other's recovery state.
  const std::string key = rs::core::CheckpointStore::sanitize_key(config.name);
  for (const auto& existing : tenants_) {
    if (rs::core::CheckpointStore::sanitize_key(existing->config().name) ==
        key) {
      throw std::invalid_argument(
          "FleetController::add_tenant: duplicate tenant name (after "
          "sanitization): " +
          config.name);
    }
  }
  const std::size_t ordinal = tenants_.size();
  if (config.form_cache == nullptr) config.form_cache = &form_cache_;
  tenants_.push_back(std::make_unique<TenantSession>(
      std::move(config), ordinal, store_.persistent() ? &store_ : nullptr));
  return ordinal;
}

TenantSession& FleetController::tenant(std::size_t ordinal) {
  if (ordinal >= tenants_.size()) {
    throw std::out_of_range("FleetController::tenant: bad ordinal");
  }
  return *tenants_[ordinal];
}

const TenantSession& FleetController::tenant(std::size_t ordinal) const {
  if (ordinal >= tenants_.size()) {
    throw std::out_of_range("FleetController::tenant: bad ordinal");
  }
  return *tenants_[ordinal];
}

bool FleetController::offer(std::size_t ordinal, double lambda) {
  return tenant(ordinal).offer(lambda);
}

bool FleetController::offer_run(std::size_t ordinal, double lambda,
                                int count) {
  return tenant(ordinal).offer_run(lambda, count);
}

void FleetController::finish_streams() {
  for (const auto& session : tenants_) session->finish_stream();
}

TickReport FleetController::tick() {
  std::vector<std::size_t> due;
  due.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i]->due()) due.push_back(i);
  }
  // Interactive tenants start (and therefore finish) ahead of batch ones,
  // so a tick deadline defers batch work first; stable within a class, so
  // registration order still breaks ties.  Decisions are unaffected —
  // priority only reorders who runs when.
  std::stable_sort(due.begin(), due.end(),
                   [this](std::size_t a, std::size_t b) {
                     return static_cast<int>(tenants_[a]->config().priority) <
                            static_cast<int>(tenants_[b]->config().priority);
                   });
  TickReport report;
  report.due = due.size();
  const rs::util::Stopwatch watch;
  if (!due.empty()) {
    std::vector<int> advanced(due.size(), 0);
    std::vector<std::uint8_t> deferred(due.size(), 0);
    std::vector<double> seconds(due.size(), 0.0);
    const double budget = options_.tick_budget_seconds;
    // Progress guarantee: the first tenant to reach the gate always runs,
    // so even a sub-microsecond budget cannot defer a whole tick forever.
    std::atomic<bool> started{false};
    engine_.for_each_timed(
        due.size(),
        [&](std::size_t i) {
          const bool first = !started.exchange(true, std::memory_order_acq_rel);
          if (!first && budget > 0.0 && watch.seconds() > budget) {
            deferred[i] = 1;
            tenants_[due[i]]->note_deferred();
            return;
          }
          advanced[i] = tenants_[due[i]]->step(store_);
        },
        seconds);
    for (std::size_t i = 0; i < due.size(); ++i) {
      if (deferred[i] != 0) {
        ++report.deferred;
        continue;
      }
      if (advanced[i] > 0) {
        ++report.advanced_tenants;
        report.advanced_slots += static_cast<std::size_t>(advanced[i]);
      }
      // Every due tenant was non-quarantined at tick start, so a
      // quarantined state now is a this-tick transition.
      if (tenants_[due[i]]->state() == TenantState::kQuarantined) {
        ++report.quarantined;
      }
    }
  }
  report.seconds = watch.seconds();
  // Post-tick consistency sweep: every tenant the tick touched is back in
  // a coherent resting state (no tenant is left mid-recovery, every
  // quarantine carries its reason, trajectories in-corridor).
  RS_AUDIT(for (const std::size_t i : due) {
    tenants_[i]->audit_invariants("FleetController::tick");
  });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++ticks_;
    total_slots_ += report.advanced_slots;
    busy_seconds_ += report.seconds;
    drain_tenant_events_locked();
  }
  return report;
}

std::size_t FleetController::run_until_drained(std::size_t max_ticks) {
  for (std::size_t t = 0; t < max_ticks; ++t) {
    bool any_due = false;
    for (const auto& session : tenants_) {
      if (session->due()) {
        any_due = true;
        break;
      }
    }
    if (!any_due) return t;
    tick();
  }
  throw std::runtime_error(
      "FleetController::run_until_drained: fleet not drained after " +
      std::to_string(max_ticks) + " ticks");
}

void FleetController::checkpoint_all() {
  for (const auto& session : tenants_) session->checkpoint_now(store_);
  std::lock_guard<std::mutex> lock(mutex_);
  drain_tenant_events_locked();
}

FleetStats FleetController::stats() const {
  FleetStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.ticks = ticks_;
    out.tenant_steps = total_slots_;
    out.busy_seconds = busy_seconds_;
  }
  out.tenant_steps_per_second =
      out.busy_seconds > 0.0
          ? static_cast<double>(out.tenant_steps) / out.busy_seconds
          : 0.0;
  for (const auto& session : tenants_) {
    const TenantStats stats = session->stats();
    out.checkpoints += stats.checkpoints;
    out.recoveries += stats.recoveries;
    out.deferrals += stats.deferrals;
    switch (session->state()) {
      case TenantState::kQuarantined:
        ++out.quarantined;
        break;
      case TenantState::kDegraded:
        ++out.degraded;
        break;
      case TenantState::kHealthy:
      case TenantState::kRecovering:
        ++out.healthy;
        break;
    }
  }
  return out;
}

std::vector<FleetEvent> FleetController::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_tenant_events_locked();
  return events_;
}

std::uint64_t FleetController::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

void FleetController::drain_tenant_events_locked() const {
  for (const auto& session : tenants_) {
    dropped_events_ += session->take_dropped_events();
    for (FleetEvent& event : session->drain_events()) {
      if (events_.size() >= options_.max_events) {
        ++dropped_events_;
        continue;
      }
      events_.push_back(std::move(event));
    }
  }
}

}  // namespace rs::fleet
