// Fractional 2-competitive online algorithm in the level/threshold view of
// Bansal et al. [7].
//
// A fractional state x ∈ [0, m] is identified with the "on"-profile of the
// m unit levels: p_k ∈ [0, 1] is the probability that level k (servers
// k..k+1) is active, and x̄ = Σ_k p_k.  Because the interpolated cost f̄_t is
// piecewise linear with integer breakpoints, its level decomposition
//
//   f̄_t(x) = f_t(m_t) + Σ_{k < m_t} (off-penalty of level k)·(1 − 1{on})
//                      + Σ_{k >= m_t} (on-penalty of level k)·1{on}
//
// has per-level penalties |s_k| with s_k = f_t(k+1) − f_t(k): levels on the
// minimizer's left are penalized for being off, levels on its right for
// being on.  Each level runs the linear counter rule of the two-state
// subproblem ("ski rental with returns"):
//
//   off-penalty a:  p_k <- min(1, p_k + a/β)      (β = 2·(β/2): one unit of
//   on-penalty  b:  p_k <- max(0, p_k − b/β)       level movement costs β/2
//                                                  per direction)
//
// which pays at most twice the per-level optimum per activation phase;
// summing over levels bounds the whole trajectory by 2·OPT (the per-level
// optima underestimate the global optimum).  Penalties are constant within
// integer cells, so the profile stays cell-uniform and the state is just a
// vector of m counters.
//
// On the lower-bound family ϕ0/ϕ1 with m = 1, β = 2 the rule moves the
// expected position by exactly ε/2 per slot — the paper's algorithm B
// (Section 5.2.1), stated there to be the specialization of Bansal et al.
// The played position is the profile mean x̄; by Jensen's inequality its
// interpolated cost lower-bounds the profile's expected cost, so the played
// schedule inherits the 2-competitive bound.  ±inf slopes (hard
// constraints) saturate the affected levels immediately.
#pragma once

#include <vector>

#include "online/online_algorithm.hpp"

namespace rs::online {

class LevelFlow final : public FractionalOnlineAlgorithm {
 public:
  /// `counter_scale` multiplies the counter increments (1.0 = the
  /// 2-competitive setting; exposed for the E11 ablation).
  explicit LevelFlow(double counter_scale = 1.0);

  std::string name() const override { return "level_flow"; }
  void reset(const OnlineContext& context) override;
  double decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) override;

  /// Current on-fractions per unit level (diagnostics and tests).
  const std::vector<double>& profile() const { return profile_; }
  double position() const;

 private:
  OnlineContext context_;
  std::vector<double> profile_;
  double counter_scale_ = 1.0;
};

}  // namespace rs::online
