#include "online/lcp.hpp"

#include "util/math_util.hpp"

namespace rs::online {

void Lcp::reset(const OnlineContext& context) {
  tracker_.emplace(context.m, context.beta, backend_);
  current_ = 0;
  last_lower_ = 0;
  last_upper_ = 0;
}

int Lcp::decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) {
  (void)lookahead;  // LCP uses no predictions (see WindowedLcp for w > 0)
  tracker_->advance(*f);
  last_lower_ = tracker_->x_lower();
  last_upper_ = tracker_->x_upper();
  current_ = rs::util::project(current_, last_lower_, last_upper_);
  return current_;
}

rs::core::Schedule run_lcp_dense(const rs::core::DenseProblem& dense) {
  rs::offline::WorkFunctionTracker tracker(dense.max_servers(), dense.beta());
  rs::core::Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(dense.horizon()));
  int current = 0;
  for (int t = 1; t <= dense.horizon(); ++t) {
    tracker.advance(dense.row(t));
    current = rs::util::project(current, tracker.x_lower(), tracker.x_upper());
    schedule.push_back(current);
  }
  return schedule;
}

rs::core::Schedule run_lcp_pwl(const rs::core::PwlProblem& pwl) {
  rs::offline::WorkFunctionTracker tracker(
      pwl.max_servers(), pwl.beta(),
      rs::offline::WorkFunctionTracker::Backend::kPwl);
  rs::core::Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(pwl.horizon()));
  int current = 0;
  for (int t = 1; t <= pwl.horizon(); ++t) {
    tracker.advance(pwl.form(t));
    current = rs::util::project(current, tracker.x_lower(), tracker.x_upper());
    schedule.push_back(current);
  }
  return schedule;
}

}  // namespace rs::online
