#include "online/lcp.hpp"

#include "core/checkpoint.hpp"
#include "util/audit.hpp"
#include "util/math_util.hpp"

namespace rs::online {

namespace {

void check_session_bounds(int value, int m, const char* what) {
  if (value < 0 || value > m) {
    throw rs::core::CheckpointFormatError(
        std::string("session checkpoint: ") + what + " outside [0, m]");
  }
}

}  // namespace

void Lcp::reset(const OnlineContext& context) {
  tracker_.emplace(context.m, context.beta, backend_);
  if (what_if_capacity_ > 0) tracker_->enable_rewind(what_if_capacity_);
  current_ = 0;
  last_lower_ = 0;
  last_upper_ = 0;
}

void Lcp::enable_what_if(int capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("Lcp::enable_what_if: negative capacity");
  }
  what_if_capacity_ = capacity;
  if (!tracker_.has_value()) return;
  if (capacity > 0) {
    tracker_->enable_rewind(capacity);
  } else {
    tracker_->disable_rewind();
  }
}

int Lcp::decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) {
  (void)lookahead;  // LCP uses no predictions (see WindowedLcp for w > 0)
  tracker_->advance(*f);
  last_lower_ = tracker_->x_lower();
  last_upper_ = tracker_->x_upper();
  current_ = rs::util::project(current_, last_lower_, last_upper_);
  RS_AUDIT(rs::util::audit::require(
      last_lower_ <= current_ && current_ <= last_upper_,
      "lcp-projection-in-corridor", "Lcp::decide"));
  return current_;
}

void Lcp::check_run_args(int count, std::span<const int> decisions,
                         std::span<const int> lower,
                         std::span<const int> upper) const {
  if (count < 0) {
    throw std::invalid_argument("Lcp::decide_run: negative count");
  }
  const std::size_t n = static_cast<std::size_t>(count);
  if (decisions.size() < n || lower.size() < n || upper.size() < n) {
    throw std::invalid_argument("Lcp::decide_run: output spans too small");
  }
  if (!tracker_.has_value()) {
    throw std::logic_error("Lcp::decide_run: reset() the session first");
  }
}

void Lcp::project_run(int count, std::span<int> decisions,
                      std::span<int> lower, std::span<int> upper) {
  for (int i = 0; i < count; ++i) {
    current_ = rs::util::project(current_, lower[static_cast<std::size_t>(i)],
                                 upper[static_cast<std::size_t>(i)]);
    decisions[static_cast<std::size_t>(i)] = current_;
  }
  last_lower_ = lower[static_cast<std::size_t>(count) - 1];
  last_upper_ = upper[static_cast<std::size_t>(count) - 1];
  RS_AUDIT(rs::util::audit::require(
      last_lower_ <= current_ && current_ <= last_upper_,
      "lcp-projection-in-corridor", "Lcp::project_run"));
}

void Lcp::decide_run(const rs::core::CostFunction& f, int count,
                     std::span<int> decisions, std::span<int> lower,
                     std::span<int> upper) {
  check_run_args(count, decisions, lower, upper);
  if (count == 0) return;
  tracker_->advance_repeated(f, count, lower, upper);
  project_run(count, decisions, lower, upper);
}

void Lcp::decide_run(const rs::core::ConvexPwl& f, int count,
                     std::span<int> decisions, std::span<int> lower,
                     std::span<int> upper) {
  check_run_args(count, decisions, lower, upper);
  if (count == 0) return;
  tracker_->advance_repeated(f, count, lower, upper);
  project_run(count, decisions, lower, upper);
}

bool Lcp::degrade_to_dense() {
  if (!tracker_.has_value() ||
      backend_ == rs::offline::WorkFunctionTracker::Backend::kPwl) {
    return false;
  }
  tracker_->ensure_dense_backend();
  return true;
}

std::vector<std::uint8_t> Lcp::snapshot() const {
  rs::core::CheckpointWriter w;
  w.u8(static_cast<std::uint8_t>(backend_));
  w.i32(current_);
  w.i32(last_lower_);
  w.i32(last_upper_);
  w.u8(tracker_.has_value() ? 1 : 0);
  if (tracker_.has_value()) {
    const std::vector<std::uint8_t> nested = tracker_->snapshot();
    w.u64(nested.size());
    w.bytes(nested);
  }
  return w.seal(rs::core::kLcpCheckpointKind);
}

void Lcp::restore(const OnlineContext& context,
                  std::span<const std::uint8_t> bytes) {
  using rs::core::CheckpointFormatError;
  using rs::core::CheckpointMismatchError;
  rs::core::CheckpointReader r(bytes, rs::core::kLcpCheckpointKind);
  const std::uint8_t backend_tag = r.u8();
  const std::int32_t current = r.i32();
  const std::int32_t last_lower = r.i32();
  const std::int32_t last_upper = r.i32();
  const std::uint8_t has_tracker = r.u8();
  if (backend_tag >
      static_cast<std::uint8_t>(
          rs::offline::WorkFunctionTracker::Backend::kPwl)) {
    throw CheckpointFormatError("session checkpoint: invalid backend tag");
  }
  if (has_tracker > 1) {
    throw CheckpointFormatError("session checkpoint: invalid tracker flag");
  }
  if (static_cast<rs::offline::WorkFunctionTracker::Backend>(backend_tag) !=
      backend_) {
    throw CheckpointMismatchError(
        "session checkpoint: snapshot backend does not match this session");
  }
  check_session_bounds(current, context.m, "current state");
  check_session_bounds(last_lower, context.m, "last lower bound");
  check_session_bounds(last_upper, context.m, "last upper bound");

  // Fully decode (and validate) the nested tracker before mutating the
  // session, so a bad checkpoint leaves this object untouched.
  std::optional<rs::offline::WorkFunctionTracker> tracker;
  if (has_tracker == 1) {
    const std::uint64_t nested_size = r.u64();
    const std::vector<std::uint8_t> nested =
        r.bytes(static_cast<std::size_t>(nested_size));
    tracker.emplace(rs::offline::WorkFunctionTracker::restore(nested));
    if (tracker->max_servers() != context.m ||
        tracker->beta() != context.beta) {
      throw CheckpointMismatchError(
          "session checkpoint: tracker (m, beta) does not match context");
    }
  }
  r.finish();

  if (tracker.has_value()) {
    tracker_ = std::move(tracker);
  } else {
    tracker_.emplace(context.m, context.beta, backend_);
  }
  // Rewind state is never checkpointed (the wire format is unchanged);
  // restart the what-if window at the restored state.
  if (what_if_capacity_ > 0) tracker_->enable_rewind(what_if_capacity_);
  current_ = current;
  last_lower_ = last_lower;
  last_upper_ = last_upper;
}

rs::core::Schedule run_lcp_dense(const rs::core::DenseProblem& dense) {
  rs::offline::WorkFunctionTracker tracker(dense.max_servers(), dense.beta());
  rs::core::Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(dense.horizon()));
  int current = 0;
  for (int t = 1; t <= dense.horizon(); ++t) {
    tracker.advance(dense.row(t));
    current = rs::util::project(current, tracker.x_lower(), tracker.x_upper());
    schedule.push_back(current);
  }
  return schedule;
}

rs::core::Schedule run_lcp_pwl(const rs::core::PwlProblem& pwl) {
  rs::offline::WorkFunctionTracker tracker(
      pwl.max_servers(), pwl.beta(),
      rs::offline::WorkFunctionTracker::Backend::kPwl);
  rs::core::Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(pwl.horizon()));
  int current = 0;
  for (int t = 1; t <= pwl.horizon(); ++t) {
    tracker.advance(pwl.form(t));
    current = rs::util::project(current, tracker.x_lower(), tracker.x_upper());
    schedule.push_back(current);
  }
  return schedule;
}

}  // namespace rs::online
