// Memoryless balance algorithm (Bansal et al. [7]) for the continuous
// setting.
//
// On the arrival of f_t, move from x_{t−1} toward the minimizer of f̄_t and
// stop at the first point x_t where the hitting cost balances against the
// distance travelled:
//
//   f̄_t(x_t) = θ · (β/2) · |x_t − x_{t−1}|
//
// saturating at the minimizer when even there the hitting cost exceeds the
// balance.  With θ = 2 this is the memoryless algorithm that Bansal et al.
// prove 3-competitive — and optimally so among memoryless deterministic
// algorithms.  θ is exposed for the E11 ablation.
#pragma once

#include "online/online_algorithm.hpp"

namespace rs::online {

class MemorylessBalance final : public FractionalOnlineAlgorithm {
 public:
  explicit MemorylessBalance(double theta = 2.0);

  std::string name() const override { return "memoryless_balance"; }
  void reset(const OnlineContext& context) override;
  double decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) override;

 private:
  OnlineContext context_;
  double position_ = 0.0;
  double theta_ = 2.0;
};

}  // namespace rs::online
