#include "online/gradient_flow.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cost_function.hpp"

namespace rs::online {

GradientFlow::GradientFlow(double speed_scale) : speed_scale_(speed_scale) {
  if (!(speed_scale > 0.0)) {
    throw std::invalid_argument("GradientFlow: speed_scale must be > 0");
  }
}

void GradientFlow::reset(const OnlineContext& context) {
  context_ = context;
  position_ = 0.0;
}

double GradientFlow::decide(const rs::core::CostPtr& f,
                            std::span<const rs::core::CostPtr> lookahead) {
  (void)lookahead;
  const int m = context_.m;
  const rs::core::CostFunction& cost = *f;

  // Minimizer interval of the interpolated f̄: its endpoints are integers.
  const int arg_lo = rs::core::smallest_minimizer_convex(cost, m);
  int arg_hi = arg_lo;
  while (arg_hi < m && cost.at(arg_hi + 1) <= cost.at(arg_lo)) ++arg_hi;

  double remaining = 1.0;  // the slot has unit length
  double x = position_;

  if (x > static_cast<double>(arg_hi)) {
    // Move down: in cell (k, k+1) the slope is f(k+1) − f(k) > 0.
    while (remaining > 0.0 && x > static_cast<double>(arg_hi)) {
      const int cell = static_cast<int>(std::ceil(x)) - 1;  // cell [cell, cell+1]
      const double slope = cost.at(cell + 1) - cost.at(cell);
      if (!(slope > 0.0) || std::isinf(slope)) break;  // flat or infeasible cell
      const double speed = speed_scale_ * slope / context_.beta;
      const double target = std::max(static_cast<double>(cell),
                                     static_cast<double>(arg_hi));
      const double time_to_target = (x - target) / speed;
      if (time_to_target <= remaining) {
        x = target;
        remaining -= time_to_target;
      } else {
        x -= speed * remaining;
        remaining = 0.0;
      }
    }
  } else if (x < static_cast<double>(arg_lo)) {
    // Move up: in cell (k, k+1) the slope is f(k+1) − f(k) < 0.
    while (remaining > 0.0 && x < static_cast<double>(arg_lo)) {
      const int cell = static_cast<int>(std::floor(x));  // cell [cell, cell+1]
      const double slope = cost.at(cell + 1) - cost.at(cell);
      if (!(slope < 0.0) || std::isinf(slope)) break;
      const double speed = -speed_scale_ * slope / context_.beta;
      const double target = std::min(static_cast<double>(cell + 1),
                                     static_cast<double>(arg_lo));
      const double time_to_target = (target - x) / speed;
      if (time_to_target <= remaining) {
        x = target;
        remaining -= time_to_target;
      } else {
        x += speed * remaining;
        remaining = 0.0;
      }
    }
  }

  position_ = x;
  return position_;
}

}  // namespace rs::online
