// Discrete Lazy Capacity Provisioning (Section 3, Theorem 2).
//
//   x^LCP_0 = 0,   x^LCP_τ = [ x^LCP_{τ-1} ]^{x^U_τ}_{x^L_τ}   (eq. 13)
//
// where x^L_τ / x^U_τ are the smallest/largest minimizers of the work
// functions Ĉ^L_τ / Ĉ^U_τ (Section 3.1).  The algorithm changes its state
// only when forced out of the [x^L, x^U] corridor — it is 3-competitive and,
// by Theorem 4, optimally so among deterministic online algorithms for the
// discrete problem.
//
// The work-function tracker behind decide() auto-selects its backend: on
// instances whose slot costs admit compact convex-PWL forms every step is
// O(B log K) in breakpoint counts — independent of m, the configuration
// that scales LCP to 10⁵-10⁶ servers (see bench_scaling, E13) — and
// otherwise it runs the dense O(m) three-pass update.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "offline/work_function.hpp"
#include "online/online_algorithm.hpp"

namespace rs::online {

class Lcp final : public OnlineAlgorithm {
 public:
  /// `backend` pins the tracker backend; kAuto (default) selects per
  /// instance as described above.  kDense is the reference path (and the
  /// baseline the scaling benchmarks compare against); kPwl throws on
  /// costs without a compact convex-PWL form.
  explicit Lcp(rs::offline::WorkFunctionTracker::Backend backend =
                   rs::offline::WorkFunctionTracker::Backend::kAuto)
      : backend_(backend) {}

  std::string name() const override { return "lcp"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

  /// Bounds of the most recent step (for diagnostics and the Lemma-12/13
  /// structure tests).
  int last_lower() const { return last_lower_; }
  int last_upper() const { return last_upper_; }

  /// Decides `count` consecutive slots sharing one cost function — the
  /// streaming-serving primitive behind RLE tenant ingest.  The tracker
  /// advances once through advance_repeated (closed-form on the PWL
  /// backend), and the eq. 13 projection runs per slot, so decisions and
  /// corridor bounds are bit-identical to `count` individual decide(f)
  /// calls.  decisions/lower/upper receive one entry per slot and must
  /// each hold at least `count`; requires reset() (or restore()) first.
  void decide_run(const rs::core::CostFunction& f, int count,
                  std::span<int> decisions, std::span<int> lower,
                  std::span<int> upper);

  /// Same, with f already in exact convex-PWL form — the entry point for
  /// the fleet's shared cross-tenant conversion cache (fleet/form_cache.hpp):
  /// tenants sharing a slot cost convert it once and every session consumes
  /// the cached form.  Decisions are bit-identical to the CostFunction
  /// overload (the tracker consumes the identical form either way).
  void decide_run(const rs::core::ConvexPwl& f, int count,
                  std::span<int> decisions, std::span<int> lower,
                  std::span<int> upper);

  /// Keeps a rewind buffer of the last `capacity` decide/decide_run inputs
  /// on the underlying tracker (offline/work_function.hpp §rewind), the
  /// state behind TenantSession::what_if probes.  Survives reset()/
  /// restore() (re-enabled on the fresh tracker; rewind state itself is
  /// never checkpointed).  Pass 0 to disable.
  void enable_what_if(int capacity);

  /// The live tracker (nullptr before the first reset()/restore()) — read
  /// only; what-if consumers clone() it rather than mutate it.
  const rs::offline::WorkFunctionTracker* tracker() const noexcept {
    return tracker_.has_value() ? &*tracker_ : nullptr;
  }

  /// The eq. 13 projection state x^LCP of the most recent slot.
  int current_state() const noexcept { return current_; }

  /// Permanently switches the underlying tracker to the dense streaming
  /// backend, materializing the current work-function pair — the fleet
  /// controller's PWL → dense degradation rung.  Returns false when this
  /// session cannot degrade (constructed with the forced-kPwl backend, or
  /// not reset yet); subsequent decisions agree with the PWL path up to FP
  /// association order (bitwise on integer-valued instances, DESIGN.md §8).
  bool degrade_to_dense();

  /// Serialized session state (core/checkpoint.hpp container, kind
  /// kLcpCheckpointKind): the eq. 13 projection state plus the embedded
  /// work-function tracker snapshot.  A session restored at slot t decides
  /// the remaining slots bitwise-identically to the uninterrupted run.
  std::vector<std::uint8_t> snapshot() const;

  /// Replaces this session's state from snapshot() bytes, the crash-recovery
  /// counterpart of reset().  `context` must match the snapshotted session
  /// — same m, beta, and constructed backend — else
  /// core::CheckpointMismatchError; malformed or corrupted bytes raise the
  /// reader's typed errors and leave no partially-restored state observable
  /// (the session is only mutated after full validation).
  void restore(const OnlineContext& context,
               std::span<const std::uint8_t> bytes);

 private:
  void check_run_args(int count, std::span<const int> decisions,
                      std::span<const int> lower,
                      std::span<const int> upper) const;
  void project_run(int count, std::span<int> decisions, std::span<int> lower,
                   std::span<int> upper);

  rs::offline::WorkFunctionTracker::Backend backend_;
  // In-place tracker (workspace-backed): reset() re-emplaces without a heap
  // allocation, so replay harnesses can reset per run for free.
  std::optional<rs::offline::WorkFunctionTracker> tracker_;
  int current_ = 0;
  int last_lower_ = 0;
  int last_upper_ = 0;
  int what_if_capacity_ = 0;  // > 0: keep a rewind buffer on the tracker
};

/// Replays LCP over a dense instance, feeding the tracker one contiguous
/// row per slot.  With a lazily-materialized DenseProblem, row t is
/// evaluated exactly when slot t is revealed, so the no-lookahead contract
/// of the online setting is preserved; with an eager one the replay is a
/// pure table walk (the fast path for repeated analysis runs).  Produces
/// the same schedule as run_online(Lcp, p).
rs::core::Schedule run_lcp_dense(const rs::core::DenseProblem& dense);

/// Replays LCP over cached convex-PWL forms, feeding the tracker one
/// pre-converted form per slot — the PWL analog of run_lcp_dense, and the
/// batch engine's routing target: K jobs on one instance replay from one
/// PwlProblem instead of re-converting every slot per job.  Produces the
/// same schedule as run_online(Lcp(kPwl), p).
rs::core::Schedule run_lcp_pwl(const rs::core::PwlProblem& pwl);

}  // namespace rs::online
