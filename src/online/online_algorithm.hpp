// Online-algorithm interfaces and replay harness.
//
// In the online version of the data-center optimization problem the
// functions f_t arrive over time; at time t the algorithm knows f_1..f_t
// (plus, optionally, a prediction window f_{t+1}..f_{t+w}, Section 5.4) and
// must commit to x_t.  Integral algorithms play the discrete problem;
// fractional algorithms play the continuous extension.
#pragma once

#include <span>
#include <string>

#include "core/problem.hpp"
#include "core/schedule.hpp"

namespace rs::online {

/// Static instance parameters known to an online player up front.
struct OnlineContext {
  int m = 0;
  double beta = 1.0;
};

/// Deterministic or randomized online algorithm for the discrete problem.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Called once before a run; must clear all per-run state.
  virtual void reset(const OnlineContext& context) = 0;

  /// Observes f_t (and an optional prediction window of future functions,
  /// empty unless the replayer is given w > 0) and returns x_t in [0, m].
  virtual int decide(const rs::core::CostPtr& f,
                     std::span<const rs::core::CostPtr> lookahead) = 0;
};

/// Online algorithm for the continuous setting: states are reals in [0, m].
class FractionalOnlineAlgorithm {
 public:
  virtual ~FractionalOnlineAlgorithm() = default;

  virtual std::string name() const = 0;
  virtual void reset(const OnlineContext& context) = 0;
  virtual double decide(const rs::core::CostPtr& f,
                        std::span<const rs::core::CostPtr> lookahead) = 0;
};

/// Replays an instance through an online algorithm, revealing f_t one slot
/// at a time plus `window` future functions, and validates every decision
/// against [0, m].  Returns the produced schedule.
rs::core::Schedule run_online(OnlineAlgorithm& algorithm,
                              const rs::core::Problem& p, int window = 0);

rs::core::FractionalSchedule run_online(FractionalOnlineAlgorithm& algorithm,
                                        const rs::core::Problem& p,
                                        int window = 0);

}  // namespace rs::online
