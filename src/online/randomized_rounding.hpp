// Randomized rounding of fractional schedules (Section 4.1) and the full
// 2-competitive randomized online algorithm of Theorem 3.
//
// Given the fractional state x̄_t, the integral state is always one of
// ⌊x̄_t⌋ or ⌈x̄_t⌉* (the strict ceiling, = ⌊x̄_t⌋+1).  With
// x̄'_{t−1} = [x̄_{t−1}]^{⌈x̄_t⌉*}_{⌊x̄_t⌋}:
//
//   increasing step (x̄_{t−1} <= x̄_t): if already at the upper state, stay;
//     otherwise jump up with probability p↑ = (x̄_t − x̄'_{t−1}) /
//     (1 − frac(x̄'_{t−1}));
//   decreasing step: symmetric with p↓ = (x̄'_{t−1} − x̄_t) / frac(x̄'_{t−1}).
//
// Lemma 18: Pr[x_t = ⌈x̄_t⌉*] = frac(x̄_t); Lemmas 19/20: the expected
// operating and switching costs equal the fractional ones, so the rounded
// schedule inherits the fractional algorithm's competitive ratio.
#pragma once

#include <memory>

#include "online/online_algorithm.hpp"
#include "util/rng.hpp"

namespace rs::online {

/// Transition rule of the rounding chain: probability that the next
/// integral state is the upper state ⌈next⌉*, given the current integral
/// state and the previous/next fractional states.  Pure function exposed so
/// the Lemma-18 tests can evolve exact two-point distributions.
double rounding_upper_probability(int current, double previous_fractional,
                                  double next_fractional);

/// Stateful rounding chain.  Feed fractional states one at a time.
class RoundingChain {
 public:
  explicit RoundingChain(rs::util::Rng rng) : rng_(rng) {}

  /// Advances the chain to fractional state `fractional` and returns the
  /// sampled integral state.
  int step(double fractional);

  int current() const noexcept { return current_; }

 private:
  rs::util::Rng rng_;
  int current_ = 0;
  double previous_fractional_ = 0.0;
};

/// Rounds a complete fractional schedule (offline use and Monte-Carlo
/// analysis).  Deterministic given the seed.
rs::core::Schedule round_schedule(const rs::core::FractionalSchedule& x,
                                  std::uint64_t seed);

/// The randomized online algorithm of Section 4: runs a fractional
/// 2-competitive algorithm (GradientFlow by default) on the continuous
/// extension and rounds its trajectory online.
class RandomizedRounding final : public OnlineAlgorithm {
 public:
  RandomizedRounding(std::unique_ptr<FractionalOnlineAlgorithm> fractional,
                     std::uint64_t seed);

  /// Convenience: LevelFlow-backed instance (the Theorem-3 algorithm).
  explicit RandomizedRounding(std::uint64_t seed);

  std::string name() const override { return "randomized_rounding"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

  /// Fractional state after the last decide() (the oblivious adversary of
  /// Theorem 8 plays against these marginals).
  double last_fractional() const { return last_fractional_; }

 private:
  std::unique_ptr<FractionalOnlineAlgorithm> fractional_;
  std::uint64_t seed_;
  std::unique_ptr<RoundingChain> chain_;
  double last_fractional_ = 0.0;
};

}  // namespace rs::online
