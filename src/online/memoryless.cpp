#include "online/memoryless.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cost_function.hpp"

namespace rs::online {

MemorylessBalance::MemorylessBalance(double theta) : theta_(theta) {
  if (!(theta > 0.0)) {
    throw std::invalid_argument("MemorylessBalance: theta must be > 0");
  }
}

void MemorylessBalance::reset(const OnlineContext& context) {
  context_ = context;
  position_ = 0.0;
}

double MemorylessBalance::decide(const rs::core::CostPtr& f,
                                 std::span<const rs::core::CostPtr> lookahead) {
  (void)lookahead;
  const rs::core::CostFunction& cost = *f;
  const int m = context_.m;

  const int arg_lo = rs::core::smallest_minimizer_convex(cost, m);
  int arg_hi = arg_lo;
  while (arg_hi < m && cost.at(arg_hi + 1) <= cost.at(arg_lo)) ++arg_hi;

  // Target endpoint of the minimizer interval on our side.
  double target;
  if (position_ < static_cast<double>(arg_lo)) {
    target = static_cast<double>(arg_lo);
  } else if (position_ > static_cast<double>(arg_hi)) {
    target = static_cast<double>(arg_hi);
  } else {
    return position_;  // already minimal; balance keeps us in place
  }

  // g(δ) = f̄(x_{t−1} ± δ) − θ(β/2)δ is strictly decreasing in δ until the
  // minimizer (f̄ non-increasing toward it, linear term increasing), so the
  // balance point is found by bisection on δ ∈ [0, |target − position|].
  const double direction = target > position_ ? 1.0 : -1.0;
  const double max_delta = std::fabs(target - position_);
  const double rate = theta_ * context_.beta / 2.0;

  auto imbalance = [&](double delta) {
    return rs::core::interpolate(cost, position_ + direction * delta) -
           rate * delta;
  };

  double x_new;
  if (imbalance(max_delta) >= 0.0) {
    x_new = target;  // hitting cost still dominates at the minimizer
  } else if (imbalance(0.0) <= 0.0) {
    x_new = position_;  // already balanced without moving
  } else {
    double lo = 0.0;
    double hi = max_delta;
    for (int iter = 0; iter < 80; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (imbalance(mid) > 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    x_new = position_ + direction * 0.5 * (lo + hi);
  }

  position_ = x_new;
  return position_;
}

}  // namespace rs::online
