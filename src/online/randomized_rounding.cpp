#include "online/randomized_rounding.hpp"

#include <cmath>
#include <stdexcept>

#include "online/level_flow.hpp"
#include "util/math_util.hpp"

namespace rs::online {

using rs::util::ceil_star;
using rs::util::frac;
using rs::util::project;

double rounding_upper_probability(int current, double previous_fractional,
                                  double next_fractional) {
  const double lower = std::floor(next_fractional);
  const double upper = static_cast<double>(ceil_star(next_fractional));
  // x̄'_{t−1}: previous fractional state projected into [⌊x̄_t⌋, ⌈x̄_t⌉*].
  const double projected = project(previous_fractional, lower, upper);
  // Within-cell coordinate of the projection, in [0, 1].  On single-cell
  // moves this equals the paper's frac(x̄'_{t−1}); for multi-cell moves the
  // projection lands on the cell border, where the literal frac() would
  // wrap to 0 and break the Lemma-18 marginals.
  const double rel = projected - lower;

  if (previous_fractional <= next_fractional) {
    // Increasing step: keep the upper state if already there, otherwise
    // jump up with p↑ = (x̄_t − x̄'_{t−1}) / (1 − frac(x̄'_{t−1})).
    if (current >= static_cast<int>(upper)) return 1.0;
    const double p_up = (next_fractional - projected) / (1.0 - rel);
    return project(p_up, 0.0, 1.0);
  }
  // Decreasing step: keep the lower state if already there, otherwise drop
  // with p↓ = (x̄'_{t−1} − x̄_t) / frac(x̄'_{t−1}).
  if (current <= static_cast<int>(lower)) return 0.0;
  const double p_down = (projected - next_fractional) / rel;
  return 1.0 - project(p_down, 0.0, 1.0);
}

int RoundingChain::step(double fractional) {
  if (fractional < 0.0) {
    throw std::invalid_argument("RoundingChain::step: negative state");
  }
  const int lower = static_cast<int>(std::floor(fractional));
  const int upper = static_cast<int>(ceil_star(fractional));
  const double p_upper =
      rounding_upper_probability(current_, previous_fractional_, fractional);
  current_ = rng_.bernoulli(p_upper) ? upper : lower;
  previous_fractional_ = fractional;
  return current_;
}

rs::core::Schedule round_schedule(const rs::core::FractionalSchedule& x,
                                  std::uint64_t seed) {
  RoundingChain chain{rs::util::Rng(seed)};
  rs::core::Schedule out;
  out.reserve(x.size());
  for (double value : x) out.push_back(chain.step(value));
  return out;
}

RandomizedRounding::RandomizedRounding(
    std::unique_ptr<FractionalOnlineAlgorithm> fractional, std::uint64_t seed)
    : fractional_(std::move(fractional)), seed_(seed) {
  if (!fractional_) {
    throw std::invalid_argument("RandomizedRounding: null fractional");
  }
}

RandomizedRounding::RandomizedRounding(std::uint64_t seed)
    : RandomizedRounding(std::make_unique<LevelFlow>(), seed) {}

void RandomizedRounding::reset(const OnlineContext& context) {
  fractional_->reset(context);
  chain_ = std::make_unique<RoundingChain>(rs::util::Rng(seed_));
  last_fractional_ = 0.0;
}

int RandomizedRounding::decide(const rs::core::CostPtr& f,
                               std::span<const rs::core::CostPtr> lookahead) {
  if (!chain_) throw std::logic_error("RandomizedRounding: reset() first");
  last_fractional_ = fractional_->decide(f, lookahead);
  return chain_->step(last_fractional_);
}

}  // namespace rs::online
