#include "online/baselines.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cost_function.hpp"
#include "util/math_util.hpp"

namespace rs::online {

int FollowTheMinimizer::decide(const rs::core::CostPtr& f,
                               std::span<const rs::core::CostPtr> lookahead) {
  (void)lookahead;
  return rs::core::smallest_minimizer_convex(*f, context_.m);
}

StaticProvisioning::StaticProvisioning(int level) : level_(level) {
  if (level < 0) throw std::invalid_argument("StaticProvisioning: level < 0");
}

void StaticProvisioning::reset(const OnlineContext& context) {
  effective_level_ = std::min(level_, context.m);
}

int StaticProvisioning::decide(const rs::core::CostPtr& f,
                               std::span<const rs::core::CostPtr> lookahead) {
  (void)f;
  (void)lookahead;
  return effective_level_;
}

StaticOptimum best_static_level(const rs::core::Problem& p) {
  StaticOptimum best;
  for (int level = 0; level <= p.max_servers(); ++level) {
    rs::util::KahanSum sum;
    sum.add(p.beta() * static_cast<double>(level));
    for (int t = 1; t <= p.horizon(); ++t) {
      sum.add(p.cost_at(t, level));
      if (std::isinf(sum.value())) break;
    }
    const double cost = sum.value();
    if (cost < best.cost) {
      best.cost = cost;
      best.level = level;
    }
  }
  return best;
}

}  // namespace rs::online
