#include "online/level_flow.hpp"

#include <cmath>
#include <stdexcept>

#include "core/cost_function.hpp"
#include "util/math_util.hpp"

namespace rs::online {

LevelFlow::LevelFlow(double counter_scale) : counter_scale_(counter_scale) {
  if (!(counter_scale > 0.0)) {
    throw std::invalid_argument("LevelFlow: counter_scale must be > 0");
  }
}

void LevelFlow::reset(const OnlineContext& context) {
  context_ = context;
  profile_.assign(static_cast<std::size_t>(std::max(0, context.m)), 0.0);
}

double LevelFlow::position() const {
  rs::util::KahanSum sum;
  for (double p : profile_) sum.add(p);
  return sum.value();
}

double LevelFlow::decide(const rs::core::CostPtr& f,
                         std::span<const rs::core::CostPtr> lookahead) {
  (void)lookahead;
  const rs::core::CostFunction& cost = *f;
  const int m = context_.m;

  std::vector<double> values(static_cast<std::size_t>(m) + 1);
  int first_finite = -1;
  int last_finite = -1;
  for (int x = 0; x <= m; ++x) {
    values[static_cast<std::size_t>(x)] = cost.at(x);
    if (std::isfinite(values[static_cast<std::size_t>(x)])) {
      if (first_finite < 0) first_finite = x;
      last_finite = x;
    }
  }
  if (first_finite < 0) return position();  // fully infeasible slot

  for (int k = 0; k < m; ++k) {
    double& p = profile_[static_cast<std::size_t>(k)];
    if (k < first_finite) {
      p = 1.0;  // +inf prefix: every feasible x keeps these levels on
    } else if (k >= last_finite) {
      p = 0.0;  // +inf suffix: every feasible x keeps these levels off
    } else {
      const double slope = values[static_cast<std::size_t>(k + 1)] -
                           values[static_cast<std::size_t>(k)];
      if (slope < 0.0) {
        p = std::min(1.0, p + counter_scale_ * (-slope) / context_.beta);
      } else if (slope > 0.0) {
        p = std::max(0.0, p - counter_scale_ * slope / context_.beta);
      }
    }
  }
  return position();
}

}  // namespace rs::online
