// rs-lint: minmax-audited — the windowed work-function folds are approved
// branch-free kernels: a NaN slot cost is rejected upstream (tenant ingest
// probes, engine NaN classification) before it can reach these labels, and
// the RIGHTSIZER_AUDIT tracker checks pin the labels NaN-free
// (DESIGN.md §13).
#include "online/lcp_window.hpp"

#include <algorithm>
#include <string>

#include "core/checkpoint.hpp"
#include "util/math_util.hpp"
#include "util/workspace.hpp"

namespace rs::online {

using rs::util::kInf;

void completion_costs(std::span<const rs::core::CostPtr> window, double beta,
                      bool charge_up, std::span<double> d) {
  // Backward DP: D_j(x) = min_{x'} [ switch(x -> x') + f_j(x') + D_{j+1}(x') ]
  // with D_{end}(x) = 0.  switch(x -> x') = β(x'−x)⁺ under L-accounting and
  // β(x−x')⁺ under U-accounting.  Labels are extended reals in [0, +inf],
  // so the f_j addition needs no infinity guard.
  const int m = static_cast<int>(d.size()) - 1;
  std::fill(d.begin(), d.end(), 0.0);
  rs::util::Workspace& workspace = rs::util::this_thread_workspace();
  auto g = workspace.borrow<double>(d.size());
  auto frow = workspace.borrow<double>(d.size());
  for (std::size_t j = window.size(); j-- > 0;) {
    window[j]->eval_row(m, frow.span());  // one virtual call per window row
    for (int x = 0; x <= m; ++x) {
      g[static_cast<std::size_t>(x)] =
          frow[static_cast<std::size_t>(x)] + d[static_cast<std::size_t>(x)];
    }
    if (charge_up) {
      // D(x) = min( min_{x'>=x} g(x') + β(x'−x), min_{x'<=x} g(x') ).
      double best_shifted = kInf;  // min g(x') + βx'
      for (int x = m; x >= 0; --x) {
        best_shifted =
            std::min(best_shifted, g[static_cast<std::size_t>(x)] + beta * x);
        d[static_cast<std::size_t>(x)] = best_shifted - beta * x;
      }
      double prefix = kInf;
      for (int x = 0; x <= m; ++x) {
        prefix = std::min(prefix, g[static_cast<std::size_t>(x)]);
        d[static_cast<std::size_t>(x)] =
            std::min(d[static_cast<std::size_t>(x)], prefix);
      }
    } else {
      // D(x) = min( min_{x'<=x} g(x') + β(x−x'), min_{x'>=x} g(x') ).
      double best_shifted = kInf;  // min g(x') − βx'
      for (int x = 0; x <= m; ++x) {
        best_shifted =
            std::min(best_shifted, g[static_cast<std::size_t>(x)] - beta * x);
        d[static_cast<std::size_t>(x)] = best_shifted + beta * x;
      }
      double suffix = kInf;
      for (int x = m; x >= 0; --x) {
        suffix = std::min(suffix, g[static_cast<std::size_t>(x)]);
        d[static_cast<std::size_t>(x)] =
            std::min(d[static_cast<std::size_t>(x)], suffix);
      }
    }
  }
}

std::vector<double> completion_costs(
    std::span<const rs::core::CostPtr> window, int m, double beta,
    bool charge_up) {
  std::vector<double> d(static_cast<std::size_t>(m) + 1);
  completion_costs(window, beta, charge_up, d);
  return d;
}

rs::core::ConvexPwl completion_costs_pwl(
    std::span<const rs::core::ConvexPwl> window, int m, double beta,
    bool charge_up) {
  // Same recursion as the dense pass (add f_j, then relax), with the relax
  // realized as a slope clip: under L-accounting (charge_up) future
  // up-moves cost β, i.e. slopes below −β are raised onto the −β tangent
  // and the increasing part is flattened — the charge-down clip; the
  // U-accounting window mirrors it.
  rs::core::ConvexPwl d = rs::core::ConvexPwl::constant(0, m, 0.0);
  for (std::size_t j = window.size(); j-- > 0;) {
    d.add(window[j]);
    if (charge_up) {
      d.relax_charge_down(beta, 0, m);
    } else {
      d.relax_charge_up(beta, 0, m);
    }
  }
  return d;
}

void WindowedLcp::reset(const OnlineContext& context) {
  context_ = context;
  tracker_.emplace(context.m, context.beta, backend_);
  form_cache_.clear();
  current_ = 0;
  last_lower_ = 0;
  last_upper_ = 0;
}

std::vector<std::uint8_t> WindowedLcp::snapshot() const {
  rs::core::CheckpointWriter w;
  w.u8(static_cast<std::uint8_t>(backend_));
  w.i32(context_.m);
  w.f64(context_.beta);
  w.i32(current_);
  w.i32(last_lower_);
  w.i32(last_upper_);
  w.u8(tracker_.has_value() ? 1 : 0);
  if (tracker_.has_value()) {
    const std::vector<std::uint8_t> nested = tracker_->snapshot();
    w.u64(nested.size());
    w.bytes(nested);
  }
  return w.seal(rs::core::kWindowedLcpCheckpointKind);
}

void WindowedLcp::restore(const OnlineContext& context,
                          std::span<const std::uint8_t> bytes) {
  using rs::core::CheckpointFormatError;
  using rs::core::CheckpointMismatchError;
  rs::core::CheckpointReader r(bytes, rs::core::kWindowedLcpCheckpointKind);
  const std::uint8_t backend_tag = r.u8();
  const std::int32_t m = r.i32();
  const double beta = r.f64();
  const std::int32_t current = r.i32();
  const std::int32_t last_lower = r.i32();
  const std::int32_t last_upper = r.i32();
  const std::uint8_t has_tracker = r.u8();
  if (backend_tag >
      static_cast<std::uint8_t>(
          rs::offline::WorkFunctionTracker::Backend::kPwl)) {
    throw CheckpointFormatError("session checkpoint: invalid backend tag");
  }
  if (has_tracker > 1) {
    throw CheckpointFormatError("session checkpoint: invalid tracker flag");
  }
  if (static_cast<rs::offline::WorkFunctionTracker::Backend>(backend_tag) !=
      backend_) {
    throw CheckpointMismatchError(
        "session checkpoint: snapshot backend does not match this session");
  }
  if (m != context.m || beta != context.beta) {
    throw CheckpointMismatchError(
        "session checkpoint: snapshot (m, beta) does not match context");
  }
  const auto check_bounds = [&](std::int32_t value, const char* what) {
    if (value < 0 || value > m) {
      throw CheckpointFormatError(std::string("session checkpoint: ") + what +
                                  " outside [0, m]");
    }
  };
  check_bounds(current, "current state");
  check_bounds(last_lower, "last lower bound");
  check_bounds(last_upper, "last upper bound");

  // Fully decode the nested tracker before mutating the session.
  std::optional<rs::offline::WorkFunctionTracker> tracker;
  if (has_tracker == 1) {
    const std::uint64_t nested_size = r.u64();
    const std::vector<std::uint8_t> nested =
        r.bytes(static_cast<std::size_t>(nested_size));
    tracker.emplace(rs::offline::WorkFunctionTracker::restore(nested));
    if (tracker->max_servers() != context.m ||
        tracker->beta() != context.beta) {
      throw CheckpointMismatchError(
          "session checkpoint: tracker (m, beta) does not match context");
    }
  }
  r.finish();

  context_ = context;
  if (tracker.has_value()) {
    tracker_ = std::move(tracker);
  } else {
    tracker_.emplace(context.m, context.beta, backend_);
  }
  form_cache_.clear();
  current_ = current;
  last_lower_ = last_lower;
  last_upper_ = last_upper;
}

int WindowedLcp::decide(const rs::core::CostPtr& f,
                        std::span<const rs::core::CostPtr> lookahead) {
  const int m = context_.m;

  // PWL fast path: usable while the tracker has not fallen back to dense
  // and the revealed cost plus the whole lookahead convert compactly.  The
  // per-step cost is then independent of m.
  if (backend_ != rs::offline::WorkFunctionTracker::Backend::kDense &&
      (tracker_->tau() == 0 || tracker_->using_pwl())) {
    const int budget =
        backend_ == rs::offline::WorkFunctionTracker::Backend::kPwl
            ? rs::core::kUnboundedBreakpoints
            : rs::core::compact_pwl_budget_for(m);
    // Form lookup through the sliding cache: the previous step cached the
    // forms of [f_prev, lookahead_prev...]; this step's f is the previous
    // lookahead's head and its lookahead overlaps the previous one shifted
    // by one, so consuming matching cache entries front to back leaves
    // exactly the newly revealed window tail to convert.  Non-sliding
    // callers simply miss and convert — correctness never depends on the
    // cache.
    const auto take_form =
        [this, m, budget](
            const rs::core::CostPtr& g) -> std::optional<rs::core::ConvexPwl> {
      while (!form_cache_.empty() && form_cache_.front().first != g) {
        form_cache_.pop_front();
      }
      if (!form_cache_.empty()) {
        rs::core::ConvexPwl form = std::move(form_cache_.front().second);
        form_cache_.pop_front();
        return form;
      }
      return g->as_convex_pwl(m, budget);
    };
    std::optional<rs::core::ConvexPwl> fp = take_form(f);
    if (fp) {
      std::vector<rs::core::ConvexPwl> window;
      window.reserve(lookahead.size());
      std::deque<std::pair<rs::core::CostPtr, rs::core::ConvexPwl>> next_cache;
      bool convertible = true;
      for (const rs::core::CostPtr& g : lookahead) {
        std::optional<rs::core::ConvexPwl> gp = take_form(g);
        if (!gp) {
          convertible = false;
          break;
        }
        // The form is needed twice: in this step's window pass and as the
        // next step's cache entry.  An O(K) copy replaces a re-conversion.
        next_cache.emplace_back(g, *gp);
        window.push_back(std::move(*gp));
      }
      form_cache_ = std::move(next_cache);
      if (convertible) {
        tracker_->advance(*fp);
        const rs::core::ConvexPwl d_lower =
            completion_costs_pwl(window, m, context_.beta, /*charge_up=*/true);
        const rs::core::ConvexPwl d_upper =
            completion_costs_pwl(window, m, context_.beta,
                                 /*charge_up=*/false);
        rs::core::ConvexPwl sum_lower = tracker_->chat_lower_pwl();
        sum_lower.add(d_lower);
        rs::core::ConvexPwl sum_upper = tracker_->chat_upper_pwl();
        sum_upper.add(d_upper);
        int lower = 0;
        int upper = m;  // all-infinite sums: the dense scan's (0, m)
        if (!sum_lower.is_infinite()) {
          lower = sum_lower.argmin().lo;   // smallest minimizer, strict <
          upper = sum_upper.argmin().hi;   // largest minimizer, <=
        }
        last_lower_ = lower;
        last_upper_ = upper;
        const int lo = std::min(lower, upper);
        const int hi = std::max(lower, upper);
        current_ = rs::util::project(current_, lo, hi);
        return current_;
      }
    }
    // Not compactly convertible.  A forced-PWL run cannot proceed — name
    // the cause (matching the Lcp/tracker contract) rather than tripping
    // the tracker's internal forced-PWL invariant below.
    if (backend_ == rs::offline::WorkFunctionTracker::Backend::kPwl) {
      throw std::invalid_argument(
          "WindowedLcp: revealed cost or lookahead has no convex-PWL form "
          "(forced-PWL backend)");
    }
    // Latch the dense backend so every later per-x query below stays O(1);
    // the PWL path (and with it the form cache) is never revisited.
    form_cache_.clear();
    tracker_->ensure_dense_backend();
  }

  tracker_->advance(*f);

  const std::size_t width = static_cast<std::size_t>(m) + 1;
  rs::util::Workspace& workspace = rs::util::this_thread_workspace();
  auto d_lower = workspace.borrow<double>(width);
  auto d_upper = workspace.borrow<double>(width);
  completion_costs(lookahead, context_.beta, /*charge_up=*/true,
                   d_lower.span());
  completion_costs(lookahead, context_.beta, /*charge_up=*/false,
                   d_upper.span());

  // Smallest minimizer of Ĉ^L_τ + D^L; largest minimizer of Ĉ^U_τ + D^U.
  int lower = 0;
  int upper = 0;
  double best_lower = kInf;
  double best_upper = kInf;
  for (int x = 0; x <= m; ++x) {
    const double l = tracker_->chat_lower(x) + d_lower[static_cast<std::size_t>(x)];
    const double u = tracker_->chat_upper(x) + d_upper[static_cast<std::size_t>(x)];
    if (l < best_lower) {
      best_lower = l;
      lower = x;
    }
    if (u <= best_upper) {
      best_upper = u;
      upper = x;
    }
  }
  last_lower_ = lower;
  last_upper_ = upper;
  // With predictions the corridor may inverte on pathological ties; projecting
  // into [min, max] keeps the decision well-defined.
  const int lo = std::min(lower, upper);
  const int hi = std::max(lower, upper);
  current_ = rs::util::project(current_, lo, hi);
  return current_;
}

}  // namespace rs::online
