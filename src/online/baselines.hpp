// Baseline policies used as comparison points in the experiments:
// naive online strategies and the static-provisioning offline references of
// the E10 trace study.
#pragma once

#include "online/online_algorithm.hpp"

namespace rs::online {

/// x_t = smallest minimizer of f_t: chases the instantaneous optimum and
/// ignores switching cost entirely.  No constant competitive ratio.
class FollowTheMinimizer final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "follow_min"; }
  void reset(const OnlineContext& context) override { context_ = context; }
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

 private:
  OnlineContext context_;
};

/// Constant provisioning at a fixed level (clamped to m).
class StaticProvisioning final : public OnlineAlgorithm {
 public:
  explicit StaticProvisioning(int level);
  std::string name() const override { return "static"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

 private:
  int level_;
  int effective_level_ = 0;
};

/// Never-switch-off reference: all m servers active the whole horizon.
class AllOn final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "all_on"; }
  void reset(const OnlineContext& context) override { context_ = context; }
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override {
    (void)f;
    (void)lookahead;
    return context_.m;
  }

 private:
  OnlineContext context_;
};

/// Offline reference for the savings study: the best *single* provisioning
/// level for the whole horizon, min_x [ Σ_t f_t(x) + βx ].  Returns the
/// level and its total cost.
struct StaticOptimum {
  int level = 0;
  double cost = rs::util::kInf;
};
StaticOptimum best_static_level(const rs::core::Problem& p);

}  // namespace rs::online
