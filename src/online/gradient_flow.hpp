// Fractional 2-competitive online algorithm (Bansal et al. [7]), in its
// continuous-time gradient form.
//
// Within each time slot the state moves toward the minimizer of the
// (interpolated) arriving cost f̄_t with speed |∂f̄_t(x)| / β, integrated
// over the unit-length slot.  On the lower-bound family ϕ0/ϕ1 with β = 2
// this is exactly the paper's algorithm B of Section 5.2.1 (a step of ε/2
// toward the minimizer per slot, saturating at it), which the paper states
// is the specialization of Bansal et al.'s algorithm.  Intuition for the
// speed: moving distance d costs (β/2)·d per direction amortized, while
// lingering at derivative magnitude s costs s per unit time; equalizing
// marginal movement spend with marginal hitting savings at ratio 2 yields
// ẋ = s/β.  See DESIGN.md §2 for the substitution note.
//
// f̄_t is the eq.-(3) interpolation, so its slope is constant within every
// integer cell and the flow integrates in closed form cell by cell.
#pragma once

#include "online/online_algorithm.hpp"

namespace rs::online {

class GradientFlow final : public FractionalOnlineAlgorithm {
 public:
  /// `speed_scale` multiplies the flow speed (1.0 = the 2-competitive
  /// setting; other values are exposed for the ablation experiment E11).
  explicit GradientFlow(double speed_scale = 1.0);

  std::string name() const override { return "gradient_flow"; }
  void reset(const OnlineContext& context) override;
  double decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) override;

  double position() const { return position_; }

 private:
  OnlineContext context_;
  double position_ = 0.0;
  double speed_scale_ = 1.0;
};

}  // namespace rs::online
