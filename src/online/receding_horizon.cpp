#include "online/receding_horizon.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/math_util.hpp"

namespace rs::online {

using rs::util::kInf;

namespace {

// The fixed-horizon DP over pre-materialized value rows — the shared core
// of plan_fixed_horizon (which evaluates its rows on the spot) and
// WarmHorizonPlanner (which slides a row cache across steps), so both
// produce bitwise-identical plans.  Forward DP with parent pointers;
// O(horizon · m) via the usual prefix/suffix split of
// min_{x'} [ W(x') + β(x−x')⁺ ].
std::vector<int> plan_over_rows(
    int start_state, const std::vector<const std::vector<double>*>& rows,
    int m, double beta) {
  const std::size_t horizon = rows.size();
  std::vector<double> labels(static_cast<std::size_t>(m) + 1, kInf);
  labels[static_cast<std::size_t>(start_state)] = 0.0;
  std::vector<std::vector<std::int32_t>> parents(
      horizon, std::vector<std::int32_t>(static_cast<std::size_t>(m) + 1, -1));
  std::vector<double> next(static_cast<std::size_t>(m) + 1);

  for (std::size_t j = 0; j < horizon; ++j) {
    const std::vector<double>& cost = *rows[j];
    // Suffix minima (free power-down).
    std::vector<double> suffix_min(static_cast<std::size_t>(m) + 1);
    std::vector<std::int32_t> suffix_arg(static_cast<std::size_t>(m) + 1);
    suffix_min[static_cast<std::size_t>(m)] = labels[static_cast<std::size_t>(m)];
    suffix_arg[static_cast<std::size_t>(m)] = m;
    for (int x = m - 1; x >= 0; --x) {
      if (labels[static_cast<std::size_t>(x)] <=
          suffix_min[static_cast<std::size_t>(x + 1)]) {
        suffix_min[static_cast<std::size_t>(x)] = labels[static_cast<std::size_t>(x)];
        suffix_arg[static_cast<std::size_t>(x)] = x;
      } else {
        suffix_min[static_cast<std::size_t>(x)] =
            suffix_min[static_cast<std::size_t>(x + 1)];
        suffix_arg[static_cast<std::size_t>(x)] =
            suffix_arg[static_cast<std::size_t>(x + 1)];
      }
    }
    // Prefix minima of labels(x') − βx' (paid power-up).
    double prefix_min = kInf;
    std::int32_t prefix_arg = -1;
    for (int x = 0; x <= m; ++x) {
      const double shifted =
          labels[static_cast<std::size_t>(x)] - beta * static_cast<double>(x);
      if (shifted < prefix_min) {
        prefix_min = shifted;
        prefix_arg = static_cast<std::int32_t>(x);
      }
      const double up = prefix_min + beta * static_cast<double>(x);
      const double stay = suffix_min[static_cast<std::size_t>(x)];
      double transition;
      std::int32_t parent;
      if (up < stay) {
        transition = up;
        parent = prefix_arg;
      } else {
        transition = stay;
        parent = suffix_arg[static_cast<std::size_t>(x)];
      }
      const double fx = cost[static_cast<std::size_t>(x)];
      next[static_cast<std::size_t>(x)] =
          std::isinf(fx) || std::isinf(transition) ? kInf : transition + fx;
      parents[j][static_cast<std::size_t>(x)] = parent;
    }
    labels.swap(next);
  }

  // Backtrack from the cheapest final state.
  int state = 0;
  for (int x = 1; x <= m; ++x) {
    if (labels[static_cast<std::size_t>(x)] < labels[static_cast<std::size_t>(state)]) {
      state = x;
    }
  }
  if (std::isinf(labels[static_cast<std::size_t>(state)])) {
    throw std::logic_error("plan_fixed_horizon: infeasible window");
  }
  std::vector<int> plan(horizon, 0);
  for (std::size_t j = horizon; j-- > 0;) {
    plan[j] = state;
    state = parents[j][static_cast<std::size_t>(state)];
  }
  return plan;
}

std::vector<double> evaluate_row(const rs::core::CostFunction& cost, int m) {
  std::vector<double> row(static_cast<std::size_t>(m) + 1);
  for (int x = 0; x <= m; ++x) {
    row[static_cast<std::size_t>(x)] = cost.at(x);
  }
  return row;
}

}  // namespace

std::vector<int> plan_fixed_horizon(
    int start_state, const rs::core::CostPtr& f,
    std::span<const rs::core::CostPtr> lookahead, int m, double beta) {
  const std::size_t horizon = 1 + lookahead.size();
  std::vector<std::vector<double>> storage;
  storage.reserve(horizon);
  std::vector<const std::vector<double>*> rows;
  rows.reserve(horizon);
  for (std::size_t j = 0; j < horizon; ++j) {
    storage.push_back(evaluate_row(j == 0 ? *f : *lookahead[j - 1], m));
    rows.push_back(&storage.back());
  }
  return plan_over_rows(start_state, rows, m, beta);
}

void WarmHorizonPlanner::reset(const OnlineContext& context) {
  context_ = context;
  rows_.clear();
  scratch_rows_.clear();
  signature_.clear();
  prev_start_ = -1;
  plan_.clear();
}

const std::vector<int>& WarmHorizonPlanner::plan(
    int start_state, const rs::core::CostPtr& f,
    std::span<const rs::core::CostPtr> lookahead) {
  const std::size_t horizon = 1 + lookahead.size();

  // Slide the row cache: carry over the slots still visible, evaluate the
  // (typically one) slot that just entered the window, and drop the rest.
  scratch_rows_.clear();
  std::vector<const rs::core::CostFunction*> signature;
  signature.reserve(horizon);
  std::vector<const std::vector<double>*> rows;
  rows.reserve(horizon);
  for (std::size_t j = 0; j < horizon; ++j) {
    const rs::core::CostFunction* cost =
        j == 0 ? f.get() : lookahead[j - 1].get();
    signature.push_back(cost);
    auto [it, inserted] = scratch_rows_.try_emplace(cost, nullptr);
    if (inserted) {
      if (const auto hit = rows_.find(cost); hit != rows_.end()) {
        it->second = hit->second;
        ++stats_.row_reuses;
      } else {
        it->second = std::make_shared<const std::vector<double>>(
            evaluate_row(*cost, context_.m));
        ++stats_.row_evaluations;
      }
    } else {
      ++stats_.row_reuses;  // repeated slot within the window
    }
    rows.push_back(it->second.get());
  }
  rows_.swap(scratch_rows_);

  // Unchanged overlapping horizon: the previous solve IS this solve.
  if (prev_start_ == start_state && signature == signature_) {
    ++stats_.reused_plans;
    return plan_;
  }

  plan_ = plan_over_rows(start_state, rows, context_.m, context_.beta);
  signature_ = std::move(signature);
  prev_start_ = start_state;
  ++stats_.plans;
  stats_.planned_slots += static_cast<std::uint64_t>(horizon);
  return plan_;
}

void RecedingHorizon::reset(const OnlineContext& context) {
  context_ = context;
  planner_.reset(context);
  current_ = 0;
}

int RecedingHorizon::decide(const rs::core::CostPtr& f,
                            std::span<const rs::core::CostPtr> lookahead) {
  current_ = planner_.plan(current_, f, lookahead).front();
  return current_;
}

AveragingFixedHorizon::AveragingFixedHorizon(int window) : window_(window) {
  if (window < 0) throw std::invalid_argument("AveragingFixedHorizon: w < 0");
}

void AveragingFixedHorizon::reset(const OnlineContext& context) {
  context_ = context;
  tau_ = 0;
  variants_.assign(static_cast<std::size_t>(window_) + 1, Variant{});
}

double AveragingFixedHorizon::decide(
    const rs::core::CostPtr& f, std::span<const rs::core::CostPtr> lookahead) {
  const int variants = window_ + 1;
  double sum = 0.0;
  for (int k = 0; k < variants; ++k) {
    Variant& variant = variants_[static_cast<std::size_t>(k)];
    const bool replan = (tau_ % variants) == k ||
                        variant.next_action >= variant.plan.size();
    if (replan) {
      variant.plan = plan_fixed_horizon(variant.state, f, lookahead,
                                        context_.m, context_.beta);
      variant.next_action = 0;
    }
    variant.state = variant.plan[variant.next_action];
    ++variant.next_action;
    sum += static_cast<double>(variant.state);
  }
  ++tau_;
  return sum / static_cast<double>(variants);
}

}  // namespace rs::online
