#include "online/receding_horizon.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace rs::online {

using rs::util::kInf;
using rs::util::pos;

std::vector<int> plan_fixed_horizon(
    int start_state, const rs::core::CostPtr& f,
    std::span<const rs::core::CostPtr> lookahead, int m, double beta) {
  const std::size_t horizon = 1 + lookahead.size();
  // Forward DP over the window with parent pointers; O(horizon · m) via the
  // usual prefix/suffix split of min_{x'} [ W(x') + β(x−x')⁺ ].
  std::vector<double> labels(static_cast<std::size_t>(m) + 1, kInf);
  labels[static_cast<std::size_t>(start_state)] = 0.0;
  std::vector<std::vector<std::int32_t>> parents(
      horizon, std::vector<std::int32_t>(static_cast<std::size_t>(m) + 1, -1));
  std::vector<double> next(static_cast<std::size_t>(m) + 1);

  for (std::size_t j = 0; j < horizon; ++j) {
    const rs::core::CostFunction& cost = j == 0 ? *f : *lookahead[j - 1];
    // Suffix minima (free power-down).
    std::vector<double> suffix_min(static_cast<std::size_t>(m) + 1);
    std::vector<std::int32_t> suffix_arg(static_cast<std::size_t>(m) + 1);
    suffix_min[static_cast<std::size_t>(m)] = labels[static_cast<std::size_t>(m)];
    suffix_arg[static_cast<std::size_t>(m)] = m;
    for (int x = m - 1; x >= 0; --x) {
      if (labels[static_cast<std::size_t>(x)] <=
          suffix_min[static_cast<std::size_t>(x + 1)]) {
        suffix_min[static_cast<std::size_t>(x)] = labels[static_cast<std::size_t>(x)];
        suffix_arg[static_cast<std::size_t>(x)] = x;
      } else {
        suffix_min[static_cast<std::size_t>(x)] =
            suffix_min[static_cast<std::size_t>(x + 1)];
        suffix_arg[static_cast<std::size_t>(x)] =
            suffix_arg[static_cast<std::size_t>(x + 1)];
      }
    }
    // Prefix minima of labels(x') − βx' (paid power-up).
    double prefix_min = kInf;
    std::int32_t prefix_arg = -1;
    for (int x = 0; x <= m; ++x) {
      const double shifted =
          labels[static_cast<std::size_t>(x)] - beta * static_cast<double>(x);
      if (shifted < prefix_min) {
        prefix_min = shifted;
        prefix_arg = static_cast<std::int32_t>(x);
      }
      const double up = prefix_min + beta * static_cast<double>(x);
      const double stay = suffix_min[static_cast<std::size_t>(x)];
      double transition;
      std::int32_t parent;
      if (up < stay) {
        transition = up;
        parent = prefix_arg;
      } else {
        transition = stay;
        parent = suffix_arg[static_cast<std::size_t>(x)];
      }
      const double fx = cost.at(x);
      next[static_cast<std::size_t>(x)] =
          std::isinf(fx) || std::isinf(transition) ? kInf : transition + fx;
      parents[j][static_cast<std::size_t>(x)] = parent;
    }
    labels.swap(next);
  }

  // Backtrack from the cheapest final state.
  int state = 0;
  for (int x = 1; x <= m; ++x) {
    if (labels[static_cast<std::size_t>(x)] < labels[static_cast<std::size_t>(state)]) {
      state = x;
    }
  }
  if (std::isinf(labels[static_cast<std::size_t>(state)])) {
    throw std::logic_error("plan_fixed_horizon: infeasible window");
  }
  std::vector<int> plan(horizon, 0);
  for (std::size_t j = horizon; j-- > 0;) {
    plan[j] = state;
    state = parents[j][static_cast<std::size_t>(state)];
  }
  return plan;
}

void RecedingHorizon::reset(const OnlineContext& context) {
  context_ = context;
  current_ = 0;
}

int RecedingHorizon::decide(const rs::core::CostPtr& f,
                            std::span<const rs::core::CostPtr> lookahead) {
  const std::vector<int> plan =
      plan_fixed_horizon(current_, f, lookahead, context_.m, context_.beta);
  current_ = plan.front();
  return current_;
}

AveragingFixedHorizon::AveragingFixedHorizon(int window) : window_(window) {
  if (window < 0) throw std::invalid_argument("AveragingFixedHorizon: w < 0");
}

void AveragingFixedHorizon::reset(const OnlineContext& context) {
  context_ = context;
  tau_ = 0;
  variants_.assign(static_cast<std::size_t>(window_) + 1, Variant{});
}

double AveragingFixedHorizon::decide(
    const rs::core::CostPtr& f, std::span<const rs::core::CostPtr> lookahead) {
  const int variants = window_ + 1;
  double sum = 0.0;
  for (int k = 0; k < variants; ++k) {
    Variant& variant = variants_[static_cast<std::size_t>(k)];
    const bool replan = (tau_ % variants) == k ||
                        variant.next_action >= variant.plan.size();
    if (replan) {
      variant.plan = plan_fixed_horizon(variant.state, f, lookahead,
                                        context_.m, context_.beta);
      variant.next_action = 0;
    }
    variant.state = variant.plan[variant.next_action];
    ++variant.next_action;
    sum += static_cast<double>(variant.state);
  }
  ++tau_;
  return sum / static_cast<double>(variants);
}

}  // namespace rs::online
