// LCP with a finite prediction window (Sections 3 and 5.4).
//
// At time τ the algorithm additionally knows f_{τ+1}..f_{τ+w}.  Following
// Lin et al., the bounds become the τ-th components of optimal solutions of
// the horizon-(τ+w) truncated problems:
//
//   x^{L,w}_τ = smallest x_τ over minimizers of C^L_{τ+w}
//   x^{U,w}_τ = largest  x_τ over minimizers of C^U_{τ+w}
//
// computed as argmin_x [ Ĉ^B_τ(x) + D^B_τ(x) ], where D^B_τ(x) is the
// optimal completion cost of serving the window starting from state x under
// accounting B (up-charging for L, down-charging for U).  The completion
// pass costs O(w·m) per step; w = 0 reduces exactly to LCP.
//
// Theorem 10 shows no constant window improves the competitive ratio on
// stretched instances; the E9 experiment reproduces this, while the E10
// trace study shows the practical benefit on real-shaped workloads.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "offline/work_function.hpp"
#include "online/online_algorithm.hpp"

namespace rs::online {

class WindowedLcp final : public OnlineAlgorithm {
 public:
  /// `backend` pins the tracker/completion backend; kAuto (default) uses
  /// the m-independent convex-PWL pass whenever the revealed cost and the
  /// whole lookahead convert compactly, falling back to the dense O(w·m)
  /// pass otherwise.  Note the tie caveat of DESIGN.md §8: on instances
  /// with exact cost plateaus the two backends may break corridor ties
  /// differently (both remain valid windowed-LCP runs); pin kDense for
  /// bit-reproducibility against dense references.
  explicit WindowedLcp(rs::offline::WorkFunctionTracker::Backend backend =
                           rs::offline::WorkFunctionTracker::Backend::kAuto)
      : backend_(backend) {}

  std::string name() const override { return "lcp_window"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

  int last_lower() const { return last_lower_; }
  int last_upper() const { return last_upper_; }

  /// Serialized session state (core/checkpoint.hpp container, kind
  /// kWindowedLcpCheckpointKind): the snapshotted context, projection state,
  /// and the embedded tracker snapshot.  The sliding form cache is *not*
  /// serialized — it is a pure conversion memo ("correctness never depends
  /// on the cache"), so a restored session re-converts its first window and
  /// then re-warms; decisions are unaffected, including snapshots taken
  /// mid-window.
  std::vector<std::uint8_t> snapshot() const;

  /// Replaces this session's state from snapshot() bytes; the crash-recovery
  /// counterpart of reset().  `context` must match the snapshotted session
  /// (m, beta, constructed backend) else core::CheckpointMismatchError;
  /// malformed/corrupted bytes raise the reader's typed errors before any
  /// state is mutated.
  void restore(const OnlineContext& context,
               std::span<const std::uint8_t> bytes);

 private:
  OnlineContext context_;
  rs::offline::WorkFunctionTracker::Backend backend_ =
      rs::offline::WorkFunctionTracker::Backend::kAuto;
  std::optional<rs::offline::WorkFunctionTracker> tracker_;
  // Sliding conversion cache for the PWL fast path: the forms of the
  // previous step's [revealed, lookahead...] sequence, keyed by cost
  // identity.  As the window slides by one slot, this step's revealed cost
  // and all but the last lookahead slot are cache hits, so each slot of a
  // streaming replay is converted exactly once instead of up to w+1 times
  // (the regression test counts as_convex_pwl calls).  Entries hold the
  // CostPtr so a key address can never be recycled while cached.
  std::deque<std::pair<rs::core::CostPtr, rs::core::ConvexPwl>> form_cache_;
  int current_ = 0;
  int last_lower_ = 0;
  int last_upper_ = 0;
};

/// Optimal completion cost D^B(x) over the window under the two accounting
/// schemes (exposed for tests).  `window` holds f_{τ+1}.. in order; the
/// horizon end after the window is free.  Returned vector has m+1 entries.
std::vector<double> completion_costs(
    std::span<const rs::core::CostPtr> window, int m, double beta,
    bool charge_up);

/// In-place variant writing into `d` (m+1 entries); scratch comes from the
/// thread workspace, so the per-step window pass is allocation-free.
void completion_costs(std::span<const rs::core::CostPtr> window, double beta,
                      bool charge_up, std::span<double> d);

/// Convex-PWL form of the same backward recursion: the window rows are
/// exact convex PWL functions, each backward step is an add plus a slope
/// clip into [−β, 0] (L-accounting) or [0, β] (U-accounting), so the whole
/// window pass is O(w·B log K) — independent of m.  WindowedLcp takes this
/// path automatically whenever the revealed cost and the entire lookahead
/// convert compactly (and falls back to the dense pass, permanently, on
/// the first step where they do not).
rs::core::ConvexPwl completion_costs_pwl(
    std::span<const rs::core::ConvexPwl> window, int m, double beta,
    bool charge_up);

}  // namespace rs::online
