// LCP with a finite prediction window (Sections 3 and 5.4).
//
// At time τ the algorithm additionally knows f_{τ+1}..f_{τ+w}.  Following
// Lin et al., the bounds become the τ-th components of optimal solutions of
// the horizon-(τ+w) truncated problems:
//
//   x^{L,w}_τ = smallest x_τ over minimizers of C^L_{τ+w}
//   x^{U,w}_τ = largest  x_τ over minimizers of C^U_{τ+w}
//
// computed as argmin_x [ Ĉ^B_τ(x) + D^B_τ(x) ], where D^B_τ(x) is the
// optimal completion cost of serving the window starting from state x under
// accounting B (up-charging for L, down-charging for U).  The completion
// pass costs O(w·m) per step; w = 0 reduces exactly to LCP.
//
// Theorem 10 shows no constant window improves the competitive ratio on
// stretched instances; the E9 experiment reproduces this, while the E10
// trace study shows the practical benefit on real-shaped workloads.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "offline/work_function.hpp"
#include "online/online_algorithm.hpp"

namespace rs::online {

class WindowedLcp final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "lcp_window"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

  int last_lower() const { return last_lower_; }
  int last_upper() const { return last_upper_; }

 private:
  OnlineContext context_;
  std::optional<rs::offline::WorkFunctionTracker> tracker_;
  int current_ = 0;
  int last_lower_ = 0;
  int last_upper_ = 0;
};

/// Optimal completion cost D^B(x) over the window under the two accounting
/// schemes (exposed for tests).  `window` holds f_{τ+1}.. in order; the
/// horizon end after the window is free.  Returned vector has m+1 entries.
std::vector<double> completion_costs(
    std::span<const rs::core::CostPtr> window, int m, double beta,
    bool charge_up);

/// In-place variant writing into `d` (m+1 entries); scratch comes from the
/// thread workspace, so the per-step window pass is allocation-free.
void completion_costs(std::span<const rs::core::CostPtr> window, double beta,
                      bool charge_up, std::span<double> d);

}  // namespace rs::online
