// Model-predictive baselines for the prediction-window experiments:
//
//   RecedingHorizon (RHC): at every slot, solve the visible fixed-horizon
//   problem [t, t+w] optimally starting from the committed state and play
//   its first action.  A standard MPC baseline; no constant competitive
//   ratio in the worst case (Theorem 10's stretched instances defeat it),
//   but strong on predictable traces.
//
//   AveragingFixedHorizon (AFHC): w+1 staggered fixed-horizon variants,
//   variant k re-planning at slots t ≡ k (mod w+1) and then following its
//   committed plan; the played fractional state is the average.  The
//   averaging smooths the re-planning boundaries that hurt RHC on
//   adversarial inputs (Lin et al. discuss this comparison).
#pragma once

#include <vector>

#include "online/online_algorithm.hpp"

namespace rs::online {

class RecedingHorizon final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "receding_horizon"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

 private:
  OnlineContext context_;
  int current_ = 0;
};

class AveragingFixedHorizon final : public FractionalOnlineAlgorithm {
 public:
  /// `window` must match the prediction window the replayer is run with.
  explicit AveragingFixedHorizon(int window);

  std::string name() const override { return "afhc"; }
  void reset(const OnlineContext& context) override;
  double decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) override;

 private:
  struct Variant {
    int state = 0;                 // committed state after the last slot
    std::vector<int> plan;         // remaining committed actions
    std::size_t next_action = 0;
  };

  int window_ = 0;
  OnlineContext context_;
  int tau_ = 0;
  std::vector<Variant> variants_;
};

/// Optimal plan for the fixed-horizon problem: starting from
/// `start_state`, serve f (the current slot) followed by the lookahead
/// functions, charging β on power-up; the horizon end is free.  Returns the
/// optimal states for the current slot and every lookahead slot.
std::vector<int> plan_fixed_horizon(int start_state,
                                    const rs::core::CostPtr& f,
                                    std::span<const rs::core::CostPtr> lookahead,
                                    int m, double beta);

}  // namespace rs::online
