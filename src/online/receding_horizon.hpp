// Model-predictive baselines for the prediction-window experiments:
//
//   RecedingHorizon (RHC): at every slot, solve the visible fixed-horizon
//   problem [t, t+w] optimally starting from the committed state and play
//   its first action.  A standard MPC baseline; no constant competitive
//   ratio in the worst case (Theorem 10's stretched instances defeat it),
//   but strong on predictable traces.
//
//   AveragingFixedHorizon (AFHC): w+1 staggered fixed-horizon variants,
//   variant k re-planning at slots t ≡ k (mod w+1) and then following its
//   committed plan; the played fractional state is the average.  The
//   averaging smooths the re-planning boundaries that hurt RHC on
//   adversarial inputs (Lin et al. discuss this comparison).
//
// RHC plans through a WarmHorizonPlanner: consecutive horizons overlap in
// all but one slot, so the planner (a) slides a value-row cache keyed by
// slot-cost identity across steps — a slot entering the window is
// evaluated once and never re-evaluated while it stays visible — and
// (b) answers a step whose (start state, window contents) equal the
// previous solve's from the stored plan without re-solving, the common
// case inside the run-length-encoded stretches of the trace zoo.  Both
// paths produce bitwise the plans of the cold solve (same DP over the
// same rows / literally the previous solve's output).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "online/online_algorithm.hpp"

namespace rs::online {

/// Reuse accounting for a WarmHorizonPlanner (monotone across reset()s of
/// the owning algorithm; see field comments).
struct WarmHorizonStats {
  std::uint64_t plans = 0;            // full DP solves performed
  std::uint64_t reused_plans = 0;     // steps answered from the stored plan
  std::uint64_t planned_slots = 0;    // window slots swept by full solves
  std::uint64_t row_evaluations = 0;  // slot costs materialized into rows
  std::uint64_t row_reuses = 0;       // window slots served from cached rows
};

/// The incremental fixed-horizon solver behind RecedingHorizon (usable
/// standalone by any overlapping-window consumer).  plan() matches
/// plan_fixed_horizon bitwise; the returned reference is valid until the
/// next plan()/reset().
class WarmHorizonPlanner {
 public:
  void reset(const OnlineContext& context);

  const std::vector<int>& plan(int start_state, const rs::core::CostPtr& f,
                               std::span<const rs::core::CostPtr> lookahead);

  const WarmHorizonStats& stats() const noexcept { return stats_; }

 private:
  OnlineContext context_;
  // Sliding row cache: rows_ holds the previous window's materialized
  // value rows; each plan() builds the new window's map by moving hits
  // over (evicting slots that left the window) and evaluating misses.
  // Rows are shared_ptr so positions repeating one cost share one row.
  std::unordered_map<const rs::core::CostFunction*,
                     std::shared_ptr<const std::vector<double>>>
      rows_;
  std::unordered_map<const rs::core::CostFunction*,
                     std::shared_ptr<const std::vector<double>>>
      scratch_rows_;  // ping-pong partner of rows_
  // Previous solve, for the unchanged-window fast path.
  std::vector<const rs::core::CostFunction*> signature_;
  int prev_start_ = -1;  // -1: nothing stored
  std::vector<int> plan_;
  WarmHorizonStats stats_;
};

class RecedingHorizon final : public OnlineAlgorithm {
 public:
  std::string name() const override { return "receding_horizon"; }
  void reset(const OnlineContext& context) override;
  int decide(const rs::core::CostPtr& f,
             std::span<const rs::core::CostPtr> lookahead) override;

  /// Warm-start accounting since construction (reset() clears the caches
  /// but keeps the counters, so replay harnesses can total a whole run).
  const WarmHorizonStats& warm_stats() const noexcept {
    return planner_.stats();
  }

 private:
  OnlineContext context_;
  WarmHorizonPlanner planner_;
  int current_ = 0;
};

class AveragingFixedHorizon final : public FractionalOnlineAlgorithm {
 public:
  /// `window` must match the prediction window the replayer is run with.
  explicit AveragingFixedHorizon(int window);

  std::string name() const override { return "afhc"; }
  void reset(const OnlineContext& context) override;
  double decide(const rs::core::CostPtr& f,
                std::span<const rs::core::CostPtr> lookahead) override;

 private:
  struct Variant {
    int state = 0;                 // committed state after the last slot
    std::vector<int> plan;         // remaining committed actions
    std::size_t next_action = 0;
  };

  int window_ = 0;
  OnlineContext context_;
  int tau_ = 0;
  std::vector<Variant> variants_;
};

/// Optimal plan for the fixed-horizon problem: starting from
/// `start_state`, serve f (the current slot) followed by the lookahead
/// functions, charging β on power-up; the horizon end is free.  Returns the
/// optimal states for the current slot and every lookahead slot.
std::vector<int> plan_fixed_horizon(int start_state,
                                    const rs::core::CostPtr& f,
                                    std::span<const rs::core::CostPtr> lookahead,
                                    int m, double beta);

}  // namespace rs::online
