#include <stdexcept>
#include <vector>

#include "online/online_algorithm.hpp"

namespace rs::online {

namespace {

std::vector<rs::core::CostPtr> collect_functions(const rs::core::Problem& p) {
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) fs.push_back(p.f_ptr(t));
  return fs;
}

std::span<const rs::core::CostPtr> window_of(
    const std::vector<rs::core::CostPtr>& fs, int t, int window) {
  const std::size_t begin = static_cast<std::size_t>(t);  // f_{t+1} at index t
  const std::size_t end =
      std::min(fs.size(), begin + static_cast<std::size_t>(window));
  if (begin >= end) return {};
  return {fs.data() + begin, end - begin};
}

}  // namespace

rs::core::Schedule run_online(OnlineAlgorithm& algorithm,
                              const rs::core::Problem& p, int window) {
  if (window < 0) throw std::invalid_argument("run_online: window < 0");
  const std::vector<rs::core::CostPtr> fs = collect_functions(p);
  algorithm.reset(OnlineContext{p.max_servers(), p.beta()});
  rs::core::Schedule schedule;
  schedule.reserve(fs.size());
  for (int t = 1; t <= p.horizon(); ++t) {
    const int x = algorithm.decide(fs[static_cast<std::size_t>(t - 1)],
                                   window_of(fs, t, window));
    if (x < 0 || x > p.max_servers()) {
      throw std::logic_error("run_online: " + algorithm.name() +
                             " returned x outside [0, m]");
    }
    schedule.push_back(x);
  }
  return schedule;
}

rs::core::FractionalSchedule run_online(FractionalOnlineAlgorithm& algorithm,
                                        const rs::core::Problem& p,
                                        int window) {
  if (window < 0) throw std::invalid_argument("run_online: window < 0");
  const std::vector<rs::core::CostPtr> fs = collect_functions(p);
  algorithm.reset(OnlineContext{p.max_servers(), p.beta()});
  rs::core::FractionalSchedule schedule;
  schedule.reserve(fs.size());
  for (int t = 1; t <= p.horizon(); ++t) {
    const double x = algorithm.decide(fs[static_cast<std::size_t>(t - 1)],
                                      window_of(fs, t, window));
    if (!(x >= 0.0) || x > static_cast<double>(p.max_servers())) {
      throw std::logic_error("run_online: " + algorithm.name() +
                             " returned x outside [0, m]");
    }
    schedule.push_back(x);
  }
  return schedule;
}

}  // namespace rs::online
