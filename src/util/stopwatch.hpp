// Monotonic wall-clock stopwatch for the scaling benchmarks.
#pragma once

#include <chrono>

namespace rs::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }
  double microseconds() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rs::util
