#include "util/rng.hpp"

#include <cmath>

namespace rs::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = engine_();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
  }
}

double Rng::uniform(double lo, double hi) noexcept {
  // 53-bit mantissa in [0,1).
  const double u =
      static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for workload
  // synthesis at large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample < 0.0 ? 0 : static_cast<std::int64_t>(sample + 0.5);
}

}  // namespace rs::util
