#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace rs::util {

namespace {

// Set while a thread is executing a pool task.  parallel_for called from a
// worker must not block on futures served by its own queue (with a small
// pool that is a deadlock: the waiting worker is the one that would run the
// queued chunks), so nested calls degrade to inline execution.
thread_local bool t_inside_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    t_inside_pool_worker = true;
    task();
    t_inside_pool_worker = false;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (t_inside_pool_worker) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn, &error_mutex, &first_error]() {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {  // rs-lint: catch-all-ok (first exception captured,
                       // rethrown on the caller thread)
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }));
  }
  for (auto& future : futures) future.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_dynamic(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (t_inside_pool_worker) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const auto drain = [next, end, &fn, &error_mutex, &first_error]() {
    for (;;) {
      const std::size_t i = next->fetch_add(1);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {  // rs-lint: catch-all-ok (first exception captured,
                       // rethrown on the caller thread)
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  const std::size_t helpers = std::min(end - begin, size());
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t c = 0; c < helpers; ++c) futures.push_back(submit(drain));
  drain();  // the calling thread participates instead of idling
  for (auto& future : futures) future.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rs::util
