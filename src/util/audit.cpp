#include "util/audit.hpp"

#include <utility>

namespace rs::util::audit {

namespace {

std::string format_message(const std::string& invariant,
                           const std::string& site,
                           const std::string& detail) {
  std::string message = "audit violation [" + invariant + "] at " + site;
  if (!detail.empty()) {
    message += ": ";
    message += detail;
  }
  return message;
}

}  // namespace

AuditError::AuditError(std::string invariant, std::string site,
                       std::string detail)
    : std::logic_error(format_message(invariant, site, detail)),
      invariant_(std::move(invariant)),
      site_(std::move(site)) {}

void fail(const char* invariant, const char* site, const std::string& detail) {
  throw AuditError(invariant, site, detail);
}

}  // namespace rs::util::audit
