#include "util/fault_injection.hpp"

#include <atomic>
#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace rs::util {

namespace {

std::atomic<const FaultInjector*> g_injector{nullptr};

}  // namespace

bool FaultInjector::fires(FaultSite site, std::uint64_t index) const noexcept {
  // One splitmix64 scramble of the triple; the site stream is offset by a
  // golden-ratio multiple so (seed, site) pairs decorrelate even for
  // adjacent seeds.
  std::uint64_t state =
      seed_ +
      (static_cast<std::uint64_t>(site) + 1) * 0x9E3779B97F4A7C15ull + index;
  return splitmix64(state) % period_ == 0;
}

const FaultInjector* active_fault_injector() noexcept {
  return g_injector.load(std::memory_order_acquire);
}

bool fault_fires(FaultSite site, std::uint64_t index) noexcept {
  const FaultInjector* injector = active_fault_injector();
  return injector != nullptr && injector->fires(site, index);
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector injector)
    : injector_(injector) {
  const FaultInjector* expected = nullptr;
  if (!g_injector.compare_exchange_strong(expected, &injector_,
                                          std::memory_order_acq_rel)) {
    throw std::logic_error(
        "ScopedFaultInjection: an injector is already installed");
  }
}

ScopedFaultInjection::~ScopedFaultInjection() {
  g_injector.store(nullptr, std::memory_order_release);
}

std::vector<std::uint8_t> corrupt_bit(std::span<const std::uint8_t> bytes,
                                      std::uint64_t bit_index) {
  std::vector<std::uint8_t> out(bytes.begin(), bytes.end());
  if (out.empty()) return out;
  const std::uint64_t bit = bit_index % (out.size() * 8ull);
  out[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(1u << (bit % 8));
  return out;
}

std::vector<std::uint8_t> truncate_bytes(std::span<const std::uint8_t> bytes,
                                         std::size_t keep) {
  if (keep >= bytes.size()) {
    return std::vector<std::uint8_t>(bytes.begin(), bytes.end());
  }
  return std::vector<std::uint8_t>(bytes.begin(),
                                   bytes.begin() + static_cast<std::ptrdiff_t>(keep));
}

std::uint64_t env_fault_base_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("RIGHTSIZER_FAULT_BASE_SEED");
  if (raw == nullptr) return fallback;
  const std::string value(raw);
  std::uint64_t seed = 0;
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, seed, 10);
  if (ec != std::errc{} || ptr != last || value.empty()) {
    throw std::runtime_error(
        "RIGHTSIZER_FAULT_BASE_SEED: not a decimal uint64: \"" + value + "\"");
  }
  return seed;
}

}  // namespace rs::util
