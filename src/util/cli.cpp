#include "util/cli.hpp"

#include <stdexcept>

namespace rs::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      flags_[arg] = "true";
    }
  }
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("CliArgs: bad boolean for --" + key + ": " + v);
}

}  // namespace rs::util
