#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rs::util {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string csv_format_row(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out += ',';
    out += needs_quoting(row[i]) ? quote(row[i]) : row[i];
  }
  return out;
}

CsvRow csv_parse_line(const std::string& line) {
  CsvRow fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

CsvTable csv_parse(const std::string& text, bool has_header) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  bool header_pending = has_header;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    CsvRow row = csv_parse_line(line);
    if (header_pending) {
      table.header = std::move(row);
      header_pending = false;
    } else {
      table.rows.push_back(std::move(row));
    }
  }
  return table;
}

std::string csv_format(const CsvTable& table) {
  std::string out;
  if (!table.header.empty()) {
    out += csv_format_row(table.header);
    out += '\n';
  }
  for (const CsvRow& row : table.rows) {
    out += csv_format_row(row);
    out += '\n';
  }
  return out;
}

CsvTable csv_read_file(const std::string& path, bool has_header) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("csv_read_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return csv_parse(buffer.str(), has_header);
}

void csv_write_file(const std::string& path, const CsvTable& table) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("csv_write_file: cannot open " + path);
  file << csv_format(table);
  if (!file) throw std::runtime_error("csv_write_file: write failed for " + path);
}

}  // namespace rs::util
