// Minimal command-line flag parser for the example and benchmark binaries.
// Accepts --key=value and boolean --flag forms (unambiguous); everything
// else is collected as a positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rs::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const { return flags_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rs::util
