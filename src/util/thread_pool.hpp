// Minimal fixed-size thread pool used by the Monte-Carlo and sweep harnesses.
//
// Design notes (HPC guidance): work items are coarse-grained (one trial or
// one parameter point per task), so a single mutex-protected deque is
// sufficient; no work stealing is needed.  parallel_for chunks an index range
// over the workers and blocks until completion, propagating the first
// exception thrown by any chunk.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace rs::util {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (defaults to hardware concurrency,
  /// at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a nullary callable; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and waits.  The first
  /// exception (if any) is rethrown in the calling thread.  Safe to call
  /// from inside a pool task: nested calls detect the worker context and run
  /// inline instead of deadlocking on their own queue.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Like parallel_for but with dynamic scheduling: workers (and the calling
  /// thread) claim one index at a time from a shared atomic counter, so
  /// wildly uneven per-index costs — e.g. a sweep axis that scales T — do
  /// not serialize behind the unluckiest static chunk.
  void parallel_for_dynamic(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool for harness code that does not care about lifetime.
ThreadPool& global_pool();

}  // namespace rs::util
