// Deep invariant auditor — the compile-time-gated correctness layer.
//
// The repo's core guarantee (bit-identical results across backends × thread
// counts, DESIGN.md §§8–12) is defended by example-based tests and
// sanitizers; this module adds the third leg: *semantic* invariants checked
// at module boundaries, deep enough to catch corruption no sanitizer can
// see (a NaN laundered into +inf by a std::min fold, a corridor that
// crossed, an illegal tenant-ladder transition).
//
// Gating contract:
//
//   * `RS_AUDIT(expr)` call sites compile to `((void)0)` unless the build
//     defines RIGHTSIZER_AUDIT (CMake option of the same name), so
//     production builds pay zero cost — no branch, no call, no argument
//     evaluation.
//   * The deep-check *functions* themselves (audit_convex_pwl,
//     WorkFunctionTracker::audit_invariants, …) are always compiled and
//     callable, so the auditor's own negative tests run in every build
//     configuration, not just the audited CI job.
//
// A violated invariant raises AuditError naming the invariant and the call
// site — auditing is for bugs in *this library*, never for bad user input
// (input validation keeps its typed std::invalid_argument /
// CheckpointError contracts).  See DESIGN.md §13 for the invariant catalog.
#pragma once

#include <stdexcept>
#include <string>

namespace rs::util::audit {

#ifdef RIGHTSIZER_AUDIT
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// An internal invariant did not hold.  `invariant()` is a stable
/// kebab-case name from the DESIGN.md §13 catalog; `site()` names the
/// module boundary that ran the check.  Derives from std::logic_error:
/// an AuditError is always a library bug, not an environmental condition.
class AuditError : public std::logic_error {
 public:
  AuditError(std::string invariant, std::string site, std::string detail);

  const std::string& invariant() const noexcept { return invariant_; }
  const std::string& site() const noexcept { return site_; }

 private:
  std::string invariant_;
  std::string site_;
};

/// Raises AuditError{invariant, site, detail}.
[[noreturn]] void fail(const char* invariant, const char* site,
                       const std::string& detail);

/// The basic check: `ok` or AuditError.
inline void require(bool ok, const char* invariant, const char* site,
                    const char* detail = "") {
  if (!ok) fail(invariant, site, detail);
}

/// require() with a lazily-built detail message (for checks whose context
/// string is expensive to format on the happy path).
template <typename DetailFn>
void require_with(bool ok, const char* invariant, const char* site,
                  DetailFn&& detail) {
  if (!ok) fail(invariant, site, detail());
}

}  // namespace rs::util::audit

// Audit call-site gate.  Variadic so commas in the checked expression need
// no extra parentheses.  The expression is NOT evaluated when the auditor
// is compiled out.
#ifdef RIGHTSIZER_AUDIT
#define RS_AUDIT(...)    \
  do {                   \
    __VA_ARGS__;         \
  } while (false)
#else
#define RS_AUDIT(...) ((void)0)
#endif
