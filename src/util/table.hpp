// Column-aligned text tables.  The benchmark binaries print their
// paper-style result rows through this printer so every experiment's output
// has a uniform, diffable format (plain aligned text or GitHub markdown).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rs::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision, passing strings
  /// through unchanged.
  static std::string num(double value, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders as aligned plain text (default) or GitHub markdown.
  std::string to_string(bool markdown = false) const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rs::util
