// Small numeric helpers shared across the library, including the paper's
// notation: the projection [x]_a^b, frac(x), and the strict ceiling ⌈x⌉*
// (Section 4.1), which maps integers n to n+1 and non-integers to ⌈x⌉.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace rs::util {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Projection of x into the interval [lo, hi]: max{lo, min{hi, x}}.
/// Matches the paper's [x]^{hi}_{lo}.  Requires lo <= hi.
template <typename T>
constexpr T project(T x, T lo, T hi) {
  if (lo > hi) throw std::invalid_argument("project: lo > hi");
  return x < lo ? lo : (x > hi ? hi : x);
}

/// (x)^+ = max(0, x).
template <typename T>
constexpr T pos(T x) noexcept {
  return x > T{0} ? x : T{0};
}

/// Fractional part frac(x) = x - floor(x), in [0, 1).
inline double frac(double x) noexcept { return x - std::floor(x); }

/// The paper's strict ceiling ⌈x⌉* := min{n ∈ Z | n > x} = floor(x) + 1.
inline std::int64_t ceil_star(double x) noexcept {
  return static_cast<std::int64_t>(std::floor(x)) + 1;
}

/// True if |a-b| <= atol + rtol*max(|a|,|b|); infinities are equal to
/// themselves only.
inline bool approx_equal(double a, double b, double atol = 1e-9,
                         double rtol = 1e-9) noexcept {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= atol + rtol * scale;
}

/// Kahan-compensated accumulator; the cost sums in the competitive-ratio
/// experiments accumulate millions of O(eps) terms, where naive summation
/// would visibly distort measured ratios.
class KahanSum {
 public:
  void add(double value) noexcept {
    if (std::isinf(value)) {
      infinite_ = true;
      return;
    }
    const double y = value - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  double value() const noexcept { return infinite_ ? kInf : sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
  bool infinite_ = false;
};

/// Mean / stddev / 95% normal CI over a sample.
struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half_width = 0.0;
  double min = kInf;
  double max = -kInf;
};

inline SampleStats summarize(const std::vector<double>& samples) {
  SampleStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  KahanSum sum;
  for (double sample : samples) {
    sum.add(sample);
    stats.min = std::min(stats.min, sample);
    stats.max = std::max(stats.max, sample);
  }
  stats.mean = sum.value() / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    KahanSum squares;
    for (double sample : samples) {
      const double d = sample - stats.mean;
      squares.add(d * d);
    }
    stats.stddev =
        std::sqrt(squares.value() / static_cast<double>(samples.size() - 1));
    stats.ci95_half_width =
        1.959963984540054 * stats.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  return stats;
}

}  // namespace rs::util
