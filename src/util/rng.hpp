// Deterministic, seedable random number generation.
//
// All randomized components of the library (workload generators, the
// randomized rounding algorithm of Section 4, Monte-Carlo harnesses) draw
// from rs::util::Rng so that every experiment is reproducible from a single
// 64-bit seed.  The engine is xoshiro256++ (public-domain algorithm by
// Blackman & Vigna), seeded via SplitMix64; it satisfies
// std::uniform_random_bit_generator and can therefore also back the standard
// <random> distributions.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace rs::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256++ engine.  Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump function: advances the state by 2^128 steps.  Used to derive
  /// non-overlapping streams for parallel Monte-Carlo workers.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
        0x39abdc4529b1661cull};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ull << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
    return (v << k) | (v >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Convenience façade bundling the engine with the distributions the library
/// actually uses.  Cheap to copy; copies evolve independently.
class Rng {
 public:
  using result_type = Xoshiro256pp::result_type;

  explicit Rng(std::uint64_t seed = 1) noexcept : engine_(seed) {}

  static constexpr result_type min() noexcept { return Xoshiro256pp::min(); }
  static constexpr result_type max() noexcept { return Xoshiro256pp::max(); }
  result_type operator()() noexcept { return engine_(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (cached second sample).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Poisson sample (Knuth for small mean, normal approximation for large).
  std::int64_t poisson(double mean) noexcept;

  /// Derive an independent child generator (jump-based, deterministic).
  Rng split() noexcept {
    Rng child = *this;
    child.engine_.jump();
    child.has_cached_normal_ = false;
    engine_();  // decorrelate the parent as well
    return child;
  }

 private:
  Xoshiro256pp engine_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rs::util
