// Seeded, deterministic fault injection — the test harness side of the
// crash-safety work (DESIGN.md §10).
//
// Robustness claims ("one poisoned job fails alone", "a corrupted
// checkpoint is rejected, never UB") are only testable if faults can be
// *made to happen* at precise, reproducible points.  This module provides
// that trigger: a FaultInjector decides, purely from (seed, site, index),
// whether the index-th passage through an instrumented site fires.  The
// decision is a splitmix64 hash — no global counters, no ordering
// dependence — so a fault plan replays identically across runs, thread
// interleavings, and platforms, and a CI failure seed reproduces locally
// with one environment variable (RIGHTSIZER_FAULT_BASE_SEED).
//
// Instrumented production code asks `fault_fires(site, index)`, which reads
// a process-global injector installed by the RAII ScopedFaultInjection
// guard.  With no injector installed (the default, and the only state
// production deployments ever see) the check is one relaxed atomic load and
// a null test — it cannot allocate, lock, or fail, preserving the engine's
// allocation-free steady state.
//
// The byte-corruption helpers back the checkpoint rejection tests: they
// produce the truncated / bit-flipped inputs that snapshot consumers must
// reject with typed errors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rs::util {

/// Instrumented failure points.  Sites are stable identifiers: a (seed,
/// site, index) triple names one potential fault forever, so recorded
/// failure seeds stay meaningful across code motion.
enum class FaultSite : std::uint32_t {
  kPwlBackend = 0,    // PWL solve attempt inside the batch engine
  kDenseBackend = 1,  // dense solve attempt inside the batch engine
  kSlotCost = 2,      // per-slot cost evaluation (poisoned to NaN/inf)
  kCheckpoint = 3,    // checkpoint bytes (corrupted before restore)
  kFleetTick = 4,     // a tenant's slot attempt inside the fleet tick
  kIngest = 5,        // a λ sample on its way into a tenant queue
};

/// Index-space splitter for the per-tenant fleet sites (kFleetTick /
/// kIngest): tenant `tenant` owns the contiguous index block starting at
/// tenant·2^24, so the per-tenant monotone counters (slot attempts, ingest
/// offers) never collide across tenants and one tenant's recovery retries
/// cannot shift a neighbour's fault schedule.  2^24 counter values per
/// tenant is far beyond any drill horizon; counters wrap within the block
/// rather than bleed into the next tenant's.
constexpr std::uint64_t tenant_fault_index(std::size_t tenant,
                                           std::uint64_t counter) noexcept {
  return (static_cast<std::uint64_t>(tenant) << 24) | (counter & 0xFFFFFFull);
}

/// Deterministic fault trigger: fires(site, index) is a pure function of
/// (seed, site, index).  Each instrumented passage fires with probability
/// ~1/period (exactly: when the hash lands on residue 0), so period = 1
/// fires always and large periods fire sparsely — both ends are used by the
/// isolation tests.
class FaultInjector {
 public:
  /// period >= 1; period == 0 is clamped to 1 (always fire).
  explicit FaultInjector(std::uint64_t seed, std::uint64_t period = 1) noexcept
      : seed_(seed), period_(period == 0 ? 1 : period) {}

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t period() const noexcept { return period_; }

  /// True iff the index-th passage through `site` should fail under this
  /// (seed, period).  Pure; safe from any thread.
  bool fires(FaultSite site, std::uint64_t index) const noexcept;

 private:
  std::uint64_t seed_;
  std::uint64_t period_;
};

/// The process-global injector consulted by instrumented code; nullptr when
/// no injection is active (the production state).
const FaultInjector* active_fault_injector() noexcept;

/// One branch on the happy path: false whenever no injector is installed.
bool fault_fires(FaultSite site, std::uint64_t index) noexcept;

/// RAII installation of a process-global injector.  Guards do not nest
/// (installing while one is active throws std::logic_error — overlapping
/// fault plans would make seeds ambiguous); the destructor restores the
/// no-injection state.  Tests that run batches concurrently install one
/// guard around the whole batch.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector injector_;
};

/// `bytes` with bit `bit_index` (counting LSB-first from byte 0) flipped;
/// bit_index is reduced modulo the total bit count, so any seed-derived
/// index is valid.  Empty input is returned unchanged.
std::vector<std::uint8_t> corrupt_bit(std::span<const std::uint8_t> bytes,
                                      std::uint64_t bit_index);

/// The first `keep` bytes of `bytes` (all of them when keep >= size) — the
/// torn-write / partial-flush shape of checkpoint corruption.
std::vector<std::uint8_t> truncate_bytes(std::span<const std::uint8_t> bytes,
                                         std::size_t keep);

/// Base seed for the seeded fault / corruption sweeps, from the
/// RIGHTSIZER_FAULT_BASE_SEED environment variable.  Unset returns
/// `fallback`; set requires the *entire* value to parse as one decimal
/// std::uint64_t (std::from_chars over the full string — no sign, no
/// whitespace, no trailing junk), else std::runtime_error naming the
/// variable and the offending value.  A malformed CI seed must fail the run
/// loudly, never silently re-sweep the fallback seed — the same strictness
/// contract the scenario lab's CSV I/O enforces.
std::uint64_t env_fault_base_seed(std::uint64_t fallback);

}  // namespace rs::util
