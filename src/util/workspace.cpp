#include "util/workspace.hpp"

namespace rs::util {

std::atomic<std::uint64_t> Workspace::total_growths_{0};

Workspace::Stats Workspace::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

void Workspace::clear() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::apply([](auto&... free_list) { (free_list.clear(), ...); },
             state_->pools);
  state_->stats.pooled_buffers = 0;
  state_->stats.pooled_bytes = 0;
}

Workspace& this_thread_workspace() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace rs::util
