#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rs::util {

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  if (std::isnan(value)) return "nan";
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

std::string TextTable::to_string(bool markdown) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = markdown ? "| " : "";
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (markdown) {
        line += " | ";
      } else if (c + 1 < row.size()) {
        line += "  ";
      }
    }
    // trim trailing spaces
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(header_);
  if (markdown) {
    std::string sep = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      sep += std::string(widths[c] + 2, '-') + "|";
    }
    out += sep + "\n";
  } else {
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out += std::string(total, '-') + "\n";
  }
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.to_string();
}

}  // namespace rs::util
