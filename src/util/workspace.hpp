// Per-thread reusable scratch arenas for the solver hot paths.
//
// Every solver in this repository needs the same O(m) / O(T·m) scratch
// shapes (label rows, suffix minima, parent tables), and the fleet-style
// consumers (Monte Carlo, sweeps, adversary search, SolverEngine batches)
// issue thousands of small solves back to back.  Allocating those buffers
// per solve makes malloc the dominant cost at small T and m; a Workspace
// keeps them in per-type grow-only free lists so that, after one warm-up
// solve per shape, repeated solves are allocation-free.
//
// Usage: `auto labels = rs::util::this_thread_workspace().borrow<double>(n)`
// hands out an RAII Buffer of exactly n elements (contents unspecified —
// callers initialize what they read) that returns its storage to the free
// list on destruction.  Borrows are best-fit, so mixed-size batches
// stabilize with one pooled buffer per live shape instead of regrowing one
// buffer forever.
//
// Thread model: each thread owns its workspace (`this_thread_workspace`),
// so borrows never contend in the common case.  The free lists live behind
// a shared_ptr'd, mutex-protected state block: a Buffer keeps that state
// alive, so buffers may legally be released from another thread or even
// after the owning thread exited (the pooled memory is then freed with the
// last outstanding handle).  The lock is uncontended and taken O(1) times
// per solve, not per element.
//
// Accounting: every borrow that has to allocate (no pooled buffer of
// sufficient capacity) counts as a "growth", both per workspace and in a
// process-wide atomic (`Workspace::total_growths`).  The batch engine
// samples the global counter around a batch to report its allocation-free
// flag, and the warm-arena tests assert a zero delta on second batches.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

namespace rs::util {

class Workspace {
  struct State;

 public:
  Workspace() : state_(std::make_shared<State>()) {}
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII handle over a borrowed buffer; move-only.  Destruction (or
  /// reset()) returns the storage to the owning workspace's free list.
  /// Holds the pool state alive, so it remains valid past the owning
  /// thread's exit.
  template <typename T>
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& other) noexcept
        : state_(std::move(other.state_)),
          storage_(std::move(other.storage_)) {
      other.state_.reset();
    }
    Buffer& operator=(Buffer&& other) noexcept {
      if (this != &other) {
        reset();
        state_ = std::move(other.state_);
        other.state_.reset();
        storage_ = std::move(other.storage_);
      }
      return *this;
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { reset(); }

    T* data() noexcept { return storage_.data(); }
    const T* data() const noexcept { return storage_.data(); }
    std::size_t size() const noexcept { return storage_.size(); }
    T& operator[](std::size_t i) noexcept { return storage_[i]; }
    const T& operator[](std::size_t i) const noexcept { return storage_[i]; }
    std::span<T> span() noexcept { return storage_; }
    std::span<const T> span() const noexcept {
      return {storage_.data(), storage_.size()};
    }
    auto begin() noexcept { return storage_.begin(); }
    auto end() noexcept { return storage_.end(); }
    auto begin() const noexcept { return storage_.begin(); }
    auto end() const noexcept { return storage_.end(); }

    /// Underlying vector, for APIs that expose vector references (e.g.
    /// WorkFunctionTracker::chat_lower_vector).  Do not resize beyond the
    /// borrowed size — shrink-to-release is handled by the workspace.
    std::vector<T>& vec() noexcept { return storage_; }
    const std::vector<T>& vec() const noexcept { return storage_; }

    /// Returns the storage to the workspace now (idempotent).
    void reset() noexcept {
      if (state_ != nullptr) {
        Workspace::release<T>(*state_, std::move(storage_));
        state_.reset();
      }
      storage_ = std::vector<T>();
    }

   private:
    friend class Workspace;
    Buffer(std::shared_ptr<State> state, std::vector<T>&& storage) noexcept
        : state_(std::move(state)), storage_(std::move(storage)) {}

    std::shared_ptr<State> state_;
    std::vector<T> storage_;
  };

  /// Borrows a buffer of exactly `n` elements with unspecified contents.
  /// Best-fit against the pooled buffers; allocates (a "growth") only when
  /// no pooled buffer has sufficient capacity.
  template <typename T>
  Buffer<T> borrow(std::size_t n) {
    State& state = *state_;
    std::vector<T> storage;
    bool grew = false;
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      std::vector<std::vector<T>>& free_list = pool<T>(state);
      // Best fit: smallest pooled capacity >= n.  Free lists hold one
      // buffer per live shape, so the scan is a handful of entries.
      std::size_t best = free_list.size();
      for (std::size_t i = 0; i < free_list.size(); ++i) {
        if (free_list[i].capacity() < n) continue;
        if (best == free_list.size() ||
            free_list[i].capacity() < free_list[best].capacity()) {
          best = i;
        }
      }
      if (best == free_list.size() && !free_list.empty()) {
        best = 0;  // nothing fits: recycle (and grow) the first buffer
      }
      if (best != free_list.size()) {
        storage = std::move(free_list[best]);
        free_list[best] = std::move(free_list.back());
        free_list.pop_back();
        state.stats.pooled_bytes -= storage.capacity() * sizeof(T);
        --state.stats.pooled_buffers;
      }
      grew = storage.capacity() < n;
      ++state.stats.borrows;
      if (grew) ++state.stats.growths;
    }
    if (grew) total_growths_.fetch_add(1, std::memory_order_relaxed);
    storage.resize(n);  // the actual allocation happens outside the lock
    return Buffer<T>(state_, std::move(storage));
  }

  struct Stats {
    std::uint64_t borrows = 0;
    std::uint64_t growths = 0;  // borrows that had to allocate
    std::size_t pooled_buffers = 0;
    std::size_t pooled_bytes = 0;
  };
  Stats stats() const;

  /// Frees every pooled buffer; subsequent borrows re-allocate.  Used by
  /// benchmarks to measure cold (allocation-per-solve) behaviour and by
  /// memory-conscious callers after a burst of large solves.
  void clear();

  /// Process-wide growth count, summed over every thread's workspace.  A
  /// zero delta across a region proves it ran allocation-free.
  static std::uint64_t total_growths() noexcept {
    return total_growths_.load(std::memory_order_relaxed);
  }

 private:
  // Buffers above this capacity are freed on release instead of pooled, so
  // one huge solve does not pin its scratch for the life of the thread.
  static constexpr std::size_t kMaxPooledBytes = std::size_t{1} << 26;
  // Backstop on free-list length; far above the live-shape count of any
  // real workload.
  static constexpr std::size_t kMaxPooledBuffers = 64;

  static std::atomic<std::uint64_t> total_growths_;

  struct State {
    mutable std::mutex mutex;
    std::tuple<std::vector<std::vector<double>>,
               std::vector<std::vector<std::int32_t>>,
               std::vector<std::vector<std::int64_t>>>
        pools;
    Stats stats;
  };

  template <typename T>
  static std::vector<std::vector<T>>& pool(State& state) {
    return std::get<std::vector<std::vector<T>>>(state.pools);
  }

  template <typename T>
  static void release(State& state, std::vector<T>&& storage) {
    const std::size_t bytes = storage.capacity() * sizeof(T);
    if (bytes == 0 || bytes > kMaxPooledBytes) return;  // drop, don't pool
    std::lock_guard<std::mutex> lock(state.mutex);
    std::vector<std::vector<T>>& free_list = pool<T>(state);
    if (free_list.size() >= kMaxPooledBuffers) return;
    state.stats.pooled_bytes += bytes;
    ++state.stats.pooled_buffers;
    free_list.push_back(std::move(storage));
  }

  std::shared_ptr<State> state_;
};

/// The calling thread's workspace.  Solver hot paths borrow from here.
Workspace& this_thread_workspace();

}  // namespace rs::util
