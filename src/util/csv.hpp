// Tiny CSV reader/writer used for trace I/O and experiment exports.
// Supports the subset of RFC 4180 the library needs: comma separation,
// double-quoted fields with escaped quotes, and comment lines starting
// with '#'.
#pragma once

#include <string>
#include <vector>

namespace rs::util {

using CsvRow = std::vector<std::string>;

struct CsvTable {
  CsvRow header;               // empty if the file had no header
  std::vector<CsvRow> rows;
};

/// Serializes one row, quoting fields that contain separators/quotes.
std::string csv_format_row(const CsvRow& row);

/// Parses one CSV line into fields (handles quoted fields).
CsvRow csv_parse_line(const std::string& line);

/// Parses full CSV text.  If `has_header` the first non-comment line becomes
/// the header.  Blank and '#'-comment lines are skipped.
CsvTable csv_parse(const std::string& text, bool has_header);

/// Serializes a table (header written only if non-empty).
std::string csv_format(const CsvTable& table);

/// File helpers; throw std::runtime_error on I/O failure.
CsvTable csv_read_file(const std::string& path, bool has_header);
void csv_write_file(const std::string& path, const CsvTable& table);

}  // namespace rs::util
