#include "engine/solver_engine.hpp"

#include <cmath>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "offline/delta_session.hpp"
#include "offline/dp_solver.hpp"
#include "offline/low_memory_solver.hpp"
#include "online/lcp.hpp"
#include "util/audit.hpp"
#include "util/fault_injection.hpp"
#include "util/stopwatch.hpp"
#include "util/workspace.hpp"

namespace rs::engine {

using rs::core::DenseProblem;
using rs::core::Problem;
using rs::core::PwlProblem;

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kInvalidInput:
      return "invalid-input";
    case SolveStatus::kBackendFailure:
      return "backend-failure";
    case SolveStatus::kException:
      return "exception";
  }
  return "unknown";
}

namespace {

// One shared delta session per distinct instance with kDeltaResolve jobs.
// The session is stateful (probes repair forward and back), so probes on
// the same instance serialize on the slot mutex; the base solve happens
// lazily inside the first probe, behind the same job fault boundary.
struct DeltaSlot {
  std::mutex mutex;
  std::optional<rs::offline::DpDeltaSession> session;
};

SolveOutcome run_one(const SolveJob& job, const DenseProblem* dense,
                     const rs::core::PwlProblem* pwl, DeltaSlot* delta,
                     std::size_t index, std::mutex& stats_mutex,
                     BatchStats& stats) {
  // pwl: the batch's shared form cache for this instance (non-null exactly
  // when it admits a compact convex-PWL form and no table was materialized
  // for it).  Every kind replays from the cached forms — no job performs a
  // conversion of its own.
  if (rs::util::fault_fires(pwl != nullptr ? rs::util::FaultSite::kPwlBackend
                                           : rs::util::FaultSite::kDenseBackend,
                            index)) {
    throw BackendFailureError(pwl != nullptr
                                  ? "injected fault: PWL backend"
                                  : "injected fault: dense backend");
  }
  SolveOutcome outcome;
  switch (job.kind) {
    case SolverKind::kDpCost: {
      const rs::offline::DpSolver solver;
      outcome.cost = pwl     ? solver.solve_cost(*pwl)
                     : dense ? solver.solve_cost(*dense)
                             : solver.solve_cost(*job.problem);
      break;
    }
    case SolverKind::kDpSchedule: {
      const rs::offline::DpSolver solver;
      rs::offline::OfflineResult result =
          pwl     ? solver.solve(*pwl)
          : dense ? solver.solve(*dense)
                  : solver.solve(*job.problem);
      outcome.cost = result.cost;
      outcome.schedule = std::move(result.schedule);
      break;
    }
    case SolverKind::kLcp: {
      if (pwl) {
        outcome.schedule = rs::online::run_lcp_pwl(*pwl);
        outcome.cost = rs::core::total_cost(*job.problem, outcome.schedule);
      } else if (dense) {
        outcome.schedule = rs::online::run_lcp_dense(*dense);
        outcome.cost = rs::core::total_cost(*dense, outcome.schedule);
      } else {
        rs::online::Lcp lcp;
        outcome.schedule = rs::online::run_online(lcp, *job.problem);
        outcome.cost = rs::core::total_cost(*job.problem, outcome.schedule);
      }
      break;
    }
    case SolverKind::kLowMemory: {
      const rs::offline::LowMemorySolver solver;
      rs::offline::OfflineResult result =
          pwl ? solver.solve(*pwl) : solver.solve(*job.problem);
      outcome.cost = result.cost;
      outcome.schedule = std::move(result.schedule);
      break;
    }
    case SolverKind::kDeltaResolve: {
      const std::lock_guard<std::mutex> lock(delta->mutex);
      if (!delta->session.has_value()) {
        delta->session.emplace(*job.problem);  // one base solve per instance
      }
      rs::offline::DpDeltaSession::DeltaStats ds;
      rs::offline::OfflineResult result =
          delta->session->probe_delta(job.edit_slot, job.edit_cost, &ds);
      outcome.cost = result.cost;
      outcome.schedule = std::move(result.schedule);
      {
        const std::lock_guard<std::mutex> stats_lock(stats_mutex);
        stats.slots_repaired += static_cast<std::size_t>(ds.slots_repaired);
        if (ds.early_exit) ++stats.early_exits;
      }
      break;
    }
  }
  return outcome;
}

// One classified solve attempt: the outcome on success, nullopt with
// (status, error) filled on any fault.  A NaN total cost is demoted to
// kInvalidInput here so poisoned instances that slip through a solver
// without throwing still fail *their* job instead of polluting the batch.
std::optional<SolveOutcome> try_solve(const SolveJob& job,
                                      const DenseProblem* dense,
                                      const rs::core::PwlProblem* pwl,
                                      DeltaSlot* delta, std::size_t index,
                                      SolveStatus& status, std::string& error,
                                      std::mutex& stats_mutex,
                                      BatchStats& stats) {
  try {
    SolveOutcome outcome =
        run_one(job, dense, pwl, delta, index, stats_mutex, stats);
    if (std::isnan(outcome.cost)) {
      status = SolveStatus::kInvalidInput;
      error = "solver produced a NaN total cost";
      return std::nullopt;
    }
    // A kOk outcome contract audit (DESIGN.md §13): schedule-producing
    // kinds return one state per slot, every state inside [0, m], and
    // extended-real costs never go negative or -inf.
    RS_AUDIT({
      namespace audit = rs::util::audit;
      audit::require(!(outcome.cost < 0.0),
                     "engine-outcome-cost-nonnegative", "try_solve");
      if (!outcome.schedule.empty() && job.problem != nullptr) {
        audit::require(outcome.schedule.size() ==
                           static_cast<std::size_t>(job.problem->horizon()),
                       "engine-outcome-schedule-shape", "try_solve");
        const int m = job.problem->max_servers();
        for (const int x : outcome.schedule) {
          audit::require(0 <= x && x <= m,
                         "engine-outcome-schedule-in-range", "try_solve");
        }
      }
    });
    return outcome;
  } catch (const BackendFailureError& e) {
    status = SolveStatus::kBackendFailure;
    error = e.what();
  } catch (const std::invalid_argument& e) {
    status = SolveStatus::kInvalidInput;
    error = e.what();
  } catch (const std::domain_error& e) {
    status = SolveStatus::kInvalidInput;
    error = e.what();
  } catch (const std::exception& e) {
    status = SolveStatus::kException;
    error = e.what();
  } catch (...) {  // rs-lint: catch-all-ok (classified to kException)
    status = SolveStatus::kException;
    error = "unknown exception";
  }
  return std::nullopt;
}

// The per-job fault boundary: nothing a job does can escape this function.
// PWL-routed failures get one dense-streaming retry (no table build in the
// worker — the solvers stream rows from the original Problem), recorded as
// a DegradeEvent; a failure on the final attempt becomes a non-kOk outcome
// with an empty schedule.
void run_isolated(const SolveJob& job, const DenseProblem* dense,
                  const rs::core::PwlProblem* pwl, DeltaSlot* delta,
                  std::size_t index, SolveOutcome& out,
                  std::mutex& stats_mutex, BatchStats& stats) {
  SolveStatus status = SolveStatus::kOk;
  std::string error;
  if (std::optional<SolveOutcome> outcome = try_solve(
          job, dense, pwl, delta, index, status, error, stats_mutex, stats)) {
    out = std::move(*outcome);
    return;
  }
  if (pwl != nullptr && job.problem != nullptr) {
    const std::string first_error = error;
    if (std::optional<SolveOutcome> outcome =
            try_solve(job, nullptr, nullptr, nullptr, index, status, error,
                      stats_mutex, stats)) {
      out = std::move(*outcome);
      const std::lock_guard<std::mutex> lock(stats_mutex);
      stats.degrade_events.push_back(DegradeEvent{index, first_error});
      return;
    }
  }
  out = SolveOutcome{};
  out.status = status;
  out.error = std::move(error);
}

// Brackets one batch: samples the global workspace-growth counter and the
// wall clock around `body` and fills the derived stats.  Shared by run()
// and for_each() so typed batches and harness loops are measured
// identically.
void with_batch_stats(BatchStats& stats, std::size_t jobs,
                      std::size_t threads,
                      const std::function<void()>& body) {
  stats.jobs = jobs;
  stats.threads = threads;
  const std::uint64_t growths_before = rs::util::Workspace::total_growths();
  const rs::util::Stopwatch watch;
  body();
  stats.total_seconds = watch.seconds();
  stats.workspace_growths =
      rs::util::Workspace::total_growths() - growths_before;
  stats.instances_per_second =
      stats.total_seconds > 0.0
          ? static_cast<double>(jobs) / stats.total_seconds
          : 0.0;
}

}  // namespace

SolverEngine::SolverEngine(Options options) : options_(options) {
  if (options_.threads > 1) {
    pool_ = std::make_unique<rs::util::ThreadPool>(options_.threads);
  }
}

std::size_t SolverEngine::threads() const noexcept {
  if (pool_) return pool_->size();
  if (options_.threads == 1) return 1;
  return rs::util::global_pool().size();
}

void SolverEngine::dispatch(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  if (options_.threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Dynamic scheduling: batch entries routinely mix instance sizes and
  // solver kinds, so per-job costs vary by orders of magnitude and static
  // chunks would serialize behind the most expensive stretch.
  rs::util::ThreadPool& pool = pool_ ? *pool_ : rs::util::global_pool();
  pool.parallel_for_dynamic(0, n, fn);
}

BatchResult SolverEngine::run(std::span<const SolveJob> jobs) const {
  for (const SolveJob& job : jobs) {
    if (job.problem == nullptr && job.dense == nullptr) {
      throw std::invalid_argument("SolverEngine::run: job has no instance");
    }
    if (job.kind == SolverKind::kLowMemory && job.problem == nullptr) {
      throw std::invalid_argument(
          "SolverEngine::run: kLowMemory streams from a Problem");
    }
    if (job.dense && job.dense->mode() != DenseProblem::Mode::kEager &&
        options_.threads != 1) {
      // Lazy tables materialize rows unsynchronized on first touch; jobs
      // run concurrently on every configuration except inline.
      throw std::invalid_argument(
          "SolverEngine::run: lazy DenseProblem requires threads = 1");
    }
    if (job.kind == SolverKind::kDeltaResolve) {
      if (job.problem == nullptr) {
        throw std::invalid_argument(
            "SolverEngine::run: kDeltaResolve requires a Problem");
      }
      if (job.edit_cost == nullptr) {
        throw std::invalid_argument(
            "SolverEngine::run: kDeltaResolve requires an edit_cost");
      }
      if (job.edit_slot < 1 || job.edit_slot > job.problem->horizon()) {
        throw std::invalid_argument(
            "SolverEngine::run: kDeltaResolve edit_slot outside [1, T]");
      }
    }
  }

  BatchResult result;
  result.outcomes.resize(jobs.size());
  BatchStats& stats = result.stats;

  // The timed window covers the shared materialization too — a batch's
  // throughput includes the cost of building its tables.
  with_batch_stats(stats, jobs.size(), threads(), [&]() {
    // Backend probe per distinct Problem: instances whose every slot
    // admits a compact convex-PWL form run on the m-independent backend
    // and never materialize a table (at m ~ 10⁶ the T×(m+1) table would
    // not fit in memory, which is the point).  The probe converts by
    // building one shared PwlProblem per distinct instance — each slot is
    // converted exactly once per batch and the forms are what the routed
    // jobs replay from, not a discarded capability bit.
    std::unordered_map<const Problem*, std::shared_ptr<const PwlProblem>>
        pwl_cache;
    std::vector<std::shared_ptr<const PwlProblem>> pwl_of(jobs.size());
    // Delta probes share one lazily base-solved session per distinct
    // instance; they never touch the PWL probe or the dense tables (the
    // session's tracker IS the instance's materialization).
    std::unordered_map<const Problem*, std::unique_ptr<DeltaSlot>>
        delta_cache;
    std::vector<DeltaSlot*> delta_of(jobs.size(), nullptr);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].kind != SolverKind::kDeltaResolve) continue;
      std::unique_ptr<DeltaSlot>& slot = delta_cache[jobs[i].problem];
      if (slot == nullptr) slot = std::make_unique<DeltaSlot>();
      delta_of[i] = slot.get();
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const SolveJob& job = jobs[i];
      if (job.dense || job.problem == nullptr ||
          job.kind == SolverKind::kDeltaResolve) {
        continue;  // explicit tables stay dense
      }
      auto [it, inserted] = pwl_cache.try_emplace(job.problem, nullptr);
      if (inserted) {
        // A throwing cost function must fail *its* jobs, not the batch: a
        // probe fault leaves the instance unrouted, and the per-job
        // attempts re-hit and classify the error behind the isolation
        // boundary.
        try {
          if (std::optional<PwlProblem> built =
                  PwlProblem::try_convert(*job.problem)) {
            it->second =
                std::make_shared<const PwlProblem>(std::move(*built));
            stats.pwl_conversions += it->second->conversions();
          }
        } catch (...) {  // rs-lint: catch-all-ok (cache probe: a failed
                         // conversion is a miss; jobs classify their own)
          it->second = nullptr;
        }
      }
      if (it->second) {
        pwl_of[i] = it->second;
        ++stats.pwl_backed;
      }
    }

    // One-shot dense materialization per distinct Problem that still needs
    // rows.  Tables are eager (immutable after construction), so sharing
    // them across the batch's worker threads is safe.  Materialization
    // happens up front on the calling thread; the eager constructor
    // parallelizes internally over the global pool for large instances.
    std::vector<std::shared_ptr<const DenseProblem>> dense_of(jobs.size());
    if (options_.share_dense) {
      std::unordered_map<const Problem*, std::shared_ptr<const DenseProblem>>
          cache;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SolveJob& job = jobs[i];
        if (job.kind == SolverKind::kLowMemory ||
            job.kind == SolverKind::kDeltaResolve) {
          continue;
        }
        if (job.dense) {
          dense_of[i] = job.dense;
          continue;
        }
        if (pwl_of[i]) continue;  // served without rows
        auto [it, inserted] = cache.try_emplace(job.problem, nullptr);
        if (inserted) {
          // Rows only: the batch kinds never query the minimizer caches,
          // and skipping them trims two O(m) scans per row off
          // materialization.  A materialization fault (throwing cost
          // function) leaves the instance's jobs streaming from the
          // Problem, where the per-job isolation classifies the error.
          try {
            it->second = std::make_shared<DenseProblem>(
                *job.problem, DenseProblem::Mode::kEager,
                DenseProblem::MinimizerCache::kOnDemand);
            ++stats.dense_tables_built;
          } catch (...) {  // rs-lint: catch-all-ok (shared-table build: a
                           // failure falls back to per-job isolation)
            it->second = nullptr;
          }
        }
        dense_of[i] = it->second;
      }
    } else {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].kind != SolverKind::kLowMemory) {
          dense_of[i] = jobs[i].dense;
        }
      }
    }

    std::mutex stats_mutex;
    dispatch(jobs.size(), [&jobs, &result, &dense_of, &pwl_of, &delta_of,
                           &stats_mutex, &stats](std::size_t i) {
      run_isolated(jobs[i], dense_of[i].get(), pwl_of[i].get(), delta_of[i],
                   i, result.outcomes[i], stats_mutex, stats);
    });
    for (const SolveOutcome& outcome : result.outcomes) {
      if (!outcome.ok()) ++stats.failed_jobs;
    }
  });
  return result;
}

void SolverEngine::for_each(std::size_t n,
                            const std::function<void(std::size_t)>& fn,
                            BatchStats* stats) const {
  if (!fn) throw std::invalid_argument("SolverEngine::for_each: null fn");
  BatchStats local;
  with_batch_stats(local, n, threads(), [&]() { dispatch(n, fn); });
  if (stats != nullptr) *stats = local;
}

void SolverEngine::for_each_timed(std::size_t n,
                                  const std::function<void(std::size_t)>& fn,
                                  std::span<double> seconds,
                                  BatchStats* stats) const {
  if (!fn) {
    throw std::invalid_argument("SolverEngine::for_each_timed: null fn");
  }
  if (seconds.size() < n) {
    throw std::invalid_argument(
        "SolverEngine::for_each_timed: seconds span smaller than n");
  }
  BatchStats local;
  with_batch_stats(local, n, threads(), [&]() {
    dispatch(n, [&fn, seconds](std::size_t i) {
      const rs::util::Stopwatch watch;
      fn(i);
      seconds[i] = watch.seconds();
    });
  });
  if (stats != nullptr) *stats = local;
}

}  // namespace rs::engine
