// Batch solver engine: throughput (instances/sec) as a first-class quantity.
//
// The fleet-style consumers of this library — Monte-Carlo trials,
// competitive-ratio sweeps, adversary search — issue thousands of small
// solves whose wall-clock is dominated by amortizable per-instance
// overhead, not single-solve asymptotics.  SolverEngine batches them:
//
//   * jobs are (instance, solver kind) pairs submitted N at a time;
//   * each distinct Problem is materialized into one shared eager
//     DenseProblem (immutable, thread-safe), so K jobs on the same
//     instance evaluate its cost rows once instead of K times;
//   * jobs run with dynamic scheduling across a ThreadPool (the global
//     pool, a dedicated pool, or inline for threads = 1), and every solver
//     draws its scratch from the per-thread workspace arenas
//     (util/workspace.hpp), so a warm batch performs zero allocations in
//     the solve loops;
//   * every batch reports BatchStats: instances/sec, wall time, thread
//     count, dense tables built, and the workspace-growth delta (the
//     allocation-free flag the throughput benchmarks and warm-arena tests
//     key on).
//
// Results are written by job index, so batch outcomes are bit-identical to
// sequential solo solves and deterministic under any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "core/pwl_problem.hpp"
#include "core/schedule.hpp"
#include "util/thread_pool.hpp"

namespace rs::engine {

/// Which solver a job runs.  All kinds produce a SolveOutcome; cost-only
/// kinds leave the schedule empty.
enum class SolverKind {
  kDpCost,        // DpSolver::solve_cost — O(m) memory, cost only
  kDpSchedule,    // DpSolver::solve — cost + optimal schedule
  kLcp,           // LCP replay — schedule + its total cost
  kLowMemory,     // LowMemorySolver — streams from the Problem by design
  kDeltaResolve,  // what-if probe on a shared DpDeltaSession (see SolveJob)
};

/// One batch entry.  `problem` is non-owning and must outlive run(); jobs
/// may alternatively (or additionally) carry a pre-built dense table.
/// kLowMemory requires `problem` (its O(m)-memory contract precludes a
/// table); the other kinds use `dense` when present, else the engine's
/// shared materialization of `problem`.
///
/// kDeltaResolve answers "what if slot `edit_slot` of `problem` cost
/// `edit_cost` instead?": the batch lazily base-solves each distinct
/// instance into ONE shared offline::DpDeltaSession (the analog of the
/// shared dense table), and every probe repairs forward from its edited
/// slot — with the bitwise reconvergence early-exit — instead of
/// re-solving the horizon.  Outcomes are bit-identical to a from-scratch
/// solve of the edited instance and independent of probe order (each probe
/// restores the session bitwise).  Requires `problem`, a non-null
/// `edit_cost`, and `edit_slot` in [1, horizon]; repair work lands in
/// BatchStats::slots_repaired / early_exits.
struct SolveJob {
  const rs::core::Problem* problem = nullptr;
  std::shared_ptr<const rs::core::DenseProblem> dense = nullptr;
  SolverKind kind = SolverKind::kDpCost;
  int edit_slot = 0;                       // kDeltaResolve: 1-based edited slot
  rs::core::CostPtr edit_cost = nullptr;   // kDeltaResolve: replacement cost
};

/// Per-job terminal status.  A batch never loses a job to another job's
/// fault: every submitted job gets exactly one outcome, and anything that
/// goes wrong *inside* a job is classified here instead of escaping run().
enum class SolveStatus {
  kOk = 0,
  /// The job's own input is unusable: malformed instance, NaN slot costs,
  /// a solver precondition violated (std::invalid_argument / domain_error),
  /// or a NaN total cost.  Deterministic — resubmitting cannot succeed.
  kInvalidInput,
  /// A solver backend failed (BackendFailureError), e.g. under fault
  /// injection.  PWL-routed jobs get one dense-streaming retry first.
  kBackendFailure,
  /// Any other exception out of job execution (the catch-all that keeps a
  /// poisoned job from killing the batch); `error` carries what().
  kException,
};

const char* to_string(SolveStatus status) noexcept;

/// Thrown by solver backends to signal an environmental (possibly
/// transient) failure as opposed to bad input; the engine's fault-injection
/// sites throw it, and it is the one status the dense fallback retries.
class BackendFailureError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One PWL-routed job that failed and was recovered by the dense-streaming
/// fallback; `reason` is the original failure message.
struct DegradeEvent {
  std::size_t job = 0;
  std::string reason;
};

struct SolveOutcome {
  double cost = 0.0;
  rs::core::Schedule schedule;  // empty for kDpCost
  SolveStatus status = SolveStatus::kOk;
  std::string error;  // empty iff ok()
  bool ok() const noexcept { return status == SolveStatus::kOk; }
};

struct BatchStats {
  std::size_t jobs = 0;
  std::size_t threads = 1;
  std::size_t dense_tables_built = 0;  // distinct instances materialized
  // Jobs served by the m-independent convex-PWL backend.  The engine
  // probes each distinct Problem by building a shared core::PwlProblem
  // (the probe IS the cache — its forms are kept, not discarded) and
  // routes every job kind of an admitting instance there, skipping the
  // dense table for that instance entirely — the selection that makes
  // million-server batch entries feasible.  Jobs carrying an explicit
  // pre-built table always run dense.
  std::size_t pwl_backed = 0;
  // Slot-to-ConvexPwl conversions performed this batch: exactly one per
  // slot per admitting distinct instance, however many jobs share it (the
  // one-conversion-per-slot invariant the regression tests assert).
  std::size_t pwl_conversions = 0;
  // kDeltaResolve accounting: tracker advances re-executed by the batch's
  // repairs (excludes each instance's one-time base solve), and how many
  // probes hit the bitwise reconvergence early-exit.  The repair-vs-replay
  // win of a batch is roughly jobs·T versus slots_repaired.
  std::size_t slots_repaired = 0;
  std::size_t early_exits = 0;
  double total_seconds = 0.0;
  double instances_per_second = 0.0;
  // Workspace growth events during the batch, summed over all threads; 0
  // means the batch ran allocation-free out of warm arenas.  The counter
  // is process-global, so concurrent workspace activity *outside* this
  // batch (another engine running in parallel) is attributed to it —
  // interpret the flag under one batch at a time, which is how the
  // benchmarks and tests measure it.
  std::uint64_t workspace_growths = 0;
  // Jobs whose outcome ended with status != kOk (after any retry); the
  // batch itself still completes and every other outcome is valid.
  std::size_t failed_jobs = 0;
  // PWL-routed jobs recovered by the dense-streaming fallback, in job
  // order.  Empty on every healthy batch (the vector never allocates on
  // the happy path, preserving the allocation-free steady state).
  std::vector<DegradeEvent> degrade_events;
  bool allocation_free() const noexcept { return workspace_growths == 0; }
};

struct BatchResult {
  std::vector<SolveOutcome> outcomes;  // outcome i belongs to job i
  BatchStats stats;
};

class SolverEngine {
 public:
  struct Options {
    /// 0 = share the process-wide pool; 1 = run inline on the calling
    /// thread (deterministic, no cross-thread handoff); N > 1 = dedicated
    /// pool with N workers owned by this engine.
    std::size_t threads = 0;
    /// Materialize one shared DenseProblem per distinct Problem in a batch.
    /// Off, jobs stream rows per solve (the naive baseline the throughput
    /// benchmarks compare against).
    bool share_dense = true;
  };

  SolverEngine() : SolverEngine(Options{}) {}
  explicit SolverEngine(Options options);

  /// Runs every job and returns outcomes by job index plus batch stats.
  ///
  /// Fault isolation: *structural* job errors — no instance, kLowMemory
  /// without a Problem, a lazy dense table with threads != 1 — are caller
  /// bugs and throw std::invalid_argument before anything runs.  Faults
  /// *during* execution (throwing cost functions, NaN costs, backend
  /// failures) never escape: the affected job's outcome carries a non-kOk
  /// SolveStatus and the error message, every other job completes
  /// unaffected, and stats.failed_jobs counts the casualties.  Jobs routed
  /// to the PWL backend get one dense-streaming retry on failure, recorded
  /// in stats.degrade_events.
  BatchResult run(std::span<const SolveJob> jobs) const;
  BatchResult run(const std::vector<SolveJob>& jobs) const {
    return run(std::span<const SolveJob>(jobs));
  }

  /// Generic batched harness: runs fn(0..n-1) with the engine's scheduling
  /// and records the same batch stats (jobs = n).  Monte-Carlo trials and
  /// SweepRunner grids run through here so their throughput is measured
  /// the same way as typed solver batches.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn,
                BatchStats* stats = nullptr) const;

  /// for_each with per-item wall times: fn(i)'s duration on its executing
  /// worker lands in seconds[i] (seconds.size() >= n).  The fleet
  /// controller's tick dispatch runs through here, so per-tenant step
  /// times and the batch-level stats come from the same measurement
  /// bracketing as every other engine entry point.
  void for_each_timed(std::size_t n,
                      const std::function<void(std::size_t)>& fn,
                      std::span<double> seconds,
                      BatchStats* stats = nullptr) const;

  /// Worker count the batch runs on (1 for inline mode).
  std::size_t threads() const noexcept;

  const Options& options() const noexcept { return options_; }

 private:
  void dispatch(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

  Options options_;
  std::unique_ptr<rs::util::ThreadPool> pool_;  // only when threads > 1
};

}  // namespace rs::engine
