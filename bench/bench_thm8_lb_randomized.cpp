// E8 — Theorems 8/9: no randomized online algorithm beats expected ratio 2
// against an oblivious adversary in the discrete setting.
//
// The adversary of Section 5.3 plays against the rounding marginals
// x̄^A_t = Pr[x^A_t = 1]; the expected cost of the rounded algorithm equals
// the fractional cost of its marginal schedule (Lemmas 19/20), so the table
// reports exact expected ratios.  The randomized rounding algorithm of
// Theorem 3 is therefore optimal.
#include "bench_common.hpp"

int main() {
  std::cout << "E8 / Theorems 8-9: randomized lower bound -> 2 (discrete)\n\n";

  rs::util::TextTable table(
      {"epsilon", "T", "E[ratio] exact", "MC mean ratio", "MC 95% ci"});
  double last_ratio = 0.0;
  for (double eps : {0.2, 0.1, 0.05, 0.02}) {
    const int horizon = static_cast<int>(2.0 / (eps * eps));
    rs::online::RandomizedRounding algorithm(4242);
    const rs::lowerbound::AdversaryOutcome outcome =
        rs::lowerbound::randomized_discrete_adversary(algorithm, eps, horizon);

    // Monte-Carlo confirmation on the generated instance: replay the
    // randomized algorithm with many seeds.
    const rs::analysis::MonteCarloReport mc = rs::analysis::monte_carlo(
        outcome.problem, 96, 1000, [&outcome](std::uint64_t seed) {
          rs::online::RandomizedRounding trial(seed);
          const rs::core::Schedule x =
              rs::online::run_online(trial, outcome.problem);
          return rs::core::total_cost(outcome.problem, x);
        });

    rs::bench::check(outcome.ratio <= 2.0 + 1e-6,
                     "expected ratio within the factor-2 guarantee");
    rs::bench::check(
        std::abs(mc.cost.mean - outcome.algorithm_cost) <=
            4.0 * mc.cost.ci95_half_width +
                1e-3 * outcome.algorithm_cost,
        "Monte-Carlo cost matches the exact expectation");
    last_ratio = outcome.ratio;

    table.add_row(
        {rs::util::TextTable::num(eps, 3), std::to_string(horizon),
         rs::util::TextTable::num(outcome.ratio, 4),
         rs::util::TextTable::num(mc.ratio.mean, 4),
         "±" + rs::util::TextTable::num(mc.ratio.ci95_half_width, 4)});
  }
  rs::bench::check(last_ratio > 1.95,
                   "randomized bound converges to 2 (reached > 1.95)");
  std::cout << table;
  std::cout << "\nExpected ratio -> 2 as epsilon -> 0: the Theorem-3 "
               "algorithm is optimal among randomized algorithms.\n";
  return rs::bench::finish("E8 (Theorems 8-9)");
}
