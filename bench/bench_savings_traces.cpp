// E10 — trace-driven right-sizing savings (the Lin et al. experimental
// study the paper's introduction builds on; proprietary traces replaced by
// the documented synthetic stand-ins, see DESIGN.md §3).
//
// For each trace and switching-cost scale: cost of the best static
// provisioning, online LCP, and the offline optimum; objective savings of
// right-sizing vs. static; and physical energy savings of the optimal
// schedule vs. keeping every server active.  Expected shapes: savings grow
// with the trace's valleys (hotmail > msr at equal peak), shrink as β
// grows, and LCP stays close to the optimum (far below its worst case 3).
#include "bench_common.hpp"

int main() {
  std::cout << "E10: right-sizing savings on the two trace stand-ins\n\n";
  rs::dcsim::DataCenterModel model;
  model.servers = 32;

  rs::util::TextTable table({"trace", "peak/mean", "beta scale", "static",
                             "lcp", "opt", "lcp save%", "opt save%",
                             "energy save%", "lcp/opt"});

  double hotmail_base_savings = 0.0;
  double hotmail_expensive_savings = 0.0;
  double msr_base_savings = 0.0;

  for (const char* name : {"hotmail_like", "msr_like"}) {
    rs::util::Rng rng(name[0] == 'h' ? 101 : 202);
    const rs::workload::Trace trace =
        name[0] == 'h'
            ? rs::workload::hotmail_like(rng, 5, 96, 0.6 * model.servers)
            : rs::workload::msr_like(rng, 5, 96, 0.6 * model.servers);

    for (double beta_scale : {0.25, 1.0, 4.0, 16.0, 64.0}) {
      const rs::analysis::SavingsRow row =
          rs::analysis::evaluate_savings(model, trace, name, beta_scale);
      rs::bench::check(row.lcp_ratio <= 3.0 + 1e-9,
                       "LCP within Theorem-2 bound on " + std::string(name));
      rs::bench::check(row.optimal_savings_percent >= -1e-9,
                       "right-sizing never loses to static provisioning");
      if (name[0] == 'h' && beta_scale == 1.0) {
        hotmail_base_savings = row.optimal_savings_percent;
      }
      if (name[0] == 'h' && beta_scale == 64.0) {
        hotmail_expensive_savings = row.optimal_savings_percent;
      }
      if (name[0] == 'm' && beta_scale == 1.0) {
        msr_base_savings = row.optimal_savings_percent;
      }
      table.add_row({row.trace_name,
                     rs::util::TextTable::num(row.peak_to_mean, 2),
                     rs::util::TextTable::num(beta_scale, 2),
                     rs::util::TextTable::num(row.static_cost, 1),
                     rs::util::TextTable::num(row.lcp_cost, 1),
                     rs::util::TextTable::num(row.optimal_cost, 1),
                     rs::util::TextTable::num(row.lcp_savings_percent, 1),
                     rs::util::TextTable::num(row.optimal_savings_percent, 1),
                     rs::util::TextTable::num(row.energy_savings_percent, 1),
                     rs::util::TextTable::num(row.lcp_ratio, 3)});
    }
  }
  std::cout << table;

  rs::bench::check(hotmail_base_savings > hotmail_expensive_savings,
                   "savings shrink as switching gets more expensive");
  rs::bench::check(hotmail_base_savings > 0.0 && msr_base_savings > 0.0,
                   "both traces benefit from right-sizing at base beta");
  std::cout << "\nShapes match the Lin et al. study: deep diurnal valleys "
               "(hotmail-like) give the largest savings; expensive switching "
               "erodes them; LCP tracks the optimum closely on real-shaped "
               "workloads.\n";
  return rs::bench::finish("E10 (savings study)");
}
