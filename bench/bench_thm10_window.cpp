// E9 — Theorem 10: finite prediction windows do not improve the lower
// bounds.
//
// Each adversary function is replaced by n·w copies at scale 1/(n·w); an
// algorithm with window w then effectively gains knowledge of only a
// (1/n)-fraction of each original slot.  The table shows LCP-with-window
// ratios on stretched instances staying near 3 for every w, while on a
// *realistic* diurnal trace the same windows close most of the optimality
// gap — predictions help in practice, never in the worst case.
#include "bench_common.hpp"

int main() {
  std::cout << "E9 / Theorem 10: prediction windows and the lower bound\n\n";

  // Part 1: stretched adversarial instances.
  rs::online::Lcp lcp;
  const rs::lowerbound::AdversaryOutcome base =
      rs::lowerbound::deterministic_discrete_adversary(lcp, 0.05, 4000);

  std::cout << "-- stretched adversarial instance (n = 8) --\n";
  rs::util::TextTable adversarial({"window w", "stretch n*w", "T'",
                                   "lcp(w) ratio"});
  for (int w : {0, 1, 2, 4}) {
    const int factor = std::max(1, 8 * w);
    const rs::core::Problem stretched =
        rs::lowerbound::stretch_for_window(base.problem, factor);
    rs::online::WindowedLcp windowed;
    const rs::core::Schedule x = rs::online::run_online(windowed, stretched, w);
    const double optimal = rs::offline::DpSolver().solve_cost(stretched);
    const double ratio = rs::core::total_cost(stretched, x) / optimal;
    rs::bench::check(ratio > 2.5,
                     "window w=" + std::to_string(w) +
                         " cannot escape the stretched lower bound");
    rs::bench::check(ratio <= 3.0 + 1e-9, "within the Theorem-2 bound");
    adversarial.add_row({std::to_string(w), std::to_string(factor),
                         std::to_string(stretched.horizon()),
                         rs::util::TextTable::num(ratio, 4)});
  }
  std::cout << adversarial;

  // Part 2: the same windows on a realistic trace (LCP(w), RHC, AFHC).
  std::cout << "\n-- hotmail-like trace (windows help in practice) --\n";
  rs::util::Rng rng(17);
  const rs::core::Problem trace_problem =
      rs::bench::hotmail_restricted(rng, 24, 2, 1.0);
  const double optimal = rs::offline::DpSolver().solve_cost(trace_problem);
  rs::util::TextTable realistic(
      {"window w", "lcp(w) ratio", "rhc ratio", "afhc ratio"});
  double w0_ratio = 0.0;
  double w16_ratio = 0.0;
  for (int w : {0, 1, 4, 16}) {
    rs::online::WindowedLcp windowed;
    const rs::core::Schedule x =
        rs::online::run_online(windowed, trace_problem, w);
    const double ratio = rs::core::total_cost(trace_problem, x) / optimal;
    if (w == 0) w0_ratio = ratio;
    if (w == 16) w16_ratio = ratio;

    rs::online::RecedingHorizon rhc;
    const rs::core::Schedule rhc_x =
        rs::online::run_online(rhc, trace_problem, w);
    const double rhc_ratio =
        rs::core::total_cost(trace_problem, rhc_x) / optimal;

    rs::online::AveragingFixedHorizon afhc(w);
    const rs::core::FractionalSchedule afhc_x =
        rs::online::run_online(afhc, trace_problem, w);
    const double afhc_ratio =
        rs::core::total_cost(trace_problem, afhc_x) / optimal;

    realistic.add_row({std::to_string(w), rs::util::TextTable::num(ratio, 4),
                       rs::util::TextTable::num(rhc_ratio, 4),
                       rs::util::TextTable::num(afhc_ratio, 4)});
  }
  rs::bench::check(w16_ratio <= w0_ratio + 1e-9,
                   "lookahead does not hurt on the realistic trace");
  std::cout << realistic;
  std::cout << "\nWorst-case ratio is invariant in w (Theorem 10); realistic "
               "traces benefit from lookahead.\n";
  return rs::bench::finish("E9 (Theorem 10)");
}
