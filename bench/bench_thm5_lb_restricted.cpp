// E6 — Theorem 5: the deterministic lower bound of 3 survives in the
// restricted model (eq. 2): m = 2 servers, single per-server cost
// f(z) = ε|1−2z|, workloads λ_t ∈ {0.5, 1}, constraint x_t >= λ_t.
#include "bench_common.hpp"

int main() {
  std::cout
      << "E6 / Theorem 5: deterministic lower bound -> 3 (restricted model)\n\n";

  rs::util::TextTable table({"epsilon", "T", "lcp ratio", "all_on ratio"});
  double last_ratio = 0.0;
  for (double eps : {0.2, 0.1, 0.05, 0.02, 0.01}) {
    const int horizon = static_cast<int>(4.0 / (eps * eps));
    rs::online::Lcp lcp;
    const rs::lowerbound::AdversaryOutcome lcp_outcome =
        rs::lowerbound::restricted_discrete_adversary(lcp, eps, horizon);
    rs::online::AllOn all_on;
    const rs::lowerbound::AdversaryOutcome allon_outcome =
        rs::lowerbound::restricted_discrete_adversary(all_on, eps, horizon);

    rs::bench::check(lcp_outcome.ratio <= 3.0 + 1e-9,
                     "LCP within bound in the restricted model");
    last_ratio = lcp_outcome.ratio;

    table.add_row({rs::util::TextTable::num(eps, 3), std::to_string(horizon),
                   rs::util::TextTable::num(lcp_outcome.ratio, 4),
                   rs::util::TextTable::num(allon_outcome.ratio, 4)});
  }
  rs::bench::check(last_ratio > 2.9,
                   "restricted-model ratio converges to 3 (reached > 2.9)");
  std::cout << table;
  std::cout << "\nThe reduction maps G-model states {0,1} to L-model states "
               "{1,2}; the bound carries over unchanged.\n";
  return rs::bench::finish("E6 (Theorem 5)");
}
