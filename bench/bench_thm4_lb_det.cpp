// E5 — Theorem 4: no deterministic online algorithm beats competitive
// ratio 3 in the discrete setting.
//
// Runs the ϕ0/ϕ1 adversary (m = 1, β = 2, T = 1/ε²) against LCP and
// follow-the-minimizer for a sweep of ε.  The measured ratios converge to 3
// from below as ε -> 0, matching Theorem 2's upper bound exactly: LCP is
// optimally competitive.
#include "bench_common.hpp"

int main() {
  std::cout << "E5 / Theorem 4: deterministic lower bound -> 3 (discrete)\n\n";

  rs::util::TextTable table({"epsilon", "T", "lcp ratio", "follow_min ratio"});
  double first_lcp_ratio = 0.0;
  double last_lcp_ratio = 0.0;
  for (double eps : {0.2, 0.1, 0.05, 0.02, 0.01, 0.005}) {
    rs::online::Lcp lcp;
    const rs::lowerbound::AdversaryOutcome lcp_outcome =
        rs::lowerbound::deterministic_discrete_adversary(lcp, eps);
    rs::online::FollowTheMinimizer follow;
    const rs::lowerbound::AdversaryOutcome follow_outcome =
        rs::lowerbound::deterministic_discrete_adversary(follow, eps);

    rs::bench::check(lcp_outcome.ratio <= 3.0 + 1e-9,
                     "LCP stays within its Theorem-2 bound");
    if (first_lcp_ratio == 0.0) first_lcp_ratio = lcp_outcome.ratio;
    last_lcp_ratio = lcp_outcome.ratio;

    table.add_row({rs::util::TextTable::num(eps, 3),
                   std::to_string(lcp_outcome.problem.horizon()),
                   rs::util::TextTable::num(lcp_outcome.ratio, 4),
                   rs::util::TextTable::num(follow_outcome.ratio, 4)});
  }
  // Discretization makes the sweep non-monotone at coarse ε; the claim is
  // convergence to 3 as ε -> 0.
  rs::bench::check(last_lcp_ratio > first_lcp_ratio,
                   "ratio grows from the coarsest to the finest epsilon");
  rs::bench::check(last_lcp_ratio > 2.97,
                   "LCP ratio converges to 3 (reached > 2.97)");
  std::cout << table;
  std::cout << "\nBoth algorithms are pinned at ratio -> 3; by Theorem 4 no "
               "deterministic algorithm can do better, so LCP is optimal.\n";
  return rs::bench::finish("E5 (Theorem 4)");
}
