// E2 — Theorem 1 (google-benchmark): wall-clock scaling of the offline
// solvers.  The paper's binary-search algorithm runs in O(T·log m); the DP
// baseline in O(T·m); the Figure-1 shortest path in O(T·m²).
//
// The *_Dense vs *_PerPoint pairs measure the dense evaluation layer
// (CostFunction::eval_row + row-consuming kernels) against the seed's
// per-point cost_at path on the two dispatch-heavy instance classes:
// decorator chains (Scaled→Stride→Padded→Table) and RestrictedSlotCost
// (a std::function call per evaluation).  scripts/bench_baseline.sh turns
// these pairs into the speedup entries of BENCH_results.json.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

rs::core::Problem make_instance(int T, int m) {
  // Deterministic per-size instance; materialized so cost-function
  // evaluation is a table lookup for DP/graph.  The binary-search solver is
  // measured on the same tables.
  rs::util::Rng rng(static_cast<std::uint64_t>(T) * 1000003u +
                    static_cast<std::uint64_t>(m));
  return rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kQuadratic, T, m, 2.0);
}

void BM_DpDense_Decorated(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::decorated_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  const rs::offline::DpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_cost(p));
  }
}

void BM_DpPerPoint_Decorated(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::decorated_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::bench::per_point_dp_cost_reference(p));
  }
}

void BM_DpDense_Restricted(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::restricted_slot_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  const rs::offline::DpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_cost(p));
  }
}

void BM_DpPerPoint_Restricted(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::restricted_slot_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::bench::per_point_dp_cost_reference(p));
  }
}

void BM_LcpDense_Decorated(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::decorated_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    rs::online::Lcp lcp;
    benchmark::DoNotOptimize(rs::online::run_online(lcp, p).size());
  }
}

void BM_LcpPerPoint_Decorated(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::decorated_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::bench::per_point_lcp_reference(p).size());
  }
}

void BM_LcpDense_Restricted(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::restricted_slot_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    rs::online::Lcp lcp;
    benchmark::DoNotOptimize(rs::online::run_online(lcp, p).size());
  }
}

void BM_LcpPerPoint_Restricted(benchmark::State& state) {
  const rs::core::Problem p = rs::bench::restricted_slot_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::bench::per_point_lcp_reference(p).size());
  }
}

// Table-backed variants: the DenseProblem is built once outside the timing
// loop (the analysis-sweep / repeated-solve usage the layer was built for,
// mirroring how the seed benchmarks materialize() instances up front), so
// these measure the pure row-consuming kernels.

void BM_DpTable_Decorated(benchmark::State& state) {
  const rs::core::DenseProblem dense(rs::bench::decorated_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1))));
  const rs::offline::DpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_cost(dense));
  }
}

void BM_DpTable_Restricted(benchmark::State& state) {
  const rs::core::DenseProblem dense(rs::bench::restricted_slot_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1))));
  const rs::offline::DpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_cost(dense));
  }
}

void BM_LcpTable_Decorated(benchmark::State& state) {
  const rs::core::DenseProblem dense(rs::bench::decorated_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::online::run_lcp_dense(dense).size());
  }
}

void BM_LcpTable_Restricted(benchmark::State& state) {
  const rs::core::DenseProblem dense(rs::bench::restricted_slot_instance(
      static_cast<int>(state.range(0)), static_cast<int>(state.range(1))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs::online::run_lcp_dense(dense).size());
  }
}

void BM_DpSolver(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const rs::core::Problem p = rs::core::materialize(make_instance(T, m));
  const rs::offline::DpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_cost(p));
  }
  state.SetComplexityN(static_cast<std::int64_t>(T) * m);
}

void BM_BinarySearchSolver(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const rs::core::Problem p = make_instance(T, m);  // lazy: O(T log m) evals
  const rs::offline::BinarySearchSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p).cost);
  }
}

void BM_GraphSolver(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const rs::core::Problem p = rs::core::materialize(make_instance(T, m));
  const rs::offline::GraphSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p).cost);
  }
}

void BM_BackwardSolver(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const rs::core::Problem p = rs::core::materialize(make_instance(T, m));
  const rs::offline::BackwardSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p).cost);
  }
}

void BM_LcpOnline(benchmark::State& state) {
  const int T = static_cast<int>(state.range(0));
  const int m = static_cast<int>(state.range(1));
  const rs::core::Problem p = rs::core::materialize(make_instance(T, m));
  for (auto _ : state) {
    rs::online::Lcp lcp;
    benchmark::DoNotOptimize(rs::online::run_online(lcp, p).size());
  }
}

}  // namespace

// Dense-vs-per-point pairs (acceptance: dense >= 2x on both classes at
// T=10^4, m=10^3).  The {64, 64} variants exist for the --smoke ctest run.
#define RIGHTSIZER_DENSE_ARGS \
  ->Args({64, 64})->Args({10000, 1000})->Unit(benchmark::kMillisecond)
BENCHMARK(BM_DpDense_Decorated) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_DpPerPoint_Decorated) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_DpDense_Restricted) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_DpPerPoint_Restricted) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_LcpDense_Decorated) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_LcpPerPoint_Decorated) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_LcpDense_Restricted) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_LcpPerPoint_Restricted) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_DpTable_Decorated) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_DpTable_Restricted) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_LcpTable_Decorated) RIGHTSIZER_DENSE_ARGS;
BENCHMARK(BM_LcpTable_Restricted) RIGHTSIZER_DENSE_ARGS;
#undef RIGHTSIZER_DENSE_ARGS

// m-scaling at fixed T: DP grows linearly in m, binary search
// logarithmically.
BENCHMARK(BM_DpSolver)->Args({64, 256})->Args({64, 1024})->Args({64, 4096})
    ->Args({64, 16384})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BinarySearchSolver)->Args({64, 256})->Args({64, 1024})
    ->Args({64, 4096})->Args({64, 16384})->Args({64, 262144})
    ->Unit(benchmark::kMicrosecond);
// T-scaling at fixed m: both linear in T.
BENCHMARK(BM_DpSolver)->Args({256, 1024})->Args({1024, 1024})
    ->Args({4096, 1024})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BinarySearchSolver)->Args({256, 1024})->Args({1024, 1024})
    ->Args({4096, 1024})->Unit(benchmark::kMicrosecond);
// The pseudo-polynomial baseline (kept small; O(T·m²) edges).
BENCHMARK(BM_GraphSolver)->Args({64, 64})->Args({64, 128})->Args({64, 256})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BackwardSolver)->Args({1024, 256})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LcpOnline)->Args({1024, 256})->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
