// E11 — ablations of the design choices called out in DESIGN.md:
//
//  (a) LevelFlow counter scale: the 2-competitive setting uses increments
//      penalty/β; halving or doubling the speed must hurt on the
//      adversarial family.
//  (b) Memoryless balance θ: θ = 2 is the optimal memoryless setting.
//  (c) Offline kernel: bounded-DP work of the binary-search solver vs. the
//      full DP at growing m (the O(T log m) claim, in evaluation counts).
#include "bench_common.hpp"

int main() {
  std::cout << "E11: ablations\n\n";

  std::cout << "-- (a) LevelFlow counter scale on the E7 adversary --\n";
  rs::util::TextTable level_table({"scale", "ratio (eps=0.05)"});
  double best_scale_ratio = rs::util::kInf;
  double default_ratio = 0.0;
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    rs::online::LevelFlow flow(scale);
    const rs::lowerbound::AdversaryOutcome outcome =
        rs::lowerbound::continuous_adversary(flow, 0.05, 1600);
    if (scale == 1.0) default_ratio = outcome.ratio;
    best_scale_ratio = std::min(best_scale_ratio, outcome.ratio);
    level_table.add_row({rs::util::TextTable::num(scale, 2),
                         rs::util::TextTable::num(outcome.ratio, 4)});
  }
  rs::bench::check(default_ratio <= best_scale_ratio + 1e-9,
                   "scale 1.0 (the 2-competitive setting) is best on the "
                   "adversarial family");
  std::cout << level_table;

  std::cout << "\n-- (b) memoryless balance theta on the E7 adversary --\n";
  rs::util::TextTable theta_table({"theta", "ratio (eps=0.05)"});
  double theta2_ratio = 0.0;
  double theta_best = rs::util::kInf;
  for (double theta : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    rs::online::MemorylessBalance alg(theta);
    const rs::lowerbound::AdversaryOutcome outcome =
        rs::lowerbound::continuous_adversary(alg, 0.05, 1600);
    if (theta == 2.0) theta2_ratio = outcome.ratio;
    theta_best = std::min(theta_best, outcome.ratio);
    theta_table.add_row({rs::util::TextTable::num(theta, 2),
                         rs::util::TextTable::num(outcome.ratio, 4)});
  }
  rs::bench::check(theta2_ratio <= theta_best + 0.25,
                   "theta = 2 is near-optimal among balance parameters");
  std::cout << theta_table;

  std::cout << "\n-- (c) offline kernel work: binary search vs DP --\n";
  rs::util::Rng rng(23);
  rs::util::TextTable work_table({"m", "bsearch f-evals", "dp f-evals",
                                  "ratio"});
  for (int log_m : {8, 12, 16}) {
    const int m = 1 << log_m;
    const int T = 48;
    const rs::core::Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kQuadratic, T, m, 2.0);
    rs::offline::BinarySearchStats stats;
    rs::offline::BinarySearchSolver().solve_with_stats(p, stats);
    const std::int64_t dp_evals = static_cast<std::int64_t>(T) * (m + 1);
    rs::bench::check(stats.dp.function_evaluations * 4 < dp_evals,
                     "binary search does a small fraction of DP's work");
    work_table.add_row(
        {std::to_string(m), std::to_string(stats.dp.function_evaluations),
         std::to_string(dp_evals),
         rs::util::TextTable::num(
             static_cast<double>(dp_evals) /
                 static_cast<double>(stats.dp.function_evaluations),
             1)});
  }
  std::cout << work_table;
  return rs::bench::finish("E11 (ablations)");
}
