// Shared helpers for the experiment binaries (see DESIGN.md §4 for the
// experiment index).  Each bench prints the paper-style rows for one
// experiment and exits 0; failures of the documented qualitative claims
// exit non-zero so the bench suite doubles as a regression harness.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "rightsizer/rightsizer.hpp"

namespace rs::bench {

inline int g_check_failures = 0;

/// Records a qualitative expectation of the experiment; prints loudly on
/// violation and makes the binary exit non-zero at the end.
inline void check(bool condition, const std::string& message) {
  if (!condition) {
    ++g_check_failures;
    std::cerr << "[CHECK FAILED] " << message << "\n";
  }
}

inline int finish(const std::string& experiment) {
  if (g_check_failures > 0) {
    std::cerr << experiment << ": " << g_check_failures
              << " qualitative check(s) failed\n";
    return 1;
  }
  std::cout << "\n" << experiment << ": all qualitative checks passed\n";
  return 0;
}

/// Standard experiment workloads as general-model instances.
inline rs::core::Problem hotmail_restricted(rs::util::Rng& rng, int servers,
                                            int days, double beta_scale) {
  rs::dcsim::DataCenterModel model;
  model.servers = servers;
  model.power.transition_joules *= beta_scale;
  const rs::workload::Trace trace =
      rs::workload::hotmail_like(rng, days, 96, 0.6 * servers);
  return rs::dcsim::restricted_datacenter_problem(model, trace);
}

inline rs::core::Problem msr_restricted(rs::util::Rng& rng, int servers,
                                        int days, double beta_scale) {
  rs::dcsim::DataCenterModel model;
  model.servers = servers;
  model.power.transition_joules *= beta_scale;
  const rs::workload::Trace trace =
      rs::workload::msr_like(rng, days, 96, 0.6 * servers);
  return rs::dcsim::restricted_datacenter_problem(model, trace);
}

inline rs::core::Problem mmpp_soft(rs::util::Rng& rng, int servers, int T,
                                   double beta_scale) {
  rs::dcsim::SoftSlaModel model;
  model.servers = servers;
  model.beta *= beta_scale;
  rs::workload::Mmpp2Params params;
  params.horizon = T;
  params.rate_low = 0.15 * servers;
  params.rate_high = 0.7 * servers;
  const rs::workload::Trace trace = rs::workload::mmpp2(rng, params);
  return rs::dcsim::soft_sla_problem(model, trace);
}

// ---------------------------------------------------------------------------
// Dense-evaluation-layer perf fixtures, shared by bench_thm1_offline and the
// bench_thm2_lcp timing section.  The two instance classes below are the
// dispatch-heavy ones the layer was built for: decorator chains and
// std::function-backed restricted slot costs.
// ---------------------------------------------------------------------------

/// Random convex tables wrapped in Padded → Stride(2) → Scaled, the stack
/// produced by the Section-2.2/2.3 instance transforms; every per-point
/// evaluation pays four virtual hops.
inline rs::core::Problem decorated_instance(int T, int m) {
  rs::util::Rng rng(static_cast<std::uint64_t>(T) * 2000003u +
                    static_cast<std::uint64_t>(m) + 1u);
  const int stride = 2;
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    auto table = std::make_shared<rs::core::TableCost>(
        rs::workload::random_convex_table(rng, m * stride));
    auto padded = std::make_shared<rs::core::PaddedCost>(table, m * stride);
    auto strided = std::make_shared<rs::core::StrideCost>(padded, stride);
    fs.push_back(std::make_shared<rs::core::ScaledCost>(strided, 1.0 / 3.0));
  }
  return rs::core::Problem(m, 2.0, std::move(fs));
}

/// Restricted-model instance (paper eq. 2): every evaluation routes through
/// the shared std::function load-cost curve.
inline rs::core::Problem restricted_slot_instance(int T, int m) {
  rs::util::Rng rng(static_cast<std::uint64_t>(T) * 3000017u +
                    static_cast<std::uint64_t>(m) + 2u);
  auto load_cost = std::make_shared<const std::function<double(double)>>(
      [](double z) { return 1.0 + z * z; });
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const double lambda = rng.uniform(0.0, 0.6 * m);
    fs.push_back(
        std::make_shared<rs::core::RestrictedSlotCost>(load_cost, lambda));
  }
  return rs::core::Problem(m, 2.0, std::move(fs));
}

/// The seed's O(T·m) DP cost loop, replicated verbatim from the pre-dense
/// offline/dp_solver.cpp (per-point Problem::cost_at, per-step suffix
/// workspace allocations, argmin bookkeeping) so the PerPoint benchmarks
/// measure exactly the path the dense layer replaced.
inline double per_point_dp_cost_reference(const rs::core::Problem& p) {
  const int T = p.horizon();
  const int m = p.max_servers();
  const double beta = p.beta();
  const double inf = rs::util::kInf;
  if (T == 0) return 0.0;
  std::vector<double> current(static_cast<std::size_t>(m) + 1, inf);
  current[0] = 0.0;
  std::vector<double> next(static_cast<std::size_t>(m) + 1);
  for (int t = 1; t <= T; ++t) {
    std::vector<double> suffix_min(static_cast<std::size_t>(m) + 1);
    std::vector<std::int32_t> suffix_arg(static_cast<std::size_t>(m) + 1);
    suffix_min[static_cast<std::size_t>(m)] = current[static_cast<std::size_t>(m)];
    suffix_arg[static_cast<std::size_t>(m)] = m;
    for (int x = m - 1; x >= 0; --x) {
      const double here = current[static_cast<std::size_t>(x)];
      if (here <= suffix_min[static_cast<std::size_t>(x + 1)]) {
        suffix_min[static_cast<std::size_t>(x)] = here;
        suffix_arg[static_cast<std::size_t>(x)] = x;
      } else {
        suffix_min[static_cast<std::size_t>(x)] = suffix_min[static_cast<std::size_t>(x + 1)];
        suffix_arg[static_cast<std::size_t>(x)] = suffix_arg[static_cast<std::size_t>(x + 1)];
      }
    }
    double prefix_min = inf;
    std::int32_t prefix_arg = -1;
    for (int x = 0; x <= m; ++x) {
      const double shifted =
          current[static_cast<std::size_t>(x)] - beta * static_cast<double>(x);
      if (shifted < prefix_min) {
        prefix_min = shifted;
        prefix_arg = static_cast<std::int32_t>(x);
      }
      const double up_candidate = prefix_min + beta * static_cast<double>(x);
      const double stay_candidate = suffix_min[static_cast<std::size_t>(x)];
      const double transition =
          up_candidate < stay_candidate ? up_candidate : stay_candidate;
      (void)prefix_arg;
      const double f = p.cost_at(t, x);  // bounds check + virtual chain
      next[static_cast<std::size_t>(x)] =
          std::isinf(f) || std::isinf(transition) ? inf : transition + f;
    }
    std::swap(current, next);
  }
  double best = inf;
  for (double label : current) best = std::min(best, label);
  return best;
}

/// The seed's work-function tracker, replicated verbatim from the pre-dense
/// offline/work_function.cpp: separate relax sweeps per accounting, a
/// per-point cost addition, and full O(m) minimizer scans in x_lower /
/// x_upper.  The dense layer fused these into three passes with cached
/// minimizers; this copy preserves the old cost profile for the PerPoint
/// benchmarks.
class SeedWorkFunctionTracker {
 public:
  SeedWorkFunctionTracker(int m, double beta) : m_(m), beta_(beta) {
    chat_l_.assign(static_cast<std::size_t>(m_) + 1, rs::util::kInf);
    chat_u_.assign(static_cast<std::size_t>(m_) + 1, rs::util::kInf);
    chat_l_[0] = 0.0;
    chat_u_[0] = 0.0;
  }

  void advance(const std::vector<double>& values) {
    relax(chat_l_, beta_, /*charge_up=*/true);
    relax(chat_u_, beta_, /*charge_up=*/false);
    for (int x = 0; x <= m_; ++x) {
      const double f = values[static_cast<std::size_t>(x)];
      chat_l_[static_cast<std::size_t>(x)] += f;
      chat_u_[static_cast<std::size_t>(x)] += f;
    }
  }

  int x_lower() const {
    int best = 0;
    for (int x = 1; x <= m_; ++x) {
      if (chat_l_[static_cast<std::size_t>(x)] <
          chat_l_[static_cast<std::size_t>(best)]) {
        best = x;
      }
    }
    return best;
  }

  int x_upper() const {
    int best = 0;
    for (int x = 1; x <= m_; ++x) {
      if (chat_u_[static_cast<std::size_t>(x)] <=
          chat_u_[static_cast<std::size_t>(best)]) {
        best = x;
      }
    }
    return best;
  }

 private:
  static void relax(std::vector<double>& chat, double beta, bool charge_up) {
    const int m = static_cast<int>(chat.size()) - 1;
    if (charge_up) {
      double best_shifted = rs::util::kInf;
      for (int x = 0; x <= m; ++x) {
        best_shifted = std::min(
            best_shifted, chat[static_cast<std::size_t>(x)] - beta * x);
        chat[static_cast<std::size_t>(x)] = std::min(
            chat[static_cast<std::size_t>(x)], best_shifted + beta * x);
      }
      double suffix = rs::util::kInf;
      for (int x = m; x >= 0; --x) {
        suffix = std::min(suffix, chat[static_cast<std::size_t>(x)]);
        chat[static_cast<std::size_t>(x)] = suffix;
      }
    } else {
      double best_shifted = rs::util::kInf;
      for (int x = m; x >= 0; --x) {
        best_shifted = std::min(
            best_shifted, chat[static_cast<std::size_t>(x)] + beta * x);
        chat[static_cast<std::size_t>(x)] = std::min(
            chat[static_cast<std::size_t>(x)], best_shifted - beta * x);
      }
      double prefix = rs::util::kInf;
      for (int x = 0; x <= m; ++x) {
        prefix = std::min(prefix, chat[static_cast<std::size_t>(x)]);
        chat[static_cast<std::size_t>(x)] = prefix;
      }
    }
  }

  int m_;
  double beta_;
  std::vector<double> chat_l_;
  std::vector<double> chat_u_;
};

/// The seed's LCP loop: per-point row fill into the seed tracker.
inline rs::core::Schedule per_point_lcp_reference(const rs::core::Problem& p) {
  const int m = p.max_servers();
  SeedWorkFunctionTracker tracker(m, p.beta());
  std::vector<double> values(static_cast<std::size_t>(m) + 1);
  rs::core::Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(p.horizon()));
  int current = 0;
  for (int t = 1; t <= p.horizon(); ++t) {
    const rs::core::CostFunction& f = p.f(t);
    for (int x = 0; x <= m; ++x) {
      values[static_cast<std::size_t>(x)] = f.at(x);  // seed per-point fill
    }
    tracker.advance(values);
    current = rs::util::project(current, tracker.x_lower(), tracker.x_upper());
    schedule.push_back(current);
  }
  return schedule;
}

}  // namespace rs::bench
