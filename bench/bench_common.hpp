// Shared helpers for the experiment binaries (see DESIGN.md §4 for the
// experiment index).  Each bench prints the paper-style rows for one
// experiment and exits 0; failures of the documented qualitative claims
// exit non-zero so the bench suite doubles as a regression harness.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "rightsizer/rightsizer.hpp"

namespace rs::bench {

inline int g_check_failures = 0;

/// Records a qualitative expectation of the experiment; prints loudly on
/// violation and makes the binary exit non-zero at the end.
inline void check(bool condition, const std::string& message) {
  if (!condition) {
    ++g_check_failures;
    std::cerr << "[CHECK FAILED] " << message << "\n";
  }
}

inline int finish(const std::string& experiment) {
  if (g_check_failures > 0) {
    std::cerr << experiment << ": " << g_check_failures
              << " qualitative check(s) failed\n";
    return 1;
  }
  std::cout << "\n" << experiment << ": all qualitative checks passed\n";
  return 0;
}

/// Standard experiment workloads as general-model instances.
inline rs::core::Problem hotmail_restricted(rs::util::Rng& rng, int servers,
                                            int days, double beta_scale) {
  rs::dcsim::DataCenterModel model;
  model.servers = servers;
  model.power.transition_joules *= beta_scale;
  const rs::workload::Trace trace =
      rs::workload::hotmail_like(rng, days, 96, 0.6 * servers);
  return rs::dcsim::restricted_datacenter_problem(model, trace);
}

inline rs::core::Problem msr_restricted(rs::util::Rng& rng, int servers,
                                        int days, double beta_scale) {
  rs::dcsim::DataCenterModel model;
  model.servers = servers;
  model.power.transition_joules *= beta_scale;
  const rs::workload::Trace trace =
      rs::workload::msr_like(rng, days, 96, 0.6 * servers);
  return rs::dcsim::restricted_datacenter_problem(model, trace);
}

inline rs::core::Problem mmpp_soft(rs::util::Rng& rng, int servers, int T,
                                   double beta_scale) {
  rs::dcsim::SoftSlaModel model;
  model.servers = servers;
  model.beta *= beta_scale;
  rs::workload::Mmpp2Params params;
  params.horizon = T;
  params.rate_low = 0.15 * servers;
  params.rate_high = 0.7 * servers;
  const rs::workload::Trace trace = rs::workload::mmpp2(rng, params);
  return rs::dcsim::soft_sla_problem(model, trace);
}

}  // namespace rs::bench
