// E13 — m-independent LCP: the convex-PWL backend vs the dense backends
// across m ∈ {10³, 10⁴, 10⁵, 10⁶}.
//
// Three arms per (family, m):
//   pwl    — run_online(Lcp) on the convex-PWL work-function backend; the
//            per-step cost depends on the live breakpoint count K, not m.
//   dense  — the same replay forced onto the dense backend (one eval_row +
//            three O(m) passes per step), the strongest baseline that can
//            still run at large m because it streams rows.
//   table  — run_lcp_dense over an eager DenseProblem, the fastest
//            small-m path; it needs the full T×(m+1) table in memory and is
//            recorded as "skipped" once that exceeds the memory budget —
//            at m = 10⁶ the table would be tens of GB, which is the
//            structural limit this backend removes.
//
// Instances use integer cost parameters, so every backend's arithmetic is
// exact and the schedule-equality checks are tie-proof at any m.  The
// horizon shrinks as m grows (the dense arms are O(T·m)); the reported
// metric is ns per step.
//
// Documented claims, checked in full mode (not --smoke):
//   * PWL per-step time stays flat (within 2x) from the smallest to the
//     largest m;
//   * PWL is >= 10x faster per step than the dense streaming backend at
//     m = 10⁵;
//   * the m = 10⁶ PWL row runs (where the table backend cannot);
//   * PWL and dense schedules are identical on every family and size.
//
// `--json PATH` (or --json=PATH) dumps the rows for
// scripts/bench_baseline.sh; RIGHTSIZER_BENCH_SMOKE=1 or --smoke shrinks
// the sweep for the ctest smoke entry.
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

struct ScalingRow {
  std::string family;
  int m = 0;
  int T = 0;
  double pwl_ms = -1.0;
  double dense_ms = -1.0;  // -1: skipped
  double table_ms = -1.0;  // -1: skipped (memory budget)
  int max_breakpoints = 0;
  double dp_pwl_ms = -1.0;  // DpSolver kConvexAuto cost-only pass
  // Newly covered solvers (PR 5), measured on a T-256 sub-instance against
  // the shared PwlProblem cache: the low-memory D&C (dense arm is
  // O(T·m·log T), skipped at m = 10⁶) and the grid-restricted bounded DP
  // (dense arm enumerates |grid|² transitions per step).
  int sub_T = 0;
  double lowmem_pwl_ms = -1.0;
  double lowmem_dense_ms = -1.0;  // -1: skipped (memory/time budget)
  int bdp_grid = 0;               // grid column size
  double bdp_pwl_ms = -1.0;
  double bdp_dense_ms = -1.0;
  double pwl_ns_per_step() const { return pwl_ms * 1e6 / T; }
  double dense_ns_per_step() const { return dense_ms * 1e6 / T; }
  double speedup_vs_dense() const {
    return dense_ms > 0.0 ? dense_ms / pwl_ms : 0.0;
  }
  double lowmem_speedup() const {
    return lowmem_dense_ms > 0.0 ? lowmem_dense_ms / lowmem_pwl_ms : 0.0;
  }
  double bdp_speedup() const {
    return bdp_dense_ms > 0.0 ? bdp_dense_ms / bdp_pwl_ms : 0.0;
  }
};

// Drifting-center ϕ instance: a·|x − c_t| + b with integer a, b, c_t; the
// canonical compact-PWL family (2 breakpoints per slot).
rs::core::Problem affine_abs_instance(int T, int m, double beta) {
  rs::util::Rng rng(static_cast<std::uint64_t>(m) * 1000003u + 17u);
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const double phase =
        2.0 * 3.14159265358979323846 * static_cast<double>(t) / 96.0;
    const double drift = (0.5 + 0.35 * std::sin(phase)) * m;
    const double center = std::floor(
        drift + rng.uniform(-0.05, 0.05) * static_cast<double>(m));
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(
        static_cast<double>(rng.uniform_int(1, 3)),
        std::max(0.0, center),
        static_cast<double>(rng.uniform_int(0, 2))));
  }
  return rs::core::Problem(m, beta, std::move(fs));
}

// Soft-SLA instance: shortfall hinge below a drifting demand knee plus an
// over-provisioning hinge above it (SumCost of PiecewiseLinearCosts).
rs::core::Problem hinge_sla_instance(int T, int m, double beta) {
  rs::util::Rng rng(static_cast<std::uint64_t>(m) * 2000029u + 29u);
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const double phase =
        2.0 * 3.14159265358979323846 * static_cast<double>(t) / 144.0;
    const double demand =
        std::floor((0.45 + 0.3 * std::sin(phase)) * m +
                   rng.uniform(-0.03, 0.03) * static_cast<double>(m));
    const double knee = std::max(1.0, demand);
    const double slack = static_cast<double>(rng.uniform_int(1, 1 + m / 8));
    fs.push_back(std::make_shared<rs::core::SumCost>(
        std::vector<rs::core::CostPtr>{
            rs::core::make_shortfall_hinge(
                static_cast<double>(rng.uniform_int(2, 5)), knee),
            rs::core::make_hinge(static_cast<double>(rng.uniform_int(1, 2)),
                                 knee + slack),
        }));
  }
  return rs::core::Problem(m, beta, std::move(fs));
}

// Restricted model with linear per-server tariffs: LinearLoadSlotCost with
// integer base/rate and a drifting integer workload — the family whose
// exact zero-breakpoint PWL form puts eq. (2) on the m-independent path
// (RestrictedSlotCost's opaque load curve cannot).
rs::core::Problem linear_tariff_instance(int T, int m, double beta) {
  rs::util::Rng rng(static_cast<std::uint64_t>(m) * 3000017u + 41u);
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const double phase =
        2.0 * 3.14159265358979323846 * static_cast<double>(t) / 120.0;
    const double demand =
        std::floor((0.35 + 0.3 * std::sin(phase)) * m +
                   rng.uniform(-0.02, 0.02) * static_cast<double>(m));
    fs.push_back(std::make_shared<rs::core::LinearLoadSlotCost>(
        static_cast<double>(rng.uniform_int(1, 3)),
        static_cast<double>(rng.uniform_int(0, 4)),
        std::max(0.0, demand)));
  }
  return rs::core::Problem(m, beta, std::move(fs));
}

using Backend = rs::offline::WorkFunctionTracker::Backend;

double time_lcp_arm(const rs::core::Problem& p, Backend backend,
                    rs::core::Schedule* schedule_out, int reps) {
  double best = rs::util::kInf;
  for (int rep = 0; rep < reps; ++rep) {
    rs::online::Lcp lcp(backend);
    rs::util::Stopwatch watch;
    rs::core::Schedule schedule = rs::online::run_online(lcp, p);
    best = std::min(best, watch.milliseconds());
    if (schedule_out != nullptr) *schedule_out = std::move(schedule);
  }
  return best;
}

int max_breakpoints_of(const rs::core::Problem& p) {
  rs::offline::WorkFunctionTracker tracker(p.max_servers(), p.beta(),
                                           Backend::kPwl);
  int peak = 0;
  for (int t = 1; t <= p.horizon(); ++t) {
    tracker.advance(p.f(t));
    peak = std::max(peak, tracker.breakpoint_count());
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = std::getenv("RIGHTSIZER_BENCH_SMOKE") != nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }

  std::cout << "E13: m-scaling of LCP — convex-PWL backend vs dense "
               "backends\n\n";

  const std::vector<int> sizes = smoke
                                     ? std::vector<int>{1000, 10000}
                                     : std::vector<int>{1000, 10000, 100000,
                                                        1000000};
  // The dense arms are O(T·m): shrink the horizon as m grows, keeping the
  // per-step metric comparable.  Table budget: eager T×(m+1) doubles.
  const auto horizon_for = [&](int m) {
    const long long budget = smoke ? 20'000'000LL : 400'000'000LL;
    const long long T = budget / m;
    return static_cast<int>(std::min<long long>(2000, std::max<long long>(
                                                          100, T)));
  };
  const long long table_budget_bytes =
      smoke ? (64LL << 20) : (192LL << 20);
  const double beta = 4.0;
  const int reps = smoke ? 1 : 2;

  struct Family {
    std::string name;
    rs::core::Problem (*make)(int, int, double);
  };
  const Family families[] = {
      {"affine_abs", &affine_abs_instance},
      {"hinge_sla", &hinge_sla_instance},
      {"linear_tariff", &linear_tariff_instance},
  };

  rs::util::TextTable table({"family", "m", "T", "pwl ns/step",
                             "dense ns/step", "table ns/step", "speedup",
                             "max K"});
  std::vector<ScalingRow> rows;

  for (const Family& family : families) {
    for (int m : sizes) {
      ScalingRow row;
      row.family = family.name;
      row.m = m;
      row.T = horizon_for(m);
      const rs::core::Problem p = family.make(row.T, m, beta);
      rs::bench::check(rs::core::admits_compact_pwl(p),
                       family.name + " admits the compact PWL form");

      rs::core::Schedule pwl_schedule;
      (void)time_lcp_arm(p, Backend::kPwl, nullptr, 1);  // warm-up
      row.pwl_ms = time_lcp_arm(p, Backend::kPwl, &pwl_schedule, reps);
      row.max_breakpoints = max_breakpoints_of(p);

      {
        rs::util::Stopwatch watch;
        const double cost =
            rs::offline::DpSolver(rs::offline::DpSolver::Backend::kConvexAuto)
                .solve_cost(p);
        row.dp_pwl_ms = watch.milliseconds();
        rs::bench::check(std::isfinite(cost), "offline optimum is finite on " +
                                                  family.name);
      }

      rs::core::Schedule dense_schedule;
      row.dense_ms = time_lcp_arm(p, Backend::kDense, &dense_schedule, reps);
      rs::bench::check(pwl_schedule == dense_schedule,
                       "PWL and dense LCP schedules identical on " +
                           family.name + " m=" + std::to_string(m));

      const long long table_bytes = static_cast<long long>(row.T) *
                                    (static_cast<long long>(m) + 1) * 8;
      if (table_bytes <= table_budget_bytes) {
        const rs::core::DenseProblem dense_table(
            p, rs::core::DenseProblem::Mode::kEager,
            rs::core::DenseProblem::MinimizerCache::kOnDemand);
        double best = rs::util::kInf;
        for (int rep = 0; rep < reps; ++rep) {
          rs::util::Stopwatch watch;
          const rs::core::Schedule s = rs::online::run_lcp_dense(dense_table);
          best = std::min(best, watch.milliseconds());
          rs::bench::check(s == pwl_schedule,
                           "table-backed LCP schedule identical on " +
                               family.name + " m=" + std::to_string(m));
        }
        row.table_ms = best;
      }

      // Newly covered solvers: low-memory D&C and grid-restricted bounded
      // DP on one shared PwlProblem (the conversion cache: T conversions
      // total, every arm below replays from the same forms).
      row.sub_T = smoke ? 64 : 256;
      {
        const rs::core::Problem sub = family.make(row.sub_T, m, beta);
        const std::optional<rs::core::PwlProblem> cache =
            rs::core::PwlProblem::try_convert(sub);
        rs::bench::check(cache.has_value(),
                         family.name + " converts once into the cache");

        rs::offline::OfflineResult lm_fast;
        {
          rs::util::Stopwatch watch;
          lm_fast = rs::offline::LowMemorySolver().solve(*cache);
          row.lowmem_pwl_ms = watch.milliseconds();
        }
        if (m <= 100000) {  // dense D&C is O(T·m·log T): out of budget at 1e6
          rs::util::Stopwatch watch;
          const rs::offline::OfflineResult lm_dense =
              rs::offline::LowMemorySolver().solve(sub);
          row.lowmem_dense_ms = watch.milliseconds();
          rs::bench::check(lm_fast.schedule == lm_dense.schedule,
                           "PWL and dense low-memory schedules identical on " +
                               family.name + " m=" + std::to_string(m));
        }

        // Φ-style grid at ~256-state resolution; the dense arm enumerates
        // |grid|² transitions per step, the PWL arm clips slopes.
        const int stride = std::max(1, m / 256);
        const std::vector<std::vector<int>> states(
            static_cast<std::size_t>(row.sub_T),
            rs::core::multiples_of(stride, m));
        row.bdp_grid = static_cast<int>(states.front().size());
        rs::offline::OfflineResult bdp_fast;
        {
          rs::util::Stopwatch watch;
          bdp_fast = rs::offline::solve_bounded(sub, states, *cache);
          row.bdp_pwl_ms = watch.milliseconds();
        }
        {
          rs::util::Stopwatch watch;
          const rs::offline::OfflineResult bdp_dense =
              rs::offline::solve_bounded(sub, states);
          row.bdp_dense_ms = watch.milliseconds();
          rs::bench::check(bdp_fast.schedule == bdp_dense.schedule,
                           "PWL and dense bounded-DP schedules identical on " +
                               family.name + " m=" + std::to_string(m));
        }
      }

      table.add_row(
          {row.family, std::to_string(row.m), std::to_string(row.T),
           rs::util::TextTable::num(row.pwl_ns_per_step(), 1),
           rs::util::TextTable::num(row.dense_ns_per_step(), 1),
           row.table_ms >= 0.0
               ? rs::util::TextTable::num(row.table_ms * 1e6 / row.T, 1)
               : std::string("skipped"),
           rs::util::TextTable::num(row.speedup_vs_dense(), 1) + "x",
           std::to_string(row.max_breakpoints)});
      rows.push_back(row);
    }
  }
  std::cout << table << "\n";

  rs::util::TextTable solvers_table(
      {"family", "m", "lowmem pwl ms", "lowmem dense ms", "lowmem speedup",
       "grid", "bdp pwl ms", "bdp dense ms", "bdp speedup"});
  for (const ScalingRow& row : rows) {
    solvers_table.add_row(
        {row.family, std::to_string(row.m),
         rs::util::TextTable::num(row.lowmem_pwl_ms, 3),
         row.lowmem_dense_ms >= 0.0
             ? rs::util::TextTable::num(row.lowmem_dense_ms, 3)
             : std::string("skipped"),
         row.lowmem_dense_ms >= 0.0
             ? rs::util::TextTable::num(row.lowmem_speedup(), 1) + "x"
             : std::string("-"),
         std::to_string(row.bdp_grid),
         rs::util::TextTable::num(row.bdp_pwl_ms, 3),
         rs::util::TextTable::num(row.bdp_dense_ms, 3),
         rs::util::TextTable::num(row.bdp_speedup(), 1) + "x"});
  }
  std::cout << "newly covered solvers (T=" << (smoke ? 64 : 256)
            << " sub-instances, shared PwlProblem cache)\n"
            << solvers_table << "\n";

  if (!smoke) {
    for (const Family& family : families) {
      const ScalingRow* smallest = nullptr;
      const ScalingRow* largest = nullptr;
      for (const ScalingRow& row : rows) {
        if (row.family != family.name) continue;
        if (smallest == nullptr) smallest = &row;
        largest = &row;
        if (row.m == 100000) {
          rs::bench::check(row.speedup_vs_dense() >= 10.0,
                           "PWL >= 10x faster than dense streaming at m=1e5 "
                           "on " + family.name);
          rs::bench::check(row.lowmem_speedup() >= 10.0,
                           "PWL low-memory D&C >= 10x over dense at m=1e5 "
                           "on " + family.name);
          rs::bench::check(row.bdp_speedup() >= 10.0,
                           "PWL grid bounded-DP >= 10x over dense at m=1e5 "
                           "on " + family.name);
        }
        if (row.m == 1000000) {
          rs::bench::check(row.table_ms < 0.0,
                           "table backend structurally out of reach at m=1e6");
          rs::bench::check(row.pwl_ms >= 0.0,
                           "PWL backend runs at m=1e6 on " + family.name);
          rs::bench::check(row.lowmem_pwl_ms >= 0.0 &&
                               row.lowmem_dense_ms < 0.0,
                           "PWL low-memory D&C runs at m=1e6, where the "
                           "dense O(T·m·log T) arm is out of budget, on " +
                               family.name);
        }
      }
      rs::bench::check(
          largest->pwl_ns_per_step() <= 2.0 * smallest->pwl_ns_per_step(),
          "PWL per-step time flat (within 2x) from m=1e3 to m=1e6 on " +
              family.name);
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"scaling\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const ScalingRow& row = rows[i];
      out << "    {\"family\": \"" << row.family << "\", \"m\": " << row.m
          << ", \"T\": " << row.T << ", \"pwl_ms\": " << row.pwl_ms
          << ", \"pwl_ns_per_step\": " << row.pwl_ns_per_step()
          << ", \"dense_ms\": " << row.dense_ms
          << ", \"dense_ns_per_step\": " << row.dense_ns_per_step()
          << ", \"table_ms\": " << row.table_ms
          << ", \"dp_pwl_ms\": " << row.dp_pwl_ms
          << ", \"speedup_vs_dense\": " << row.speedup_vs_dense()
          << ", \"max_breakpoints\": " << row.max_breakpoints
          << ", \"sub_T\": " << row.sub_T
          << ", \"lowmem_pwl_ms\": " << row.lowmem_pwl_ms
          << ", \"lowmem_dense_ms\": " << row.lowmem_dense_ms
          << ", \"lowmem_speedup\": " << row.lowmem_speedup()
          << ", \"bdp_grid\": " << row.bdp_grid
          << ", \"bdp_pwl_ms\": " << row.bdp_pwl_ms
          << ", \"bdp_dense_ms\": " << row.bdp_dense_ms
          << ", \"bdp_speedup\": " << row.bdp_speedup() << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  return rs::bench::finish("E13 (bench_scaling)");
}
