// Micro-benchmarks of the online algorithms' per-slot decision cost
// (google-benchmark).  All decision rules are O(m) per slot; the window
// variants add O(w·m) for the completion pass.
#include <benchmark/benchmark.h>

#include "rightsizer/rightsizer.hpp"

namespace {

rs::core::Problem make_instance(int T, int m) {
  rs::util::Rng rng(static_cast<std::uint64_t>(T) * 31u +
                    static_cast<std::uint64_t>(m));
  return rs::core::materialize(rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kQuadratic, T, m, 1.5));
}

void BM_LcpDecide(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const rs::core::Problem p = make_instance(512, m);
  for (auto _ : state) {
    rs::online::Lcp lcp;
    benchmark::DoNotOptimize(rs::online::run_online(lcp, p).back());
  }
  state.SetItemsProcessed(state.iterations() * p.horizon());
}

void BM_WindowedLcpDecide(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int w = static_cast<int>(state.range(1));
  const rs::core::Problem p = make_instance(512, m);
  for (auto _ : state) {
    rs::online::WindowedLcp lcp;
    benchmark::DoNotOptimize(rs::online::run_online(lcp, p, w).back());
  }
  state.SetItemsProcessed(state.iterations() * p.horizon());
}

void BM_LevelFlowDecide(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const rs::core::Problem p = make_instance(512, m);
  for (auto _ : state) {
    rs::online::LevelFlow flow;
    benchmark::DoNotOptimize(rs::online::run_online(flow, p).back());
  }
  state.SetItemsProcessed(state.iterations() * p.horizon());
}

void BM_RandomizedRoundingDecide(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const rs::core::Problem p = make_instance(512, m);
  for (auto _ : state) {
    rs::online::RandomizedRounding alg(7);
    benchmark::DoNotOptimize(rs::online::run_online(alg, p).back());
  }
  state.SetItemsProcessed(state.iterations() * p.horizon());
}

}  // namespace

BENCHMARK(BM_LcpDecide)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WindowedLcpDecide)->Args({256, 1})->Args({256, 8})
    ->Args({256, 32})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LevelFlowDecide)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RandomizedRoundingDecide)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
