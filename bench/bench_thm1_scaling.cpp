// E2 — Theorem 1 (table form): the paper's binary-search offline algorithm
// touches O(T·log m) cost values and matches the exact DP optimum, while
// the DP touches all T·(m+1).  Rows report measured evaluation counts,
// iteration counts, runtimes and the cost agreement.
#include "bench_common.hpp"

int main() {
  std::cout << "E2 / Theorem 1: offline optimal in O(T log m)\n\n";
  rs::util::Rng rng(7);

  std::cout << "-- m-scaling at fixed T = 64 --\n";
  rs::util::TextTable m_table({"m", "iterations", "f-evals (bsearch)",
                               "f-evals (dp)", "bsearch ms", "dp ms",
                               "costs equal"});
  for (int log_m : {6, 8, 10, 12, 14, 16}) {
    const int m = 1 << log_m;
    const int T = 64;
    const rs::core::Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kQuadratic, T, m, 2.0);

    rs::offline::BinarySearchStats stats;
    rs::util::Stopwatch bsearch_watch;
    const rs::offline::OfflineResult fast =
        rs::offline::BinarySearchSolver().solve_with_stats(p, stats);
    const double bsearch_ms = bsearch_watch.milliseconds();

    rs::util::Stopwatch dp_watch;
    const double dp_cost = rs::offline::DpSolver().solve_cost(p);
    const double dp_ms = dp_watch.milliseconds();

    const bool equal = std::abs(fast.cost - dp_cost) <= 1e-6 * (1.0 + dp_cost);
    rs::bench::check(equal, "binary search optimal at m=" + std::to_string(m));
    rs::bench::check(stats.dp.function_evaluations <=
                         static_cast<std::int64_t>(5) * T * (log_m + 2),
                     "O(T log m) evaluation bound at m=" + std::to_string(m));

    m_table.add_row({std::to_string(m), std::to_string(stats.iterations),
                     std::to_string(stats.dp.function_evaluations),
                     std::to_string(static_cast<std::int64_t>(T) * (m + 1)),
                     rs::util::TextTable::num(bsearch_ms, 2),
                     rs::util::TextTable::num(dp_ms, 2),
                     equal ? "yes" : "NO"});
  }
  std::cout << m_table;

  std::cout << "\n-- T-scaling at fixed m = 4096 --\n";
  rs::util::TextTable t_table(
      {"T", "f-evals (bsearch)", "evals per T", "bsearch ms", "costs equal"});
  for (int T : {64, 128, 256, 512, 1024}) {
    const int m = 4096;
    const rs::core::Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kQuadratic, T, m, 2.0);
    rs::offline::BinarySearchStats stats;
    rs::util::Stopwatch watch;
    const rs::offline::OfflineResult fast =
        rs::offline::BinarySearchSolver().solve_with_stats(p, stats);
    const double elapsed_ms = watch.milliseconds();
    const double dp_cost = rs::offline::DpSolver().solve_cost(p);
    const bool equal = std::abs(fast.cost - dp_cost) <= 1e-6 * (1.0 + dp_cost);
    rs::bench::check(equal, "binary search optimal at T=" + std::to_string(T));
    t_table.add_row({std::to_string(T),
                     std::to_string(stats.dp.function_evaluations),
                     rs::util::TextTable::num(
                         static_cast<double>(stats.dp.function_evaluations) / T,
                         1),
                     rs::util::TextTable::num(elapsed_ms, 2),
                     equal ? "yes" : "NO"});
  }
  std::cout << t_table;
  std::cout << "\nEvaluations per column stay ~5·(log2 m − 1) independent of "
               "T; the DP touches all (m+1) states per column.\n";
  return rs::bench::finish("E2 (Theorem 1)");
}
