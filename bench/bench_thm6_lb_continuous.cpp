// E7 — Theorems 6/7: in the continuous setting no deterministic online
// algorithm beats ratio 2.
//
// The Lemma-23 adversary plays any fractional algorithm against the
// reference algorithm B (ε/2 steps toward the minimizer).  Against B itself
// the measured ratio is 2 − Θ(ε) (Lemma 21); algorithms deviating from B
// (faster movers, the memoryless balance algorithm) pay at least as much.
#include "bench_common.hpp"

int main() {
  std::cout << "E7 / Theorems 6-7: continuous lower bound -> 2\n\n";

  rs::util::TextTable table({"epsilon", "T", "B (gradient)", "level_flow",
                             "eager (3x B)", "memoryless"});
  double last_b_ratio = 0.0;
  for (double eps : {0.2, 0.1, 0.05, 0.02}) {
    const int horizon = static_cast<int>(2.0 / (eps * eps));
    rs::online::GradientFlow b;
    const rs::lowerbound::AdversaryOutcome b_outcome =
        rs::lowerbound::continuous_adversary(b, eps, horizon);
    rs::online::LevelFlow level;
    const rs::lowerbound::AdversaryOutcome level_outcome =
        rs::lowerbound::continuous_adversary(level, eps, horizon);
    rs::online::GradientFlow eager(3.0);
    const rs::lowerbound::AdversaryOutcome eager_outcome =
        rs::lowerbound::continuous_adversary(eager, eps, horizon);
    rs::online::MemorylessBalance memoryless;
    const rs::lowerbound::AdversaryOutcome memoryless_outcome =
        rs::lowerbound::continuous_adversary(memoryless, eps, horizon);

    rs::bench::check(b_outcome.ratio <= 2.0 + 1e-6,
                     "B stays within its factor-2 guarantee");
    rs::bench::check(b_outcome.ratio >= 2.0 - 3.0 * eps,
                     "B's ratio is 2 - O(eps) (Lemma 21)");
    rs::bench::check(eager_outcome.ratio >= b_outcome.ratio - 1e-9,
                     "deviating from B does not help (Lemma 23)");
    rs::bench::check(memoryless_outcome.ratio >= b_outcome.ratio - 1e-9,
                     "memoryless balance pays at least B");
    last_b_ratio = b_outcome.ratio;

    table.add_row({rs::util::TextTable::num(eps, 3), std::to_string(horizon),
                   rs::util::TextTable::num(b_outcome.ratio, 4),
                   rs::util::TextTable::num(level_outcome.ratio, 4),
                   rs::util::TextTable::num(eager_outcome.ratio, 4),
                   rs::util::TextTable::num(memoryless_outcome.ratio, 4)});
  }
  rs::bench::check(last_b_ratio > 1.95,
                   "continuous bound converges to 2 (reached > 1.95)");
  std::cout << table;
  std::cout << "\nB (the specialization of Bansal et al.'s algorithm) is "
               "optimal in the continuous setting; everything else pays "
               "more.\n";
  return rs::bench::finish("E7 (Theorems 6-7)");
}
