// E16 — Incremental re-solve: repair-vs-replay speedup for edited
// instances (DESIGN.md §12).
//
// The workload is the interactive what-if serving pattern: a long solved
// instance stays live in a DpDeltaSession, and single-slot edits land in
// the recent tail of the horizon (the window fleet/TenantSession::what_if
// probes answer from).  Each edit is answered by a forward repair from the
// edited slot; the baseline is what a delta-free consumer pays — a full
// from-scratch re-solve of the edited instance.
//
// Acceptance shape: T = 10⁵ single-slot edits into the last 10% of the
// horizon on the PWL backend must repair >= 10x faster than replay, with
// every sampled repair bit-identical (cost, corridor bounds, Lemma-11
// schedule) to the from-scratch solve.  Smoke runs a 2·10³ horizon to
// exercise the path without the wall-clock claim.
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using rs::core::CostPtr;
using rs::core::Problem;
using rs::offline::DpDeltaSession;

// Integer-parameter affine-abs costs: compact exact PWL forms (the session
// runs m-independent) and integer work-function values, so repair and
// replay agree bitwise, not merely within tolerance.
Problem integer_instance(int T, int m, std::uint64_t seed) {
  rs::util::Rng rng(seed);
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(
        static_cast<double>(rng.uniform_int(1, 3)),
        static_cast<double>(rng.uniform_int(0, m)), 0.0));
  }
  return Problem(m, 4.0, std::move(fs));
}

struct DeltaRow {
  int horizon = 0;
  int m = 0;
  int edits = 0;
  double repair_seconds_per_edit = 0.0;
  double replay_seconds_per_solve = 0.0;
  double speedup = 0.0;
  double mean_slots_repaired = 0.0;
  bool bit_identical = true;
};

DeltaRow measure(int T, int m, int edits, int verify_every) {
  DeltaRow row;
  row.horizon = T;
  row.m = m;
  row.edits = edits;

  const Problem base = integer_instance(T, m, 0xE16E16ull);
  std::vector<CostPtr> costs;
  costs.reserve(static_cast<std::size_t>(T));
  for (int t = 1; t <= T; ++t) costs.push_back(base.f_ptr(t));

  DpDeltaSession session(base, DpDeltaSession::Backend::kPwl);

  // Edit stream: single-slot edits uniform over the trailing 10%.
  rs::util::Rng rng(0xED17ull);
  const int tail_begin = T - T / 10 + 1;
  std::vector<int> slots;
  std::vector<CostPtr> replacements;
  for (int e = 0; e < edits; ++e) {
    slots.push_back(rng.uniform_int(tail_begin, T));
    replacements.push_back(std::make_shared<rs::core::AffineAbsCost>(
        static_cast<double>(rng.uniform_int(1, 3)),
        static_cast<double>(rng.uniform_int(0, m)), 0.0));
  }

  // Repair side: apply each edit, then edit the original cost back in so
  // every edit starts from the base instance (both repairs are timed —
  // a what-if probe pays exactly this round trip).
  long long repairs = 0;
  long long slots_repaired = 0;
  double repair_seconds = 0.0;
  double replay_seconds = 0.0;
  int replays = 0;
  for (int e = 0; e < edits; ++e) {
    const int slot = slots[static_cast<std::size_t>(e)];
    const CostPtr& replacement = replacements[static_cast<std::size_t>(e)];
    DpDeltaSession::DeltaStats stats;
    {
      rs::util::Stopwatch watch;
      session.resolve_delta(slot, replacement, &stats);
      repair_seconds += watch.seconds();
    }
    repairs += 2;  // forward repair + the restore below
    slots_repaired += stats.slots_repaired;

    if (e % verify_every == 0) {
      // Baseline + bit-identity: a from-scratch session on the edited
      // instance, timed, then compared field by field.
      costs[static_cast<std::size_t>(slot - 1)] = replacement;
      Problem edited(m, 4.0, costs);
      rs::util::Stopwatch watch;
      DpDeltaSession fresh(edited, DpDeltaSession::Backend::kPwl);
      replay_seconds += watch.seconds();
      ++replays;
      costs[static_cast<std::size_t>(slot - 1)] = base.f_ptr(slot);
      row.bit_identical = row.bit_identical &&
                          session.cost() == fresh.cost() &&
                          session.bounds().lower == fresh.bounds().lower &&
                          session.bounds().upper == fresh.bounds().upper &&
                          session.result().schedule == fresh.result().schedule;
    }

    {
      rs::util::Stopwatch watch;
      session.resolve_delta(slot, base.f_ptr(slot), &stats);
      repair_seconds += watch.seconds();
    }
    slots_repaired += stats.slots_repaired;
  }

  row.repair_seconds_per_edit =
      repair_seconds / static_cast<double>(repairs);
  row.replay_seconds_per_solve = replay_seconds / static_cast<double>(replays);
  row.speedup = row.replay_seconds_per_solve / row.repair_seconds_per_edit;
  row.mean_slots_repaired =
      static_cast<double>(slots_repaired) / static_cast<double>(repairs);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const bool smoke =
      args.get_bool("smoke", std::getenv("RIGHTSIZER_BENCH_SMOKE") != nullptr);
  const std::string json_path = args.get("json", "");

  std::cout << "E16  incremental re-solve (smoke=" << smoke << ")\n\n";

  const int T = smoke ? 2000 : 100000;
  const int m = 1000;
  const int edits = smoke ? 20 : 200;
  const int verify_every = smoke ? 4 : 25;
  const DeltaRow row = measure(T, m, edits, verify_every);

  std::cout << "delta re-solve: T=" << row.horizon << " m=" << row.m
            << " edits=" << row.edits << " (uniform over the last 10%)\n"
            << "  repair  " << row.repair_seconds_per_edit << " s/edit (mean "
            << row.mean_slots_repaired << " slots repaired)\n"
            << "  replay  " << row.replay_seconds_per_solve << " s/solve\n"
            << "  speedup " << row.speedup << "x bit_identical="
            << (row.bit_identical ? "yes" : "NO") << "\n";

  rs::bench::check(row.bit_identical,
                   "delta repair differs from the from-scratch solve");
  if (!smoke) {
    rs::bench::check(row.speedup >= 10.0,
                     "delta repair speedup " + std::to_string(row.speedup) +
                         "x below the 10x acceptance bound");
  }

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
        << ",\n  \"delta\": {\"horizon\": " << row.horizon
        << ", \"m\": " << row.m << ", \"edits\": " << row.edits
        << ", \"repair_seconds_per_edit\": " << row.repair_seconds_per_edit
        << ", \"replay_seconds_per_solve\": " << row.replay_seconds_per_solve
        << ", \"speedup\": " << row.speedup
        << ", \"mean_slots_repaired\": " << row.mean_slots_repaired
        << ", \"bit_identical\": " << (row.bit_identical ? "true" : "false")
        << "}\n}\n";
    std::ofstream file(json_path);
    file << out.str();
    std::cout << "\nwrote " << json_path << "\n";
  }

  return rs::bench::finish("E16 incremental re-solve");
}
