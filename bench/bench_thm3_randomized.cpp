// E4 — Theorem 3: the randomized online algorithm (fractional LevelFlow +
// Section-4.1 rounding) is 2-competitive in expectation.
//
// For each workload the table reports: the fractional schedule's cost
// (which equals the exact expected cost of the rounded algorithm by
// Lemmas 19/20), a Monte-Carlo estimate with a 95% CI, the offline optimum,
// and the expected ratio — which must stay at or below 2.
#include "bench_common.hpp"

int main() {
  std::cout << "E4 / Theorem 3: randomized rounding, expected ratio <= 2\n\n";
  rs::util::Rng rng(13);

  rs::util::TextTable table({"workload", "T", "E[cost] exact", "MC mean",
                             "MC 95% ci", "opt", "E[ratio]"});
  double max_ratio = 0.0;

  struct Case {
    std::string name;
    rs::core::Problem problem;
  };
  rs::util::Rng hot = rng.split();
  rs::util::Rng mm = rng.split();
  rs::util::Rng tab = rng.split();
  rs::util::Rng flat = rng.split();
  const Case cases[] = {
      {"hotmail/restricted", rs::bench::hotmail_restricted(hot, 24, 2, 1.0)},
      {"mmpp/soft-sla", rs::bench::mmpp_soft(mm, 16, 400, 1.0)},
      {"random convex tables",
       rs::workload::random_instance(
           tab, rs::workload::InstanceFamily::kConvexTable, 150, 12, 1.5)},
      {"flat regions",
       rs::workload::random_instance(
           flat, rs::workload::InstanceFamily::kFlatRegions, 150, 10, 0.8)},
  };

  for (const Case& c : cases) {
    // Exact expectation via the fractional schedule (Lemmas 19/20).
    rs::online::LevelFlow flow;
    const rs::core::FractionalSchedule xbar =
        rs::online::run_online(flow, c.problem);
    const double expected_cost = rs::core::total_cost(c.problem, xbar);

    const rs::analysis::MonteCarloReport mc =
        rs::analysis::monte_carlo_randomized_rounding(c.problem, 192, 99);

    const double ratio =
        mc.optimal_cost > 0.0 ? expected_cost / mc.optimal_cost : 0.0;
    max_ratio = std::max(max_ratio, ratio);

    rs::bench::check(ratio <= 2.0 + 1e-6, "expected ratio <= 2 on " + c.name);
    rs::bench::check(
        std::abs(mc.cost.mean - expected_cost) <=
            4.0 * mc.cost.ci95_half_width + 1e-6 * expected_cost,
        "Monte-Carlo mean consistent with exact expectation on " + c.name);

    table.add_row({c.name, std::to_string(c.problem.horizon()),
                   rs::util::TextTable::num(expected_cost, 2),
                   rs::util::TextTable::num(mc.cost.mean, 2),
                   "±" + rs::util::TextTable::num(mc.cost.ci95_half_width, 2),
                   rs::util::TextTable::num(mc.optimal_cost, 2),
                   rs::util::TextTable::num(ratio, 4)});
  }
  std::cout << table;
  std::cout << "\nmax expected ratio: " << max_ratio
            << "  (Theorem 3 bound: 2; E[C(X)] = C(X̄) by Lemmas 19/20)\n";
  return rs::bench::finish("E4 (Theorem 3)");
}
