// E15 — Fleet serving throughput: tenant-steps/sec through FleetController.
//
// The fleet controller multiplexes long-lived LCP sessions over one
// process; its unit of work is the tenant-step (one slot decided for one
// tenant, checkpoint cadence included).  This bench drains a mixed-size
// tenant roster (m from 8 to 64, the small-to-mid range a multi-tenant box
// actually packs) at 1/2/4 dispatch threads and records tenant-steps/sec
// per configuration — the serving-layer capacity number next to the
// engine's instances/sec.
//
// A second shape, `fleet_chaos`, drains the same roster with a seeded
// kFleetTick fault plan live during the ticks (offers are fed clean, so no
// tenant quarantines), measuring what checkpoint restore-and-replay
// healing costs end to end.  Qualitative checks: schedules bit-identical
// across thread counts, no quarantines, and the chaos run bit-identical to
// the clean run (the drill invariant, here at bench scale).  On a
// single-core container the multi-thread rows measure
// scheduling overhead, not parallel speedup (hardware_concurrency is
// recorded so the reader can tell).
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "bench_common.hpp"

namespace {

using rs::fleet::FleetController;
using rs::fleet::FleetOptions;
using rs::fleet::TenantConfig;

struct Roster {
  std::vector<TenantConfig> configs;
  std::vector<std::vector<double>> traces;  // per tenant, slots_per_tenant λs
};

Roster make_roster(int tenants, int slots_per_tenant) {
  // The zoo's hinge-SLA family: f(x) = energy·x + sla·(headroom·λ − x)⁺,
  // exact convex-PWL, the documented default fleet tenant cost.
  const rs::scenario::ZooParams params;
  const int sizes[] = {8, 16, 24, 32, 48, 64};
  Roster roster;
  for (int i = 0; i < tenants; ++i) {
    const int m = sizes[static_cast<std::size_t>(i) % std::size(sizes)];
    TenantConfig config;
    config.name = "tenant-" + std::to_string(i);
    config.m = m;
    config.beta = 4.0;
    config.cost_of = [params](double lambda) {
      return rs::scenario::hinge_sla_cost(params, lambda);
    };
    config.queue_capacity = static_cast<std::size_t>(slots_per_tenant);
    config.checkpoint_every = 32;
    // Keep every tenant on its natural backend for the whole bench: the
    // ladder's dense rung is a tested recovery path, not a perf shape.
    config.degrade_after = 1 << 20;
    roster.configs.push_back(std::move(config));

    rs::util::Rng rng(9000u + static_cast<std::uint64_t>(i));
    std::vector<double> trace;
    trace.reserve(static_cast<std::size_t>(slots_per_tenant));
    for (int t = 0; t < slots_per_tenant; ++t) {
      trace.push_back(rng.uniform(0.0, 0.8 * m));
    }
    roster.traces.push_back(std::move(trace));
  }
  return roster;
}

struct FleetRow {
  std::string name;
  std::size_t threads = 1;
  int tenants = 0;
  int slots_per_tenant = 0;
  std::uint64_t tenant_steps = 0;
  double seconds = 0.0;
  double tenant_steps_per_sec = 0.0;
  std::uint64_t recoveries = 0;
  std::uint64_t quarantined = 0;
};

struct DrainResult {
  std::vector<std::vector<int>> schedules;
  rs::fleet::FleetStats stats;
  double seconds = 0.0;
};

DrainResult drain_once(const Roster& roster, std::size_t threads,
                       const rs::scenario::FaultPlan* plan) {
  FleetOptions options;
  options.threads = threads;
  FleetController fleet(options);
  for (const TenantConfig& config : roster.configs) fleet.add_tenant(config);
  // Offers are fed before any injector goes live: the chaos shape measures
  // tick-path recovery cost, not the (tested elsewhere) ingest-poisoning
  // quarantine path, which would zero out the throughput it is measuring.
  for (std::size_t i = 0; i < roster.configs.size(); ++i) {
    for (double lambda : roster.traces[i]) fleet.offer(i, lambda);
  }
  std::optional<rs::util::ScopedFaultInjection> guard;
  if (plan != nullptr) guard.emplace(rs::scenario::make_injector(*plan));
  const rs::util::Stopwatch watch;
  fleet.run_until_drained();
  DrainResult result;
  result.seconds = watch.seconds();
  result.stats = fleet.stats();
  for (std::size_t i = 0; i < roster.configs.size(); ++i) {
    result.schedules.push_back(fleet.tenant(i).schedule());
  }
  return result;
}

DrainResult drain_best_of(const Roster& roster, std::size_t threads,
                          int reps,
                          const rs::scenario::FaultPlan* plan = nullptr) {
  DrainResult best;
  for (int rep = 0; rep < reps + 1; ++rep) {
    DrainResult result = drain_once(roster, threads, plan);
    // Rep 0 warms caches / pool workers and is discarded.
    if (rep == 1 || (rep > 1 && result.seconds < best.seconds)) {
      best = std::move(result);
    }
  }
  return best;
}

void print_row(const FleetRow& row) {
  std::ostringstream line;
  line << row.name << "  threads=" << row.threads
       << "  tenants=" << row.tenants << "x" << row.slots_per_tenant
       << "  " << static_cast<long long>(row.tenant_steps_per_sec)
       << " tenant-steps/sec";
  if (row.recoveries > 0) line << "  recoveries=" << row.recoveries;
  if (row.quarantined > 0) line << "  quarantined=" << row.quarantined;
  std::cout << line.str() << "\n";
}

void append_json(std::ostringstream& out, const FleetRow& row, bool first) {
  if (!first) out << ",";
  out << "\n    {\"name\": \"" << row.name
      << "\", \"threads\": " << row.threads
      << ", \"tenants\": " << row.tenants
      << ", \"slots_per_tenant\": " << row.slots_per_tenant
      << ", \"tenant_steps\": " << row.tenant_steps
      << ", \"seconds\": " << row.seconds
      << ", \"tenant_steps_per_sec\": " << row.tenant_steps_per_sec
      << ", \"recoveries\": " << row.recoveries
      << ", \"quarantined\": " << row.quarantined << "}";
}

FleetRow to_row(const std::string& name, const Roster& roster,
                std::size_t threads, const DrainResult& result) {
  FleetRow row;
  row.name = name;
  row.threads = threads;
  row.tenants = static_cast<int>(roster.configs.size());
  row.slots_per_tenant = static_cast<int>(roster.traces[0].size());
  row.tenant_steps = result.stats.tenant_steps;
  row.seconds = result.seconds;
  row.tenant_steps_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.stats.tenant_steps) / result.seconds
          : 0.0;
  row.recoveries = result.stats.recoveries;
  row.quarantined = result.stats.quarantined;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const bool smoke =
      args.get_bool("smoke", std::getenv("RIGHTSIZER_BENCH_SMOKE") != nullptr);
  const std::string json_path = args.get("json", "");

  const int tenants = smoke ? 6 : 12;
  const int slots = smoke ? 64 : 512;
  const int reps = smoke ? 1 : 5;  // best-of; single-core boxes are noisy
  const Roster roster = make_roster(tenants, slots);
  const std::uint64_t expected_steps =
      static_cast<std::uint64_t>(tenants) * static_cast<std::uint64_t>(slots);

  std::cout << "E15  fleet serving throughput (hardware_concurrency="
            << std::thread::hardware_concurrency() << ", smoke=" << smoke
            << ")\n\n";

  std::vector<FleetRow> rows;
  std::vector<std::vector<int>> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    const DrainResult result = drain_best_of(roster, threads, reps);
    rs::bench::check(result.stats.tenant_steps == expected_steps,
                     "fleet_mixed/t" + std::to_string(threads) +
                         ": drained " +
                         std::to_string(result.stats.tenant_steps) + " of " +
                         std::to_string(expected_steps) + " tenant-steps");
    rs::bench::check(result.stats.quarantined == 0,
                     "fleet_mixed/t" + std::to_string(threads) +
                         ": clean run quarantined a tenant");
    if (threads == 1) {
      reference = result.schedules;
    } else {
      // Tick partitioning must never change a decision.
      rs::bench::check(result.schedules == reference,
                       "fleet_mixed/t" + std::to_string(threads) +
                           ": schedules differ from the 1-thread run");
    }
    rows.push_back(to_row("fleet_mixed", roster, threads, result));
    print_row(rows.back());
  }

  // Chaos shape: the same roster with tick-path faults firing live — the
  // steady-state cost of checkpoint cadence + restore-and-replay healing.
  {
    const rs::scenario::FaultPlan plan{0xF1EE7u, 61,
                                       rs::scenario::PoisonKind::kNaN};
    const DrainResult chaos = drain_best_of(roster, 1, reps, &plan);
    rs::bench::check(chaos.stats.tenant_steps == expected_steps,
                     "fleet_chaos: drained " +
                         std::to_string(chaos.stats.tenant_steps) + " of " +
                         std::to_string(expected_steps) + " tenant-steps");
    rs::bench::check(chaos.stats.quarantined == 0,
                     "fleet_chaos: tick-path faults must heal, not "
                     "quarantine");
    if (!smoke) {
      rs::bench::check(chaos.stats.recoveries > 0,
                       "fleet_chaos: fault plan never fired; the row "
                       "measures nothing");
    }
    // Recovery replay must consult no fault sites: every tenant finishes
    // bit-identical to the clean run (the drill invariant, measured here
    // at bench scale rather than unit-tested).
    rs::bench::check(chaos.schedules == reference,
                     "fleet_chaos: schedules diverged from the clean run");
    rows.push_back(to_row("fleet_chaos", roster, 1, chaos));
    print_row(rows.back());
  }

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n  \"smoke\": "
        << (smoke ? "true" : "false") << ",\n  \"fleet\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      append_json(out, rows[i], i == 0);
    }
    out << "\n  ]\n}\n";
    std::ofstream file(json_path);
    file << out.str();
    std::cout << "\nwrote " << json_path << " (" << rows.size() << " rows)\n";
  }

  return rs::bench::finish("E15 fleet serving throughput");
}
