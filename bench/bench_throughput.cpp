// E12 — Batch throughput: instances/sec through the SolverEngine.
//
// Fleet-style consumers issue thousands of small solves; at T = m = 64 the
// per-solve row evaluation and scratch allocation dominate the O(T·m)
// kernels.  This bench measures a batch of (instance, solver-kind) jobs in
// three configurations:
//
//   naive       — solve-in-a-loop on the calling thread, with the thread
//                 workspace cleared before every solve: the library's
//                 pre-engine consumer pattern (allocation per solve, rows
//                 re-evaluated per job, no sharing).
//   engine/1    — SolverEngine, inline (1 thread), warm arenas, one shared
//                 DenseProblem per distinct instance.
//   engine/N    — the same batch across a dedicated N-worker pool.
//
// Two batch shapes: `small` (K distinct T=64/m=64 restricted-model
// instances × R solver jobs each — the Monte-Carlo/competitive ensemble
// pattern where jobs repeat per instance) and `mixed` (sizes 32..256
// across generator families, one dp-cost + one LCP job per instance).
//
// `--json PATH` dumps the rows for scripts/bench_baseline.sh; the recorded
// acceptance number is the engine/1-thread speedup over naive (arena reuse
// + shared materialization).  Multi-thread rows are recorded with their
// thread count; on a single-core container they measure scheduling
// overhead, not parallel speedup (hardware_concurrency is recorded so the
// reader can tell).  Qualitative checks: batch costs bit-identical to the
// naive loop, warm 1-thread batch allocation-free, and engine/1 at least
// 1.3x naive on the small batch.
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"

namespace {

using rs::core::DenseProblem;
using rs::core::Problem;
using rs::engine::BatchResult;
using rs::engine::SolveJob;
using rs::engine::SolverEngine;
using rs::engine::SolverKind;

// A distinct T=64/m=64 restricted-model instance per seed (the
// bench_common fixture derives its seed from T and m alone, which would
// collapse a fleet of same-sized instances into one).  The per-server load
// cost is the M/M/1-style energy + delay curve of the data-center
// literature (operating cost grows as utilization approaches saturation),
// i.e. the realistic shape of paper eq. 2 — and, like any real delay
// model, not free to evaluate, which is exactly why fleet consumers want
// each row materialized once per instance.
Problem make_restricted(int T, int m, std::uint64_t seed) {
  rs::util::Rng rng(seed * 7000003u + static_cast<std::uint64_t>(T) * 131u +
                    static_cast<std::uint64_t>(m));
  auto load_cost = std::make_shared<const std::function<double(double)>>(
      [](double z) { return 1.0 + 0.2 * z * z + 0.5 / (1.1 - z); });
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    const double lambda = rng.uniform(0.0, 0.6 * m);
    fs.push_back(
        std::make_shared<rs::core::RestrictedSlotCost>(load_cost, lambda));
  }
  return Problem(m, 2.0, std::move(fs));
}

struct ThroughputRow {
  std::string name;
  std::size_t threads = 1;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double instances_per_sec = 0.0;
  double speedup_vs_naive = 0.0;
  bool allocation_free = false;
};

// The pre-engine consumer pattern: one solve per job, straight through the
// library entry points, workspace cleared first so every solve pays its
// allocations (the seed behaviour the arenas replaced).  The entry points
// follow the same documented backend selection the engine applies (DP jobs
// on instances admitting a compact convex-PWL form run kConvexAuto; LCP
// selects per step inside the tracker), so the engine-vs-naive cost check
// below stays bit-exact.
std::vector<double> naive_loop(const std::vector<SolveJob>& jobs, int reps,
                               double* seconds) {
  // The backend decision is hoisted out of the timed region: the engine
  // decides once per batch, and the pre-engine pattern this arm models
  // never paid a per-solve capability probe.
  std::vector<rs::offline::DpSolver::Backend> dp_backend(
      jobs.size(), rs::offline::DpSolver::Backend::kDense);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].kind == SolverKind::kDpCost &&
        rs::core::admits_compact_pwl(*jobs[i].problem)) {
      dp_backend[i] = rs::offline::DpSolver::Backend::kConvexAuto;
    }
  }
  std::vector<double> costs(jobs.size());
  double best = rs::util::kInf;
  for (int rep = 0; rep < reps + 1; ++rep) {
    rs::util::Stopwatch watch;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      rs::util::this_thread_workspace().clear();
      const Problem& p = *jobs[i].problem;
      switch (jobs[i].kind) {
        case SolverKind::kDpCost:
          costs[i] = rs::offline::DpSolver(dp_backend[i]).solve_cost(p);
          break;
        case SolverKind::kLcp: {
          rs::online::Lcp lcp;
          const rs::core::Schedule x = rs::online::run_online(lcp, p);
          costs[i] = rs::core::total_cost(p, x);
          break;
        }
        default:
          rs::bench::check(false, "naive_loop: unexpected solver kind");
      }
    }
    // Rep 0 warms the page cache / branch predictors and is discarded, the
    // same protocol as engine_best_of.
    if (rep > 0) best = std::min(best, watch.seconds());
  }
  *seconds = best;
  return costs;
}

BatchResult engine_best_of(const SolverEngine& engine,
                           const std::vector<SolveJob>& jobs, int reps) {
  BatchResult best;
  for (int rep = 0; rep < reps + 1; ++rep) {
    BatchResult result = engine.run(jobs);
    // rep 0 warms the arenas (and any fresh pool workers) and is discarded.
    if (rep == 1 || (rep > 1 && result.stats.total_seconds <
                                    best.stats.total_seconds)) {
      best = std::move(result);
    }
  }
  return best;
}

std::vector<SolveJob> make_jobs(const std::vector<Problem>& instances,
                                int jobs_per_instance) {
  std::vector<SolveJob> jobs;
  jobs.reserve(instances.size() * static_cast<std::size_t>(jobs_per_instance));
  for (const Problem& p : instances) {
    for (int r = 0; r < jobs_per_instance; ++r) {
      jobs.push_back(SolveJob{
          &p, nullptr, r % 2 == 0 ? SolverKind::kDpCost : SolverKind::kLcp});
    }
  }
  return jobs;
}

void print_row(const ThroughputRow& row) {
  std::ostringstream line;
  line << row.name << "  threads=" << row.threads << "  jobs=" << row.jobs
       << "  " << static_cast<long long>(row.instances_per_sec)
       << " instances/sec";
  if (row.speedup_vs_naive > 0.0) {
    line << "  (" << row.speedup_vs_naive << "x naive)";
  }
  if (row.allocation_free) line << "  [allocation-free]";
  std::cout << line.str() << "\n";
}

void append_json(std::ostringstream& out, const ThroughputRow& row,
                 bool first) {
  if (!first) out << ",";
  out << "\n    {\"name\": \"" << row.name << "\", \"threads\": " << row.threads
      << ", \"jobs\": " << row.jobs << ", \"seconds\": " << row.seconds
      << ", \"instances_per_sec\": " << row.instances_per_sec
      << ", \"speedup_vs_naive\": " << row.speedup_vs_naive
      << ", \"allocation_free\": " << (row.allocation_free ? "true" : "false")
      << "}";
}

// Measures one batch shape in every configuration and appends rows.  The
// jobs point into instance vectors owned by the caller's scope.
void measure_batch(const std::string& name, const std::vector<SolveJob>& jobs,
                   int reps, bool smoke, std::vector<ThroughputRow>& rows) {
  double naive_seconds = 0.0;
  const std::vector<double> naive_costs =
      naive_loop(jobs, reps, &naive_seconds);
  ThroughputRow naive_row;
  naive_row.name = name + "_naive";
  naive_row.threads = 1;
  naive_row.jobs = jobs.size();
  naive_row.seconds = naive_seconds;
  naive_row.instances_per_sec =
      static_cast<double>(jobs.size()) / naive_seconds;
  rows.push_back(naive_row);
  print_row(naive_row);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const SolverEngine engine({.threads = threads});
    const BatchResult batch = engine_best_of(engine, jobs, reps);
    ThroughputRow row;
    row.name = name + "_engine";
    row.threads = threads;
    row.jobs = jobs.size();
    row.seconds = batch.stats.total_seconds;
    row.instances_per_sec = batch.stats.instances_per_second;
    row.speedup_vs_naive = naive_seconds / batch.stats.total_seconds;
    row.allocation_free = batch.stats.allocation_free();
    rows.push_back(row);
    print_row(row);

    if (threads == 1) {
      // Correctness: the batch is bit-identical to the naive loop.
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (batch.outcomes[i].cost != naive_costs[i]) {
          rs::bench::check(false, name + ": engine cost differs from naive "
                                         "loop at job " +
                                      std::to_string(i));
          break;
        }
      }
      // Warm inline batches must not touch the allocator.
      rs::bench::check(row.allocation_free,
                       name + ": warm 1-thread batch not allocation-free");
      // The amortization claim needs full-size batches; smoke runs only
      // exercise the machinery.
      if (name == "small_batch" && !smoke) {
        rs::bench::check(row.speedup_vs_naive >= 1.3,
                         "small batch: engine/1-thread speedup " +
                             std::to_string(row.speedup_vs_naive) +
                             " below 1.3x over the naive loop");
      }
    }
    // The parallel-scaling claim is only falsifiable where the cores
    // exist; on smaller machines (e.g. 1-core CI containers) the rows are
    // recorded but not asserted.
    if (name == "small_batch" && !smoke && threads == 8 &&
        std::thread::hardware_concurrency() >= 8) {
      rs::bench::check(row.speedup_vs_naive >= 4.0,
                       "small batch: engine/8-thread speedup " +
                           std::to_string(row.speedup_vs_naive) +
                           " below 4x over the naive loop");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const bool smoke =
      args.get_bool("smoke", std::getenv("RIGHTSIZER_BENCH_SMOKE") != nullptr);
  const std::string json_path = args.get("json", "");

  // Small batch: K distinct restricted-model instances (expensive per-point
  // evaluation through a shared std::function load curve — the paper's
  // eq. 2 shape), R jobs each.
  const int K = smoke ? 4 : 16;
  const int R = smoke ? 2 : 16;    // trials/measurements per instance
  const int reps = smoke ? 1 : 7;  // best-of; single-core boxes are noisy

  std::vector<Problem> small_instances;
  small_instances.reserve(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    small_instances.push_back(
        make_restricted(64, 64, static_cast<std::uint64_t>(k)));
  }
  const std::vector<SolveJob> small_jobs = make_jobs(small_instances, R);

  // Mixed batch: varied sizes and families, two jobs per instance — the
  // sweep-grid shape where per-job costs differ by orders of magnitude.
  std::vector<Problem> mixed_instances;
  {
    const int sizes[][2] = {{32, 32}, {64, 64}, {128, 96}, {256, 48}};
    std::uint64_t seed = 1;
    for (const auto& size : sizes) {
      for (rs::workload::InstanceFamily family :
           rs::workload::all_instance_families()) {
        rs::util::Rng rng(seed++);
        mixed_instances.push_back(rs::workload::random_instance(
            rng, family, smoke ? size[0] / 4 : size[0],
            smoke ? size[1] / 4 : size[1], 2.0));
      }
    }
  }
  const std::vector<SolveJob> mixed_jobs = make_jobs(mixed_instances, 2);

  std::cout << "E12  batch throughput (hardware_concurrency="
            << std::thread::hardware_concurrency() << ", smoke=" << smoke
            << ")\n\n";

  std::vector<ThroughputRow> rows;
  measure_batch("small_batch", small_jobs, reps, smoke, rows);
  std::cout << "\n";
  measure_batch("mixed_batch", mixed_jobs, reps, smoke, rows);

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n  \"smoke\": "
        << (smoke ? "true" : "false") << ",\n  \"throughput\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      append_json(out, rows[i], i == 0);
    }
    out << "\n  ]\n}\n";
    std::ofstream file(json_path);
    file << out.str();
    std::cout << "\nwrote " << json_path << " (" << rows.size() << " rows)\n";
  }

  return rs::bench::finish("E12 batch throughput");
}
