// E14 — Scenario lab: the trace-zoo ratio dashboard and the RLE replay
// speedup.
//
// Part 1 runs the seeded Monte-Carlo harness (scenario/eval_harness.hpp)
// over the full scenario × algorithm matrix and prints the ratio/savings
// dashboard; the per-cell rows are recorded for BENCH_results.json, where
// scripts/bench_compare.py gates them (the harness is deterministic in the
// seed, so a drifting mean ratio is a behaviour regression, not noise).
//
// Part 2 measures the run-length-encoded replay against the slot-by-slot
// replay of the same instance on a T = 10⁶ trace with ≤ 10³ runs (the
// acceptance shape): the PWL work-function shapes reach their per-run
// fixpoint within a handful of steps, so the RLE replay does O(#runs)
// tracker work and must be >= 10x faster with a bit-identical schedule
// (both claims checked here in full mode; smoke only exercises the path).
#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using rs::scenario::CellSummary;
using rs::scenario::HarnessConfig;
using rs::scenario::MonteCarloReport;
using rs::scenario::RleProblem;

// The acceptance-shape instance: `runs` constant-λ runs of `slots_per_run`
// slots over a large fleet, linear-tariff restricted costs (exact
// zero-breakpoint PWL forms, so the replay is m-independent).
RleProblem speedup_instance(int runs, int slots_per_run, int m) {
  std::vector<RleProblem::Run> rle_runs;
  rle_runs.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    // Cycle through 8 demand levels so consecutive runs differ.
    const double lambda =
        static_cast<double>(r % 8 + 1) / 10.0 * static_cast<double>(m);
    rle_runs.push_back(RleProblem::Run{
        std::make_shared<rs::core::LinearLoadSlotCost>(1.0, 0.5, lambda),
        slots_per_run});
  }
  return RleProblem(m, 6.0, std::move(rle_runs));
}

struct SpeedupRow {
  int horizon = 0;
  int runs = 0;
  double slot_by_slot_seconds = 0.0;
  double rle_seconds = 0.0;
  double speedup = 0.0;
  bool bit_identical = false;
};

SpeedupRow measure_rle_speedup(int runs, int slots_per_run, int m,
                               int best_of) {
  const RleProblem rle = speedup_instance(runs, slots_per_run, m);
  const rs::core::Problem expanded = rle.expand();
  SpeedupRow row;
  row.horizon = rle.horizon();
  row.runs = rle.run_count();

  rs::core::Schedule slot_schedule;
  double slot_best = rs::util::kInf;
  for (int rep = 0; rep < best_of; ++rep) {
    rs::online::Lcp lcp;
    rs::util::Stopwatch watch;
    slot_schedule = rs::online::run_online(lcp, expanded);
    slot_best = std::min(slot_best, watch.seconds());
  }
  row.slot_by_slot_seconds = slot_best;

  rs::core::Schedule rle_schedule;
  double rle_best = rs::util::kInf;
  for (int rep = 0; rep < best_of; ++rep) {
    rs::util::Stopwatch watch;
    rle_schedule = rs::scenario::replay_lcp(rle);
    rle_best = std::min(rle_best, watch.seconds());
  }
  row.rle_seconds = rle_best;
  row.speedup = row.slot_by_slot_seconds / row.rle_seconds;
  row.bit_identical = rle_schedule == slot_schedule;
  return row;
}

void append_cell_json(std::ostringstream& out, const CellSummary& cell,
                      bool first) {
  if (!first) out << ",";
  out << "\n    {\"scenario\": \"" << rs::scenario::to_string(cell.kind)
      << "\", \"algorithm\": \"" << rs::scenario::to_string(cell.algorithm)
      << "\", \"mean_ratio\": " << cell.ratio.mean
      << ", \"max_ratio\": " << cell.max_ratio
      << ", \"mean_savings_percent\": " << cell.savings_percent.mean
      << ", \"mean_optimal_cost\": " << cell.mean_optimal_cost
      << ", \"samples\": " << cell.samples << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const bool smoke =
      args.get_bool("smoke", std::getenv("RIGHTSIZER_BENCH_SMOKE") != nullptr);
  const std::string json_path = args.get("json", "");

  std::cout << "E14  scenario lab (smoke=" << smoke << ")\n\n";

  // -- Part 1: the ratio dashboard ----------------------------------------
  HarnessConfig config;
  config.base_seed = 2024;
  config.samples_per_scenario = smoke ? 2 : 8;
  if (smoke) {
    config.zoo.servers = 16;
    config.zoo.horizon = 192;
    config.zoo.peak = 12.0;
    config.zoo.quantize_levels = 12;
    config.zoo.adversary_eps = 0.3;
  }
  const MonteCarloReport report = rs::scenario::run_monte_carlo(config);
  std::cout << rs::scenario::dashboard_markdown(report) << "\n";

  for (const CellSummary& cell : report.cells) {
    const std::string label =
        std::string(rs::scenario::to_string(cell.kind)) + "/" +
        rs::scenario::to_string(cell.algorithm);
    rs::bench::check(cell.ratio.mean >= 1.0 - 1e-9,
                     label + ": mean ratio below 1 (beat the optimum?)");
    if (cell.algorithm != rs::scenario::HarnessAlgorithm::kRandomizedRounding) {
      // Theorem 2: LCP never exceeds 3·OPT on any sample.
      rs::bench::check(cell.max_ratio <= 3.0 + 1e-6,
                       label + ": LCP ratio above the Theorem-2 bound");
    }
  }

  // -- Part 2: RLE replay speedup -----------------------------------------
  // Acceptance shape: T = 10⁶, 10³ runs (smoke: 2·10⁴ / 10² — exercises the
  // path without the wall-clock claim).
  const int runs = smoke ? 100 : 1000;
  const int slots_per_run = smoke ? 200 : 1000;
  const int m = 100000;
  const SpeedupRow speedup =
      measure_rle_speedup(runs, slots_per_run, m, /*best_of=*/2);
  std::cout << "rle replay: T=" << speedup.horizon
            << " runs=" << speedup.runs << " slot_by_slot="
            << speedup.slot_by_slot_seconds << "s rle=" << speedup.rle_seconds
            << "s speedup=" << speedup.speedup << "x bit_identical="
            << (speedup.bit_identical ? "yes" : "NO") << "\n";
  rs::bench::check(speedup.bit_identical,
                   "RLE replay schedule differs from slot-by-slot replay");
  if (!smoke) {
    rs::bench::check(speedup.speedup >= 10.0,
                     "RLE replay speedup " + std::to_string(speedup.speedup) +
                         "x below the 10x acceptance bound");
  }

  if (!json_path.empty()) {
    std::ostringstream out;
    out << "{\n  \"smoke\": " << (smoke ? "true" : "false")
        << ",\n  \"scenario_cells\": [";
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      append_cell_json(out, report.cells[i], i == 0);
    }
    out << "\n  ],\n  \"rle_speedup\": {\"horizon\": " << speedup.horizon
        << ", \"runs\": " << speedup.runs
        << ", \"slot_by_slot_seconds\": " << speedup.slot_by_slot_seconds
        << ", \"rle_seconds\": " << speedup.rle_seconds
        << ", \"speedup\": " << speedup.speedup << ", \"bit_identical\": "
        << (speedup.bit_identical ? "true" : "false") << "}\n}\n";
    std::ofstream file(json_path);
    file << out.str();
    std::cout << "\nwrote " << json_path << " (" << report.cells.size()
              << " cells)\n";
  }

  return rs::bench::finish("E14 scenario lab");
}
