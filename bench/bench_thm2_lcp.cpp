// E3 — Theorem 2: discrete LCP is 3-competitive.
//
// Measures LCP's cost ratio across workload families and switching-cost
// scales.  Every measured ratio must stay at or below 3; realistic traces
// sit far below the worst case (the adversarial bound is exercised by E5).
//
// A second section times LCP through the dense evaluation layer (one
// eval_row per slot) against the seed's per-point work-function fill on the
// dispatch-heavy instance classes; `--time-json PATH` dumps those rows for
// scripts/bench_baseline.sh, and RIGHTSIZER_BENCH_SMOKE=1 shrinks the
// instances for the ctest smoke entry.
#include <fstream>

#include "bench_common.hpp"

namespace {

struct LcpTiming {
  std::string family;
  int T = 0;
  int m = 0;
  double per_point_ms = 0.0;
  double dense_ms = 0.0;  // streaming: eval_row per revealed slot
  double table_ms = 0.0;  // pre-built DenseProblem, pure row walk
  double speedup() const { return per_point_ms / dense_ms; }
  double table_speedup() const { return per_point_ms / table_ms; }
};

LcpTiming time_lcp(const std::string& family, const rs::core::Problem& p) {
  LcpTiming row;
  row.family = family;
  row.T = p.horizon();
  row.m = p.max_servers();
  // One warm-up + three timed repetitions each; keep the minimum, the usual
  // noise-robust statistic for wall-clock micro timings.
  rs::core::Schedule per_point;
  rs::core::Schedule dense;
  double best_pp = rs::util::kInf;
  double best_dense = rs::util::kInf;
  (void)rs::bench::per_point_lcp_reference(p);
  for (int rep = 0; rep < 3; ++rep) {
    rs::util::Stopwatch watch;
    per_point = rs::bench::per_point_lcp_reference(p);
    best_pp = std::min(best_pp, watch.milliseconds());
  }
  {
    rs::online::Lcp warmup;
    (void)rs::online::run_online(warmup, p);
  }
  for (int rep = 0; rep < 3; ++rep) {
    rs::online::Lcp lcp;
    rs::util::Stopwatch watch;
    dense = rs::online::run_online(lcp, p);
    best_dense = std::min(best_dense, watch.milliseconds());
  }
  const rs::core::DenseProblem table(p);
  rs::core::Schedule dense_table;
  double best_table = rs::util::kInf;
  (void)rs::online::run_lcp_dense(table);
  for (int rep = 0; rep < 3; ++rep) {
    rs::util::Stopwatch watch;
    dense_table = rs::online::run_lcp_dense(table);
    best_table = std::min(best_table, watch.milliseconds());
  }
  rs::bench::check(per_point == dense,
                   "dense and per-point LCP schedules agree on " + family);
  rs::bench::check(per_point == dense_table,
                   "table-backed LCP schedule agrees on " + family);
  row.per_point_ms = best_pp;
  row.dense_ms = best_dense;
  row.table_ms = best_table;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string time_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--time-json" && i + 1 < argc) {
      time_json_path = argv[++i];
    }
  }

  std::cout << "E3 / Theorem 2: LCP competitive ratio (bound: 3)\n\n";
  rs::util::Rng rng(11);

  rs::util::TextTable table({"workload", "beta scale", "T", "lcp cost",
                             "opt cost", "ratio"});
  double max_ratio = 0.0;

  for (double beta_scale : {0.25, 1.0, 4.0, 16.0}) {
    struct Case {
      std::string name;
      rs::core::Problem problem;
    };
    rs::util::Rng hot = rng.split();
    rs::util::Rng msr = rng.split();
    rs::util::Rng mm = rng.split();
    rs::util::Rng tab = rng.split();
    const Case cases[] = {
        {"hotmail/restricted",
         rs::bench::hotmail_restricted(hot, 32, 3, beta_scale)},
        {"msr/restricted", rs::bench::msr_restricted(msr, 32, 3, beta_scale)},
        {"mmpp/soft-sla", rs::bench::mmpp_soft(mm, 24, 600, beta_scale)},
        {"random convex tables",
         rs::workload::random_instance(
             tab, rs::workload::InstanceFamily::kConvexTable, 200, 16,
             1.0 * beta_scale)},
    };
    for (const Case& c : cases) {
      rs::online::Lcp lcp;
      const rs::analysis::RatioReport report =
          rs::analysis::measure_ratio(lcp, c.problem);
      max_ratio = std::max(max_ratio, report.ratio);
      rs::bench::check(report.ratio <= 3.0 + 1e-9,
                       "LCP ratio <= 3 on " + c.name);
      table.add_row({c.name, rs::util::TextTable::num(beta_scale, 2),
                     std::to_string(c.problem.horizon()),
                     rs::util::TextTable::num(report.algorithm_cost, 2),
                     rs::util::TextTable::num(report.optimal_cost, 2),
                     rs::util::TextTable::num(report.ratio, 4)});
    }
  }
  std::cout << table;
  std::cout << "\nmax measured ratio: " << max_ratio
            << "  (Theorem 2 bound: 3; worst case attained only by the E5 "
               "adversary)\n";

  // --- dense evaluation layer timing -------------------------------------
  const bool smoke = std::getenv("RIGHTSIZER_BENCH_SMOKE") != nullptr;
  const int timing_T = smoke ? 256 : 10000;
  const int timing_m = smoke ? 64 : 1000;
  std::cout << "\nLCP wall clock: dense eval_row rows vs seed per-point fill"
            << " (T=" << timing_T << ", m=" << timing_m << ")\n\n";
  const LcpTiming timings[] = {
      time_lcp("decorated",
               rs::bench::decorated_instance(timing_T, timing_m)),
      time_lcp("restricted_slot",
               rs::bench::restricted_slot_instance(timing_T, timing_m)),
  };
  rs::util::TextTable timing_table({"instance", "T", "m", "per-point ms",
                                    "dense ms", "table ms", "speedup",
                                    "table speedup"});
  for (const LcpTiming& row : timings) {
    timing_table.add_row({row.family, std::to_string(row.T),
                          std::to_string(row.m),
                          rs::util::TextTable::num(row.per_point_ms, 2),
                          rs::util::TextTable::num(row.dense_ms, 2),
                          rs::util::TextTable::num(row.table_ms, 2),
                          rs::util::TextTable::num(row.speedup(), 2),
                          rs::util::TextTable::num(row.table_speedup(), 2)});
  }
  std::cout << timing_table;

  if (!time_json_path.empty()) {
    std::ofstream out(time_json_path);
    out << "[\n";
    for (std::size_t i = 0; i < std::size(timings); ++i) {
      const LcpTiming& row = timings[i];
      out << "  {\"name\": \"bench_thm2_lcp/" << row.family
          << "\", \"T\": " << row.T << ", \"m\": " << row.m
          << ", \"per_point_ms\": " << row.per_point_ms
          << ", \"dense_ms\": " << row.dense_ms
          << ", \"table_ms\": " << row.table_ms
          << ", \"speedup\": " << row.speedup()
          << ", \"table_speedup\": " << row.table_speedup() << "}"
          << (i + 1 < std::size(timings) ? "," : "") << "\n";
    }
    out << "]\n";
    std::cout << "\nwrote timing rows to " << time_json_path << "\n";
  }

  return rs::bench::finish("E3 (Theorem 2)");
}
