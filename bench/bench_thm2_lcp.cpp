// E3 — Theorem 2: discrete LCP is 3-competitive.
//
// Measures LCP's cost ratio across workload families and switching-cost
// scales.  Every measured ratio must stay at or below 3; realistic traces
// sit far below the worst case (the adversarial bound is exercised by E5).
#include "bench_common.hpp"

int main() {
  std::cout << "E3 / Theorem 2: LCP competitive ratio (bound: 3)\n\n";
  rs::util::Rng rng(11);

  rs::util::TextTable table({"workload", "beta scale", "T", "lcp cost",
                             "opt cost", "ratio"});
  double max_ratio = 0.0;

  for (double beta_scale : {0.25, 1.0, 4.0, 16.0}) {
    struct Case {
      std::string name;
      rs::core::Problem problem;
    };
    rs::util::Rng hot = rng.split();
    rs::util::Rng msr = rng.split();
    rs::util::Rng mm = rng.split();
    rs::util::Rng tab = rng.split();
    const Case cases[] = {
        {"hotmail/restricted",
         rs::bench::hotmail_restricted(hot, 32, 3, beta_scale)},
        {"msr/restricted", rs::bench::msr_restricted(msr, 32, 3, beta_scale)},
        {"mmpp/soft-sla", rs::bench::mmpp_soft(mm, 24, 600, beta_scale)},
        {"random convex tables",
         rs::workload::random_instance(
             tab, rs::workload::InstanceFamily::kConvexTable, 200, 16,
             1.0 * beta_scale)},
    };
    for (const Case& c : cases) {
      rs::online::Lcp lcp;
      const rs::analysis::RatioReport report =
          rs::analysis::measure_ratio(lcp, c.problem);
      max_ratio = std::max(max_ratio, report.ratio);
      rs::bench::check(report.ratio <= 3.0 + 1e-9,
                       "LCP ratio <= 3 on " + c.name);
      table.add_row({c.name, rs::util::TextTable::num(beta_scale, 2),
                     std::to_string(c.problem.horizon()),
                     rs::util::TextTable::num(report.algorithm_cost, 2),
                     rs::util::TextTable::num(report.optimal_cost, 2),
                     rs::util::TextTable::num(report.ratio, 4)});
    }
  }
  std::cout << table;
  std::cout << "\nmax measured ratio: " << max_ratio
            << "  (Theorem 2 bound: 3; worst case attained only by the E5 "
               "adversary)\n";
  return rs::bench::finish("E3 (Theorem 2)");
}
