// E1 — Figure 1: the layered-graph model of the discrete data-center
// optimization problem.
//
// Reproduces the construction of Section 2.1: vertex/edge counts match the
// closed forms |V| = 2 + T(m+1) and |E| = (m+1) + (T−1)(m+1)² + (m+1),
// path lengths equal schedule costs, and the shortest path equals the DP
// optimum (the O(T·m²) pseudo-polynomial baseline the paper improves on).
#include "bench_common.hpp"

int main() {
  std::cout << "E1 / Figure 1: layered-graph model G = (V, E)\n\n";
  rs::util::Rng rng(1);
  rs::util::TextTable table({"T", "m", "|V|", "|E|", "sssp cost", "dp cost",
                             "build+sssp ms"});

  for (const auto& [T, m] : {std::pair{8, 8}, std::pair{32, 16},
                             std::pair{64, 32}, std::pair{128, 64}}) {
    const rs::core::Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kQuadratic, T, m, 1.5);

    rs::util::Stopwatch watch;
    const rs::graph::LayeredGraph graph = rs::graph::build_schedule_graph(p);
    const auto path = graph.shortest_path(0, 0);
    const double elapsed_ms = watch.milliseconds();

    const double dp_cost = rs::offline::DpSolver().solve_cost(p);

    const std::int64_t expected_vertices =
        2 + static_cast<std::int64_t>(T) * (m + 1);
    const std::int64_t expected_edges =
        (m + 1) + static_cast<std::int64_t>(T - 1) * (m + 1) * (m + 1) +
        (m + 1);
    rs::bench::check(graph.num_vertices() == expected_vertices,
                     "vertex count matches 2 + T(m+1)");
    rs::bench::check(graph.num_edges() == expected_edges,
                     "edge count matches Figure 1");
    rs::bench::check(std::abs(path.distance - dp_cost) < 1e-6,
                     "shortest path equals optimal schedule cost");

    // Path <-> schedule equivalence on the optimal path.
    const rs::core::Schedule schedule = rs::graph::path_to_schedule(path);
    rs::bench::check(
        std::abs(rs::core::total_cost(p, schedule) - path.distance) < 1e-6,
        "path length equals schedule cost");

    table.add_row({std::to_string(T), std::to_string(m),
                   std::to_string(graph.num_vertices()),
                   std::to_string(graph.num_edges()),
                   rs::util::TextTable::num(path.distance, 3),
                   rs::util::TextTable::num(dp_cost, 3),
                   rs::util::TextTable::num(elapsed_ms, 2)});
  }
  std::cout << table;
  return rs::bench::finish("E1 (Figure 1)");
}
