// Lower-bound adversary demo (Theorem 4): the ϕ0/ϕ1 adversary drives LCP —
// and every deterministic online algorithm — toward competitive ratio 3.
//
//   ./example_adversary_demo [--horizon=0 (auto)]
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const int horizon = static_cast<int>(args.get_int("horizon", 0));

  rs::util::TextTable table(
      {"epsilon", "T", "algorithm", "alg cost", "opt cost", "ratio"});
  for (double eps : {0.2, 0.1, 0.05, 0.02, 0.01}) {
    rs::online::Lcp lcp;
    const rs::lowerbound::AdversaryOutcome lcp_outcome =
        rs::lowerbound::deterministic_discrete_adversary(lcp, eps, horizon);
    table.add_row({rs::util::TextTable::num(eps, 3),
                   std::to_string(lcp_outcome.problem.horizon()), "lcp",
                   rs::util::TextTable::num(lcp_outcome.algorithm_cost, 3),
                   rs::util::TextTable::num(lcp_outcome.optimal_cost, 3),
                   rs::util::TextTable::num(lcp_outcome.ratio, 4)});

    rs::online::FollowTheMinimizer follow;
    const rs::lowerbound::AdversaryOutcome follow_outcome =
        rs::lowerbound::deterministic_discrete_adversary(follow, eps, horizon);
    table.add_row({rs::util::TextTable::num(eps, 3),
                   std::to_string(follow_outcome.problem.horizon()),
                   "follow_min",
                   rs::util::TextTable::num(follow_outcome.algorithm_cost, 3),
                   rs::util::TextTable::num(follow_outcome.optimal_cost, 3),
                   rs::util::TextTable::num(follow_outcome.ratio, 4)});
  }
  std::cout << "Theorem 4: no deterministic online algorithm beats ratio 3 "
               "(discrete setting).\n\n"
            << table
            << "\nLCP's ratio approaches its Theorem-2 guarantee of exactly 3 "
               "as epsilon -> 0.\n";
  return 0;
}
