// Heterogeneous data center (the paper's future-work direction): two server
// classes — fast/power-hungry and slow/efficient — serving one workload.
// The joint slot cost optimizes the workload split across the active
// servers of each class; the product-state DP finds the optimal joint
// schedule, showing the efficient class carrying the base load and the fast
// class absorbing peaks.
//
//   ./example_heterogeneous [--slots=24] [--seed=9]
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 9)));

  rs::hetero::TwoTypeModel model;
  model.type_a.servers = 4;                      // fast, hungry
  model.type_a.power.idle_watts = 250.0;
  model.type_a.power.peak_watts = 500.0;
  model.type_a.delay.service_rate = 2.0;
  model.type_b.servers = 4;                      // slow, efficient
  model.type_b.power.idle_watts = 80.0;
  model.type_b.power.peak_watts = 160.0;
  model.type_b.delay.service_rate = 1.0;

  rs::workload::DiurnalParams diurnal;
  diurnal.horizon = static_cast<int>(args.get_int("slots", 24));
  diurnal.period = diurnal.horizon / 2;
  diurnal.peak = 3.5;
  diurnal.base = 0.15;
  const rs::workload::Trace trace = rs::workload::diurnal(rng, diurnal);

  const rs::hetero::HeteroProblem p =
      rs::hetero::two_type_problem(model, trace);
  const rs::hetero::HeteroResult optimal = rs::hetero::solve_hetero_dp(p);
  if (!optimal.feasible()) {
    std::cerr << "instance infeasible\n";
    return 1;
  }

  std::cout << "Two-type data center, " << trace.horizon()
            << " slots, joint optimum = " << optimal.cost << "\n\n";
  rs::util::TextTable table({"t", "lambda", "fast (A)", "efficient (B)"});
  for (int t = 1; t <= trace.horizon(); ++t) {
    const rs::hetero::HeteroState& x =
        optimal.schedule[static_cast<std::size_t>(t - 1)];
    table.add_row({std::to_string(t),
                   rs::util::TextTable::num(
                       trace.lambda[static_cast<std::size_t>(t - 1)], 2),
                   std::to_string(x[0]), std::to_string(x[1])});
  }
  std::cout << table;

  int fast_total = 0;
  int efficient_total = 0;
  for (const rs::hetero::HeteroState& x : optimal.schedule) {
    fast_total += x[0];
    efficient_total += x[1];
  }
  std::cout << "\nServer-slots used: fast=" << fast_total
            << " efficient=" << efficient_total
            << " — the efficient class carries the base load; the fast class "
               "absorbs peaks.\n";
  return 0;
}
