// Trace-driven right-sizing of a simulated data center.
//
// Builds a Hotmail-like diurnal arrival trace, derives the restricted-model
// instance (eq. 2) from an energy + M/M/1-delay cost model, solves it
// offline and online, and reports both objective costs and physical
// energy/transition statistics.
//
//   ./example_datacenter_trace [--servers=32] [--days=3] [--seed=7]
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  rs::dcsim::DataCenterModel model;
  model.servers = static_cast<int>(args.get_int("servers", 32));
  const int days = static_cast<int>(args.get_int("days", 3));
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  const rs::workload::Trace trace = rs::workload::hotmail_like(
      rng, days, 144, 0.6 * model.servers);
  const rs::workload::TraceStats stats = rs::workload::compute_stats(trace);
  std::cout << "Trace: " << trace.horizon() << " slots, mean=" << stats.mean
            << " peak=" << stats.peak << " peak/mean=" << stats.peak_to_mean
            << "\n\n";

  const rs::core::Problem p =
      rs::dcsim::restricted_datacenter_problem(model, trace);

  const rs::offline::OfflineResult optimal = rs::offline::DpSolver().solve(p);
  rs::online::Lcp lcp;
  const rs::core::Schedule lcp_schedule = rs::online::run_online(lcp, p);
  const rs::online::StaticOptimum static_best = rs::online::best_static_level(p);

  rs::util::TextTable table(
      {"policy", "objective", "vs static", "energy savings %", "power-ups"});
  auto add = [&](const std::string& name, const rs::core::Schedule& x,
                 double cost) {
    const rs::dcsim::SimulationReport sim =
        rs::dcsim::simulate(model, trace, x);
    table.add_row(
        {name, rs::util::TextTable::num(cost, 2),
         rs::util::TextTable::num(100.0 * (1.0 - cost / static_best.cost), 1) +
             "%",
         rs::util::TextTable::num(
             rs::dcsim::energy_savings_percent(model, trace, x), 1),
         std::to_string(sim.power_ups)});
  };
  const rs::core::Schedule static_schedule(
      static_cast<std::size_t>(trace.horizon()), static_best.level);
  add("static(best=" + std::to_string(static_best.level) + ")",
      static_schedule, static_best.cost);
  add("lcp (online)", lcp_schedule, rs::core::total_cost(p, lcp_schedule));
  add("optimal (offline)", optimal.schedule, optimal.cost);
  std::cout << table;

  const rs::dcsim::SimulationReport sim =
      rs::dcsim::simulate(model, trace, optimal.schedule);
  std::cout << "\nOptimal schedule physicals: mean active servers="
            << sim.mean_active_servers
            << ", mean utilization=" << sim.mean_utilization
            << ", SLA violations=" << sim.sla_violation_slots << "\n";
  return 0;
}
