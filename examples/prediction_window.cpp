// Value of prediction windows (Sections 3 and 5.4).
//
// On realistic diurnal traces a small lookahead closes most of the gap to
// the offline optimum; on the Theorem-10 stretched adversarial instances it
// closes none.  This example shows both effects side by side.
//
//   ./example_prediction_window [--days=3] [--servers=24] [--seed=11]
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 11)));

  // Part 1: diurnal trace, restricted model.
  rs::dcsim::DataCenterModel model;
  model.servers = static_cast<int>(args.get_int("servers", 24));
  const rs::workload::Trace trace = rs::workload::hotmail_like(
      rng, static_cast<int>(args.get_int("days", 3)), 96,
      0.6 * model.servers);
  const rs::core::Problem p =
      rs::dcsim::restricted_datacenter_problem(model, trace);
  const double optimal = rs::offline::DpSolver().solve_cost(p);

  std::cout << "Diurnal trace (" << trace.horizon() << " slots), OPT="
            << optimal << "\n\n";
  rs::util::TextTable table({"window w", "lcp(w)", "lcp ratio", "rhc(w)",
                             "rhc ratio"});
  for (int w : {0, 1, 2, 4, 8, 16, 32}) {
    rs::online::WindowedLcp windowed;
    const rs::core::Schedule lcp_x = rs::online::run_online(windowed, p, w);
    const double lcp_cost = rs::core::total_cost(p, lcp_x);
    rs::online::RecedingHorizon rhc;
    const rs::core::Schedule rhc_x = rs::online::run_online(rhc, p, w);
    const double rhc_cost = rs::core::total_cost(p, rhc_x);
    table.add_row({std::to_string(w), rs::util::TextTable::num(lcp_cost, 2),
                   rs::util::TextTable::num(lcp_cost / optimal, 4),
                   rs::util::TextTable::num(rhc_cost, 2),
                   rs::util::TextTable::num(rhc_cost / optimal, 4)});
  }
  std::cout << table;

  // Part 2: Theorem 10 — the stretched adversarial instance defeats any
  // constant window.
  rs::online::Lcp lcp;
  const rs::lowerbound::AdversaryOutcome base =
      rs::lowerbound::deterministic_discrete_adversary(lcp, 0.05, 3000);
  std::cout << "\nTheorem-10 stretched adversarial instance (factor n*w):\n\n";
  rs::util::TextTable adversarial({"window w", "stretch", "ratio"});
  for (int w : {1, 2, 4}) {
    const int factor = 8 * w;  // n = 8
    const rs::core::Problem stretched =
        rs::lowerbound::stretch_for_window(base.problem, factor);
    rs::online::WindowedLcp windowed;
    const rs::core::Schedule x = rs::online::run_online(windowed, stretched, w);
    const double ratio = rs::core::total_cost(stretched, x) /
                         rs::offline::DpSolver().solve_cost(stretched);
    adversarial.add_row({std::to_string(w), std::to_string(factor),
                         rs::util::TextTable::num(ratio, 4)});
  }
  std::cout << adversarial
            << "\nPredictions help on real workloads but cannot improve the "
               "worst case (Theorem 10).\n";
  return 0;
}
