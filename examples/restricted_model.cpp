// The restricted model of Lin et al. (paper eq. 2) end to end:
// a single convex per-server cost f(z), a workload trace λ_t, the hard
// constraint x_t >= λ_t, and equal load distribution x·f(λ/x).
//
//   ./example_restricted_model [--T=96] [--m=16] [--seed=5]
#include <cmath>
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const int T = static_cast<int>(args.get_int("T", 96));
  const int m = static_cast<int>(args.get_int("m", 16));
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 5)));

  // f(z): energy grows affinely with load, delay diverges near overload.
  rs::core::RestrictedModel model;
  model.m = m;
  model.beta = 4.0;
  model.per_server_cost = [](double z) {
    if (z > 0.95) return rs::util::kInf;
    return 0.4 + 0.6 * z + 0.3 * z / (1.0 - z);
  };

  rs::workload::DiurnalParams diurnal;
  diurnal.horizon = T;
  diurnal.period = T / 2;
  diurnal.peak = 0.7 * m;
  diurnal.base = 0.2;
  const rs::workload::Trace trace = rs::workload::diurnal(rng, diurnal);

  const rs::core::Problem p =
      rs::core::restricted_problem(model, trace.lambda);
  p.validate();

  const rs::offline::OfflineResult optimal = rs::offline::DpSolver().solve(p);
  rs::online::Lcp lcp;
  const rs::core::Schedule lcp_schedule = rs::online::run_online(lcp, p);

  std::cout << "Restricted model: m=" << m << " beta=" << model.beta
            << " horizon=" << T << "\n";
  std::cout << "OPT=" << optimal.cost
            << "  LCP=" << rs::core::total_cost(p, lcp_schedule)
            << "  ratio=" << rs::core::total_cost(p, lcp_schedule) / optimal.cost
            << "\n\n";

  // Show a window of the trajectory with the constraint.
  rs::util::TextTable table({"t", "lambda", "x_opt", "x_lcp", "x>=lambda"});
  for (int t = 1; t <= std::min(T, 24); ++t) {
    const double lambda = trace.lambda[static_cast<std::size_t>(t - 1)];
    const int x_opt = optimal.schedule[static_cast<std::size_t>(t - 1)];
    const int x_lcp = lcp_schedule[static_cast<std::size_t>(t - 1)];
    table.add_row({std::to_string(t), rs::util::TextTable::num(lambda, 2),
                   std::to_string(x_opt), std::to_string(x_lcp),
                   x_lcp >= lambda ? "yes" : "VIOLATED"});
  }
  std::cout << table;

  // Constraint check over the whole horizon.
  int violations = 0;
  for (int t = 1; t <= T; ++t) {
    if (lcp_schedule[static_cast<std::size_t>(t - 1)] <
        trace.lambda[static_cast<std::size_t>(t - 1)]) {
      ++violations;
    }
  }
  std::cout << "\nConstraint x_t >= lambda_t violations (LCP): " << violations
            << " of " << T << " slots\n";
  return 0;
}
