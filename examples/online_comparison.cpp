// Side-by-side comparison of the online policies on a bursty general-model
// workload: LCP, LCP with prediction windows, follow-the-minimizer, the
// fractional 2-competitive LevelFlow, the randomized rounding algorithm
// (expected cost), and the best static level — all against the offline
// optimum.
//
//   ./example_online_comparison [--T=600] [--servers=24] [--seed=3]
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const int T = static_cast<int>(args.get_int("T", 600));
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 3)));

  rs::dcsim::SoftSlaModel model;
  model.servers = static_cast<int>(args.get_int("servers", 24));

  rs::workload::Mmpp2Params burst;
  burst.horizon = T;
  burst.rate_low = 0.15 * model.servers;
  burst.rate_high = 0.7 * model.servers;
  const rs::workload::Trace trace = rs::workload::mmpp2(rng, burst);
  const rs::core::Problem p = rs::dcsim::soft_sla_problem(model, trace);

  const double optimal = rs::offline::DpSolver().solve_cost(p);

  rs::util::TextTable table({"policy", "cost", "ratio", "operating",
                             "switching"});
  auto add_report = [&](const rs::analysis::RatioReport& report,
                        const std::string& label) {
    table.add_row({label, rs::util::TextTable::num(report.algorithm_cost, 2),
                   rs::util::TextTable::num(report.ratio, 4),
                   rs::util::TextTable::num(report.operating_cost, 2),
                   rs::util::TextTable::num(report.switching_cost, 2)});
  };

  rs::online::Lcp lcp;
  add_report(rs::analysis::measure_ratio(lcp, p), "lcp");

  for (int w : {1, 4, 16}) {
    rs::online::WindowedLcp windowed;
    add_report(rs::analysis::measure_ratio(windowed, p, w),
               "lcp(w=" + std::to_string(w) + ")");
  }

  rs::online::FollowTheMinimizer follow;
  add_report(rs::analysis::measure_ratio(follow, p), "follow_min");

  rs::online::LevelFlow flow;
  add_report(rs::analysis::measure_ratio(flow, p), "level_flow (frac)");

  const rs::analysis::MonteCarloReport random_rounding =
      rs::analysis::monte_carlo_randomized_rounding(p, 64, 2024);
  table.add_row({"randomized (E[64 runs])",
                 rs::util::TextTable::num(random_rounding.cost.mean, 2),
                 rs::util::TextTable::num(random_rounding.ratio.mean, 4),
                 "-", "-"});

  const rs::online::StaticOptimum static_best = rs::online::best_static_level(p);
  table.add_row({"static(best)", rs::util::TextTable::num(static_best.cost, 2),
                 rs::util::TextTable::num(static_best.cost / optimal, 4), "-",
                 "-"});

  std::cout << "Offline optimum: " << optimal << "\n\n" << table;
  std::cout << "\nGuarantees: lcp <= 3 (Thm 2), level_flow <= 2, "
               "randomized E[cost] <= 2 (Thm 3).\n";
  return 0;
}
