// Figure 1 as an artifact: builds the layered graph of a small instance,
// prints its structure, and emits Graphviz DOT (optimal path highlighted)
// so the paper's figure can be regenerated with `dot -Tpng`.
//
//   ./example_graph_model [--T=4] [--m=3] [--out=schedule_graph.dot]
#include <fstream>
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const int T = static_cast<int>(args.get_int("T", 4));
  const int m = static_cast<int>(args.get_int("m", 3));
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 2)));

  const rs::core::Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConvexTable, T, m, 1.0);

  const rs::graph::LayeredGraph graph = rs::graph::build_schedule_graph(p);
  std::cout << "Figure-1 graph: layers=" << graph.num_layers()
            << " vertices=" << graph.num_vertices()
            << " edges=" << graph.num_edges() << "\n";

  const auto path = graph.shortest_path(0, 0);
  const rs::core::Schedule schedule = rs::graph::path_to_schedule(path);
  std::cout << "shortest path length = " << path.distance
            << " (= optimal cost " << rs::offline::DpSolver().solve_cost(p)
            << ")\nschedule: ";
  for (int x : schedule) std::cout << x << " ";
  std::cout << "\n";

  const std::string dot = rs::graph::schedule_graph_dot(p);
  const std::string out_path = args.get("out", "schedule_graph.dot");
  std::ofstream out(out_path);
  out << dot;
  std::cout << "\nDOT written to " << out_path
            << " (render: dot -Tpng " << out_path << " -o figure1.png)\n";
  std::cout << "\nFirst lines:\n";
  std::cout << dot.substr(0, dot.find('\n', dot.find("rank=same")) + 1);
  return 0;
}
