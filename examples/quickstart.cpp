// Quickstart: build a small instance, solve it offline three ways, and run
// the online LCP algorithm against it.
//
//   ./example_quickstart [--T=8] [--m=6] [--beta=2.0] [--seed=1]
#include <cstdio>
#include <iostream>

#include "rightsizer/rightsizer.hpp"

int main(int argc, char** argv) {
  const rs::util::CliArgs args(argc, argv);
  const int T = static_cast<int>(args.get_int("T", 8));
  const int m = static_cast<int>(args.get_int("m", 6));
  const double beta = args.get_double("beta", 2.0);
  rs::util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  // A small diurnal-ish instance: operating cost tracks a drifting target.
  const rs::core::Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kQuadratic, T, m, beta);
  p.validate();

  std::cout << "Instance: T=" << T << " m=" << m << " beta=" << beta << "\n\n";

  // Offline optimum, three independent algorithms (Section 2).
  const rs::offline::OfflineResult dp = rs::offline::DpSolver().solve(p);
  const rs::offline::OfflineResult graph = rs::offline::GraphSolver().solve(p);
  const rs::offline::OfflineResult fast =
      rs::offline::BinarySearchSolver().solve(p);

  // Online LCP (Section 3).
  rs::online::Lcp lcp;
  const rs::core::Schedule lcp_schedule = rs::online::run_online(lcp, p);
  const double lcp_cost = rs::core::total_cost(p, lcp_schedule);

  auto show = [&](const char* name, const rs::core::Schedule& x,
                  double cost) {
    std::cout << name << " cost=" << cost << "  schedule=[";
    for (std::size_t i = 0; i < x.size(); ++i) {
      std::cout << (i ? " " : "") << x[i];
    }
    std::cout << "]\n";
  };
  show("dp            ", dp.schedule, dp.cost);
  show("graph sssp    ", graph.schedule, graph.cost);
  show("binary search ", fast.schedule, fast.cost);
  show("online lcp    ", lcp_schedule, lcp_cost);

  std::cout << "\nLCP / OPT = " << lcp_cost / dp.cost
            << "  (Theorem 2 guarantees <= 3)\n";
  return 0;
}
