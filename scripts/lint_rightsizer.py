#!/usr/bin/env python3
"""Project-specific lint for the rightsizer codebase (DESIGN.md §13).

AST-free, stdlib-only checks for the bug classes this repo has actually
shipped or explicitly guards against:

  RS001 minmax-label-fold   A raw std::min/std::max fold over a subscripted
                            array in an extended-real (kInf-using) file.
                            std::min's `<` discards NaN (every comparison
                            with NaN is false), so such folds silently
                            launder a poisoned NaN label into a clean-looking
                            minimum — the PR-7 bug class.  Approved
                            branch-free kernels carry a file-level
                            `rs-lint: minmax-audited` marker and their own
                            poison accumulators.
  RS002 float-eq            `==`/`!=` against a floating-point literal.
                            Exact-value contracts (0.0 sentinels, bitwise
                            reconvergence) are legal but must be documented
                            with `rs-lint: float-eq-ok (<why>)`.
  RS003 catch-all           `catch (...)`: a catch-all that neither
                            classifies nor rethrows swallows AuditError and
                            sanitizer reports alike.  Every site must carry
                            `rs-lint: catch-all-ok (<why>)`.
  RS004 eval-row-override   A CostFunction subclass without an eval_row
                            override falls back to the per-point at() loop
                            — a silent O(m) virtual-call regression on every
                            dense row build.  Intentional fallbacks carry
                            `rs-lint: eval-row-ok`.

Suppressions are read from raw source text (comments included): a file
marker applies anywhere in the file; line annotations apply on the flagged
line or one of the two lines above it.  Matching itself runs on text with
comments and string/char literals stripped, so commented-out code and
message strings never trip a rule.

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("src/**/*.cpp", "src/**/*.hpp")

FILE_MARKER_MINMAX = "rs-lint: minmax-audited"
OK_MINMAX = "rs-lint: minmax-ok"
OK_FLOAT_EQ = "rs-lint: float-eq-ok"
OK_CATCH_ALL = "rs-lint: catch-all-ok"
OK_EVAL_ROW = "rs-lint: eval-row-ok"

# How many lines above a flagged line an annotation still applies.
ANNOTATION_REACH = 2


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> list[str]:
    """Source lines with comments and string/char literals blanked.

    Line count and line numbering are preserved (block comments blank in
    place).  A tiny lexer, not a parser: enough C++ lexing to keep rule
    regexes away from prose and message strings; raw strings are treated
    as plain strings (good enough — the repo has none).
    """
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        result: list[str] = []
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                result.append(quote + quote)  # keep tokens apart
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


def annotated(raw_lines: list[str], index: int, tag: str) -> bool:
    """True when `tag` appears on raw line `index` or just above it."""
    lo = max(0, index - ANNOTATION_REACH)
    return any(tag in raw_lines[j] for j in range(lo, index + 1))


# A std::min/std::max call whose visible argument text subscripts an array.
MINMAX_FOLD = re.compile(r"std::(?:min|max)\s*\([^;{]*\[")
# ==/!= adjacent to a floating literal (decimal or exponent form), either
# side.  `<=`/`>=` don't match: the character before `=` must be = or !.
FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+)"
FLOAT_EQ = re.compile(
    rf"(?:[=!]=\s*{FLOAT_LITERAL})|(?:{FLOAT_LITERAL}\s*[=!]=)"
)
CATCH_ALL = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
COST_SUBCLASS = re.compile(
    r"\bclass\s+(\w+)[^;{]*:\s*(?:public\s+)?(?:rs::core::)?CostFunction\b"
)


def check_minmax_folds(path: str, raw: list[str], code: list[str],
                       findings: list[Finding]) -> None:
    if not any("kInf" in line for line in code):
        return  # not an extended-real file; min/max folds cannot launder
    if any(FILE_MARKER_MINMAX in line for line in raw):
        return  # approved branch-free kernel (poison accumulators audited)
    for i, line in enumerate(code):
        # A fold call can split across lines; join a small window so the
        # opening `std::min(` sees its subscripted arguments.
        window = " ".join(code[i:i + 3])
        if ("std::min" in line or "std::max" in line) and MINMAX_FOLD.search(
                window):
            if annotated(raw, i, OK_MINMAX):
                continue
            findings.append(Finding(
                path, i + 1, "RS001",
                "raw std::min/std::max fold over a label array in an "
                "extended-real file: std::min drops NaN (PR-7 bug class). "
                "Use a poison accumulator + file marker "
                f"'{FILE_MARKER_MINMAX}', or annotate '{OK_MINMAX}'"))


def check_float_eq(path: str, raw: list[str], code: list[str],
                   findings: list[Finding]) -> None:
    for i, line in enumerate(code):
        if FLOAT_EQ.search(line):
            if annotated(raw, i, OK_FLOAT_EQ):
                continue
            findings.append(Finding(
                path, i + 1, "RS002",
                "floating-point ==/!= against a literal: document the "
                f"exact-value contract with '{OK_FLOAT_EQ} (<why>)'"))


def check_catch_all(path: str, raw: list[str], code: list[str],
                    findings: list[Finding]) -> None:
    for i, line in enumerate(code):
        if CATCH_ALL.search(line):
            if annotated(raw, i, OK_CATCH_ALL):
                continue
            findings.append(Finding(
                path, i + 1, "RS003",
                "catch (...) without a classification note: annotate "
                f"'{OK_CATCH_ALL} (<why>)' after confirming the handler "
                "classifies or rethrows"))


def check_eval_row(path: str, raw: list[str], code: list[str],
                   findings: list[Finding]) -> None:
    for i, line in enumerate(code):
        match = COST_SUBCLASS.search(line)
        if not match:
            continue
        if annotated(raw, i, OK_EVAL_ROW):
            continue
        # The class body runs to the first subsequent line that closes a
        # brace at column 0 (the repo's formatting contract).
        body_end = next(
            (j for j in range(i + 1, len(code))
             if code[j].startswith("};")), len(code))
        body = code[i:body_end]
        if not any("eval_row" in body_line for body_line in body):
            findings.append(Finding(
                path, i + 1, "RS004",
                f"CostFunction subclass {match.group(1)} does not override "
                "eval_row: dense row builds fall back to the per-point at() "
                f"loop. Override it, or annotate '{OK_EVAL_ROW}'"))


CHECKS = (check_minmax_folds, check_float_eq, check_catch_all,
          check_eval_row)


def lint_text(path: str, text: str) -> list[Finding]:
    raw = text.splitlines()
    code = strip_comments_and_strings(text)
    findings: list[Finding] = []
    for check in CHECKS:
        check(path, raw, code, findings)
    return findings


def lint_tree(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    files = sorted({f for glob in SOURCE_GLOBS for f in root.glob(glob)})
    if not files:
        raise FileNotFoundError(f"no sources matched under {root}")
    for path in files:
        rel = path.relative_to(root).as_posix()
        findings.extend(lint_text(rel, path.read_text(encoding="utf-8")))
    return findings


# ---------------------------------------------------------------------------
# Self-test: each rule must fire on its seeded bad snippet and stay quiet
# on the annotated/fixed twin.  The first snippet is the literal PR-7
# NaN-laundering pattern.
# ---------------------------------------------------------------------------

SEEDED_PR7_FOLD = """
#include "util/math_util.hpp"
using rs::util::kInf;
double chat_minimum(const double* cl, int m) {
  double best = kInf;
  for (int x = 0; x <= m; ++x) {
    best = std::min(best, cl[x]);
  }
  return best;
}
"""

FIXED_PR7_FOLD = """
// rs-lint: minmax-audited — poison accumulator below surfaces NaN labels
#include "util/math_util.hpp"
using rs::util::kInf;
double chat_minimum(const double* cl, int m) {
  double best = kInf;
  double poison = 0.0;
  for (int x = 0; x <= m; ++x) {
    poison += cl[x];
    best = std::min(best, cl[x]);
  }
  return std::isnan(poison) ? poison : best;
}
"""

SELF_TESTS = (
    ("RS001 fires on the seeded PR-7 std::min NaN-laundering fold",
     SEEDED_PR7_FOLD, "RS001", True),
    ("RS001 quiet on the poison-accumulator kernel with the file marker",
     FIXED_PR7_FOLD, "RS001", False),
    ("RS001 quiet without kInf (not an extended-real file)",
     "int pick(const int* v) { return std::min(v[0], v[1]); }\n",
     "RS001", False),
    ("RS001 honors a line annotation",
     "using rs::util::kInf;\n"
     "// rs-lint: minmax-ok (ints, not labels)\n"
     "int f(const int* v) { return std::min(v[0], v[1]); }\n",
     "RS001", False),
    ("RS002 fires on float literal equality",
     "bool degenerate(double slope) { return slope == 0.0; }\n",
     "RS002", True),
    ("RS002 quiet when the contract is documented",
     "// rs-lint: float-eq-ok (0.0 is an exact sentinel)\n"
     "bool degenerate(double slope) { return slope == 0.0; }\n",
     "RS002", False),
    ("RS002 quiet on <= and >=",
     "bool f(double x) { return x <= 0.5 || x >= 1.5; }\n",
     "RS002", False),
    ("RS002 quiet inside comments and strings",
     "// a comment saying x == 1.0\n"
     'const char* s = "cost == 0.5";\n',
     "RS002", False),
    ("RS003 fires on a bare catch-all",
     "void f() { try { g(); } catch (...) { } }\n", "RS003", True),
    ("RS003 quiet when classified",
     "void f() {\n"
     "  try { g(); } catch (...) {  // rs-lint: catch-all-ok (rethrows)\n"
     "    throw;\n"
     "  }\n"
     "}\n",
     "RS003", False),
    ("RS004 fires on a CostFunction subclass without eval_row",
     "class Leaky final : public CostFunction {\n"
     " public:\n"
     "  double at(int x) const override { return x; }\n"
     "};\n",
     "RS004", True),
    ("RS004 quiet with the override",
     "class Tight final : public rs::core::CostFunction {\n"
     " public:\n"
     "  double at(int x) const override { return x; }\n"
     "  void eval_row(int m, std::span<double> out) const override;\n"
     "};\n",
     "RS004", False),
)


def run_self_test() -> int:
    failures = 0
    for name, snippet, rule, should_fire in SELF_TESTS:
        hits = [f for f in lint_text("<self-test>", snippet)
                if f.rule == rule]
        ok = bool(hits) == should_fire
        print(f"{'PASS' if ok else 'FAIL'}: {name}")
        if not ok:
            failures += 1
            for f in hits:
                print(f"  unexpected: {f}")
    print(f"self-test: {len(SELF_TESTS) - failures}/{len(SELF_TESTS)} passed")
    return 0 if failures == 0 else 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                        help="repository root (default: this script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    try:
        findings = lint_tree(args.root.resolve())
    except (OSError, FileNotFoundError) as error:
        print(f"lint_rightsizer: {error}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_rightsizer: {len(findings)} finding(s)")
        return 1
    print("lint_rightsizer: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
