#!/usr/bin/env bash
# Tier-1 verify: configure, build, run all test suites.  Exits non-zero on
# any failure.  This is the single entrypoint builders and CI should use.
#
# Usage: scripts/verify.sh [build-dir]   (default: <repo-root>/build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 4)"

# Project lint first: it needs no build and catches the cheap stuff
# (NaN-laundering min/max folds, raw float equality, unclassified
# catch-alls, missing eval_row overrides) before the compile starts.
# Self-test runs first so a broken rule fails loudly, not vacuously.
python3 "${repo_root}/scripts/lint_rightsizer.py" --self-test
python3 "${repo_root}/scripts/lint_rightsizer.py" --root "${repo_root}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j "${jobs}"
cd "${build_dir}"
ctest --output-on-failure -j "${jobs}"
