#!/usr/bin/env python3
"""Perf-regression gate: diff a fresh bench run against the committed baseline.

Compares BENCH_results.json-shaped files produced by scripts/bench_baseline.sh:

  * "benchmarks" entries match by name; a fresh ns_per_op more than
    --threshold times the baseline's is a regression;
  * "throughput" entries match by (name, threads, jobs) — smoke runs use
    smaller batches than a full baseline, so mismatched shapes are skipped
    rather than mis-compared; a fresh instances_per_sec below baseline /
    --threshold is a regression;
  * "scenarios" ratio-dashboard cells match by (scenario, algorithm), again
    only between runs of the same smoke kind (smoke shrinks the zoo).  The
    evaluation harness is deterministic in its fixed seed, so these are
    quality gates, not timing gates: a mean competitive ratio drifting more
    than 5% above the committed baseline fails regardless of --threshold;
  * "fleet" rows (fleet-serving throughput, bench_fleet) match by
    (name, threads, tenants, slots_per_tenant), same smoke kind only; a
    fresh tenant_steps_per_sec below baseline / --threshold is a
    regression;
  * the "rle_speedup" row gates the run-length-encoded replay: the schedule
    must stay bit-identical to the slot-by-slot replay, and the measured
    speedup must not fall below baseline / --threshold (nor below the 10x
    acceptance floor on full runs, which bench_scenarios itself enforces);
  * the "delta" row (bench_delta, E16) gates incremental re-solve the same
    way: repairs must stay bit-identical to from-scratch solves of the
    edited instance, and the repair-vs-replay speedup must not fall below
    baseline / --threshold (nor below its own 10x floor on full runs,
    enforced by bench_delta itself).

Exit status: 0 when nothing regressed, 1 on regressions (or when nothing at
all could be compared, which would make the gate vacuous).

The comparison is in absolute wall time, so it is only meaningful against a
baseline recorded on the same (quiet) machine — regenerate
BENCH_results.json via scripts/bench_baseline.sh before enabling the gate
on a different box.

Wired as an opt-in ctest entry (bench_compare_gate) when the build is
configured with -DRIGHTSIZER_BUILD_BENCH=ON -DRIGHTSIZER_BENCH_JSON=ON; the
smoke run that feeds it is produced by the bench_baseline_smoke test.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_results.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated results to check")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="maximum tolerated slowdown factor (default 1.5)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    compared = 0

    base_benchmarks = {b["name"]: b for b in baseline.get("benchmarks", [])}
    for entry in fresh.get("benchmarks", []):
        ref = base_benchmarks.get(entry["name"])
        if ref is None or not ref.get("ns_per_op"):
            continue
        ratio = entry["ns_per_op"] / ref["ns_per_op"]
        compared += 1
        print(f"  {entry['name']}: {entry['ns_per_op']:.0f} ns vs "
              f"{ref['ns_per_op']:.0f} ns baseline ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append(f"{entry['name']}: {ratio:.2f}x slower "
                            f"(threshold {args.threshold}x)")

    # Throughput batches shrink their instances (not just their job count)
    # in smoke mode, so rows are only comparable between runs of the same
    # kind; the ns_per_op entries above are size-keyed by name and compare
    # fine across modes.
    comparable_throughput = fresh.get("smoke") == baseline.get("smoke")
    base_throughput = {
        (t["name"], t.get("threads"), t.get("jobs")): t
        for t in baseline.get("throughput", [])
    } if comparable_throughput else {}
    for entry in fresh.get("throughput", []):
        key = (entry["name"], entry.get("threads"), entry.get("jobs"))
        ref = base_throughput.get(key)
        if ref is None or not ref.get("instances_per_sec"):
            continue
        if not entry.get("instances_per_sec"):
            failures.append(f"{entry['name']}/t{entry.get('threads')}: "
                            "no throughput measured")
            continue
        ratio = ref["instances_per_sec"] / entry["instances_per_sec"]
        compared += 1
        print(f"  {entry['name']}/t{entry.get('threads')}: "
              f"{entry['instances_per_sec']:.0f}/s vs "
              f"{ref['instances_per_sec']:.0f}/s baseline ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append(
                f"{entry['name']}/t{entry.get('threads')}: throughput "
                f"{ratio:.2f}x below baseline (threshold {args.threshold}x)")

    # Fleet-serving rows: tenant-steps/sec through the FleetController, the
    # multi-tenant analogue of the throughput section.  Smoke runs use a
    # smaller roster, so rows only compare between runs of the same kind.
    comparable_fleet = fresh.get("smoke") == baseline.get("smoke")
    base_fleet = {
        (f["name"], f.get("threads"), f.get("tenants"),
         f.get("slots_per_tenant")): f
        for f in baseline.get("fleet", [])
    } if comparable_fleet else {}
    for entry in fresh.get("fleet", []):
        key = (entry["name"], entry.get("threads"), entry.get("tenants"),
               entry.get("slots_per_tenant"))
        ref = base_fleet.get(key)
        if ref is None or not ref.get("tenant_steps_per_sec"):
            continue
        if not entry.get("tenant_steps_per_sec"):
            failures.append(f"{entry['name']}/t{entry.get('threads')}: "
                            "no fleet throughput measured")
            continue
        ratio = ref["tenant_steps_per_sec"] / entry["tenant_steps_per_sec"]
        compared += 1
        print(f"  {entry['name']}/t{entry.get('threads')}: "
              f"{entry['tenant_steps_per_sec']:.0f} tenant-steps/s vs "
              f"{ref['tenant_steps_per_sec']:.0f}/s baseline ({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append(
                f"{entry['name']}/t{entry.get('threads')}: fleet throughput "
                f"{ratio:.2f}x below baseline (threshold {args.threshold}x)")

    # Scenario-lab cells: deterministic harness output, gated on quality
    # drift rather than wall time.  Same-smoke-kind runs only (the smoke
    # zoo is a different instance distribution).
    RATIO_DRIFT = 1.05
    comparable_scenarios = fresh.get("smoke") == baseline.get("smoke")
    base_scenarios = {
        (c["scenario"], c["algorithm"]): c
        for c in baseline.get("scenarios", [])
    } if comparable_scenarios else {}
    for entry in fresh.get("scenarios", []):
        key = (entry["scenario"], entry["algorithm"])
        ref = base_scenarios.get(key)
        if ref is None or not ref.get("mean_ratio"):
            continue
        ratio = entry["mean_ratio"] / ref["mean_ratio"]
        compared += 1
        print(f"  {entry['scenario']}/{entry['algorithm']}: mean ratio "
              f"{entry['mean_ratio']:.4f} vs {ref['mean_ratio']:.4f} "
              f"baseline ({ratio:.3f}x)")
        if ratio > RATIO_DRIFT:
            failures.append(
                f"{entry['scenario']}/{entry['algorithm']}: mean competitive "
                f"ratio {ratio:.3f}x above baseline (drift cap {RATIO_DRIFT}x)")

    base_rle = baseline.get("rle_speedup") if comparable_scenarios else None
    fresh_rle = fresh.get("rle_speedup")
    if fresh_rle is not None:
        if not fresh_rle.get("bit_identical", False):
            failures.append("rle_speedup: RLE replay schedule no longer "
                            "bit-identical to slot-by-slot replay")
        if base_rle and base_rle.get("speedup") and fresh_rle.get("speedup"):
            ratio = base_rle["speedup"] / fresh_rle["speedup"]
            compared += 1
            print(f"  rle_speedup: {fresh_rle['speedup']:.1f}x vs "
                  f"{base_rle['speedup']:.1f}x baseline ({ratio:.2f}x)")
            if ratio > args.threshold:
                failures.append(
                    f"rle_speedup: {ratio:.2f}x below baseline "
                    f"(threshold {args.threshold}x)")

    # Incremental re-solve: bit-identity is unconditional; the speedup
    # compares between runs of the same smoke kind (smoke shrinks the
    # horizon, which changes the repair-vs-replay ratio).
    comparable_delta = fresh.get("smoke") == baseline.get("smoke")
    base_delta = baseline.get("delta") if comparable_delta else None
    fresh_delta = fresh.get("delta")
    if fresh_delta is not None:
        if not fresh_delta.get("bit_identical", False):
            failures.append("delta: repaired solve no longer bit-identical "
                            "to the from-scratch solve")
        if base_delta and base_delta.get("speedup") and \
                fresh_delta.get("speedup"):
            ratio = base_delta["speedup"] / fresh_delta["speedup"]
            compared += 1
            print(f"  delta_speedup: {fresh_delta['speedup']:.1f}x vs "
                  f"{base_delta['speedup']:.1f}x baseline ({ratio:.2f}x)")
            if ratio > args.threshold:
                failures.append(
                    f"delta: repair speedup {ratio:.2f}x below baseline "
                    f"(threshold {args.threshold}x)")

    if compared == 0:
        print("bench_compare: no comparable entries between baseline and "
              "fresh run — gate is vacuous", file=sys.stderr)
        return 1
    if failures:
        print(f"bench_compare: {len(failures)} regression(s) over "
              f"{compared} compared entries:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({compared} entries within "
          f"{args.threshold}x of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
