#!/usr/bin/env bash
# Perf baseline: runs the thm1 offline / thm2 LCP benchmarks plus the batch
# throughput, scenario, scaling, and fleet-serving benches and writes
# BENCH_results.json (benchmark name -> ns/op with T, m, threads, git sha;
# batch rows under "throughput", tenant-steps/sec rows under "fleet"), the
# repo's perf trajectory artifact.  scripts/bench_compare.py diffs a fresh
# run against the committed file and fails on > 1.5x regressions.
#
# Usage:
#   scripts/bench_baseline.sh                 # full run, writes ./BENCH_results.json
#   scripts/bench_baseline.sh --smoke         # tiny sizes, fast (ctest entry)
#   scripts/bench_baseline.sh --build-dir DIR # reuse an existing build tree
#   scripts/bench_baseline.sh --out FILE      # alternative output path
#   scripts/bench_baseline.sh --with-native   # also build with RIGHTSIZER_NATIVE=ON
#                                             # and record native-vs-portable rows
#
# The dense-vs-per-point benchmark pairs (see bench/bench_thm1_offline.cpp)
# are summarized under "speedups"; the acceptance numbers for the dense
# evaluation layer come from the *_PerPoint vs *_Table pairs.
set -euo pipefail

SMOKE=0
BUILD_DIR=""
OUT=""
WITH_NATIVE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    --out) OUT="$2"; shift ;;
    --with-native) WITH_NATIVE=1 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
[[ -z "$BUILD_DIR" ]] && BUILD_DIR="$ROOT/build-bench"
[[ -z "$OUT" ]] && OUT="$ROOT/BENCH_results.json"

if [[ ! -x "$BUILD_DIR/bench/bench_thm1_offline" || ! -x "$BUILD_DIR/bench/bench_thm2_lcp" \
      || ! -x "$BUILD_DIR/bench/bench_throughput" || ! -x "$BUILD_DIR/bench/bench_scaling" \
      || ! -x "$BUILD_DIR/bench/bench_scenarios" || ! -x "$BUILD_DIR/bench/bench_fleet" \
      || ! -x "$BUILD_DIR/bench/bench_delta" ]]; then
  echo "== configuring bench build in $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
    -DRIGHTSIZER_BUILD_BENCH=ON -DRIGHTSIZER_BUILD_TESTS=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target bench_thm1_offline bench_thm2_lcp bench_throughput bench_scaling \
    bench_scenarios bench_fleet bench_delta
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

GBENCH_ARGS=(--benchmark_format=json)
if [[ "$SMOKE" -eq 1 ]]; then
  # Dense-layer pairs plus BM_GraphSolver: the graph solver is back in the
  # gate since its per-solve state moved onto the workspace arenas (it used
  # to be allocation-bound and timed unstably across process contexts).
  GBENCH_ARGS+=(--benchmark_filter='BM_(Dp|Lcp|Graph).*/64/64$' --benchmark_min_time=0.05)
  export RIGHTSIZER_BENCH_SMOKE=1
else
  GBENCH_ARGS+=(--benchmark_filter='.')
  unset RIGHTSIZER_BENCH_SMOKE || true
fi

echo "== running bench_thm1_offline"
"$BUILD_DIR/bench/bench_thm1_offline" "${GBENCH_ARGS[@]}" > "$TMP/thm1.json"

echo "== running bench_thm2_lcp"
"$BUILD_DIR/bench/bench_thm2_lcp" --time-json "$TMP/thm2.json"

echo "== running bench_throughput"
# NB: util/cli only parses --key=value (space-separated values become
# positionals), hence the = form.
THROUGHPUT_ARGS=(--json="$TMP/throughput.json")
[[ "$SMOKE" -eq 1 ]] && THROUGHPUT_ARGS+=(--smoke)
"$BUILD_DIR/bench/bench_throughput" "${THROUGHPUT_ARGS[@]}"

echo "== running bench_scenarios (E14)"
SCENARIO_ARGS=(--json="$TMP/scenarios.json")
[[ "$SMOKE" -eq 1 ]] && SCENARIO_ARGS+=(--smoke)
"$BUILD_DIR/bench/bench_scenarios" "${SCENARIO_ARGS[@]}"

echo "== running bench_fleet (E15)"
FLEET_ARGS=(--json="$TMP/fleet.json")
[[ "$SMOKE" -eq 1 ]] && FLEET_ARGS+=(--smoke)
"$BUILD_DIR/bench/bench_fleet" "${FLEET_ARGS[@]}"

echo "== running bench_delta (E16)"
DELTA_ARGS=(--json="$TMP/delta.json")
[[ "$SMOKE" -eq 1 ]] && DELTA_ARGS+=(--smoke)
"$BUILD_DIR/bench/bench_delta" "${DELTA_ARGS[@]}"

echo "== running bench_scaling (E13)"
SCALING_ARGS=(--json "$TMP/scaling.json")
[[ "$SMOKE" -eq 1 ]] && SCALING_ARGS+=(--smoke)
"$BUILD_DIR/bench/bench_scaling" "${SCALING_ARGS[@]}"

if [[ "$WITH_NATIVE" -eq 1 ]]; then
  NATIVE_DIR="$ROOT/build-bench-native"
  if [[ ! -x "$NATIVE_DIR/bench/bench_scaling" ]]; then
    echo "== configuring native bench build in $NATIVE_DIR"
    cmake -B "$NATIVE_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DRIGHTSIZER_BUILD_BENCH=ON -DRIGHTSIZER_BUILD_TESTS=OFF \
      -DRIGHTSIZER_NATIVE=ON
    cmake --build "$NATIVE_DIR" -j "$(nproc)" --target bench_scaling
  fi
  echo "== running bench_scaling (native build)"
  NATIVE_ARGS=(--json "$TMP/scaling_native.json")
  [[ "$SMOKE" -eq 1 ]] && NATIVE_ARGS+=(--smoke)
  "$NATIVE_DIR/bench/bench_scaling" "${NATIVE_ARGS[@]}" >/dev/null
fi

GIT_SHA="$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"

SMOKE="$SMOKE" GIT_SHA="$GIT_SHA" OUT="$OUT" TMP="$TMP" python3 - <<'PY'
import datetime
import json
import os

tmp = os.environ["TMP"]
with open(os.path.join(tmp, "thm1.json")) as fh:
    thm1 = json.load(fh)
with open(os.path.join(tmp, "thm2.json")) as fh:
    thm2 = json.load(fh)
with open(os.path.join(tmp, "throughput.json")) as fh:
    throughput = json.load(fh)
with open(os.path.join(tmp, "scaling.json")) as fh:
    scaling = json.load(fh)["scaling"]
with open(os.path.join(tmp, "scenarios.json")) as fh:
    scenarios = json.load(fh)
with open(os.path.join(tmp, "fleet.json")) as fh:
    fleet = json.load(fh)
with open(os.path.join(tmp, "delta.json")) as fh:
    delta = json.load(fh)
native_scaling = None
native_path = os.path.join(tmp, "scaling_native.json")
if os.path.exists(native_path):
    with open(native_path) as fh:
        native_scaling = json.load(fh)["scaling"]

unit_to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

benchmarks = []
by_name = {}
for entry in thm1.get("benchmarks", []):
    if entry.get("run_type") == "aggregate":
        continue
    name = entry["name"]
    parts = name.split("/")
    T = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else None
    m = int(parts[2]) if len(parts) > 2 and parts[2].isdigit() else None
    ns = entry["real_time"] * unit_to_ns.get(entry.get("time_unit", "ns"), 1.0)
    # google-benchmark binaries run single-threaded here; the throughput
    # section carries the multi-thread records.
    row = {"name": name, "ns_per_op": ns, "T": T, "m": m, "threads": 1}
    benchmarks.append(row)
    by_name[name] = row

# Pair BM_<Kind>PerPoint_<Family> against BM_<Kind>Dense_/BM_<Kind>Table_.
speedups = {}
for row in benchmarks:
    name = row["name"]
    if "PerPoint_" not in name:
        continue
    prefix, rest = name.split("PerPoint_", 1)
    dense = by_name.get(f"{prefix}Dense_{rest}")
    table = by_name.get(f"{prefix}Table_{rest}")
    entry = {"per_point_ns": row["ns_per_op"], "T": row["T"], "m": row["m"]}
    if dense:
        entry["dense_ns"] = dense["ns_per_op"]
        entry["dense_speedup"] = row["ns_per_op"] / dense["ns_per_op"]
    if table:
        entry["table_ns"] = table["ns_per_op"]
        entry["table_speedup"] = row["ns_per_op"] / table["ns_per_op"]
    key = f"{prefix.removeprefix('BM_')}{rest}".replace("__", "_")
    speedups[key] = entry

result = {
    "git_sha": os.environ["GIT_SHA"],
    "generated_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"),
    "smoke": os.environ["SMOKE"] == "1",
    "hardware_concurrency": throughput.get("hardware_concurrency"),
    "benchmarks": benchmarks,
    "lcp_timings": thm2,
    "speedups": speedups,
    "throughput": throughput.get("throughput", []),
    "scaling": scaling,
    "scenarios": scenarios.get("scenario_cells", []),
    "rle_speedup": scenarios.get("rle_speedup"),
    "fleet": fleet.get("fleet", []),
    "delta": delta.get("delta"),
}
if native_scaling is not None:
    # Native-vs-portable rows: same (family, m) sweep, per-step ns from the
    # -march=native build next to the portable one.
    portable_by_key = {(r["family"], r["m"]): r for r in scaling}
    comparison = []
    for row in native_scaling:
        portable = portable_by_key.get((row["family"], row["m"]))
        if portable is None:
            continue
        comparison.append({
            "family": row["family"],
            "m": row["m"],
            "portable_pwl_ns_per_step": portable["pwl_ns_per_step"],
            "native_pwl_ns_per_step": row["pwl_ns_per_step"],
            "portable_dense_ns_per_step": portable["dense_ns_per_step"],
            "native_dense_ns_per_step": row["dense_ns_per_step"],
            "native_dense_speedup":
                portable["dense_ns_per_step"] / row["dense_ns_per_step"]
                if row["dense_ns_per_step"] > 0 else None,
        })
    result["native_vs_portable"] = comparison
with open(os.environ["OUT"], "w") as fh:
    json.dump(result, fh, indent=2)
    fh.write("\n")
print(f"wrote {os.environ['OUT']} ({len(benchmarks)} benchmarks, "
      f"{len(speedups)} speedup pairs, "
      f"{len(result['throughput'])} throughput rows, "
      f"{len(result['scenarios'])} scenario cells, "
      f"{len(result['fleet'])} fleet rows)")
PY
