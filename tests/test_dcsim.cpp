// Tests for the data-center substrate: power/delay models, the cost-model
// builders (convexity of generated instances), and the schedule simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "dcsim/cost_model.hpp"
#include "dcsim/datacenter.hpp"
#include "dcsim/delay_model.hpp"
#include "dcsim/power_model.hpp"
#include "offline/dp_solver.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"

namespace {

using namespace rs::dcsim;
using rs::core::Problem;
using rs::core::Schedule;

TEST(PowerModel, EnergyInterpolatesIdleToPeak) {
  ServerPowerModel power;
  power.idle_watts = 100.0;
  power.peak_watts = 200.0;
  power.slot_seconds = 10.0;
  EXPECT_DOUBLE_EQ(power.active_energy(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(power.active_energy(1.0), 2000.0);
  EXPECT_DOUBLE_EQ(power.active_energy(0.5), 1500.0);
  EXPECT_DOUBLE_EQ(power.active_energy(2.0), 2000.0);  // clamped
  EXPECT_NO_THROW(power.validate());
  power.peak_watts = 50.0;  // below idle
  EXPECT_THROW(power.validate(), std::invalid_argument);
}

TEST(DelayModel, MM1DivergesAtSaturation) {
  DelayParams params;
  params.service_rate = 2.0;
  EXPECT_DOUBLE_EQ(mean_response_time(params, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(mean_response_time(params, 0.5), 1.0);
  EXPECT_TRUE(std::isinf(mean_response_time(params, 1.0)));
  EXPECT_THROW(mean_response_time(params, -0.1), std::invalid_argument);
}

TEST(DelayModel, MG1PSReducesTowardMM1) {
  DelayParams mm1;
  mm1.model = DelayModel::kMM1;
  DelayParams mg1;
  mg1.model = DelayModel::kMG1PS;
  mg1.scv = 1.0;
  for (double z : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(mean_response_time(mg1, z), mean_response_time(mm1, z), 1e-9);
  }
  // Higher variability increases delay.
  mg1.scv = 4.0;
  EXPECT_GT(mean_response_time(mg1, 0.5), mean_response_time(mm1, 0.5));
}

TEST(CostModel, RestrictedInstanceIsValidConvex) {
  rs::util::Rng rng(3);
  DataCenterModel model;
  model.servers = 16;
  const rs::workload::Trace trace =
      rs::workload::diurnal(rng, {96, 48, 0.2, 12.0, 0.02});
  const Problem p = restricted_datacenter_problem(model, trace);
  EXPECT_EQ(p.horizon(), 96);
  EXPECT_EQ(p.max_servers(), 16);
  EXPECT_NO_THROW(p.validate());
  EXPECT_NEAR(p.beta(), model.beta(), 1e-12);
}

TEST(CostModel, RestrictedRejectsOverCapacityTrace) {
  DataCenterModel model;
  model.servers = 4;
  rs::workload::Trace trace{{5.0}};
  EXPECT_THROW(restricted_datacenter_problem(model, trace),
               std::invalid_argument);
}

TEST(CostModel, MoreServersNeverIncreaseDelay) {
  // Within the feasible range the delay component decreases with x while
  // the energy component grows: the combined slot cost must be convex with
  // an interior minimizer for mid workloads.
  DataCenterModel model;
  model.servers = 32;
  const rs::core::RestrictedModel restricted = restricted_model(model);
  const Problem p =
      rs::core::restricted_problem(restricted, std::vector<double>{8.0});
  const int minimizer = rs::core::smallest_minimizer_scan(p.f(1), 32);
  EXPECT_GT(minimizer, 8);   // more than the bare minimum (delay pressure)
  EXPECT_LT(minimizer, 32);  // but not everything (energy pressure)
}

TEST(CostModel, SoftSlaInstanceIsValidConvex) {
  rs::util::Rng rng(5);
  SoftSlaModel model;
  model.servers = 20;
  const rs::workload::Trace trace = rs::workload::mmpp2(
      rng, {200, 2.0, 12.0, 0.05, 0.2, 0.05});
  const Problem p = soft_sla_problem(model, trace);
  EXPECT_EQ(p.horizon(), 200);
  EXPECT_NO_THROW(p.validate());
  // f_t is finite everywhere (general model, soft constraint).
  for (int x = 0; x <= 20; ++x) {
    EXPECT_TRUE(std::isfinite(p.cost_at(7, x)));
  }
}

TEST(CostModel, ParameterValidation) {
  DataCenterModel model;
  model.servers = 0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
  SoftSlaModel soft;
  soft.beta = 0.0;
  EXPECT_THROW(soft_sla_problem(soft, rs::workload::Trace{{1.0}}),
               std::invalid_argument);
}

TEST(Simulator, HandComputedEnergy) {
  DataCenterModel model;
  model.servers = 2;
  model.power.idle_watts = 100.0;
  model.power.peak_watts = 200.0;
  model.power.sleep_watts = 10.0;
  model.power.transition_joules = 500.0;
  model.power.slot_seconds = 1.0;

  rs::workload::Trace trace{{1.0, 0.5}};
  const Schedule schedule = {2, 1};
  const SimulationReport report = simulate(model, trace, schedule);

  // Slot 1: 2 active at z = 0.5 -> 2·150 J; 0 sleeping.
  // Slot 2: 1 active at z = 0.5 -> 150 J; 1 sleeping -> 10 J.
  EXPECT_DOUBLE_EQ(report.active_energy_joules, 300.0 + 150.0);
  EXPECT_DOUBLE_EQ(report.sleep_energy_joules, 10.0);
  EXPECT_EQ(report.power_ups, 2);
  EXPECT_EQ(report.power_downs, 2);  // 2->1 and final 1->0
  EXPECT_DOUBLE_EQ(report.transition_energy_joules, 1000.0);
  EXPECT_DOUBLE_EQ(report.total_energy_joules, 460.0 + 1000.0);
  EXPECT_EQ(report.sla_violation_slots, 0);
  EXPECT_DOUBLE_EQ(report.mean_utilization, 0.5);
  EXPECT_DOUBLE_EQ(report.mean_active_servers, 1.5);
}

TEST(Simulator, DetectsSlaViolations) {
  DataCenterModel model;
  model.servers = 4;
  rs::workload::Trace trace{{3.0, 1.0}};
  const SimulationReport report = simulate(model, trace, {2, 1});
  EXPECT_EQ(report.sla_violation_slots, 1);
  EXPECT_DOUBLE_EQ(report.peak_utilization, 1.0);
}

TEST(Simulator, Validation) {
  DataCenterModel model;
  rs::workload::Trace trace{{1.0}};
  EXPECT_THROW(simulate(model, trace, {1, 2}), std::invalid_argument);
  EXPECT_THROW(simulate(model, trace, {model.servers + 1}),
               std::invalid_argument);
}

TEST(Simulator, RightSizingSavesEnergyOnDiurnalTrace) {
  // End-to-end E10 sanity: the offline optimal schedule of the restricted
  // instance saves substantial energy vs. keeping everything on.
  rs::util::Rng rng(21);
  DataCenterModel model;
  model.servers = 24;
  rs::workload::Trace trace =
      rs::workload::hotmail_like(rng, 2, 48, 0.6 * model.servers);
  const Problem p = restricted_datacenter_problem(model, trace);
  const rs::offline::OfflineResult optimal = rs::offline::DpSolver().solve(p);
  ASSERT_TRUE(optimal.feasible());
  const double savings = energy_savings_percent(model, trace, optimal.schedule);
  EXPECT_GT(savings, 10.0);
  EXPECT_LT(savings, 90.0);
}

}  // namespace
