// Tests for the baseline policies and the replay harness.
#include <gtest/gtest.h>

#include <memory>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/baselines.hpp"
#include "online/online_algorithm.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::online;
using rs::core::Problem;
using rs::core::Schedule;
using rs::workload::InstanceFamily;

TEST(FollowTheMinimizer, ChasesMinimizers) {
  const Problem p = rs::core::make_table_problem(
      3, 1.0, {{3.0, 1.0, 0.0, 2.0}, {0.0, 1.0, 2.0, 3.0}});
  FollowTheMinimizer alg;
  const Schedule x = run_online(alg, p);
  EXPECT_EQ(x, (Schedule{2, 0}));
}

TEST(StaticProvisioning, ClampsToM) {
  const Problem p = rs::core::make_table_problem(2, 1.0, {{1.0, 1.0, 1.0}});
  StaticProvisioning alg(5);
  EXPECT_EQ(run_online(alg, p), (Schedule{2}));
  EXPECT_THROW(StaticProvisioning(-1), std::invalid_argument);
}

TEST(AllOn, UsesFullCapacity) {
  const Problem p = rs::core::make_table_problem(
      3, 1.0, {{0.0, 0.0, 0.0, 0.0}, {0.0, 0.0, 0.0, 0.0}});
  AllOn alg;
  EXPECT_EQ(run_online(alg, p), (Schedule{3, 3}));
}

TEST(BestStaticLevel, MatchesExhaustiveScan) {
  rs::util::Rng rng(71);
  for (int trial = 0; trial < 15; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 9));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.3, 3.0));
    const StaticOptimum best = best_static_level(p);
    for (int level = 0; level <= m; ++level) {
      Schedule flat(static_cast<std::size_t>(T), level);
      EXPECT_LE(best.cost, rs::core::total_cost(p, flat) + 1e-9);
    }
    // And the reported level prices to the reported cost.
    Schedule flat(static_cast<std::size_t>(T), best.level);
    EXPECT_NEAR(best.cost, rs::core::total_cost(p, flat), 1e-9);
  }
}

TEST(BestStaticLevel, IsUpperBoundOnOptimal) {
  rs::util::Rng rng(72);
  const rs::offline::DpSolver dp;
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, 20, 10, 1.0);
    EXPECT_GE(best_static_level(p).cost, dp.solve_cost(p) - 1e-9);
  }
}

TEST(Replay, ValidatesWindowArgument) {
  const Problem p = rs::core::make_table_problem(1, 1.0, {{0.0, 1.0}});
  FollowTheMinimizer alg;
  EXPECT_THROW(run_online(alg, p, -1), std::invalid_argument);
}

TEST(Replay, RejectsOutOfRangeDecisions) {
  class Rogue final : public OnlineAlgorithm {
   public:
    std::string name() const override { return "rogue"; }
    void reset(const OnlineContext&) override {}
    int decide(const rs::core::CostPtr&,
               std::span<const rs::core::CostPtr>) override {
      return 99;
    }
  };
  const Problem p = rs::core::make_table_problem(1, 1.0, {{0.0, 1.0}});
  Rogue rogue;
  EXPECT_THROW(run_online(rogue, p), std::logic_error);
}

TEST(Replay, PassesLookaheadWindow) {
  // An algorithm that records the lookahead sizes it was given.
  class Recorder final : public OnlineAlgorithm {
   public:
    std::vector<std::size_t> sizes;
    std::string name() const override { return "recorder"; }
    void reset(const OnlineContext&) override { sizes.clear(); }
    int decide(const rs::core::CostPtr&,
               std::span<const rs::core::CostPtr> lookahead) override {
      sizes.push_back(lookahead.size());
      return 0;
    }
  };
  const Problem p = rs::core::make_table_problem(
      1, 1.0, {{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}});
  Recorder recorder;
  run_online(recorder, p, 2);
  EXPECT_EQ(recorder.sizes, (std::vector<std::size_t>{2, 2, 1, 0}));
}

}  // namespace
