// Seeded fault injection and per-job fault isolation.
//
// The isolation acceptance criterion (DESIGN.md §10): a batch with injected
// faults completes with exactly the predicted jobs failed — correct typed
// status, everything else bit-identical to the clean batch.  Because every
// fault trigger is a pure function of (seed, site, index), the tests
// *predict* the casualty set up front and assert it exactly.
//
// The suite derives its seeds from RIGHTSIZER_FAULT_BASE_SEED when set (CI
// rotates it per run, widening coverage over time) and falls back to a
// fixed smoke seed, so a red CI run reproduces locally by exporting the
// printed seed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/cost_function.hpp"
#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "engine/solver_engine.hpp"
#include "offline/work_function.hpp"
#include "scenario/fault_plan.hpp"
#include "util/fault_injection.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::Problem;
using rs::engine::BatchResult;
using rs::engine::SolveJob;
using rs::engine::SolveOutcome;
using rs::engine::SolveStatus;
using rs::engine::SolverEngine;
using rs::engine::SolverKind;
using rs::scenario::FaultPlan;
using rs::scenario::PoisonKind;
using rs::util::FaultInjector;
using rs::util::FaultSite;
using rs::util::ScopedFaultInjection;

// Base seed for the randomized sweeps: CI rotates it via the environment,
// local runs use the fixed smoke seed.  Strict parsing — a malformed CI
// value aborts the suite instead of silently re-sweeping the smoke seed.
std::uint64_t base_seed() {
  return rs::util::env_fault_base_seed(0xC0FFEEull);
}

// Integer-valued hinge instance: admits compact convex-PWL forms AND its
// dense and PWL solves agree bitwise (integer arithmetic is exact on both
// backends), so degraded-to-dense outcomes can be compared bit-for-bit
// against PWL-backed ones.
Problem integer_hinge_problem(int m, double beta, int horizon,
                              std::uint64_t seed) {
  rs::util::Rng rng(seed);
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(horizon));
  for (int t = 0; t < horizon; ++t) {
    const double center = static_cast<double>(rng.uniform_int(0, m));
    const double slope = static_cast<double>(rng.uniform_int(1, 3));
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(slope, center, 0.0));
  }
  return Problem(m, beta, std::move(fs));
}

Problem table_problem(int m, double beta, int horizon, std::uint64_t seed) {
  rs::util::Rng rng(seed);
  return rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConvexTable, horizon, m, beta);
}

void expect_outcome_bitwise(const SolveOutcome& got, const SolveOutcome& want,
                            std::size_t job) {
  EXPECT_EQ(got.status, want.status) << "job " << job;
  EXPECT_EQ(got.cost, want.cost) << "job " << job;  // bitwise (EQ, not NEAR)
  EXPECT_EQ(got.schedule, want.schedule) << "job " << job;
  EXPECT_EQ(got.error, want.error) << "job " << job;
}

// ---------------------------------------------------------------------------
// env_fault_base_seed — strict full-string parsing of the CI rotation knob
// ---------------------------------------------------------------------------

// RAII guard: sets RIGHTSIZER_FAULT_BASE_SEED for one test and restores the
// prior value afterwards, so the sweeps below keep seeing the CI seed.
class ScopedSeedEnv {
 public:
  explicit ScopedSeedEnv(const char* value) {
    if (const char* prev = std::getenv(kVar)) {
      saved_ = prev;
      had_ = true;
    }
    if (value == nullptr) {
      ::unsetenv(kVar);
    } else {
      ::setenv(kVar, value, 1);
    }
  }
  ~ScopedSeedEnv() {
    if (had_) {
      ::setenv(kVar, saved_.c_str(), 1);
    } else {
      ::unsetenv(kVar);
    }
  }
  ScopedSeedEnv(const ScopedSeedEnv&) = delete;
  ScopedSeedEnv& operator=(const ScopedSeedEnv&) = delete;

 private:
  static constexpr const char* kVar = "RIGHTSIZER_FAULT_BASE_SEED";
  std::string saved_;
  bool had_ = false;
};

TEST(EnvFaultBaseSeed, UnsetUsesFallback) {
  const ScopedSeedEnv env(nullptr);
  EXPECT_EQ(rs::util::env_fault_base_seed(0xC0FFEEull), 0xC0FFEEull);
}

TEST(EnvFaultBaseSeed, ParsesDecimalUint64) {
  const ScopedSeedEnv env("12345");
  EXPECT_EQ(rs::util::env_fault_base_seed(7), 12345ull);
}

TEST(EnvFaultBaseSeed, ParsesMaxUint64) {
  const ScopedSeedEnv env("18446744073709551615");
  EXPECT_EQ(rs::util::env_fault_base_seed(7), 0xFFFFFFFFFFFFFFFFull);
}

TEST(EnvFaultBaseSeed, RejectsGarbage) {
  for (const char* bad : {"12abc", "abc", "", " 5", "5 ", "-3", "+4", "0x10",
                          "18446744073709551616" /* 2^64: overflow */}) {
    const ScopedSeedEnv env(bad);
    EXPECT_THROW(rs::util::env_fault_base_seed(7), std::runtime_error)
        << "value \"" << bad << "\" should be rejected";
  }
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, DeterministicPureFunction) {
  const FaultInjector a(base_seed(), 4);
  const FaultInjector b(base_seed(), 4);
  for (std::uint64_t i = 0; i < 256; ++i) {
    for (FaultSite site : {FaultSite::kPwlBackend, FaultSite::kDenseBackend,
                           FaultSite::kSlotCost, FaultSite::kCheckpoint}) {
      EXPECT_EQ(a.fires(site, i), b.fires(site, i));
    }
  }
}

TEST(FaultInjector, PeriodOneAlwaysFiresAndZeroClamps) {
  const FaultInjector always(123, 1);
  const FaultInjector clamped(123, 0);
  EXPECT_EQ(clamped.period(), 1u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(always.fires(FaultSite::kPwlBackend, i));
    EXPECT_TRUE(clamped.fires(FaultSite::kSlotCost, i));
  }
}

TEST(FaultInjector, SitesAndSeedsDecorrelated) {
  // Different sites (and different seeds) must not fire in lockstep; with
  // period 2 over 512 indices, identical streams would mean a broken hash.
  const FaultInjector inj(base_seed(), 2);
  const FaultInjector other(base_seed() + 1, 2);
  int site_diff = 0;
  int seed_diff = 0;
  int fired = 0;
  for (std::uint64_t i = 0; i < 512; ++i) {
    const bool p = inj.fires(FaultSite::kPwlBackend, i);
    const bool d = inj.fires(FaultSite::kDenseBackend, i);
    site_diff += (p != d) ? 1 : 0;
    seed_diff += (p != other.fires(FaultSite::kPwlBackend, i)) ? 1 : 0;
    fired += p ? 1 : 0;
  }
  EXPECT_GT(site_diff, 0);
  EXPECT_GT(seed_diff, 0);
  // ~1/2 firing rate; [1/8, 7/8] over 512 draws is a >10-sigma envelope.
  EXPECT_GT(fired, 64);
  EXPECT_LT(fired, 448);
}

TEST(FaultInjector, ScopedInstallationAndNonNesting) {
  EXPECT_EQ(rs::util::active_fault_injector(), nullptr);
  EXPECT_FALSE(rs::util::fault_fires(FaultSite::kPwlBackend, 0));
  {
    const ScopedFaultInjection guard{FaultInjector(7, 1)};
    ASSERT_NE(rs::util::active_fault_injector(), nullptr);
    EXPECT_EQ(rs::util::active_fault_injector()->seed(), 7u);
    EXPECT_TRUE(rs::util::fault_fires(FaultSite::kPwlBackend, 0));
    EXPECT_THROW(ScopedFaultInjection{FaultInjector(8, 1)}, std::logic_error);
    // The failed nested install must not have torn down the active guard.
    ASSERT_NE(rs::util::active_fault_injector(), nullptr);
    EXPECT_EQ(rs::util::active_fault_injector()->seed(), 7u);
  }
  EXPECT_EQ(rs::util::active_fault_injector(), nullptr);
  EXPECT_FALSE(rs::util::fault_fires(FaultSite::kPwlBackend, 0));
}

TEST(FaultInjector, CorruptionHelpers) {
  const std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0x81};
  const std::vector<std::uint8_t> flipped0 = rs::util::corrupt_bit(bytes, 0);
  EXPECT_EQ(flipped0[0], 0x01);
  EXPECT_EQ(flipped0[1], 0xFF);
  const std::vector<std::uint8_t> flipped15 = rs::util::corrupt_bit(bytes, 15);
  EXPECT_EQ(flipped15[1], 0x7F);
  // Index reduced modulo the bit count: 24 wraps to bit 0.
  EXPECT_EQ(rs::util::corrupt_bit(bytes, 24), flipped0);
  EXPECT_TRUE(rs::util::corrupt_bit({}, 5).empty());

  EXPECT_EQ(rs::util::truncate_bytes(bytes, 2),
            (std::vector<std::uint8_t>{0x00, 0xFF}));
  EXPECT_EQ(rs::util::truncate_bytes(bytes, 0).size(), 0u);
  EXPECT_EQ(rs::util::truncate_bytes(bytes, 99), bytes);
}

TEST(FaultInjector, SeededCheckpointCorruptionIsAlwaysRejected) {
  // The kCheckpoint site drives *which* snapshots get corrupted; every
  // corrupted copy must be rejected, every clean copy must restore.
  rs::offline::WorkFunctionTracker tracker(
      8, 2.0, rs::offline::WorkFunctionTracker::Backend::kDense);
  const Problem p = table_problem(8, 2.0, 6, 3);
  for (int t = 1; t <= p.horizon(); ++t) tracker.advance(p.f(t));
  const std::vector<std::uint8_t> bytes = tracker.snapshot();

  const FaultInjector inj(base_seed(), 3);
  std::uint64_t bit_state = base_seed();
  for (std::uint64_t i = 0; i < 32; ++i) {
    const std::uint64_t bit = rs::util::splitmix64(bit_state);
    if (inj.fires(FaultSite::kCheckpoint, i)) {
      EXPECT_THROW(rs::offline::WorkFunctionTracker::restore(
                       rs::util::corrupt_bit(bytes, bit)),
                   rs::core::CheckpointError)
          << "i=" << i;
    } else {
      EXPECT_EQ(rs::offline::WorkFunctionTracker::restore(bytes).tau(),
                tracker.tau());
    }
  }
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, PoisonedSlotsPredictApplyFaultPlan) {
  const Problem p = table_problem(6, 1.5, 48, 4);
  FaultPlan plan;
  plan.seed = base_seed();
  plan.period = 4;
  plan.poison = PoisonKind::kNaN;
  const std::vector<int> slots =
      rs::scenario::poisoned_slots(plan, p.horizon());
  ASSERT_FALSE(slots.empty());
  ASSERT_LT(static_cast<int>(slots.size()), p.horizon());

  const Problem poisoned = rs::scenario::apply_fault_plan(p, plan);
  std::size_t next = 0;
  for (int t = 1; t <= p.horizon(); ++t) {
    const bool hit = next < slots.size() && slots[next] == t;
    if (hit) {
      ++next;
      EXPECT_TRUE(std::isnan(poisoned.f(t).at(0))) << "t=" << t;
    } else {
      // Untouched slots share the original CostPtr, not a copy.
      EXPECT_EQ(poisoned.f_ptr(t).get(), p.f_ptr(t).get()) << "t=" << t;
    }
  }
  EXPECT_EQ(next, slots.size());
}

TEST(FaultPlan, PoisonKindsMisbehaveAsDocumented) {
  const auto base = std::make_shared<rs::core::AffineAbsCost>(1.0, 2.0, 0.0);
  const rs::core::CostPtr nan_cost =
      rs::scenario::make_poisoned_cost(base, PoisonKind::kNaN);
  EXPECT_TRUE(std::isnan(nan_cost->at(1)));
  const rs::core::CostPtr inf_cost =
      rs::scenario::make_poisoned_cost(base, PoisonKind::kInfeasible);
  EXPECT_EQ(inf_cost->at(1), rs::util::kInf);
  const rs::core::CostPtr throw_cost =
      rs::scenario::make_poisoned_cost(base, PoisonKind::kThrow);
  EXPECT_THROW(throw_cost->at(1), std::runtime_error);
  // All poison kinds are opaque to the PWL conversion, forcing the dense
  // path where the violation is detected.
  EXPECT_FALSE(nan_cost->as_convex_pwl(8).has_value());
  EXPECT_THROW(rs::scenario::make_poisoned_cost(nullptr, PoisonKind::kNaN),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batch isolation
// ---------------------------------------------------------------------------

// The acceptance test: poison a predicted subset of jobs; the batch must
// complete with exactly those jobs failed and every other outcome
// bit-identical to the clean batch — at thread count 1 and under a pool.
TEST(BatchIsolation, PoisonedJobsFailAloneRestBitIdentical) {
  constexpr int kJobs = 6;
  FaultPlan plan;
  plan.seed = base_seed() + 17;
  plan.period = 2;
  plan.poison = PoisonKind::kNaN;

  std::vector<Problem> clean_problems;
  std::vector<Problem> faulty_problems;
  clean_problems.reserve(kJobs);
  faulty_problems.reserve(kJobs);
  // Poison odd jobs: a fixed, self-evident casualty set.
  std::vector<bool> poisoned(kJobs, false);
  for (int i = 0; i < kJobs; ++i) {
    clean_problems.push_back(table_problem(8, 2.0, 24, 100 + i));
    poisoned[static_cast<std::size_t>(i)] = (i % 2 == 1);
    if (poisoned[static_cast<std::size_t>(i)]) {
      ASSERT_FALSE(rs::scenario::poisoned_slots(plan, 24).empty());
      faulty_problems.push_back(
          rs::scenario::apply_fault_plan(clean_problems.back(), plan));
    } else {
      faulty_problems.push_back(clean_problems.back());
    }
  }

  const SolverKind kinds[] = {SolverKind::kDpCost, SolverKind::kDpSchedule,
                              SolverKind::kLcp};
  std::vector<SolveJob> clean_jobs;
  std::vector<SolveJob> faulty_jobs;
  for (int i = 0; i < kJobs; ++i) {
    SolveJob job;
    job.kind = kinds[i % 3];
    job.problem = &clean_problems[static_cast<std::size_t>(i)];
    clean_jobs.push_back(job);
    job.problem = &faulty_problems[static_cast<std::size_t>(i)];
    faulty_jobs.push_back(job);
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE(threads);
    SolverEngine::Options options;
    options.threads = threads;
    const SolverEngine engine(options);
    const BatchResult clean = engine.run(clean_jobs);
    const BatchResult faulty = engine.run(faulty_jobs);
    ASSERT_EQ(clean.outcomes.size(), static_cast<std::size_t>(kJobs));
    ASSERT_EQ(faulty.outcomes.size(), static_cast<std::size_t>(kJobs));
    std::size_t failed = 0;
    for (int i = 0; i < kJobs; ++i) {
      const std::size_t j = static_cast<std::size_t>(i);
      if (poisoned[j]) {
        ++failed;
        EXPECT_EQ(faulty.outcomes[j].status, SolveStatus::kInvalidInput)
            << "job " << i;
        EXPECT_FALSE(faulty.outcomes[j].error.empty()) << "job " << i;
        EXPECT_TRUE(faulty.outcomes[j].schedule.empty()) << "job " << i;
      } else {
        EXPECT_TRUE(faulty.outcomes[j].ok()) << "job " << i;
        expect_outcome_bitwise(faulty.outcomes[j], clean.outcomes[j], j);
      }
      EXPECT_TRUE(clean.outcomes[j].ok()) << "job " << i;
    }
    EXPECT_EQ(faulty.stats.failed_jobs, failed);
    EXPECT_EQ(clean.stats.failed_jobs, 0u);
    EXPECT_TRUE(clean.stats.degrade_events.empty());
  }
}

TEST(BatchIsolation, NaNPoisonFailsEverySolverKind) {
  // Regression guard for NaN laundering: the cost-only DP and the
  // low-memory sweep fold labels with std::min, which discards NaN — a
  // poisoned slot anywhere but the last used to come back as a clean
  // "+inf infeasible" kOk.  Every solver kind must classify a NaN-poisoned
  // instance as kInvalidInput no matter which slots the seed poisons.
  const Problem p = table_problem(8, 2.0, 24, 100);
  FaultPlan plan;
  plan.poison = PoisonKind::kNaN;
  plan.period = 8;  // sparse: typically poisons interior slots only
  for (std::uint64_t offset : {0ull, 1ull, 2ull, 3ull}) {
    plan.seed = base_seed() + 1000 + offset;
    if (rs::scenario::poisoned_slots(plan, p.horizon()).empty()) continue;
    const Problem poisoned = rs::scenario::apply_fault_plan(p, plan);
    for (SolverKind kind : {SolverKind::kDpCost, SolverKind::kDpSchedule,
                            SolverKind::kLcp, SolverKind::kLowMemory}) {
      SolveJob job;
      job.kind = kind;
      job.problem = &poisoned;
      const SolverEngine engine;
      const BatchResult result = engine.run(std::vector<SolveJob>{job});
      ASSERT_EQ(result.outcomes.size(), 1u);
      EXPECT_EQ(result.outcomes[0].status, SolveStatus::kInvalidInput)
          << "kind " << static_cast<int>(kind) << " seed offset " << offset;
      EXPECT_FALSE(result.outcomes[0].error.empty());
      EXPECT_TRUE(result.outcomes[0].schedule.empty());
      EXPECT_EQ(result.stats.failed_jobs, 1u);
    }
  }
}

TEST(BatchIsolation, ThrowingJobLeavesRestValid) {
  constexpr int kJobs = 5;
  std::vector<Problem> problems;
  problems.reserve(kJobs);
  for (int i = 0; i < kJobs - 1; ++i) {
    problems.push_back(table_problem(6, 1.5, 16, 200 + i));
  }
  // One job whose cost function throws on evaluation — a crashing
  // dependency, not bad numbers.
  std::vector<rs::core::CostPtr> fs(
      16, std::make_shared<rs::core::FunctionCost>(
              [](int) -> double {
                throw std::runtime_error("dependency crashed");
              },
              "crashing"));
  problems.push_back(Problem(6, 1.5, std::move(fs)));

  std::vector<SolveJob> jobs;
  for (const Problem& p : problems) {
    SolveJob job;
    job.kind = SolverKind::kDpSchedule;
    job.problem = &p;
    jobs.push_back(job);
  }
  const SolverEngine engine;
  const BatchResult result = engine.run(jobs);
  ASSERT_EQ(result.outcomes.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs - 1; ++i) {
    EXPECT_TRUE(result.outcomes[static_cast<std::size_t>(i)].ok())
        << "job " << i;
    EXPECT_FALSE(
        result.outcomes[static_cast<std::size_t>(i)].schedule.empty());
  }
  const SolveOutcome& bad = result.outcomes[kJobs - 1];
  EXPECT_EQ(bad.status, SolveStatus::kException);
  EXPECT_NE(bad.error.find("dependency crashed"), std::string::npos);
  EXPECT_EQ(result.stats.failed_jobs, 1u);
}

TEST(BatchIsolation, InfeasibleSlotIsNotAFault) {
  // +inf slot costs are *within* the extended-real contract: the solve
  // completes with status kOk and a +inf objective — the fault taxonomy
  // must not swallow legitimate infeasibility.
  Problem p = table_problem(5, 1.0, 8, 300);
  FaultPlan plan;
  plan.seed = base_seed() + 5;
  plan.period = 3;
  plan.poison = PoisonKind::kInfeasible;
  ASSERT_FALSE(rs::scenario::poisoned_slots(plan, p.horizon()).empty());
  const Problem infeasible = rs::scenario::apply_fault_plan(p, plan);

  SolveJob job;
  job.kind = SolverKind::kDpCost;
  job.problem = &infeasible;
  const SolverEngine engine;
  const BatchResult result = engine.run(std::vector<SolveJob>{job});
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0].ok());
  EXPECT_EQ(result.outcomes[0].cost, rs::util::kInf);
  EXPECT_EQ(result.stats.failed_jobs, 0u);
}

// ---------------------------------------------------------------------------
// Injected backend faults + dense fallback
// ---------------------------------------------------------------------------

// Every job's fate under an installed injector is predictable from the
// injector alone: PWL-routed jobs whose kPwlBackend site fires are retried
// dense-streaming (a DegradeEvent; kBackendFailure only if the dense site
// fires too), everything else solves clean.
TEST(InjectedFaults, PwlFailuresDegradeToDenseWithEvents) {
  constexpr int kJobs = 10;
  const Problem p = integer_hinge_problem(12, 3.0, 32, 400);
  ASSERT_TRUE(rs::core::admits_compact_pwl(p));

  std::vector<SolveJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    SolveJob job;
    job.kind = (i % 2 == 0) ? SolverKind::kDpSchedule : SolverKind::kLcp;
    job.problem = &p;
    jobs.push_back(job);
  }
  SolverEngine::Options options;
  options.threads = 1;
  const SolverEngine engine(options);
  const BatchResult clean = engine.run(jobs);
  ASSERT_EQ(clean.stats.pwl_backed, static_cast<std::size_t>(kJobs));

  const FaultInjector inj(base_seed() + 31, 2);
  BatchResult faulty = [&] {
    const ScopedFaultInjection guard{inj};
    return engine.run(jobs);
  }();

  std::size_t expected_failures = 0;
  std::vector<std::size_t> expected_degrades;
  for (int i = 0; i < kJobs; ++i) {
    const std::size_t j = static_cast<std::size_t>(i);
    const bool pwl_fires = inj.fires(FaultSite::kPwlBackend, j);
    const bool dense_fires = inj.fires(FaultSite::kDenseBackend, j);
    if (!pwl_fires) {
      EXPECT_TRUE(faulty.outcomes[j].ok()) << "job " << i;
      expect_outcome_bitwise(faulty.outcomes[j], clean.outcomes[j], j);
    } else if (!dense_fires) {
      // Degraded but recovered: integer-valued instance, so the fallback's
      // objective is bitwise-equal to the PWL one (the schedule may be a
      // different optimum of equal cost — verify it attains it).
      expected_degrades.push_back(j);
      EXPECT_TRUE(faulty.outcomes[j].ok()) << "job " << i;
      EXPECT_EQ(faulty.outcomes[j].cost, clean.outcomes[j].cost)
          << "job " << i;
      ASSERT_FALSE(faulty.outcomes[j].schedule.empty()) << "job " << i;
      EXPECT_EQ(rs::core::total_cost(p, faulty.outcomes[j].schedule),
                faulty.outcomes[j].cost)
          << "job " << i;
    } else {
      ++expected_failures;
      EXPECT_EQ(faulty.outcomes[j].status, SolveStatus::kBackendFailure)
          << "job " << i;
      EXPECT_NE(faulty.outcomes[j].error.find("injected fault"),
                std::string::npos)
          << "job " << i;
    }
  }
  EXPECT_EQ(faulty.stats.failed_jobs, expected_failures);
  ASSERT_EQ(faulty.stats.degrade_events.size(), expected_degrades.size());
  for (std::size_t k = 0; k < expected_degrades.size(); ++k) {
    EXPECT_EQ(faulty.stats.degrade_events[k].job, expected_degrades[k]);
    EXPECT_NE(faulty.stats.degrade_events[k].reason.find("PWL backend"),
              std::string::npos);
  }
  // The suite must cover all three fates; if this seed produces a
  // degenerate split the decorrelation test above has already failed.
  EXPECT_FALSE(expected_degrades.empty());
}

TEST(InjectedFaults, DenseRoutedJobsFailWithoutRetry) {
  // FunctionCost is opaque to the PWL conversion, so this instance is
  // guaranteed to route through the dense backend.
  std::vector<rs::core::CostPtr> fs;
  for (int t = 0; t < 16; ++t) {
    fs.push_back(std::make_shared<rs::core::FunctionCost>(
        [t](int x) {
          const double d = static_cast<double>(x) - static_cast<double>(t % 9);
          return d * d;
        },
        "quadratic"));
  }
  const Problem p(8, 2.0, std::move(fs));
  ASSERT_FALSE(rs::core::admits_compact_pwl(p));
  std::vector<SolveJob> jobs(4);
  for (SolveJob& job : jobs) {
    job.kind = SolverKind::kDpCost;
    job.problem = &p;
  }
  const FaultInjector inj(base_seed() + 47, 2);
  SolverEngine::Options options;
  options.threads = 1;
  const SolverEngine engine(options);
  const BatchResult result = [&] {
    const ScopedFaultInjection guard{inj};
    return engine.run(jobs);
  }();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (inj.fires(FaultSite::kDenseBackend, j)) {
      EXPECT_EQ(result.outcomes[j].status, SolveStatus::kBackendFailure);
      EXPECT_NE(result.outcomes[j].error.find("dense backend"),
                std::string::npos);
    } else {
      EXPECT_TRUE(result.outcomes[j].ok());
    }
  }
  // Dense jobs have no fallback: no degrade events, only failures.
  EXPECT_TRUE(result.stats.degrade_events.empty());
}

TEST(InjectedFaults, StatusStringsAreStable) {
  EXPECT_STREQ(rs::engine::to_string(SolveStatus::kOk), "ok");
  EXPECT_STREQ(rs::engine::to_string(SolveStatus::kInvalidInput),
               "invalid-input");
  EXPECT_STREQ(rs::engine::to_string(SolveStatus::kBackendFailure),
               "backend-failure");
  EXPECT_STREQ(rs::engine::to_string(SolveStatus::kException), "exception");
}

}  // namespace
