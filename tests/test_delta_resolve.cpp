// Incremental re-solve property suite (DESIGN.md §12): delta sessions are
// bit-identical to from-scratch solves on every backend and generator
// family, probes restore state bitwise, the rewind buffer interacts
// correctly with eviction and checkpoints, fleet what-if probes leave the
// live session untouched, and the serving-layer plumbing (priorities,
// shared form cache, engine kDeltaResolve, warm receding horizons) holds
// its contracts.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint_store.hpp"
#include "core/cost_function.hpp"
#include "engine/solver_engine.hpp"
#include "fleet/fleet_controller.hpp"
#include "fleet/form_cache.hpp"
#include "fleet/tenant.hpp"
#include "offline/delta_session.hpp"
#include "offline/work_function.hpp"
#include "online/receding_horizon.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::CostPtr;
using rs::core::Problem;
using rs::fleet::SlotFormCache;
using rs::offline::DpDeltaSession;
using rs::offline::OfflineResult;
using rs::offline::WorkFunctionTracker;
using rs::workload::InstanceFamily;
using Backend = DpDeltaSession::Backend;

const std::vector<Backend>& all_backends() {
  static const std::vector<Backend> backends = {Backend::kDense, Backend::kPwl,
                                                Backend::kAuto};
  return backends;
}

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kDense:
      return "dense";
    case Backend::kPwl:
      return "pwl";
    case Backend::kAuto:
      return "auto";
  }
  return "?";
}

std::vector<CostPtr> slot_costs(const Problem& p) {
  std::vector<CostPtr> costs;
  costs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) costs.push_back(p.f_ptr(t));
  return costs;
}

// Bitwise comparison of a live session against a from-scratch solve of the
// same (edited) instance on the same backend.
void expect_matches_fresh(DpDeltaSession& session,
                          const std::vector<CostPtr>& costs,
                          const std::string& label) {
  Problem edited(session.max_servers(), session.beta(), costs);
  DpDeltaSession fresh(edited, session.backend());
  EXPECT_EQ(session.cost(), fresh.cost()) << label;
  EXPECT_EQ(session.bounds().lower, fresh.bounds().lower) << label;
  EXPECT_EQ(session.bounds().upper, fresh.bounds().upper) << label;
  EXPECT_EQ(session.result().schedule, fresh.result().schedule) << label;
}

// ---------------------------------------------------------------------------
// DpDeltaSession: bit-identity across families × backends
// ---------------------------------------------------------------------------

TEST(DeltaSession, SingleSlotEditsMatchFromScratchEverywhere) {
  const int T = 36;
  const int m = 16;
  const double beta = 1.7;
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    for (Backend backend : all_backends()) {
      const std::string label =
          rs::workload::family_name(family) + "/" + backend_name(backend);
      rs::util::Rng rng(0xD31AD31Aull ^ static_cast<std::uint64_t>(family) * 31u ^
                        static_cast<std::uint64_t>(backend));
      const Problem base = rs::workload::random_instance(rng, family, T, m, beta);
      const Problem donor =
          rs::workload::random_instance(rng, family, T, m, beta);
      std::vector<CostPtr> costs = slot_costs(base);
      DpDeltaSession session(base, backend);
      for (int edit = 0; edit < 6; ++edit) {
        const int slot = rng.uniform_int(1, T);
        CostPtr replacement = donor.f_ptr(rng.uniform_int(1, T));
        costs[static_cast<std::size_t>(slot - 1)] = replacement;
        DpDeltaSession::DeltaStats stats;
        session.resolve_delta(slot, replacement, &stats);
        EXPECT_GE(stats.slots_repaired, 0) << label;
        expect_matches_fresh(session, costs,
                             label + " edit " + std::to_string(edit));
      }
    }
  }
}

TEST(DeltaSession, MultiSlotEditBatchesMatchFromScratch) {
  const int T = 48;
  const int m = 12;
  const double beta = 2.0;
  rs::util::Rng rng(0xBA7C4ull);
  const Problem base =
      rs::workload::random_instance(rng, InstanceFamily::kQuadratic, T, m, beta);
  const Problem donor =
      rs::workload::random_instance(rng, InstanceFamily::kAffineAbs, T, m, beta);
  std::vector<CostPtr> costs = slot_costs(base);
  DpDeltaSession session(base, Backend::kAuto);
  for (int round = 0; round < 4; ++round) {
    // A batch of edits, compared only once at the end: the schedule is
    // materialized lazily so intermediate edits stay O(repair).
    for (int k = 0; k < 3; ++k) {
      const int slot = rng.uniform_int(1, T);
      CostPtr replacement = donor.f_ptr(rng.uniform_int(1, T));
      costs[static_cast<std::size_t>(slot - 1)] = replacement;
      session.resolve_delta(slot, replacement);
    }
    expect_matches_fresh(session, costs, "round " + std::to_string(round));
  }
}

TEST(DeltaSession, ProbeAnswersEditAndRestoresSessionBitwise) {
  const int T = 40;
  const int m = 10;
  const double beta = 1.5;
  rs::util::Rng rng(0x9E37ull);
  const Problem base = rs::workload::random_instance(
      rng, InstanceFamily::kFlatRegions, T, m, beta);
  const Problem donor =
      rs::workload::random_instance(rng, InstanceFamily::kQuadratic, T, m, beta);
  const std::vector<CostPtr> costs = slot_costs(base);

  DpDeltaSession session(base, Backend::kAuto);
  const double cost_before = session.cost();
  const std::vector<int> lower_before = session.bounds().lower;
  const std::vector<int> upper_before = session.bounds().upper;
  const rs::core::Schedule schedule_before = session.result().schedule;

  for (int probe = 0; probe < 8; ++probe) {
    const int slot = rng.uniform_int(1, T);
    CostPtr replacement = donor.f_ptr(rng.uniform_int(1, T));

    std::vector<CostPtr> edited = costs;
    edited[static_cast<std::size_t>(slot - 1)] = replacement;
    DpDeltaSession fresh(Problem(m, beta, edited), Backend::kAuto);

    DpDeltaSession::DeltaStats stats;
    OfflineResult answer = session.probe_delta(slot, replacement, &stats);
    EXPECT_EQ(answer.cost, fresh.cost()) << "probe " << probe;
    EXPECT_EQ(answer.schedule, fresh.result().schedule) << "probe " << probe;

    // The live session is restored bitwise after every probe.
    EXPECT_EQ(session.cost(), cost_before) << "probe " << probe;
    EXPECT_EQ(session.bounds().lower, lower_before) << "probe " << probe;
    EXPECT_EQ(session.bounds().upper, upper_before) << "probe " << probe;
    EXPECT_EQ(session.result().schedule, schedule_before) << "probe " << probe;
  }
}

TEST(DeltaSession, BackendTrajectoryFlipFallsBackToFullReplay) {
  const int T = 20;
  const int m = 64;  // compact-PWL budget is m/8 = 8 breakpoints
  const double beta = 2.0;
  rs::util::Rng rng(0xF11Full);
  const Problem base =
      rs::workload::random_instance(rng, InstanceFamily::kAffineAbs, T, m, beta);
  std::vector<CostPtr> costs = slot_costs(base);

  DpDeltaSession session(base, Backend::kAuto);

  // A dense random convex table almost surely exceeds the compact budget,
  // flipping the kAuto trajectory from PWL to dense at the edited slot.
  CostPtr heavy = rs::workload::random_instance(
                      rng, InstanceFamily::kConvexTable, 1, m, beta)
                      .f_ptr(1);
  const int slot = T / 2;
  costs[static_cast<std::size_t>(slot - 1)] = heavy;
  DpDeltaSession::DeltaStats stats;
  session.resolve_delta(slot, heavy, &stats);
  EXPECT_TRUE(stats.full_replay);
  expect_matches_fresh(session, costs, "pwl->dense flip");

  // ... and editing the offending slot back restores the PWL trajectory,
  // again via full replay, again bit-identical.
  CostPtr light = base.f_ptr(slot);
  costs[static_cast<std::size_t>(slot - 1)] = light;
  session.resolve_delta(slot, light, &stats);
  EXPECT_TRUE(stats.full_replay);
  expect_matches_fresh(session, costs, "dense->pwl flip");
}

TEST(DeltaSession, ValidatesEdits) {
  rs::util::Rng rng(0x77ull);
  const Problem base =
      rs::workload::random_instance(rng, InstanceFamily::kQuadratic, 8, 6, 1.5);
  DpDeltaSession session(base);
  EXPECT_THROW(session.resolve_delta(0, base.f_ptr(1)), std::invalid_argument);
  EXPECT_THROW(session.resolve_delta(9, base.f_ptr(1)), std::invalid_argument);
  EXPECT_THROW(session.resolve_delta(3, nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// WorkFunctionTracker: rewind eviction and checkpoint interaction
// ---------------------------------------------------------------------------

TEST(RewindBuffer, EvictionMovesTheRepairWindowForward) {
  rs::util::Rng rng(0xE71Cull);
  const int m = 8;
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kAffineAbs, 20, m, 2.0);

  WorkFunctionTracker tracker(m, 2.0);
  tracker.enable_rewind(8);
  for (int t = 1; t <= 20; ++t) tracker.advance(*p.f_ptr(t));

  // Capacity 8 with 20 advances: slots 1..12 were evicted.
  EXPECT_EQ(tracker.rewind_begin(), 13);
  EXPECT_FALSE(tracker.rewind_covers(12));
  EXPECT_TRUE(tracker.rewind_covers(13));
  EXPECT_TRUE(tracker.rewind_covers(20));
  EXPECT_FALSE(tracker.rewind_covers(21));
  EXPECT_THROW(tracker.repair_from(12, *p.f_ptr(12)), std::out_of_range);

  // Repairing a covered slot with its own recorded cost reconverges
  // immediately: the tracker is bitwise unchanged.
  const int xl = tracker.x_lower();
  const int xu = tracker.x_upper();
  const auto repair = tracker.repair_from(15, *p.f_ptr(15));
  EXPECT_TRUE(repair.early_exit);
  EXPECT_EQ(tracker.x_lower(), xl);
  EXPECT_EQ(tracker.x_upper(), xu);
}

TEST(RewindBuffer, CheckpointRestoreThenRepairMatchesUninterrupted) {
  rs::util::Rng rng(0xC4E0ull);
  const int m = 10;
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 24, m, 1.8);
  const CostPtr edit = rs::workload::random_instance(
                           rng, InstanceFamily::kQuadratic, 1, m, 1.8)
                           .f_ptr(1);

  // Uninterrupted run with a full-horizon rewind buffer.
  WorkFunctionTracker full(m, 1.8);
  full.enable_rewind(24);
  for (int t = 1; t <= 12; ++t) full.advance(*p.f_ptr(t));

  // Kill-and-resume at slot 12: rewind state is deliberately not part of
  // the checkpoint wire format, so the restored tracker re-enables it and
  // its window starts at the resume point.
  WorkFunctionTracker resumed = WorkFunctionTracker::restore(full.snapshot());
  EXPECT_FALSE(resumed.rewind_enabled());
  resumed.enable_rewind(24);
  EXPECT_EQ(resumed.rewind_begin(), 13);

  for (int t = 13; t <= 24; ++t) {
    full.advance(*p.f_ptr(t));
    resumed.advance(*p.f_ptr(t));
  }

  // A repair inside the common window produces identical results on both.
  const auto repair_full = full.repair_from(18, *edit);
  const auto repair_resumed = resumed.repair_from(18, *edit);
  EXPECT_EQ(repair_full.lower, repair_resumed.lower);
  EXPECT_EQ(repair_full.upper, repair_resumed.upper);
  EXPECT_EQ(repair_full.early_exit, repair_resumed.early_exit);
  EXPECT_EQ(full.x_lower(), resumed.x_lower());
  EXPECT_EQ(full.x_upper(), resumed.x_upper());
  for (int x = 0; x <= m; ++x) {
    EXPECT_EQ(full.chat_lower(x), resumed.chat_lower(x)) << "x=" << x;
  }
}

// ---------------------------------------------------------------------------
// Fleet: what-if probes, priorities, shared form cache
// ---------------------------------------------------------------------------

// Integer-valued slot costs (slope ∈ {1,2}, center = λ), shared with
// test_fleet.cpp: exact in double on both backends.
std::function<CostPtr(double)> integer_cost() {
  return [](double lambda) -> CostPtr {
    const double slope =
        1.0 + static_cast<double>(static_cast<long long>(lambda) % 2);
    return std::make_shared<rs::core::AffineAbsCost>(slope, lambda, 0.0);
  };
}

std::vector<double> integer_trace(int m, int horizon, std::uint64_t seed) {
  rs::util::Rng rng(seed);
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(horizon));
  for (int t = 0; t < horizon; ++t) {
    trace.push_back(static_cast<double>(rng.uniform_int(0, m)));
  }
  return trace;
}

rs::fleet::TenantConfig probe_config(std::string name, int m) {
  rs::fleet::TenantConfig config;
  config.name = std::move(name);
  config.m = m;
  config.beta = 2.0;
  config.cost_of = integer_cost();
  config.what_if_slots = 64;
  return config;
}

void feed(rs::fleet::TenantSession& session, rs::core::CheckpointStore& store,
          std::span<const double> trace) {
  for (double lambda : trace) ASSERT_TRUE(session.offer(lambda));
  while (session.due()) ASSERT_GT(session.step(store), 0);
}

TEST(FleetWhatIf, MatchesEditedReplayAndLeavesLiveSessionUntouched) {
  const int m = 8;
  std::vector<double> trace = integer_trace(m, 24, 0xAB5Eull);
  rs::core::CheckpointStore store;
  rs::fleet::TenantSession live(probe_config("live", m), 0);
  feed(live, store, trace);

  const std::vector<std::uint8_t> bytes_before = live.snapshot_bytes();
  const rs::core::Schedule schedule_before = live.schedule();

  rs::util::Rng rng(0x5EEDull);
  for (int probe = 0; probe < 6; ++probe) {
    const int slot = rng.uniform_int(1, 24);
    const double lambda = static_cast<double>(rng.uniform_int(0, m));
    const auto result = live.what_if(slot, lambda);
    ASSERT_TRUE(result.has_value()) << "slot " << slot;

    // Reference: a session that really decided the edited trace.
    std::vector<double> edited = trace;
    edited[static_cast<std::size_t>(slot - 1)] = lambda;
    rs::core::CheckpointStore scratch;
    rs::fleet::TenantSession reference(
        probe_config("ref" + std::to_string(probe), m), 1);
    feed(reference, scratch, edited);

    EXPECT_EQ(result->projected_state, reference.schedule().back());
    EXPECT_EQ(result->x_lower, reference.lower_bounds().back());
    EXPECT_EQ(result->x_upper, reference.upper_bounds().back());

    // The live session — including its checkpoint bytes — is untouched.
    EXPECT_EQ(live.snapshot_bytes(), bytes_before);
    EXPECT_EQ(live.schedule(), schedule_before);
  }

  // Probes never throw: bad inputs simply return nullopt.
  EXPECT_FALSE(live.what_if(0, 1.0).has_value());
  EXPECT_FALSE(live.what_if(25, 1.0).has_value());
  EXPECT_FALSE(live.what_if(3, -1.0).has_value());
  EXPECT_FALSE(live.what_if(3, std::nan("")).has_value());
  EXPECT_EQ(live.snapshot_bytes(), bytes_before);
}

TEST(FleetWhatIf, WindowSlidesWithEvictionAndDisabledConfigsDecline) {
  const int m = 6;
  rs::fleet::TenantConfig config = probe_config("slide", m);
  config.what_if_slots = 8;
  rs::core::CheckpointStore store;
  rs::fleet::TenantSession session(std::move(config), 0);
  feed(session, store, integer_trace(m, 30, 0x1D01ull));

  // Capacity 8 after 30 slots: only the trailing window answers.
  EXPECT_FALSE(session.what_if(22, 1.0).has_value());
  EXPECT_TRUE(session.what_if(23, 1.0).has_value());
  EXPECT_TRUE(session.what_if(30, 1.0).has_value());

  // what_if_slots == 0 declines probes outright.
  rs::fleet::TenantConfig off = probe_config("off", m);
  off.what_if_slots = 0;
  rs::fleet::TenantSession plain(std::move(off), 1);
  feed(plain, store, integer_trace(m, 5, 0x1D11ull));
  EXPECT_FALSE(plain.what_if(3, 1.0).has_value());

  // ... and probes with a window require window == 0 at validation time.
  rs::fleet::TenantConfig bad = probe_config("bad", m);
  bad.window = 2;
  EXPECT_THROW(rs::fleet::TenantSession(std::move(bad), 2),
               std::invalid_argument);
}

TEST(FleetWhatIf, AnswersAfterProcessRestartResume) {
  const int m = 8;
  const std::vector<double> trace = integer_trace(m, 30, 0xFACEull);
  const std::span<const double> first(trace.data(), 20);
  const std::span<const double> rest(trace.data() + 20, 10);

  rs::core::CheckpointStore store;
  {
    rs::fleet::TenantSession before(probe_config("restartable", m), 0);
    feed(before, store, first);
    before.checkpoint_now(store);
  }
  rs::fleet::TenantSession resumed(probe_config("restartable", m), 0, &store);
  EXPECT_EQ(resumed.steps(), 20u);
  feed(resumed, store, rest);

  rs::util::Rng rng(0xBEEull);
  for (int probe = 0; probe < 4; ++probe) {
    const int slot = rng.uniform_int(21, 30);  // inside the post-resume window
    const double lambda = static_cast<double>(rng.uniform_int(0, m));
    const auto result = resumed.what_if(slot, lambda);
    ASSERT_TRUE(result.has_value()) << "slot " << slot;

    std::vector<double> edited = trace;
    edited[static_cast<std::size_t>(slot - 1)] = lambda;
    rs::core::CheckpointStore scratch;
    rs::fleet::TenantSession reference(
        probe_config("restart-ref" + std::to_string(probe), m), 1);
    feed(reference, scratch, edited);
    EXPECT_EQ(result->projected_state, reference.schedule().back());
    EXPECT_EQ(result->x_lower, reference.lower_bounds().back());
    EXPECT_EQ(result->x_upper, reference.upper_bounds().back());
  }
}

TEST(FleetPriority, InteractiveTenantsStartBeforeBatch) {
  rs::fleet::FleetOptions options;
  options.threads = 1;
  options.tick_budget_seconds = 1e-12;  // expires immediately: only the
                                        // first-started tenant advances
  rs::fleet::FleetController fleet(options);

  rs::fleet::TenantConfig batch = probe_config("batch", 6);
  batch.what_if_slots = 0;
  batch.priority = rs::fleet::Priority::kBatch;
  rs::fleet::TenantConfig interactive = probe_config("interactive", 6);
  interactive.what_if_slots = 0;
  interactive.priority = rs::fleet::Priority::kInteractive;

  // Registration order is batch-first: priority, not ordinal, must decide.
  const std::size_t b = fleet.add_tenant(std::move(batch));
  const std::size_t i = fleet.add_tenant(std::move(interactive));
  ASSERT_TRUE(fleet.offer(b, 2.0));
  ASSERT_TRUE(fleet.offer(i, 3.0));

  const auto report = fleet.tick();
  EXPECT_EQ(report.due, 2u);
  EXPECT_EQ(report.deferred, 1u);
  EXPECT_EQ(fleet.tenant(i).steps(), 1u);
  EXPECT_EQ(fleet.tenant(b).steps(), 0u);
  EXPECT_EQ(fleet.tenant(b).stats().deferrals, 1u);
  fleet.run_until_drained();
  EXPECT_EQ(fleet.tenant(b).steps(), 1u);
}

// Forwarding wrapper counting as_convex_pwl calls (the conversion-count
// idiom of test_pwl_problem.cpp).
class CountingCost final : public rs::core::CostFunction {
 public:
  CountingCost(CostPtr base, std::shared_ptr<std::atomic<int>> conversions)
      : base_(std::move(base)), conversions_(std::move(conversions)) {}
  double at(int x) const override { return base_->at(x); }
  void eval_row(int m, std::span<double> out) const override {
    base_->eval_row(m, out);
  }
  bool is_convex() const override { return base_->is_convex(); }
  std::string name() const override {
    return "counting(" + base_->name() + ")";
  }

 protected:
  std::optional<rs::core::ConvexPwl> as_convex_pwl_impl(
      int m, int max_breakpoints) const override {
    conversions_->fetch_add(1, std::memory_order_relaxed);
    return base_->as_convex_pwl(m, max_breakpoints);
  }

 private:
  CostPtr base_;
  std::shared_ptr<std::atomic<int>> conversions_;
};

TEST(FleetFormCache, DistinctCostsConvertOnceAcrossTenants) {
  auto conversions = std::make_shared<std::atomic<int>>(0);
  // λ → cost memo shared by both tenants, so identical samples yield the
  // SAME CostPtr — the identity the cache keys on.
  auto memo = std::make_shared<std::map<double, CostPtr>>();
  auto cost_of = [conversions, memo](double lambda) -> CostPtr {
    auto [it, inserted] = memo->try_emplace(lambda, nullptr);
    if (inserted) {
      it->second = std::make_shared<CountingCost>(
          std::make_shared<rs::core::AffineAbsCost>(1.0, lambda, 0.0),
          conversions);
    }
    return it->second;
  };

  rs::fleet::FleetOptions options;
  options.threads = 1;
  rs::fleet::FleetController fleet(options);
  for (int k = 0; k < 2; ++k) {
    rs::fleet::TenantConfig config;
    config.name = "cache" + std::to_string(k);
    config.m = 6;
    config.beta = 2.0;
    config.cost_of = cost_of;
    fleet.add_tenant(std::move(config));
  }

  const std::vector<double> trace = integer_trace(6, 40, 0xCAC4Eull);
  for (double lambda : trace) {
    ASSERT_TRUE(fleet.offer(0, lambda));
    ASSERT_TRUE(fleet.offer(1, lambda));
  }
  fleet.run_until_drained();
  ASSERT_EQ(fleet.tenant(0).steps(), 40u);
  ASSERT_EQ(fleet.tenant(1).steps(), 40u);

  const std::size_t distinct = memo->size();
  // 80 decided slots, `distinct` distinct costs: the fleet-wide cache
  // converted each exactly once and served every other use from the map.
  EXPECT_EQ(fleet.form_cache().conversions(), distinct);
  EXPECT_EQ(conversions->load(), static_cast<int>(distinct));
  EXPECT_GE(fleet.form_cache().hits(), 80u - distinct);

  // Both tenants saw the same costs, so they decided identically.
  EXPECT_EQ(fleet.tenant(0).schedule(), fleet.tenant(1).schedule());
  EXPECT_EQ(fleet.tenant(0).lower_bounds(), fleet.tenant(1).lower_bounds());
  EXPECT_EQ(fleet.tenant(0).upper_bounds(), fleet.tenant(1).upper_bounds());
}

TEST(FleetFormCache, CachedFormsDoNotChangeDecisions) {
  // Same trace through a cached tenant and a cache-free tenant (identical
  // costs): decisions, bounds, and checkpoint bytes must be bitwise equal.
  const std::vector<double> trace = integer_trace(8, 32, 0xFADEull);
  rs::core::CheckpointStore store;

  SlotFormCache cache;
  rs::fleet::TenantConfig cached = probe_config("cached", 8);
  cached.form_cache = &cache;
  rs::fleet::TenantSession with_cache(std::move(cached), 0);
  feed(with_cache, store, trace);
  EXPECT_GE(cache.conversions() + cache.hits(), 1u);

  rs::fleet::TenantConfig plain = probe_config("cached", 8);  // same key
  rs::fleet::TenantSession without_cache(std::move(plain), 0);
  feed(without_cache, store, trace);

  EXPECT_EQ(with_cache.schedule(), without_cache.schedule());
  EXPECT_EQ(with_cache.lower_bounds(), without_cache.lower_bounds());
  EXPECT_EQ(with_cache.upper_bounds(), without_cache.upper_bounds());
  EXPECT_EQ(with_cache.snapshot_bytes(), without_cache.snapshot_bytes());
}

TEST(FormCache, PinsNegativeResultsAndBoundsItsSize) {
  EXPECT_THROW(SlotFormCache(0), std::invalid_argument);

  SlotFormCache cache(2);
  EXPECT_EQ(cache.form_for(nullptr, 4), nullptr);

  const CostPtr a = std::make_shared<rs::core::AffineAbsCost>(1.0, 2.0, 0.0);
  const CostPtr b = std::make_shared<rs::core::AffineAbsCost>(2.0, 1.0, 0.0);
  const CostPtr c = std::make_shared<rs::core::AffineAbsCost>(1.0, 1.0, 0.0);
  ASSERT_NE(cache.form_for(a, 8), nullptr);
  EXPECT_EQ(cache.conversions(), 1u);
  ASSERT_NE(cache.form_for(a, 8), nullptr);
  EXPECT_EQ(cache.conversions(), 1u);  // second use is a hit
  EXPECT_EQ(cache.hits(), 1u);

  ASSERT_NE(cache.form_for(b, 8), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  // Full: new keys degrade to per-use conversion (nullptr), size is capped.
  EXPECT_EQ(cache.form_for(c, 8), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// Engine: kDeltaResolve jobs
// ---------------------------------------------------------------------------

TEST(EngineDelta, ProbesMatchFromScratchAndAreOrderIndependent) {
  const int T = 30;
  const int m = 12;
  const double beta = 1.6;
  rs::util::Rng rng(0xE61ull);
  const Problem base =
      rs::workload::random_instance(rng, InstanceFamily::kQuadratic, T, m, beta);
  const Problem donor =
      rs::workload::random_instance(rng, InstanceFamily::kAffineAbs, T, m, beta);

  std::vector<rs::engine::SolveJob> jobs;
  for (int k = 0; k < 8; ++k) {
    rs::engine::SolveJob job;
    job.problem = &base;
    job.kind = rs::engine::SolverKind::kDeltaResolve;
    job.edit_slot = rng.uniform_int(1, T);
    job.edit_cost = donor.f_ptr(rng.uniform_int(1, T));
    jobs.push_back(std::move(job));
  }

  rs::engine::SolverEngine inline_engine(rs::engine::SolverEngine::Options{
      .threads = 1, .share_dense = true});
  const auto inline_result = inline_engine.run(jobs);
  ASSERT_EQ(inline_result.outcomes.size(), jobs.size());
  EXPECT_GT(inline_result.stats.slots_repaired, 0u);

  for (std::size_t k = 0; k < jobs.size(); ++k) {
    ASSERT_TRUE(inline_result.outcomes[k].ok()) << inline_result.outcomes[k].error;
    std::vector<CostPtr> edited = slot_costs(base);
    edited[static_cast<std::size_t>(jobs[k].edit_slot - 1)] = jobs[k].edit_cost;
    DpDeltaSession fresh(Problem(m, beta, edited));
    EXPECT_EQ(inline_result.outcomes[k].cost, fresh.cost()) << "job " << k;
    EXPECT_EQ(inline_result.outcomes[k].schedule, fresh.result().schedule)
        << "job " << k;
  }

  // Threaded batches share one session per instance under a mutex; probes
  // restore it bitwise, so outcomes are independent of probe order.
  rs::engine::SolverEngine threaded(rs::engine::SolverEngine::Options{
      .threads = 4, .share_dense = true});
  const auto threaded_result = threaded.run(jobs);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(threaded_result.outcomes[k].cost, inline_result.outcomes[k].cost);
    EXPECT_EQ(threaded_result.outcomes[k].schedule,
              inline_result.outcomes[k].schedule);
  }

  // Structural validation happens before anything runs.
  rs::engine::SolveJob bad;
  bad.problem = &base;
  bad.kind = rs::engine::SolverKind::kDeltaResolve;
  bad.edit_slot = 0;
  bad.edit_cost = donor.f_ptr(1);
  EXPECT_THROW(inline_engine.run(std::vector<rs::engine::SolveJob>{bad}),
               std::invalid_argument);
  bad.edit_slot = 3;
  bad.edit_cost = nullptr;
  EXPECT_THROW(inline_engine.run(std::vector<rs::engine::SolveJob>{bad}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Online: warm receding horizons
// ---------------------------------------------------------------------------

TEST(WarmHorizon, MatchesColdPlansAndReusesAcrossRleRuns) {
  const int m = 10;
  const double beta = 2.0;
  const int window = 4;
  rs::util::Rng rng(0x4E0ull);

  // RLE trace: runs of one repeated CostPtr, run length > window + 1 so
  // interior steps present identical (start, window) pairs.
  std::vector<CostPtr> slots;
  while (slots.size() < 60) {
    const CostPtr cost = std::make_shared<rs::core::AffineAbsCost>(
        static_cast<double>(rng.uniform_int(1, 3)),
        static_cast<double>(rng.uniform_int(0, m)), 0.0);
    const int run = rng.uniform_int(6, 10);
    for (int k = 0; k < run && slots.size() < 60; ++k) slots.push_back(cost);
  }
  const int T = static_cast<int>(slots.size());

  const rs::online::OnlineContext context{.m = m, .beta = beta};
  rs::online::RecedingHorizon warm;
  warm.reset(context);

  int cold_state = 0;
  for (int t = 0; t < T; ++t) {
    const int lookahead = std::min(window, T - 1 - t);
    const std::span<const CostPtr> future(
        slots.data() + t + 1, static_cast<std::size_t>(lookahead));
    const int warm_state = warm.decide(slots[static_cast<std::size_t>(t)], future);
    cold_state = rs::online::plan_fixed_horizon(
                     cold_state, slots[static_cast<std::size_t>(t)], future, m,
                     beta)
                     .front();
    ASSERT_EQ(warm_state, cold_state) << "slot " << t;
  }

  const rs::online::WarmHorizonStats& stats = warm.warm_stats();
  EXPECT_EQ(stats.plans + stats.reused_plans, static_cast<std::uint64_t>(T));
  EXPECT_GT(stats.reused_plans, 0u);  // interior of every long run
  EXPECT_GT(stats.row_reuses, stats.row_evaluations);
  // Each distinct cost is evaluated at most once per contiguous presence
  // in the window — far fewer evaluations than window slots swept.
  EXPECT_LT(stats.row_evaluations, stats.planned_slots);
}

}  // namespace
