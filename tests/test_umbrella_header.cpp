// Compile-only guard for the public umbrella header: including it must pull
// in every public module without errors or missing-header surprises.
#include "rightsizer/rightsizer.hpp"

#include <gtest/gtest.h>

TEST(UmbrellaHeader, CompilesAndExposesCoreTypes) {
  // Touch one symbol from a few far-apart modules so the includes cannot be
  // optimized away by an overzealous tool.
  const rs::core::QuadraticCost q(1.0, 0.0);
  EXPECT_DOUBLE_EQ(q.at(0), 0.0);
  EXPECT_EQ(rs::offline::DpSolver{}.name(), "dp");
  EXPECT_EQ(rs::online::Lcp{}.name(), "lcp");
}
