// Tests for discrete Lazy Capacity Provisioning (Section 3): the defining
// projection recursion (eq. 13), laziness, the Lemma-12/13/14 structure
// properties against the Lemma-11 optimum, and Theorem 2 (competitive ratio
// at most 3) across instance families.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "offline/backward_solver.hpp"
#include "offline/dp_solver.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "online/lcp_window.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::online;
using rs::core::Problem;
using rs::core::Schedule;
using rs::offline::BoundTrajectory;
using rs::workload::InstanceFamily;

Schedule run_lcp(const Problem& p) {
  Lcp lcp;
  return run_online(lcp, p);
}

TEST(Lcp, MatchesProjectionRecursionDefinition) {
  // Recompute eq. (13) directly from independently computed bounds.
  rs::util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 20));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.2, 3.0));
    const BoundTrajectory bounds = rs::offline::compute_bounds(p);
    Schedule expected(static_cast<std::size_t>(T));
    int state = 0;
    for (int t = 1; t <= T; ++t) {
      state = rs::util::project(state,
                                bounds.lower[static_cast<std::size_t>(t - 1)],
                                bounds.upper[static_cast<std::size_t>(t - 1)]);
      expected[static_cast<std::size_t>(t - 1)] = state;
    }
    EXPECT_EQ(run_lcp(p), expected);
  }
}

TEST(Lcp, IsLazyChangesOnlyWhenForced) {
  // x^LCP changes from its previous value only if the previous value lies
  // outside [x^L, x^U]; and then it moves to the nearest corridor endpoint.
  rs::util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 25));
    const int m = static_cast<int>(rng.uniform_int(1, 12));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, T, m, rng.uniform(0.2, 2.0));
    const BoundTrajectory bounds = rs::offline::compute_bounds(p);
    const Schedule x = run_lcp(p);
    int previous = 0;
    for (int t = 1; t <= T; ++t) {
      const int lo = bounds.lower[static_cast<std::size_t>(t - 1)];
      const int hi = bounds.upper[static_cast<std::size_t>(t - 1)];
      const int current = x[static_cast<std::size_t>(t - 1)];
      if (previous >= lo && previous <= hi) {
        EXPECT_EQ(current, previous) << "not lazy at t=" << t;
      } else if (previous < lo) {
        EXPECT_EQ(current, lo);
      } else {
        EXPECT_EQ(current, hi);
      }
      previous = current;
    }
  }
}

TEST(Lcp, ExposesLastBounds) {
  const Problem p = rs::core::make_table_problem(
      2, 1.0, {{2.0, 0.0, 1.0}, {0.0, 1.0, 2.0}});
  Lcp lcp;
  lcp.reset(OnlineContext{2, 1.0});
  lcp.decide(p.f_ptr(1), {});
  EXPECT_LE(lcp.last_lower(), lcp.last_upper());
}

// Lemma 12: whenever LCP crosses the (Lemma-11) optimal schedule, the two
// touch at the crossing slot.
TEST(Lcp, Lemma12CrossingImpliesTouching) {
  rs::util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(2, 30));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = rs::workload::random_instance(
        rng, trial % 2 == 0 ? InstanceFamily::kQuadratic
                            : InstanceFamily::kConvexTable,
        T, m, rng.uniform(0.2, 2.5));
    const Schedule lcp = run_lcp(p);
    const Schedule optimal =
        rs::offline::backward_schedule(rs::offline::compute_bounds(p));
    int lcp_prev = 0;
    int opt_prev = 0;
    for (int t = 1; t <= T; ++t) {
      const int lcp_now = lcp[static_cast<std::size_t>(t - 1)];
      const int opt_now = optimal[static_cast<std::size_t>(t - 1)];
      if (lcp_prev < opt_prev && lcp_now >= opt_now) {
        EXPECT_EQ(lcp_now, opt_now) << "t=" << t;
      }
      if (lcp_prev > opt_prev && lcp_now <= opt_now) {
        EXPECT_EQ(lcp_now, opt_now) << "t=" << t;
      }
      lcp_prev = lcp_now;
      opt_prev = opt_now;
    }
  }
}

// Lemma 14: the switching cost of LCP is at most that of the optimum.
TEST(Lcp, Lemma14SwitchingCostAtMostOptimal) {
  rs::util::Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 30));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.2, 3.0));
    const Schedule lcp = run_lcp(p);
    const Schedule optimal =
        rs::offline::backward_schedule(rs::offline::compute_bounds(p));
    EXPECT_LE(rs::core::switching_cost_up(p, lcp),
              rs::core::switching_cost_up(p, optimal) + 1e-9);
  }
}

// --- Theorem 2: competitive ratio <= 3 --------------------------------------

struct LcpRatioParam {
  InstanceFamily family;
  int T;
  int m;
  double beta;
};

class LcpCompetitiveTest : public ::testing::TestWithParam<LcpRatioParam> {};

TEST_P(LcpCompetitiveTest, RatioAtMostThree) {
  const LcpRatioParam param = GetParam();
  rs::util::Rng rng(1000u + static_cast<std::uint64_t>(param.T) * 31u +
                    static_cast<std::uint64_t>(param.m));
  const rs::offline::DpSolver dp;
  for (int trial = 0; trial < 8; ++trial) {
    const Problem p = rs::workload::random_instance(rng, param.family, param.T,
                                                    param.m, param.beta);
    const double optimal = dp.solve_cost(p);
    if (!std::isfinite(optimal) || optimal <= 0.0) continue;
    const double lcp_cost = rs::core::total_cost(p, run_lcp(p));
    EXPECT_LE(lcp_cost, 3.0 * optimal + 1e-9)
        << rs::workload::family_name(param.family) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LcpCompetitiveTest,
    ::testing::Values(
        LcpRatioParam{InstanceFamily::kConvexTable, 10, 4, 0.5},
        LcpRatioParam{InstanceFamily::kConvexTable, 40, 8, 1.0},
        LcpRatioParam{InstanceFamily::kConvexTable, 80, 16, 3.0},
        LcpRatioParam{InstanceFamily::kQuadratic, 50, 12, 0.7},
        LcpRatioParam{InstanceFamily::kQuadratic, 100, 20, 2.0},
        LcpRatioParam{InstanceFamily::kAffineAbs, 60, 6, 1.5},
        LcpRatioParam{InstanceFamily::kAffineAbs, 30, 25, 4.0},
        LcpRatioParam{InstanceFamily::kConstrained, 40, 10, 1.0},
        LcpRatioParam{InstanceFamily::kFlatRegions, 70, 9, 0.9}),
    [](const ::testing::TestParamInfo<LcpRatioParam>& info) {
      return rs::workload::family_name(info.param.family) + "_T" +
             std::to_string(info.param.T) + "_m" +
             std::to_string(info.param.m);
    });

// --- prediction window -------------------------------------------------------

TEST(WindowedLcp, ZeroWindowEqualsLcp) {
  rs::util::Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 20));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.3, 2.0));
    WindowedLcp windowed;
    EXPECT_EQ(run_online(windowed, p, /*window=*/0), run_lcp(p));
  }
}

TEST(WindowedLcp, CompletionCostsBaseCase) {
  // Empty window: zero completion everywhere.
  const std::vector<double> d = completion_costs({}, 3, 1.0, true);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(WindowedLcp, CompletionCostsSingleSlot) {
  // One future function f; under L-accounting D(x) = min_x' β(x'-x)^+ + f(x').
  const auto f = std::make_shared<rs::core::TableCost>(
      std::vector<double>{4.0, 1.0, 3.0});
  std::vector<rs::core::CostPtr> window = {f};
  const double beta = 2.0;
  const std::vector<double> d_up =
      completion_costs({window.data(), 1}, 2, beta, true);
  // From x=0: min(4, 1+2, 3+4) = 3; from x=1: min over >=1 free-down? no:
  // up-charging pays to increase only: from 1: min(f(0), f(1), f(2)+β) = 1.
  EXPECT_DOUBLE_EQ(d_up[0], 3.0);
  EXPECT_DOUBLE_EQ(d_up[1], 1.0);
  EXPECT_DOUBLE_EQ(d_up[2], 1.0);  // down to 1 free
  const std::vector<double> d_down =
      completion_costs({window.data(), 1}, 2, beta, false);
  // Down-charging: from 0 up is free: min f = 1; from 2: min(f(2), f(1)+β, f(0)+2β)=3.
  EXPECT_DOUBLE_EQ(d_down[0], 1.0);
  EXPECT_DOUBLE_EQ(d_down[1], 1.0);
  EXPECT_DOUBLE_EQ(d_down[2], 3.0);
}

TEST(WindowedLcp, FullLookaheadStillThreeCompetitive) {
  rs::util::Rng rng(6);
  const rs::offline::DpSolver dp;
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(2, 25));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, T, m, rng.uniform(0.3, 2.0));
    const double optimal = dp.solve_cost(p);
    for (int w : {1, 3, T}) {
      WindowedLcp windowed;
      const Schedule x = run_online(windowed, p, w);
      EXPECT_LE(rs::core::total_cost(p, x), 3.0 * optimal + 1e-9)
          << "w=" << w;
    }
  }
}

TEST(WindowedLcp, LookaheadHelpsOnSpikeTrace) {
  // A single expensive spike with advance warning: with w >= 1 LCP can
  // pre-provision and avoid the spike penalty that w = 0 pays.
  // f_t prefers 0 servers except slot 3 which strongly prefers 2.
  std::vector<std::vector<double>> rows = {
      {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}, {8.0, 4.0, 0.0},
      {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0}};
  const Problem p = rs::core::make_table_problem(2, 1.0, rows);
  WindowedLcp w0, w2;
  const double cost0 = rs::core::total_cost(p, run_online(w0, p, 0));
  const double cost2 = rs::core::total_cost(p, run_online(w2, p, 2));
  EXPECT_LE(cost2, cost0 + 1e-12);
}

}  // namespace
