// Long-horizon stress and numerical-stability tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "dcsim/cost_model.hpp"
#include "offline/binary_search_solver.hpp"
#include "offline/dp_solver.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "online/level_flow.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::Problem;
using rs::core::Schedule;
using rs::workload::InstanceFamily;

TEST(Stress, LcpOnTwentyThousandSlots) {
  rs::util::Rng rng(81);
  const int T = 20000;
  const int m = 32;
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, T, m, 1.0);
  rs::online::Lcp lcp;
  const Schedule x = rs::online::run_online(lcp, p);
  const double optimal = rs::offline::DpSolver().solve_cost(p);
  ASSERT_GT(optimal, 0.0);
  const double ratio = rs::core::total_cost(p, x) / optimal;
  EXPECT_LE(ratio, 3.0 + 1e-9);
  EXPECT_GE(ratio, 1.0 - 1e-9);
}

TEST(Stress, WorkFunctionStableOverHundredThousandSteps) {
  // Work functions accumulate T additions; relative errors must stay tiny
  // and invariants (Lemma 7, convexity at spot checks) must survive.
  const int m = 8;
  const double beta = 1.5;
  rs::offline::WorkFunctionTracker tracker(m, beta);
  rs::util::Rng rng(82);
  for (int t = 1; t <= 100000; ++t) {
    std::vector<double> values(static_cast<std::size_t>(m) + 1);
    const double center = rng.uniform(0.0, m);
    for (int x = 0; x <= m; ++x) {
      const double deviation = static_cast<double>(x) - center;
      values[static_cast<std::size_t>(x)] = 0.01 * deviation * deviation;
    }
    tracker.advance(values);
    if (t % 10000 == 0) {
      for (int x = 0; x <= m; ++x) {
        ASSERT_TRUE(std::isfinite(tracker.chat_lower(x)));
        ASSERT_NEAR(tracker.chat_lower(x),
                    tracker.chat_upper(x) + beta * x,
                    1e-7 * (1.0 + std::fabs(tracker.chat_lower(x))));
      }
      ASSERT_LE(tracker.x_lower(), tracker.x_upper());
    }
  }
}

TEST(Stress, LevelFlowLongRunStaysNormalized) {
  const int m = 16;
  rs::online::LevelFlow flow;
  flow.reset(rs::online::OnlineContext{m, 2.0});
  rs::util::Rng rng(83);
  for (int t = 0; t < 50000; ++t) {
    const double x = flow.decide(
        std::make_shared<rs::core::QuadraticCost>(rng.uniform(0.01, 1.0),
                                                  rng.uniform(-2.0, 18.0)),
        {});
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, static_cast<double>(m));
  }
  for (double p : flow.profile()) {
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
}

TEST(Stress, DpSolverHandlesWideStateSpace) {
  // m = 4096 with a modest horizon: exercises the O(m) relax kernels.
  rs::util::Rng rng(84);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 64, 4096, 2.0);
  const double cost = rs::offline::DpSolver().solve_cost(p);
  EXPECT_TRUE(std::isfinite(cost));
  // Cross-check against the O(T log m) solver on the same instance.
  EXPECT_NEAR(rs::offline::BinarySearchSolver().solve(p).cost, cost,
              1e-6 * (1.0 + cost));
}

TEST(Stress, HotmailTraceMonthLong) {
  // 30 days at 5-minute resolution (8640 slots) through the full pipeline.
  rs::util::Rng rng(85);
  rs::dcsim::DataCenterModel model;
  model.servers = 24;
  const rs::workload::Trace trace =
      rs::workload::hotmail_like(rng, 30, 288, 0.6 * model.servers);
  const Problem p = rs::dcsim::restricted_datacenter_problem(model, trace);
  rs::online::Lcp lcp;
  const Schedule x = rs::online::run_online(lcp, p);
  EXPECT_TRUE(rs::core::is_feasible(p, x));
  const double optimal = rs::offline::DpSolver().solve_cost(p);
  EXPECT_LE(rs::core::total_cost(p, x), 1.1 * optimal);  // near-optimal
}

}  // namespace
