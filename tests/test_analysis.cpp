// Tests for the analysis harness: ratio measurement, Monte Carlo, and the
// savings study rows.
#include <gtest/gtest.h>

#include "analysis/competitive.hpp"
#include "analysis/monte_carlo.hpp"
#include "analysis/savings.hpp"
#include "online/baselines.hpp"
#include "online/lcp.hpp"
#include "online/level_flow.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::analysis;
using rs::core::Problem;
using rs::workload::InstanceFamily;

TEST(MeasureRatio, ComponentsAddUp) {
  rs::util::Rng rng(31);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 30, 8, 1.0);
  rs::online::Lcp lcp;
  const RatioReport report = measure_ratio(lcp, p);
  EXPECT_EQ(report.algorithm, "lcp");
  EXPECT_NEAR(report.algorithm_cost,
              report.operating_cost + report.switching_cost, 1e-9);
  EXPECT_GT(report.optimal_cost, 0.0);
  EXPECT_GE(report.ratio, 1.0 - 1e-9);
  EXPECT_LE(report.ratio, 3.0 + 1e-9);
}

TEST(MeasureRatio, FractionalVariant) {
  rs::util::Rng rng(32);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kConvexTable, 25, 6, 1.5);
  rs::online::LevelFlow flow;
  const RatioReport report = measure_ratio(flow, p);
  EXPECT_LE(report.ratio, 2.0 + 1e-6);
}

TEST(MonteCarlo, DeterministicAcrossRuns) {
  rs::util::Rng rng(33);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kConvexTable, 15, 4, 1.0);
  const MonteCarloReport a = monte_carlo_randomized_rounding(p, 64, 42);
  const MonteCarloReport b = monte_carlo_randomized_rounding(p, 64, 42);
  EXPECT_DOUBLE_EQ(a.cost.mean, b.cost.mean);
  EXPECT_DOUBLE_EQ(a.cost.stddev, b.cost.stddev);
}

TEST(MonteCarlo, MeanRatioWithinTheorem3Bound) {
  rs::util::Rng rng(34);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 40, 6, 1.2);
  const MonteCarloReport report = monte_carlo_randomized_rounding(p, 256, 7);
  EXPECT_GT(report.optimal_cost, 0.0);
  EXPECT_LE(report.ratio.mean, 2.0 + 3.0 * report.ratio.ci95_half_width);
}

TEST(MonteCarlo, Validation) {
  const Problem p = rs::core::make_table_problem(1, 1.0, {{0.0, 1.0}});
  EXPECT_THROW(monte_carlo(p, 0, 1, [](std::uint64_t) { return 0.0; }),
               std::invalid_argument);
  EXPECT_THROW(monte_carlo(p, 1, 1, nullptr), std::invalid_argument);
}

TEST(Savings, RightSizingBeatsStaticOnDiurnalTrace) {
  rs::util::Rng rng(35);
  rs::dcsim::DataCenterModel model;
  model.servers = 24;
  const rs::workload::Trace trace =
      rs::workload::hotmail_like(rng, 3, 48, 0.6 * model.servers);
  const SavingsRow row = evaluate_savings(model, trace, "hotmail_like");
  EXPECT_EQ(row.trace_name, "hotmail_like");
  EXPECT_GT(row.optimal_savings_percent, 0.0);
  EXPECT_GE(row.lcp_cost, row.optimal_cost - 1e-9);
  EXPECT_LE(row.lcp_ratio, 3.0 + 1e-9);
  EXPECT_GE(row.static_cost, row.optimal_cost - 1e-9);
}

TEST(Savings, LargerBetaShrinksSavings) {
  // More expensive switching => right-sizing helps less (qualitative shape
  // of Lin et al.'s Figure on switching-cost sensitivity).
  rs::util::Rng rng(36);
  rs::dcsim::DataCenterModel model;
  model.servers = 24;
  const rs::workload::Trace trace =
      rs::workload::hotmail_like(rng, 3, 48, 0.6 * model.servers);
  const SavingsRow cheap = evaluate_savings(model, trace, "t", 0.5);
  const SavingsRow expensive = evaluate_savings(model, trace, "t", 32.0);
  EXPECT_GT(cheap.optimal_savings_percent,
            expensive.optimal_savings_percent);
  EXPECT_THROW(evaluate_savings(model, trace, "t", 0.0),
               std::invalid_argument);
}

}  // namespace
