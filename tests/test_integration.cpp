// End-to-end integration sweep: on a grid of (family, T, m, β, seed)
// instances, run every offline solver and every online algorithm and assert
// the full consistency web in one place:
//
//   * all five offline solvers agree on the optimal cost;
//   * every returned schedule prices at its reported cost and is feasible;
//   * LCP within [x^L, x^U] and at most 3x optimal; LCP(w) at most 3x;
//   * LevelFlow at most 2x; randomized rounding within one unit of its
//     fractional driver; RHC with full lookahead optimal;
//   * serialization round-trips preserve the optimum.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "core/serialization.hpp"
#include "offline/backward_solver.hpp"
#include "offline/binary_search_solver.hpp"
#include "offline/dp_solver.hpp"
#include "offline/graph_solver.hpp"
#include "offline/low_memory_solver.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "online/lcp_window.hpp"
#include "online/level_flow.hpp"
#include "online/randomized_rounding.hpp"
#include "online/receding_horizon.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::Problem;
using rs::core::Schedule;
using rs::workload::InstanceFamily;

struct IntegrationParam {
  InstanceFamily family;
  int T;
  int m;
  double beta;
  std::uint64_t seed;
};

class IntegrationSweep : public ::testing::TestWithParam<IntegrationParam> {};

TEST_P(IntegrationSweep, FullConsistencyWeb) {
  const IntegrationParam param = GetParam();
  rs::util::Rng rng(param.seed);
  const Problem p = rs::workload::random_instance(rng, param.family, param.T,
                                                  param.m, param.beta);

  // --- offline agreement ---
  const rs::offline::OfflineResult dp = rs::offline::DpSolver().solve(p);
  ASSERT_TRUE(dp.feasible());
  const double optimum = dp.cost;
  EXPECT_NEAR(rs::core::total_cost(p, dp.schedule), optimum, 1e-8);

  const rs::offline::OfflineResult graph = rs::offline::GraphSolver().solve(p);
  EXPECT_NEAR(graph.cost, optimum, 1e-8) << "graph";

  const rs::offline::OfflineResult binary =
      rs::offline::BinarySearchSolver().solve(p);
  EXPECT_NEAR(binary.cost, optimum, 1e-8) << "binary";
  EXPECT_NEAR(rs::core::total_cost(p, binary.schedule), optimum, 1e-8);

  const rs::offline::OfflineResult low =
      rs::offline::LowMemorySolver().solve(p);
  EXPECT_NEAR(low.cost, optimum, 1e-8) << "low_memory";
  EXPECT_NEAR(rs::core::total_cost(p, low.schedule), optimum, 1e-8);

  if (param.family != InstanceFamily::kConstrained) {
    EXPECT_NEAR(rs::offline::BackwardSolver().solve(p).cost, optimum, 1e-8)
        << "backward";
  }

  // --- LCP: corridor + ratio ---
  const rs::offline::BoundTrajectory bounds = rs::offline::compute_bounds(p);
  rs::online::Lcp lcp;
  const Schedule lcp_schedule = rs::online::run_online(lcp, p);
  EXPECT_TRUE(rs::core::is_feasible(p, lcp_schedule));
  for (int t = 0; t < param.T; ++t) {
    EXPECT_GE(lcp_schedule[static_cast<std::size_t>(t)],
              bounds.lower[static_cast<std::size_t>(t)]);
    EXPECT_LE(lcp_schedule[static_cast<std::size_t>(t)],
              bounds.upper[static_cast<std::size_t>(t)]);
  }
  const double lcp_cost = rs::core::total_cost(p, lcp_schedule);
  if (optimum > 0.0) {
    EXPECT_LE(lcp_cost, 3.0 * optimum + 1e-8) << "Theorem 2";
  }

  // --- LCP with prediction windows ---
  for (int w : {1, 3}) {
    rs::online::WindowedLcp windowed;
    const Schedule x = rs::online::run_online(windowed, p, w);
    EXPECT_TRUE(rs::core::is_feasible(p, x));
    if (optimum > 0.0) {
      EXPECT_LE(rs::core::total_cost(p, x), 3.0 * optimum + 1e-8)
          << "LCP(w=" << w << ")";
    }
  }

  // --- fractional LevelFlow: factor 2 ---
  rs::online::LevelFlow flow;
  const rs::core::FractionalSchedule xbar = rs::online::run_online(flow, p);
  if (optimum > 1e-9) {
    EXPECT_LE(rs::core::total_cost(p, xbar), 2.0 * optimum + 1e-6)
        << "LevelFlow";
  }

  // --- randomized rounding stays glued to its driver ---
  rs::online::RandomizedRounding rounding(param.seed ^ 0xabcdef);
  const Schedule rounded = rs::online::run_online(rounding, p);
  for (int t = 0; t < param.T; ++t) {
    EXPECT_LE(std::fabs(static_cast<double>(
                  rounded[static_cast<std::size_t>(t)]) -
              xbar[static_cast<std::size_t>(t)]),
              1.0 + 1e-9);
  }

  // --- RHC with full lookahead is offline-optimal ---
  rs::online::RecedingHorizon rhc;
  const Schedule rhc_schedule = rs::online::run_online(rhc, p, param.T);
  EXPECT_NEAR(rs::core::total_cost(p, rhc_schedule), optimum, 1e-8)
      << "RHC full lookahead";

  // --- serialization survives with identical optimum ---
  const Problem round_trip =
      rs::core::problem_from_csv(rs::core::problem_to_csv(p));
  EXPECT_DOUBLE_EQ(rs::offline::DpSolver().solve_cost(round_trip), optimum);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IntegrationSweep,
    ::testing::Values(
        IntegrationParam{InstanceFamily::kConvexTable, 1, 1, 1.0, 1},
        IntegrationParam{InstanceFamily::kConvexTable, 12, 6, 0.4, 2},
        IntegrationParam{InstanceFamily::kConvexTable, 35, 9, 2.2, 3},
        IntegrationParam{InstanceFamily::kConvexTable, 60, 17, 5.0, 4},
        IntegrationParam{InstanceFamily::kQuadratic, 20, 5, 0.9, 5},
        IntegrationParam{InstanceFamily::kQuadratic, 48, 23, 1.4, 6},
        IntegrationParam{InstanceFamily::kQuadratic, 30, 33, 3.3, 7},
        IntegrationParam{InstanceFamily::kAffineAbs, 25, 4, 0.6, 8},
        IntegrationParam{InstanceFamily::kAffineAbs, 55, 13, 2.8, 9},
        IntegrationParam{InstanceFamily::kFlatRegions, 18, 8, 1.1, 10},
        IntegrationParam{InstanceFamily::kFlatRegions, 42, 21, 0.3, 11},
        IntegrationParam{InstanceFamily::kConstrained, 15, 10, 1.6, 12},
        IntegrationParam{InstanceFamily::kConstrained, 33, 19, 4.4, 13},
        IntegrationParam{InstanceFamily::kCapacityCapped, 22, 11, 0.8, 14},
        IntegrationParam{InstanceFamily::kCapacityCapped, 40, 26, 2.1, 15}),
    [](const ::testing::TestParamInfo<IntegrationParam>& info) {
      return rs::workload::family_name(info.param.family) + "_T" +
             std::to_string(info.param.T) + "_m" +
             std::to_string(info.param.m) + "_s" +
             std::to_string(info.param.seed);
    });

// --- failure injection --------------------------------------------------------

TEST(FailureInjection, ValidateRejectsUserMistakes) {
  // Concave callable.
  const Problem concave(
      3, 1.0,
      {std::make_shared<rs::core::FunctionCost>(
          [](int x) { return std::sqrt(static_cast<double>(x)); })});
  EXPECT_THROW(concave.validate(), std::invalid_argument);

  // Negative cost.
  const Problem negative(
      2, 1.0,
      {std::make_shared<rs::core::FunctionCost>(
          [](int x) { return static_cast<double>(x) - 1.0; })});
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  // NaN-producing callable.
  const Problem nan_cost(
      2, 1.0,
      {std::make_shared<rs::core::FunctionCost>(
          [](int x) { return x == 1 ? std::nan("") : 1.0; })});
  EXPECT_THROW(nan_cost.validate(), std::invalid_argument);
}

TEST(FailureInjection, SolversSurviveAllInfeasibleSlot) {
  const Problem p = rs::core::make_table_problem(
      1, 1.0, {{0.0, 1.0}, {rs::util::kInf, rs::util::kInf}, {0.0, 1.0}});
  EXPECT_FALSE(rs::offline::DpSolver().solve(p).feasible());
  EXPECT_FALSE(rs::offline::LowMemorySolver().solve(p).feasible());
  EXPECT_FALSE(rs::offline::GraphSolver().solve(p).feasible());
  // Online LCP still runs (it must commit states even on hopeless inputs).
  rs::online::Lcp lcp;
  EXPECT_NO_THROW(rs::online::run_online(lcp, p));
}

TEST(FailureInjection, WorkFunctionSaturationDoesNotOverflow) {
  // Repeated huge costs must keep the work functions finite-ordered (no
  // NaNs from inf arithmetic).
  rs::offline::WorkFunctionTracker tracker(4, 1.0);
  for (int i = 0; i < 50; ++i) {
    tracker.advance(std::vector<double>{1e300, 1e300, 0.0, 1e300, 1e300});
    EXPECT_FALSE(std::isnan(tracker.chat_lower(0)));
    EXPECT_EQ(tracker.x_lower(), 2);
    EXPECT_EQ(tracker.x_upper(), 2);
  }
}

}  // namespace
