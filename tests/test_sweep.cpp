// Tests for the parameter-sweep driver.
#include <gtest/gtest.h>

#include <atomic>

#include "analysis/sweep.hpp"

namespace {

using namespace rs::analysis;

TEST(Grid, ExpandsCartesianProductRowMajor) {
  const std::vector<SweepPoint> points =
      grid({{"a", {"1", "2"}}, {"b", {"x", "y", "z"}}});
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0], (SweepPoint{{"a", "1"}, {"b", "x"}}));
  EXPECT_EQ(points[1], (SweepPoint{{"a", "1"}, {"b", "y"}}));
  EXPECT_EQ(points[3], (SweepPoint{{"a", "2"}, {"b", "x"}}));
  EXPECT_EQ(points[5], (SweepPoint{{"a", "2"}, {"b", "z"}}));
}

TEST(Grid, Validation) {
  EXPECT_THROW(grid({}), std::invalid_argument);
  EXPECT_THROW(grid({{"a", {}}}), std::invalid_argument);
}

TEST(SweepRunner, RunsEveryPointOnceInOrder) {
  const std::vector<SweepPoint> points = grid({{"i", {"0", "1", "2", "3"}}});
  std::atomic<int> calls{0};
  SweepRunner runner(points, [&calls](std::size_t i) {
    ++calls;
    return SweepRow{{"twice", 2.0 * static_cast<double>(i)}};
  });
  EXPECT_FALSE(runner.finished());
  EXPECT_THROW(runner.rows(), std::logic_error);
  runner.run();
  EXPECT_EQ(calls.load(), 4);
  ASSERT_EQ(runner.rows().size(), 4u);
  EXPECT_DOUBLE_EQ(runner.rows()[3][0].second, 6.0);  // ordered by index
  runner.run();  // idempotent
  EXPECT_EQ(calls.load(), 4);
}

TEST(SweepRunner, SerialAndParallelAgree) {
  const std::vector<SweepPoint> points = grid({{"i", {"0", "1", "2"}}});
  auto eval = [](std::size_t i) {
    return SweepRow{{"v", static_cast<double>(i * i)}};
  };
  SweepRunner serial(points, eval);
  serial.run(/*parallel=*/false);
  SweepRunner parallel(points, eval);
  parallel.run(/*parallel=*/true);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.rows()[i][0].second,
                     parallel.rows()[i][0].second);
  }
}

TEST(SweepRunner, TableAndCsvRendering) {
  SweepRunner runner(grid({{"eps", {"0.1", "0.2"}}}), [](std::size_t i) {
    return SweepRow{{"ratio", 2.0 + static_cast<double>(i)}};
  });
  runner.run();
  const rs::util::TextTable table = runner.to_table(2);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_NE(table.to_string().find("ratio"), std::string::npos);

  const rs::util::CsvTable csv = runner.to_csv();
  ASSERT_EQ(csv.header, (rs::util::CsvRow{"eps", "ratio"}));
  ASSERT_EQ(csv.rows.size(), 2u);
  EXPECT_EQ(csv.rows[0][0], "0.1");
}

TEST(SweepRunner, Validation) {
  EXPECT_THROW(SweepRunner({}, [](std::size_t) { return SweepRow{}; }),
               std::invalid_argument);
  EXPECT_THROW(SweepRunner(grid({{"a", {"1"}}}), nullptr),
               std::invalid_argument);
}

TEST(SweepRunner, PropagatesEvaluatorExceptions) {
  SweepRunner runner(grid({{"i", {"0", "1"}}}), [](std::size_t i) {
    if (i == 1) throw std::runtime_error("boom");
    return SweepRow{{"v", 0.0}};
  });
  EXPECT_THROW(runner.run(), std::runtime_error);
}

}  // namespace
